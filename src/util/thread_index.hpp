#pragma once

#include <atomic>
#include <cstdint>

namespace condyn {

/// Process-wide dense small thread id (0, 1, 2, ...), assigned on first use.
/// The combining substrates index their publication slot arrays with it.
/// Ids are never recycled — with the 256-slot arrays used here that supports
/// any realistic benchmark/test process.
inline unsigned thread_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

inline constexpr unsigned kMaxThreadIndex = 4096;

}  // namespace condyn
