#pragma once

#include <cstddef>
#include <new>

namespace condyn {

/// Cache line size used for alignment of contended shared state. A fixed
/// constant (not std::hardware_destructive_interference_size, whose value is
/// tuning-flag dependent and would leak into the ABI) — 64 bytes is correct
/// for every x86-64 and mainstream AArch64 part this library targets.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace condyn
