#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"
#include "util/ebr.hpp"
#include "util/pool_stats.hpp"
#include "util/spinlock.hpp"

namespace condyn {

/// Per-thread, cacheline-aware object pool with EBR-driven recycling
/// (DESIGN.md §7.1).
///
/// The hot paths of every variant allocate small fixed-size objects at op
/// rate: ETT arc nodes on each spanning insert, multiset cells on each
/// non-spanning insert, removal descriptors and proposal cells on each
/// spanning remove. The seed paid the general-purpose allocator for each of
/// them and retired them one `delete` at a time through EBR. This pool turns
/// that traffic into pointer pushes:
///
///  * allocation pops the calling thread's free list; a miss bumps the
///    thread's current slab (kSlabObjects objects per allocator call); only
///    an empty slab reaches `operator new`;
///  * `retire(p)` routes destruction through the EBR grace period exactly
///    like `ebr::retire`, but the reclamation callback *recycles* the cell
///    onto the reclaiming thread's free list instead of freeing it;
///  * `destroy(p)` recycles immediately (for objects no concurrent reader
///    can hold: creation-race losers, teardown of quiescent structures);
///  * free lists overflowing kLocalCap spill half to a shared list, which
///    allocation-heavy threads drain before touching a fresh slab — so
///    producer/consumer thread imbalance cannot grow memory unboundedly.
///
/// Slabs live until process exit (the pool instance is a leaky singleton):
/// recycled objects may be owned by any structure on any thread, so slab
/// lifetime cannot be tied to any structure or thread. Resident bytes are
/// tracked in pool_stats::resident_bytes().
///
/// `Align` selects the object stride: ett::Node uses kCacheLine so hot
/// treap nodes never false-share; the small cells keep natural alignment
/// (a 16-byte cell per cache line would quadruple the footprint for no
/// contention win — cells are written once and scanned).
///
/// With DC_POOL=0 every create() is a plain counted `new` and every recycle
/// a counted `delete` — the allocation behaviour of the seed, used as the
/// baseline of bench_suite's `memory` section.
template <typename T, std::size_t Align = alignof(T)>
class NodePool {
 public:
  static constexpr std::size_t kSlabObjects = 256;
  static constexpr std::size_t kLocalCap = 128;

  /// Object stride: big objects get whole cache lines (no false sharing),
  /// small ones pack at their natural alignment.
  static constexpr std::size_t stride() noexcept {
    constexpr std::size_t base = sizeof(T) > Align ? sizeof(T) : Align;
    return (base + Align - 1) / Align * Align;
  }

  static NodePool& instance() {
    // Leaky singleton: recycled objects and retire callbacks may outlive any
    // deterministic destruction point (EBR drains at static teardown), so
    // the pool is never destroyed. Slabs stay reachable via the instance —
    // LeakSanitizer sees no leak; the OS reclaims at exit.
    static NodePool* p = new NodePool();
    return *p;
  }

  template <typename... Args>
  T* create(Args&&... args) {
    auto& st = pool_stats::local();
    if (!pool_stats::pooling_enabled()) {
      ++st.allocator_calls;
      st.bytes_allocated += sizeof(T);
      return new T(std::forward<Args>(args)...);
    }
    void* raw = pop_local();
    if (raw != nullptr) {
      ++st.pool_reused;
    } else {
      raw = carve(st);
      ++st.pool_fresh;
    }
    return ::new (raw) T(std::forward<Args>(args)...);
  }

  /// Destroy and recycle immediately. Only safe when no concurrent reader
  /// can still hold `p` (creation-race losers, quiescent teardown).
  void destroy(T* p) {
    if (p == nullptr) return;
    auto& st = pool_stats::local();
    if (!pool_stats::pooling_enabled()) {
      ++st.allocator_frees;
      delete p;
      return;
    }
    p->~T();
    push_local(p);
    ++st.pool_recycled;
  }

  /// Retire through the EBR grace period (instead of ebr::retire + delete):
  /// after two epoch advances the object is destroyed and its cell returns
  /// to the free list of whichever thread flushes the bucket.
  void retire(T* p) {
    ebr::Domain::global().retire(
        static_cast<void*>(p),
        [](void* q) { NodePool::instance().destroy(static_cast<T*>(q)); });
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(stride() >= sizeof(FreeNode),
                "object storage must hold a free-list link");

  /// Per-thread cache. On thread exit the remaining cells spill to the
  /// shared list so objects recycled by short-lived threads stay usable.
  struct Local {
    NodePool* owner = nullptr;
    FreeNode* head = nullptr;
    std::size_t count = 0;
    std::byte* slab_cur = nullptr;
    std::byte* slab_end = nullptr;

    ~Local() {
      if (owner != nullptr && head != nullptr) {
        owner->spill_all(*this);
      }
      // The partially-carved slab tail is abandoned (its slab stays
      // registered in slabs_ and resident); at most stride()*kSlabObjects
      // bytes per exiting thread.
    }
  };

  Local& local() {
    static thread_local Local st;
    if (st.owner == nullptr) st.owner = this;
    return st;
  }

  void* pop_local() {
    Local& st = local();
    if (st.head == nullptr && !refill_from_shared(st)) return nullptr;
    FreeNode* n = st.head;
    st.head = n->next;
    --st.count;
    return n;
  }

  void push_local(void* raw) {
    Local& st = local();
    auto* n = static_cast<FreeNode*>(raw);
    n->next = st.head;
    st.head = n;
    if (++st.count >= kLocalCap) spill_half(st);
  }

  void* carve(pool_stats::Counters& st_counters) {
    Local& st = local();
    if (st.slab_cur == st.slab_end) {
      const std::size_t bytes = stride() * kSlabObjects;
      st.slab_cur = static_cast<std::byte*>(
          ::operator new(bytes, std::align_val_t{slab_align()}));
      st.slab_end = st.slab_cur + bytes;
      ++st_counters.allocator_calls;
      st_counters.bytes_allocated += bytes;
      pool_stats::add_resident(static_cast<int64_t>(bytes));
      std::lock_guard<SpinLock> lk(slabs_mu_);
      slabs_.push_back(st.slab_cur);
    }
    void* raw = st.slab_cur;
    st.slab_cur += stride();
    return raw;
  }

  bool refill_from_shared(Local& st) {
    std::lock_guard<SpinLock> lk(shared_mu_);
    if (shared_head_ == nullptr) return false;
    // Take up to half the local cap in one go.
    std::size_t n = 0;
    FreeNode* tail = shared_head_;
    while (tail->next != nullptr && n + 1 < kLocalCap / 2) {
      tail = tail->next;
      ++n;
    }
    st.head = shared_head_;
    shared_head_ = tail->next;
    tail->next = nullptr;
    st.count = n + 1;
    shared_count_ -= st.count;
    return true;
  }

  void spill_half(Local& st) {
    FreeNode* keep = st.head;
    for (std::size_t i = 1; i < kLocalCap / 2; ++i) keep = keep->next;
    FreeNode* spill = keep->next;
    keep->next = nullptr;
    const std::size_t spilled = st.count - kLocalCap / 2;
    st.count = kLocalCap / 2;
    FreeNode* tail = spill;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard<SpinLock> lk(shared_mu_);
    tail->next = shared_head_;
    shared_head_ = spill;
    shared_count_ += spilled;
  }

  void spill_all(Local& st) {
    FreeNode* tail = st.head;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard<SpinLock> lk(shared_mu_);
    tail->next = shared_head_;
    shared_head_ = st.head;
    shared_count_ += st.count;
    st.head = nullptr;
    st.count = 0;
  }

  static constexpr std::size_t slab_align() noexcept {
    return Align > kCacheLine ? Align : kCacheLine;
  }

  SpinLock shared_mu_;
  FreeNode* shared_head_ = nullptr;
  std::size_t shared_count_ = 0;

  SpinLock slabs_mu_;
  std::vector<std::byte*> slabs_;  // registry: keeps slabs LSan-reachable
};

}  // namespace condyn
