#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"
#include "util/ebr.hpp"
#include "util/pool_stats.hpp"
#include "util/spinlock.hpp"

namespace condyn {

/// Per-thread, cacheline-aware object pool with EBR-driven recycling
/// (DESIGN.md §7.1).
///
/// The hot paths of every variant allocate small fixed-size objects at op
/// rate: ETT arc nodes on each spanning insert, multiset cells on each
/// non-spanning insert, removal descriptors and proposal cells on each
/// spanning remove. The seed paid the general-purpose allocator for each of
/// them and retired them one `delete` at a time through EBR. This pool turns
/// that traffic into pointer pushes:
///
///  * allocation pops the calling thread's free list; a miss bumps the
///    thread's current slab (kSlabObjects objects per allocator call); only
///    an empty slab reaches `operator new`;
///  * `retire(p)` routes destruction through the EBR grace period exactly
///    like `ebr::retire`, but the reclamation callback *recycles* the cell
///    onto the reclaiming thread's free list instead of freeing it;
///  * `destroy(p)` recycles immediately (for objects no concurrent reader
///    can hold: creation-race losers, teardown of quiescent structures);
///  * free lists overflowing kLocalCap spill half to a shared list, which
///    allocation-heavy threads drain before touching a fresh slab — so
///    producer/consumer thread imbalance cannot grow memory unboundedly.
///
/// Slabs normally live until process exit (the pool instance is a leaky
/// singleton): recycled objects may be owned by any structure on any thread,
/// so slab lifetime cannot be tied to any structure or thread. The one safe
/// exception is decay(): a slab whose every cell sits on the shared free
/// list is provably owned by nobody and may be returned to the OS once it
/// has stayed that idle for DC_POOL_DECAY EBR epochs — the release valve
/// that lets a long-lived service's high-water churn footprint drain back
/// down. Resident bytes are tracked in pool_stats::resident_bytes().
///
/// `Align` selects the object stride: ett::Node uses kCacheLine so hot
/// treap nodes never false-share; the small cells keep natural alignment
/// (a 16-byte cell per cache line would quadruple the footprint for no
/// contention win — cells are written once and scanned).
///
/// With DC_POOL=0 every create() is a plain counted `new` and every recycle
/// a counted `delete` — the allocation behaviour of the seed, used as the
/// baseline of bench_suite's `memory` section.
template <typename T, std::size_t Align = alignof(T)>
class NodePool {
 public:
  static constexpr std::size_t kSlabObjects = 256;
  static constexpr std::size_t kLocalCap = 128;

  /// Object stride: big objects get whole cache lines (no false sharing),
  /// small ones pack at their natural alignment.
  static constexpr std::size_t stride() noexcept {
    constexpr std::size_t base = sizeof(T) > Align ? sizeof(T) : Align;
    return (base + Align - 1) / Align * Align;
  }

  static NodePool& instance() {
    // Leaky singleton: recycled objects and retire callbacks may outlive any
    // deterministic destruction point (EBR drains at static teardown), so
    // the pool is never destroyed. Slabs stay reachable via the instance —
    // LeakSanitizer sees no leak; the OS reclaims at exit.
    static NodePool* p = new NodePool();
    return *p;
  }

  template <typename... Args>
  T* create(Args&&... args) {
    auto& st = pool_stats::local();
    if (!pool_stats::pooling_enabled()) {
      ++st.allocator_calls;
      st.bytes_allocated += sizeof(T);
      return new T(std::forward<Args>(args)...);
    }
    void* raw = pop_local();
    if (raw != nullptr) {
      ++st.pool_reused;
    } else {
      raw = carve(st);
      ++st.pool_fresh;
    }
    return ::new (raw) T(std::forward<Args>(args)...);
  }

  /// Destroy and recycle immediately. Only safe when no concurrent reader
  /// can still hold `p` (creation-race losers, quiescent teardown).
  void destroy(T* p) {
    if (p == nullptr) return;
    auto& st = pool_stats::local();
    if (!pool_stats::pooling_enabled()) {
      ++st.allocator_frees;
      delete p;
      return;
    }
    p->~T();
    push_local(p);
    ++st.pool_recycled;
  }

  /// Retire through the EBR grace period (instead of ebr::retire + delete):
  /// after two epoch advances the object is destroyed and its cell returns
  /// to the free list of whichever thread flushes the bucket.
  void retire(T* p) {
    ebr::Domain::global().retire(
        static_cast<void*>(p),
        [](void* q) { NodePool::instance().destroy(static_cast<T*>(q)); });
  }

  /// Spill the calling thread's cached free cells to the shared list, so a
  /// subsequent decay() sees them. Quiesce points (and the decay test) call
  /// this; threads that simply exit spill automatically.
  void flush_local() {
    Local& st = local();
    if (st.head != nullptr) spill_all(st);
  }

  /// DC_POOL_DECAY: EBR epochs a fully-idle slab must age before decay()
  /// frees it (default 2). Pure hysteresis policy — safety comes from the
  /// all-cells-on-the-shared-list check, not from the age.
  static uint64_t decay_epochs() noexcept {
    static const uint64_t n = [] {
      const char* e = std::getenv("DC_POOL_DECAY");
      return e != nullptr ? std::strtoull(e, nullptr, 10) : uint64_t{2};
    }();
    return n;
  }

  std::size_t decay() { return decay(decay_epochs()); }

  /// Free fully-idle slabs; returns how many were released to the OS.
  ///
  /// A slab is freeable exactly when all kSlabObjects of its cells sit on
  /// the shared free list: then no cell is a live object, none is cached on
  /// a thread's local list, none is pending in an EBR bucket, and the bump
  /// allocator is done with it (a partially-carved slab has handed out
  /// fewer than kSlabObjects cells, so it can never reach the full count).
  /// Both locks are held from the count through the unlink to the free, so
  /// no cell can be popped in between. The epoch stamp adds the N-quiescent-
  /// epochs hysteresis: a slab is freed only when two decay() passes at
  /// least min_idle_epochs of EBR epoch apart both saw it fully idle, with
  /// any activity between passes resetting the stamp at the next pass.
  std::size_t decay(uint64_t min_idle_epochs) {
    if (!pool_stats::pooling_enabled()) return 0;
    std::lock_guard<SpinLock> lk_shared(shared_mu_);
    std::lock_guard<SpinLock> lk_slabs(slabs_mu_);  // order: shared → slabs
    if (slabs_.empty()) return 0;
    constexpr std::size_t kNone = ~std::size_t{0};
    const std::size_t bytes = stride() * kSlabObjects;

    // Sorted base index so each free cell finds its owning slab in
    // O(log #slabs).
    std::vector<std::pair<std::byte*, std::size_t>> order;
    order.reserve(slabs_.size());
    for (std::size_t i = 0; i < slabs_.size(); ++i)
      order.emplace_back(slabs_[i].base, i);
    std::sort(order.begin(), order.end());
    auto owner = [&](void* p) -> std::size_t {
      auto* cell = static_cast<std::byte*>(p);
      auto it = std::upper_bound(
          order.begin(), order.end(), cell,
          [](std::byte* c, const auto& s) { return c < s.first; });
      if (it == order.begin()) return kNone;
      --it;
      return cell < it->first + bytes ? it->second : kNone;
    };

    std::vector<std::size_t> counts(slabs_.size(), 0);
    for (FreeNode* n = shared_head_; n != nullptr; n = n->next) {
      const std::size_t i = owner(n);
      if (i != kNone) ++counts[i];
    }

    const uint64_t now = ebr::Domain::global().epoch();
    std::vector<bool> doomed(slabs_.size(), false);
    std::size_t freed = 0;
    for (std::size_t i = 0; i < slabs_.size(); ++i) {
      if (counts[i] != kSlabObjects) {
        slabs_[i].idle_since = 0;
        continue;
      }
      if (slabs_[i].idle_since == 0) slabs_[i].idle_since = now;
      if (now - slabs_[i].idle_since >= min_idle_epochs) {
        doomed[i] = true;
        ++freed;
      }
    }
    if (freed == 0) return 0;

    // Unlink every cell of a doomed slab, then release the slabs.
    FreeNode** link = &shared_head_;
    while (*link != nullptr) {
      const std::size_t i = owner(*link);
      if (i != kNone && doomed[i]) {
        *link = (*link)->next;
        --shared_count_;
      } else {
        link = &(*link)->next;
      }
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < slabs_.size(); ++i) {
      if (doomed[i]) {
        ::operator delete(slabs_[i].base, std::align_val_t{slab_align()});
        pool_stats::add_resident(-static_cast<int64_t>(bytes));
        continue;
      }
      slabs_[w++] = slabs_[i];
    }
    slabs_.resize(w);
    return freed;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  static_assert(stride() >= sizeof(FreeNode),
                "object storage must hold a free-list link");

  /// Per-thread cache. On thread exit the remaining cells spill to the
  /// shared list so objects recycled by short-lived threads stay usable.
  struct Local {
    NodePool* owner = nullptr;
    FreeNode* head = nullptr;
    std::size_t count = 0;
    std::byte* slab_cur = nullptr;
    std::byte* slab_end = nullptr;

    ~Local() {
      if (owner != nullptr && head != nullptr) {
        owner->spill_all(*this);
      }
      // The partially-carved slab tail is abandoned (its slab stays
      // registered in slabs_ and resident); at most stride()*kSlabObjects
      // bytes per exiting thread.
    }
  };

  Local& local() {
    static thread_local Local st;
    if (st.owner == nullptr) st.owner = this;
    return st;
  }

  void* pop_local() {
    Local& st = local();
    if (st.head == nullptr && !refill_from_shared(st)) return nullptr;
    FreeNode* n = st.head;
    st.head = n->next;
    --st.count;
    return n;
  }

  void push_local(void* raw) {
    Local& st = local();
    auto* n = static_cast<FreeNode*>(raw);
    n->next = st.head;
    st.head = n;
    if (++st.count >= kLocalCap) spill_half(st);
  }

  void* carve(pool_stats::Counters& st_counters) {
    Local& st = local();
    if (st.slab_cur == st.slab_end) {
      const std::size_t bytes = stride() * kSlabObjects;
      st.slab_cur = static_cast<std::byte*>(
          ::operator new(bytes, std::align_val_t{slab_align()}));
      st.slab_end = st.slab_cur + bytes;
      ++st_counters.allocator_calls;
      st_counters.bytes_allocated += bytes;
      pool_stats::add_resident(static_cast<int64_t>(bytes));
      std::lock_guard<SpinLock> lk(slabs_mu_);
      slabs_.push_back({st.slab_cur, 0});
    }
    void* raw = st.slab_cur;
    st.slab_cur += stride();
    return raw;
  }

  bool refill_from_shared(Local& st) {
    std::lock_guard<SpinLock> lk(shared_mu_);
    if (shared_head_ == nullptr) return false;
    // Take up to half the local cap in one go.
    std::size_t n = 0;
    FreeNode* tail = shared_head_;
    while (tail->next != nullptr && n + 1 < kLocalCap / 2) {
      tail = tail->next;
      ++n;
    }
    st.head = shared_head_;
    shared_head_ = tail->next;
    tail->next = nullptr;
    st.count = n + 1;
    shared_count_ -= st.count;
    return true;
  }

  void spill_half(Local& st) {
    FreeNode* keep = st.head;
    for (std::size_t i = 1; i < kLocalCap / 2; ++i) keep = keep->next;
    FreeNode* spill = keep->next;
    keep->next = nullptr;
    const std::size_t spilled = st.count - kLocalCap / 2;
    st.count = kLocalCap / 2;
    FreeNode* tail = spill;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard<SpinLock> lk(shared_mu_);
    tail->next = shared_head_;
    shared_head_ = spill;
    shared_count_ += spilled;
  }

  void spill_all(Local& st) {
    FreeNode* tail = st.head;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard<SpinLock> lk(shared_mu_);
    tail->next = shared_head_;
    shared_head_ = st.head;
    shared_count_ += st.count;
    st.head = nullptr;
    st.count = 0;
  }

  static constexpr std::size_t slab_align() noexcept {
    return Align > kCacheLine ? Align : kCacheLine;
  }

  SpinLock shared_mu_;
  FreeNode* shared_head_ = nullptr;
  std::size_t shared_count_ = 0;

  /// Registry entry: keeps the slab LSan-reachable and carries the decay
  /// hysteresis stamp (the EBR epoch at which the slab was first observed
  /// fully idle; 0 = not currently idle — the global epoch starts at 2).
  struct SlabInfo {
    std::byte* base;
    uint64_t idle_since;
  };

  SpinLock slabs_mu_;
  std::vector<SlabInfo> slabs_;
};

}  // namespace condyn
