#include "util/random.hpp"

#include <atomic>

namespace condyn {

namespace {
std::atomic<uint64_t> g_thread_seq{0x9e3779b97f4a7c15ULL};
}

Xoshiro256& thread_rng() noexcept {
  thread_local Xoshiro256 rng(
      mix64(g_thread_seq.fetch_add(0x9e3779b97f4a7c15ULL,
                                   std::memory_order_relaxed)));
  return rng;
}

void reseed_thread_rng(uint64_t seed) noexcept { thread_rng() = Xoshiro256(seed); }

}  // namespace condyn
