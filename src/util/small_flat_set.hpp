#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/pool_stats.hpp"

namespace condyn {

/// Small-inline-capacity flat set of trivially-copyable values.
///
/// Replaces `std::unordered_set<Vertex>` in the locked HDT engine's
/// adjacency records (DESIGN.md §7.2): per-(vertex, level) non-spanning
/// degree is tiny almost always, so membership is a linear scan over a
/// contiguous array — no hashing, no per-element nodes, no allocation until
/// the inline capacity (one cache line of payload together with the header)
/// overflows. Unordered storage, erase by swap-with-last.
///
/// Not thread-safe; callers synchronize exactly as they did for the
/// unordered_set it replaces (the engine mutates adjacency only under the
/// component/global locks).
template <typename T, std::size_t InlineCap = 6>
class SmallFlatSet {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  SmallFlatSet() noexcept = default;
  SmallFlatSet(const SmallFlatSet&) = delete;
  SmallFlatSet& operator=(const SmallFlatSet&) = delete;

  ~SmallFlatSet() {
    if (heap_ != nullptr) {
      auto& st = pool_stats::local();
      ++st.allocator_frees;
      delete[] heap_;
    }
  }

  /// Insert v; false if already present.
  bool insert(T v) {
    if (contains(v)) return false;
    if (size_ == cap_) grow();
    data()[size_++] = v;
    return true;
  }

  /// Erase one copy of v (swap-with-last); false if absent.
  bool erase(T v) {
    T* d = data();
    for (uint32_t i = 0; i < size_; ++i) {
      if (d[i] == v) {
        d[i] = d[--size_];
        return true;
      }
    }
    return false;
  }

  bool contains(T v) const noexcept {
    const T* d = data();
    for (uint32_t i = 0; i < size_; ++i) {
      if (d[i] == v) return true;
    }
    return false;
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return cap_; }

  /// Any element (callers pick a candidate and erase it).
  T front() const noexcept { return data()[0]; }

  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

 private:
  T* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }

  void grow() {
    const uint32_t ncap = cap_ * 2;
    T* fresh = new T[ncap];
    auto& st = pool_stats::local();
    ++st.allocator_calls;
    st.bytes_allocated += ncap * sizeof(T);
    std::memcpy(fresh, data(), size_ * sizeof(T));
    if (heap_ != nullptr) {
      ++st.allocator_frees;
      delete[] heap_;
    }
    heap_ = fresh;
    cap_ = ncap;
  }

  uint32_t size_ = 0;
  uint32_t cap_ = InlineCap;
  T* heap_ = nullptr;
  T inline_[InlineCap];
};

}  // namespace condyn
