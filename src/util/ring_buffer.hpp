#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace condyn {

/// Bounded lock-free multi-producer / single-consumer ring buffer — the
/// hand-off between ingest producers and the group-commit applier thread
/// (DESIGN.md §11.1). Vyukov's bounded-queue scheme: every cell carries a
/// sequence word that encodes which "lap" of the ring it belongs to, so
/// producers claim slots with one fetch_add-style CAS on the enqueue
/// position and never touch the dequeue position (and vice versa) — full
/// and empty are discovered from the cell itself, not from a shared count.
///
/// Cell protocol (capacity C, all positions monotonically increasing):
///   * seq == pos        the cell is free for the producer claiming `pos`
///   * seq == pos + 1    the cell holds the element enqueued at `pos`
///   * consumer at `pos` waits for seq == pos + 1, takes the value, then
///     releases the cell for the *next lap* by storing seq = pos + C
/// The acquire load of seq / release store of seq is the only
/// synchronization an element needs; head and tail live on their own cache
/// lines so producers and the consumer do not false-share.
///
/// Single consumer: try_pop/pop_batch must only ever be called from one
/// thread at a time (the applier). Producers may call try_push from any
/// number of threads.
template <typename T>
class MpscRingBuffer {
 public:
  /// Capacity is rounded up to a power of two (masked index arithmetic).
  explicit MpscRingBuffer(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cells_ = std::make_unique<Cell[]>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRingBuffer(const MpscRingBuffer&) = delete;
  MpscRingBuffer& operator=(const MpscRingBuffer&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Multi-producer enqueue. False when the ring is full (the caller's
  /// backpressure policy decides what to do about that).
  bool try_push(const T& value) {
    Cell* cell;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        // Cell is free on this lap: claim `pos` (CAS loops on contention
        // with the refreshed position; no ABA because positions only grow).
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        // A whole lap behind: the consumer has not freed this cell — full.
        return false;
      } else {
        // Another producer claimed `pos`; catch up and retry.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer dequeue. False when the ring is empty *or* the element
  /// at the head is still being written by its producer (treated as empty —
  /// it will be visible on the next call).
  bool try_pop(T& out) {
    const std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) <
        0) {
      return false;
    }
    out = cell.value;
    cell.seq.store(pos + capacity(), std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  /// Drain up to `max` elements into `out` (appended; `out` is not cleared).
  /// Returns the number taken. Single consumer only.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    T item;
    while (n < max && try_pop(item)) {
      out.push_back(item);
      ++n;
    }
    return n;
  }

  /// Snapshot of the fill level — producers racing make this approximate;
  /// use it for stats and shed heuristics, never for correctness.
  std::size_t size_approx() const noexcept {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  /// Producers CAS this; consumer never touches it. Own cache line.
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  /// Consumer-private cursor; producers never touch it. Own cache line.
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace condyn
