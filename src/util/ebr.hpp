#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/cacheline.hpp"

namespace condyn::ebr {

/// Epoch-based memory reclamation.
///
/// The paper's implementation is in Kotlin, where the JVM GC guarantees that
/// a treap node or multiset cell unlinked by the writer stays alive while any
/// lock-free reader may still traverse it. This domain provides the same
/// guarantee natively (DESIGN.md §2): readers pin the current epoch for the
/// duration of a traversal; unlinked memory is retired and freed only after
/// two epoch advances, which implies every pinned traversal that could have
/// seen it has finished.
///
/// Usage:
///   auto guard = ebr::pin();            // in every lock-free read section
///   ebr::retire(node);                  // instead of delete, by the unlinker
///
/// Threads register implicitly on first pin/retire and release their slot at
/// thread exit; leftovers are adopted through a global orphan list.
class Domain {
 public:
  static constexpr unsigned kMaxThreads = 256;

  Domain() noexcept = default;
  ~Domain();
  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Process-wide domain shared by all concurrent structures.
  static Domain& global() noexcept;

  /// RAII epoch pin. Re-entrant: nested guards on the same thread are free.
  class Guard {
   public:
    explicit Guard(Domain& d) noexcept;
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Domain& domain_;
    bool outer_;
  };

  /// Retire p; del(p) runs after a full grace period.
  void retire(void* p, void (*del)(void*));

  template <typename T>
  void retire(T* p) {
    retire(static_cast<void*>(p), [](void* q) { delete static_cast<T*>(q); });
  }

  /// Free *everything* retired so far, unconditionally. Only safe when no
  /// other thread is inside a Guard (tests / structure teardown use this).
  void drain();

  /// Diagnostics.
  uint64_t epoch() const noexcept {
    return global_epoch_.load(std::memory_order_relaxed);
  }
  uint64_t outstanding() const noexcept {
    return outstanding_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uint64_t kIdle = ~uint64_t{0};
  static constexpr std::size_t kAdvanceThreshold = 128;

  struct Retired {
    void* p;
    void (*del)(void*);
  };

  struct Bucket {
    uint64_t epoch_tag = 0;
    std::vector<Retired> items;
  };

  struct alignas(kCacheLine) Slot {
    std::atomic<uint64_t> epoch{kIdle};  // kIdle when not pinned
    std::atomic<bool> used{false};
  };

  struct LocalState;  // per-thread registration + retire buckets

  LocalState& local();
  unsigned acquire_slot();
  void release_slot(LocalState& st);
  bool try_advance() noexcept;
  void free_bucket(Bucket& b);
  void flush_eligible(LocalState& st);

  Slot slots_[kMaxThreads];
  std::atomic<uint64_t> global_epoch_{2};  // start >1 so tag 0 is "ancient"
  std::atomic<uint64_t> outstanding_{0};

  std::mutex orphan_mu_;
  std::vector<Bucket> orphans_;
};

/// Pin the global domain.
inline Domain::Guard pin() noexcept { return Domain::Guard(Domain::global()); }

template <typename T>
void retire(T* p) {
  Domain::global().retire(p);
}

}  // namespace condyn::ebr
