#include "util/elision_lock.hpp"

#if defined(CONDYN_ENABLE_RTM) && defined(__RTM__)
#include <immintrin.h>
#if defined(__x86_64__)
#include <cpuid.h>
#endif
#define CONDYN_HAVE_RTM 1
#else
#define CONDYN_HAVE_RTM 0
#endif

namespace condyn {

thread_local bool ElisionLock::t_in_txn_ = false;

namespace {

bool detect_rtm() noexcept {
#if CONDYN_HAVE_RTM && defined(__x86_64__)
  unsigned eax, ebx, ecx, edx;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 11)) != 0;  // RTM feature bit
#else
  return false;
#endif
}

}  // namespace

bool ElisionLock::htm_available() noexcept {
  static const bool avail = detect_rtm();
  return avail;
}

void ElisionLock::acquire_real() noexcept {
  if (!locked_.exchange(true, std::memory_order_acquire)) {
    lock_stats::add_acquisition(false);
    return;
  }
  const uint64_t t0 = lock_stats::now_ns();
  Backoff backoff;
  for (;;) {
    while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    if (!locked_.exchange(true, std::memory_order_acquire)) break;
  }
  lock_stats::add_wait(lock_stats::now_ns() - t0);
  lock_stats::add_acquisition(true);
}

void ElisionLock::lock() noexcept {
#if CONDYN_HAVE_RTM
  if (htm_available()) {
    constexpr int kAttempts = 3;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      unsigned status = _xbegin();
      if (status == _XBEGIN_STARTED) {
        if (lock_is_free()) {  // lock word joins the read set
          t_in_txn_ = true;
          return;
        }
        _xabort(0xff);
      }
      // Explicit abort because the lock was held: wait for release first.
      if ((status & _XABORT_EXPLICIT) && _XABORT_CODE(status) == 0xff) {
        Backoff backoff;
        while (!lock_is_free()) backoff.pause();
      }
      if (!(status & _XABORT_RETRY) && !(status & _XABORT_EXPLICIT)) break;
    }
  }
#endif
  acquire_real();
}

void ElisionLock::unlock() noexcept {
#if CONDYN_HAVE_RTM
  if (t_in_txn_) {
    t_in_txn_ = false;
    elided_.fetch_add(1, std::memory_order_relaxed);
    _xend();
    return;
  }
#endif
  locked_.store(false, std::memory_order_release);
}

bool ElisionLock::try_lock() noexcept {
  return !locked_.load(std::memory_order_relaxed) &&
         !locked_.exchange(true, std::memory_order_acquire);
}

}  // namespace condyn
