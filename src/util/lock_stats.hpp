#pragma once

#include <chrono>
#include <cstdint>

namespace condyn::lock_stats {

/// Thread-local accounting of time spent *waiting* for locks, used to
/// reproduce the paper's "active time rate" figures (Figs 7, 8, 11, 12):
/// active% = (wall time - lock wait time) / wall time.
///
/// Locks call add_wait() only on the slow path (first acquisition attempt
/// failed), so uncontended operations pay no clock reads.

struct Counters {
  uint64_t wait_ns = 0;      ///< nanoseconds spent spinning/blocking on locks
  uint64_t acquisitions = 0; ///< total successful exclusive acquisitions
  uint64_t contended = 0;    ///< acquisitions that hit the slow path
};

/// Counters of the calling thread (valid for the thread's lifetime).
Counters& local() noexcept;

/// Reset the calling thread's counters (harness calls this at phase start).
void reset_local() noexcept;

inline uint64_t now_ns() noexcept {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline void add_wait(uint64_t ns) noexcept { local().wait_ns += ns; }
inline void add_acquisition(bool was_contended) noexcept {
  auto& c = local();
  ++c.acquisitions;
  c.contended += was_contended ? 1 : 0;
}

}  // namespace condyn::lock_stats
