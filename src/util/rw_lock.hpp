#pragma once

#include <atomic>
#include <cstdint>

#include "util/backoff.hpp"
#include "util/lock_stats.hpp"

namespace condyn {

/// Readers–writer spinlock (writer-preferring), used for variants (2) and
/// (7). State encoding: bit 31 = writer held or pending, low bits = active
/// reader count. The paper observes this lock does not scale — reproducing
/// that observation is the point of including it.
class RwSpinLock {
 public:
  RwSpinLock() noexcept = default;
  RwSpinLock(const RwSpinLock&) = delete;
  RwSpinLock& operator=(const RwSpinLock&) = delete;

  void lock() noexcept {
    // Announce writer intent so readers stop entering, then wait for them.
    const uint64_t t0 = lock_stats::now_ns();
    bool waited = false;
    Backoff backoff;
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & kWriter) == 0 &&
          state_.compare_exchange_weak(s, s | kWriter,
                                       std::memory_order_acquire)) {
        break;
      }
      waited = true;
      backoff.pause();
    }
    backoff.reset();
    while ((state_.load(std::memory_order_acquire) & kReaderMask) != 0) {
      waited = true;
      backoff.pause();
    }
    if (waited) lock_stats::add_wait(lock_stats::now_ns() - t0);
    lock_stats::add_acquisition(waited);
  }

  void unlock() noexcept {
    state_.fetch_and(~kWriter, std::memory_order_release);
  }

  void lock_shared() noexcept {
    uint32_t s = state_.load(std::memory_order_relaxed);
    if ((s & kWriter) == 0 &&
        state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire)) {
      return;
    }
    const uint64_t t0 = lock_stats::now_ns();
    Backoff backoff;
    for (;;) {
      s = state_.load(std::memory_order_relaxed);
      if ((s & kWriter) == 0 &&
          state_.compare_exchange_weak(s, s + 1, std::memory_order_acquire)) {
        break;
      }
      backoff.pause();
    }
    lock_stats::add_wait(lock_stats::now_ns() - t0);
  }

  void unlock_shared() noexcept {
    state_.fetch_sub(1, std::memory_order_release);
  }

  bool try_lock() noexcept {
    uint32_t s = state_.load(std::memory_order_relaxed);
    return s == 0 &&
           state_.compare_exchange_strong(s, kWriter, std::memory_order_acquire);
  }

 private:
  static constexpr uint32_t kWriter = 1u << 31;
  static constexpr uint32_t kReaderMask = kWriter - 1;
  std::atomic<uint32_t> state_{0};
};

}  // namespace condyn
