#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace condyn {

/// Sense-reversing spin barrier for a fixed-size gang. Participants that
/// arrive early spin briefly and then yield, so an oversubscribed machine
/// (more gang members than cores) degrades to scheduler hand-offs instead
/// of livelock.
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned participants) noexcept
      : participants_(participants) {}

  void arrive_and_wait() noexcept {
    const uint32_t sense = sense_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        participants_) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(sense + 1, std::memory_order_release);  // release the gang
      return;
    }
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) == sense) {
      if (++spins > 128) std::this_thread::yield();
    }
  }

 private:
  const unsigned participants_;
  std::atomic<uint32_t> arrived_{0};
  std::atomic<uint32_t> sense_{0};
};

/// A small reusable fork-join worker pool (no external deps): `workers()`
/// gang members with ids 0..workers()-1, where id 0 is always the calling
/// thread. run(body) executes body(id) on every member and blocks until all
/// return — the primitive behind PbdDc's internally parallel apply_batch
/// (DESIGN.md §9).
///
/// Threads are spawned lazily on the first run() that needs them, so a pool
/// sized 1 (the single-core default) never creates a thread and run() is a
/// plain inline call. Workers sleep on a condition variable between batches;
/// wake-up cost is paid once per run(), not per task, which is why PbdDc
/// dispatches one gang per batch rather than one task per op run.
///
/// run() is not reentrant and not thread-safe: one fork-join at a time,
/// owned by whoever synchronizes callers (PbdDc's batch mutex).
class TaskPool {
 public:
  /// `workers` = total gang size including the caller; 0 picks the
  /// environment default from `env` (DC_PBD_WORKERS unless the owner —
  /// e.g. ShardedDc with DC_SHARD_WORKERS — names its own knob).
  explicit TaskPool(unsigned workers = 0,
                    const char* env = "DC_PBD_WORKERS")
      : total_(workers == 0 ? env_workers(env) : workers) {}

  ~TaskPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned workers() const noexcept { return total_; }

  /// Execute body(id) for id in [0, workers()); the caller runs id 0.
  /// Returns after every gang member has finished.
  void run(const std::function<void(unsigned)>& body) {
    if (total_ <= 1) {
      body(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (threads_.empty()) spawn_locked();
      job_ = &body;
      ++epoch_;
      outstanding_ = static_cast<unsigned>(threads_.size());
    }
    cv_work_.notify_all();
    body(0);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return outstanding_ == 0; });
    job_ = nullptr;
  }

  /// Gang size from the named environment knob (default DC_PBD_WORKERS),
  /// falling back to the hardware concurrency clamped to [1, 8] — beyond
  /// that the guarded net-op phase is contention-bound, not core-bound.
  static unsigned env_workers(const char* env = "DC_PBD_WORKERS") {
    if (const char* s = std::getenv(env)) {
      const long v = std::strtol(s, nullptr, 10);
      if (v >= 1 && v <= 64) return static_cast<unsigned>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : (hw > 8 ? 8 : hw);
  }

 private:
  void spawn_locked() {
    threads_.reserve(total_ - 1);
    for (unsigned id = 1; id < total_; ++id) {
      threads_.emplace_back([this, id] { worker_loop(id); });
    }
  }

  void worker_loop(unsigned id) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(unsigned)>* job;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        job = job_;
      }
      (*job)(id);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--outstanding_ == 0) cv_done_.notify_one();
      }
    }
  }

  const unsigned total_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> threads_;
  const std::function<void(unsigned)>* job_ = nullptr;
  uint64_t epoch_ = 0;
  unsigned outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace condyn
