#pragma once

#include <cstdint>

namespace condyn::pool_stats {

/// Thread-local memory-subsystem statistics, the allocation-side companion of
/// op_stats::Counters (core/stats.hpp): the harness resets/collects both at
/// the same points, and bench_suite's `memory` section reports them as
/// allocations/op and bytes resident (DESIGN.md §7).
///
/// "Allocator calls" count every round trip to the general-purpose allocator
/// on behalf of the concurrent structures: node-pool slab refills (or every
/// object, when pooling is disabled), flat-map table segments, and flat-set
/// spill arrays. Pool hits/recycles never touch the allocator — that gap is
/// exactly what the pooled-vs-passthrough comparison measures.
struct Counters {
  uint64_t pool_fresh = 0;       ///< objects carved from a slab bump pointer
  uint64_t pool_reused = 0;      ///< objects served from a recycle free list
  uint64_t pool_recycled = 0;    ///< objects returned to a free list
  uint64_t allocator_calls = 0;  ///< operator new reaching the allocator
  uint64_t allocator_frees = 0;  ///< operator delete reaching the allocator
  uint64_t bytes_allocated = 0;  ///< bytes requested from the allocator

  Counters& operator+=(const Counters& o) noexcept {
    pool_fresh += o.pool_fresh;
    pool_reused += o.pool_reused;
    pool_recycled += o.pool_recycled;
    allocator_calls += o.allocator_calls;
    allocator_frees += o.allocator_frees;
    bytes_allocated += o.bytes_allocated;
    return *this;
  }
};

Counters& local() noexcept;
void reset_local() noexcept;

/// Process-wide bytes currently held by pool slabs and map/set segments
/// (high-water resident footprint of the memory subsystem; slabs are never
/// returned mid-run, so this only grows until structures are destroyed).
uint64_t resident_bytes() noexcept;
void add_resident(int64_t delta) noexcept;

/// Pooling can be disabled for baseline measurements (every allocation then
/// goes straight to new/delete and is counted as an allocator call) by
/// setting DC_POOL=0 in the environment. Read once on first use.
bool pooling_enabled() noexcept;

}  // namespace condyn::pool_stats
