#include "util/pool_stats.hpp"

#include <atomic>
#include <cstdlib>

namespace condyn::pool_stats {

namespace {
thread_local Counters t_counters;
std::atomic<int64_t> g_resident{0};
}  // namespace

Counters& local() noexcept { return t_counters; }

void reset_local() noexcept { t_counters = Counters{}; }

uint64_t resident_bytes() noexcept {
  const int64_t r = g_resident.load(std::memory_order_relaxed);
  return r > 0 ? static_cast<uint64_t>(r) : 0;
}

void add_resident(int64_t delta) noexcept {
  g_resident.fetch_add(delta, std::memory_order_relaxed);
}

bool pooling_enabled() noexcept {
  static const bool enabled = [] {
    const char* s = std::getenv("DC_POOL");
    return s == nullptr || *s == '\0' || (s[0] != '0' || s[1] != '\0');
  }();
  return enabled;
}

}  // namespace condyn::pool_stats
