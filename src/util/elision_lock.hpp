#pragma once

#include <atomic>

#include "util/backoff.hpp"
#include "util/lock_stats.hpp"

namespace condyn {

/// Speculative lock elision (Rajwar & Goodman) on top of Intel RTM, with a
/// plain spinlock fallback — used by variants (4), (5) and (11).
///
/// Behaviour:
///  * If the binary was built with CONDYN_ENABLE_RTM *and* the CPU reports
///    RTM support at runtime, lock() first attempts to run the critical
///    section as a hardware transaction that merely reads the lock word
///    (adding it to the read set); conflicting writers abort the transaction
///    and the code retries, eventually falling back to a real acquisition.
///  * Otherwise the lock degenerates to a TTAS spinlock. The paper itself
///    reports that for the full algorithm "the performances match" between
///    HTM and plain locking; on non-RTM hosts variants (4)/(5)/(11)
///    reproduce exactly that degenerate behaviour (see DESIGN.md §2).
///
/// unlock() must be called by the same thread; nesting is not supported
/// (matches how the variants use their global/component locks).
class ElisionLock {
 public:
  ElisionLock() noexcept = default;
  ElisionLock(const ElisionLock&) = delete;
  ElisionLock& operator=(const ElisionLock&) = delete;

  /// True when this process can actually elide (RTM compiled in + CPU flag).
  static bool htm_available() noexcept;

  void lock() noexcept;
  void unlock() noexcept;
  bool try_lock() noexcept;

  void lock_shared() noexcept { lock(); }
  void unlock_shared() noexcept { unlock(); }

  /// Number of critical sections that committed transactionally (process-wide
  /// would need aggregation; this is per-lock, relaxed).
  uint64_t elided_commits() const noexcept {
    return elided_.load(std::memory_order_relaxed);
  }

 private:
  bool lock_is_free() const noexcept {
    return !locked_.load(std::memory_order_relaxed);
  }
  void acquire_real() noexcept;

  std::atomic<bool> locked_{false};
  std::atomic<uint64_t> elided_{0};
  // Set while the *calling thread* holds this lock transactionally.
  static thread_local bool t_in_txn_;
};

}  // namespace condyn
