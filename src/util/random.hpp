#pragma once

#include <cstdint>
#include <limits>

namespace condyn {

/// SplitMix64: tiny, fast, full-period 2^64 generator. Used to seed the main
/// generator and wherever a cheap stateless hash of a counter is needed.
struct SplitMix64 {
  uint64_t state;

  explicit constexpr SplitMix64(uint64_t seed) noexcept : state(seed) {}

  constexpr uint64_t next() noexcept {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Stateless mix of a 64-bit value (SplitMix64 finalizer). Useful to derive
/// per-thread / per-item seeds from (base_seed, index).
constexpr uint64_t mix64(uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256**: the workhorse PRNG for treap priorities, graph generation
/// and workload sampling. Deterministic given the seed; not for cryptography.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() noexcept { return next(); }

  uint64_t next() noexcept {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire reduction).
  uint64_t next_below(uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// Per-thread generator seeded from a global seed + thread id; declared here,
/// defined in random.cpp. Intended for contexts (e.g. treap priority draws
/// inside concurrent structures) where passing a generator through every call
/// would pollute the API.
Xoshiro256& thread_rng() noexcept;

/// Reseed the calling thread's thread_rng (tests use this for determinism).
void reseed_thread_rng(uint64_t seed) noexcept;

}  // namespace condyn
