#include "util/lock_stats.hpp"

namespace condyn::lock_stats {

namespace {
thread_local Counters t_counters;
}

Counters& local() noexcept { return t_counters; }

void reset_local() noexcept { t_counters = Counters{}; }

}  // namespace condyn::lock_stats
