#include "util/ebr.hpp"

#include <cassert>

namespace condyn::ebr {

/// Per-thread registration: slot index in the domain's announcement array,
/// re-entrancy depth, and the three retire buckets of the classic 3-epoch
/// scheme. Only the process-global domain is supported (the whole library
/// routes through Domain::global(); see header).
struct Domain::LocalState {
  Domain* domain = nullptr;
  unsigned slot = kMaxThreads;  // unregistered
  unsigned depth = 0;
  Bucket buckets[3];

  ~LocalState() {
    if (domain == nullptr || slot == kMaxThreads) return;
    domain->release_slot(*this);
  }
};

Domain& Domain::global() noexcept {
  static Domain d;
  return d;
}

Domain::~Domain() { drain(); }

Domain::LocalState& Domain::local() {
  static thread_local LocalState st;
  if (st.domain == nullptr) {
    st.domain = this;
    st.slot = acquire_slot();
  }
  assert(st.domain == this && "only Domain::global() is supported");
  return st;
}

unsigned Domain::acquire_slot() {
  for (;;) {
    for (unsigned i = 0; i < kMaxThreads; ++i) {
      bool expected = false;
      if (!slots_[i].used.load(std::memory_order_relaxed) &&
          slots_[i].used.compare_exchange_strong(expected, true)) {
        slots_[i].epoch.store(kIdle, std::memory_order_seq_cst);
        return i;
      }
    }
    // All slots taken: extremely unlikely (kMaxThreads threads alive); spin
    // until one is released rather than aborting.
  }
}

void Domain::release_slot(LocalState& st) {
  // Hand unreclaimed items to the orphan list so another thread frees them.
  {
    std::lock_guard<std::mutex> lk(orphan_mu_);
    for (auto& b : st.buckets) {
      if (!b.items.empty()) orphans_.push_back(std::move(b));
    }
  }
  slots_[st.slot].epoch.store(kIdle, std::memory_order_seq_cst);
  slots_[st.slot].used.store(false, std::memory_order_seq_cst);
  st.slot = kMaxThreads;
}

Domain::Guard::Guard(Domain& d) noexcept : domain_(d), outer_(false) {
  LocalState& st = d.local();
  if (st.depth++ > 0) return;  // nested: already pinned
  outer_ = true;
  Slot& slot = d.slots_[st.slot];
  // Publish the epoch we observe; loop until the announcement matches the
  // global value so the grace-period argument holds under concurrent advance.
  uint64_t e = d.global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.epoch.store(e, std::memory_order_seq_cst);
    uint64_t g = d.global_epoch_.load(std::memory_order_seq_cst);
    if (g == e) break;
    e = g;
  }
}

Domain::Guard::~Guard() {
  LocalState& st = domain_.local();
  if (--st.depth > 0 || !outer_) return;
  domain_.slots_[st.slot].epoch.store(kIdle, std::memory_order_seq_cst);
}

void Domain::retire(void* p, void (*del)(void*)) {
  LocalState& st = local();
  const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  Bucket& b = st.buckets[e % 3];
  if (b.epoch_tag != e) {
    // Reusing the bucket means e >= old_tag + 3 > old_tag + 2: safe to free.
    free_bucket(b);
    b.epoch_tag = e;
  }
  b.items.push_back({p, del});
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  if (b.items.size() >= kAdvanceThreshold) {
    if (try_advance()) flush_eligible(st);
  }
}

bool Domain::try_advance() noexcept {
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (unsigned i = 0; i < kMaxThreads; ++i) {
    if (!slots_[i].used.load(std::memory_order_seq_cst)) continue;
    const uint64_t pinned = slots_[i].epoch.load(std::memory_order_seq_cst);
    if (pinned != kIdle && pinned != e) return false;  // straggler
  }
  if (!global_epoch_.compare_exchange_strong(e, e + 1,
                                             std::memory_order_seq_cst)) {
    return false;
  }
  // Opportunistically reclaim orphans left behind by exited threads.
  if (orphan_mu_.try_lock()) {
    const uint64_t g = e + 1;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (it->epoch_tag + 2 <= g) {
        free_bucket(*it);
        it = orphans_.erase(it);
      } else {
        ++it;
      }
    }
    orphan_mu_.unlock();
  }
  return true;
}

void Domain::flush_eligible(LocalState& st) {
  const uint64_t g = global_epoch_.load(std::memory_order_seq_cst);
  for (auto& b : st.buckets) {
    if (!b.items.empty() && b.epoch_tag + 2 <= g) free_bucket(b);
  }
}

void Domain::free_bucket(Bucket& b) {
  for (const Retired& r : b.items) r.del(r.p);
  outstanding_.fetch_sub(b.items.size(), std::memory_order_relaxed);
  b.items.clear();
}

void Domain::drain() {
  LocalState& st = local();
  assert(st.depth == 0 && "drain() inside a Guard is a bug");
  for (auto& b : st.buckets) free_bucket(b);
  std::lock_guard<std::mutex> lk(orphan_mu_);
  for (auto& b : orphans_) free_bucket(b);
  orphans_.clear();
}

}  // namespace condyn::ebr
