#pragma once

#include <atomic>

#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/lock_stats.hpp"

namespace condyn {

/// Test-and-test-and-set spinlock with exponential backoff.
///
/// This is the lock used for coarse-grained variant (1) and for the
/// per-component fine-grained locks of variants (6), (8), (9). It satisfies
/// the SharedLockable-ish interface used by the variant templates:
/// lock_shared() aliases to lock() for exclusive-only locks, so read
/// operations "under the lock" compile uniformly.
class SpinLock {
 public:
  SpinLock() noexcept = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void lock() noexcept {
    if (try_lock()) {
      lock_stats::add_acquisition(false);
      return;
    }
    const uint64_t t0 = lock_stats::now_ns();
    Backoff backoff;
    for (;;) {
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
      if (!locked_.exchange(true, std::memory_order_acquire)) break;
    }
    lock_stats::add_wait(lock_stats::now_ns() - t0);
    lock_stats::add_acquisition(true);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  // Exclusive-only lock: shared mode degrades to exclusive.
  void lock_shared() noexcept { lock(); }
  void unlock_shared() noexcept { unlock(); }

  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

}  // namespace condyn
