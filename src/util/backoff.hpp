#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace condyn {

/// Emit a CPU pause/yield hint appropriate for busy-wait loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Truncated exponential backoff for contended CAS/spin loops.
///
/// Doubles the number of pause hints per round up to a cap, then yields the
/// thread so oversubscribed runs (more threads than cores) keep making
/// progress.
class Backoff {
 public:
  explicit Backoff(uint32_t cap = 1024) noexcept : cap_(cap) {}

  void pause() noexcept {
    if (cur_ >= cap_) {
      std::this_thread::yield();
      return;
    }
    for (uint32_t i = 0; i < cur_; ++i) cpu_relax();
    cur_ *= 2;
  }

  void reset() noexcept { cur_ = 1; }

 private:
  uint32_t cur_ = 1;
  uint32_t cap_;
};

}  // namespace condyn
