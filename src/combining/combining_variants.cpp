// Registry entries for the combining baselines, variants (12)-(13).
#include "api/registry.hpp"
#include "combining/flat_combining.hpp"
#include "combining/parallel_combining.hpp"

namespace condyn {

void register_combining_variants(VariantRegistry& r) {
  VariantCaps pc;
  pc.native_batch = true;
  pc.atomic_batch = true;  // the combiner applies a published batch alone
  pc.combining = true;
  pc.sized_components = true;       // value queries ride the slot protocol
  pc.stable_representative = true;  // (parallel read phase / lock-free in fc)
  r.add("parallel-combining",
        "parallel combining (Aksenov et al.): batched updates, parallel "
        "read phase",
        pc, [](Vertex n, bool sampling) {
          return std::make_unique<ParallelCombiningDc>(
              n, "parallel-combining", sampling);
        });

  VariantCaps fc = pc;
  fc.lock_free_reads = true;
  r.add("fc-nbreads", "flat combining for updates + our non-blocking reads",
        fc, [](Vertex n, bool sampling) {
          return std::make_unique<FlatCombiningDc>(n, "fc-nbreads", sampling);
        });
}

}  // namespace condyn
