#pragma once

#include <string>

#include "api/dynamic_connectivity.hpp"
#include "combining/combining_core.hpp"
#include "core/hdt.hpp"

namespace condyn {

/// Variant (13): flat combining for updates + the paper's non-blocking reads.
///
/// Updates are published to per-thread slots; the thread that wins the
/// combiner lock applies every pending update sequentially on the HDT engine
/// (single writer — exactly the regime the single-writer ETT requires), which
/// trades parallelism for synchronization-free batching and cache locality.
/// connected() never enters the combiner: it runs Listing 1's lock-free
/// query. The paper finds this the best algorithm in update-heavy
/// single-component scenarios (§5.3 "Flat combining").
class FlatCombiningDc final : public DynamicConnectivity {
 public:
  explicit FlatCombiningDc(Vertex n, std::string name = "fc-nbreads",
                           bool sampling = true);

  bool add_edge(Vertex u, Vertex v) override {
    return submit(combining::OpType::kAdd, u, v);
  }
  bool remove_edge(Vertex u, Vertex v) override {
    return submit(combining::OpType::kRemove, u, v);
  }
  bool connected(Vertex u, Vertex v) override { return hdt_.connected(u, v); }

  /// Value queries never enter the combiner either: like connected(), they
  /// run Listing 1's lock-free protocol (versioned double-collect over the
  /// root's vcount/vmin augmentation) against the combiner-owned engine.
  uint64_t component_size(Vertex u) override {
    return hdt_.component_size(u);
  }
  Vertex representative(Vertex u) override { return hdt_.representative(u); }

  /// Batched path: the whole batch is published through this thread's slot
  /// (one publication + one wait per batch instead of per op) and applied
  /// atomically by whichever thread combines. Pure-read batches bypass the
  /// combiner entirely on the lock-free read path.
  BatchResult apply_batch(std::span<const Op> ops) override;

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  Hdt& engine() noexcept { return hdt_; }

 private:
  bool submit(combining::OpType type, Vertex u, Vertex v);
  void submit_and_wait(combining::Slot& s);
  void combine();

  Hdt hdt_;
  std::string name_;
  combining::SlotArray slots_;
  SpinLock combiner_lock_;
};

}  // namespace condyn
