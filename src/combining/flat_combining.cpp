#include "combining/flat_combining.hpp"

#include "util/lock_stats.hpp"

namespace condyn {

using combining::kDone;
using combining::kEmpty;
using combining::kPending;
using combining::OpType;
using combining::Slot;

FlatCombiningDc::FlatCombiningDc(Vertex n, std::string name, bool sampling)
    : hdt_(n, sampling), name_(std::move(name)) {}

void FlatCombiningDc::combine() {
  // Two scan rounds per acquisition: the second pass picks up operations
  // published while the first was running, improving batching.
  for (int round = 0; round < 2; ++round) {
    const unsigned active = slots_.active_size();
  for (unsigned i = 0; i < active; ++i) {
      Slot& s = slots_.at(i);
      if (s.state.load(std::memory_order_seq_cst) != kPending) continue;
      switch (s.type) {
        case OpType::kAdd:
          s.result = hdt_.add_edge(s.u, s.v).performed ? 1 : 0;
          break;
        case OpType::kRemove:
          s.result = hdt_.remove_edge(s.u, s.v).performed ? 1 : 0;
          break;
        case OpType::kConnected:
          s.result = hdt_.connected_writer(s.u, s.v) ? 1 : 0;
          break;
        case OpType::kComponentSize:
          s.result = hdt_.component_size_writer(s.u);
          break;
        case OpType::kRepresentative:
          s.result = hdt_.representative_writer(s.u);
          break;
        case OpType::kBatch:
          hdt_.apply_batch({s.batch, s.batch_len}, *s.batch_out);
          break;
        case OpType::kNone:
          break;
      }
      s.state.store(kDone, std::memory_order_seq_cst);
    }
  }
}

/// Publish the already-filled slot, then spin: either another combiner
/// executes it, or this thread wins the combiner lock and scans everyone.
void FlatCombiningDc::submit_and_wait(Slot& s) {
  s.state.store(kPending, std::memory_order_seq_cst);

  const uint64_t t0 = lock_stats::now_ns();
  uint64_t combining_ns = 0;
  Backoff backoff;
  for (;;) {
    if (s.state.load(std::memory_order_seq_cst) == kDone) break;
    if (combiner_lock_.try_lock()) {
      const uint64_t c0 = lock_stats::now_ns();
      combine();
      combiner_lock_.unlock();
      combining_ns += lock_stats::now_ns() - c0;
      continue;  // our own op was executed by the scan
    }
    backoff.pause();
  }
  s.state.store(kEmpty, std::memory_order_seq_cst);
  // Active-time accounting: time spent parked behind the combiner (minus our
  // own useful combining work) is "waiting for the lock".
  const uint64_t total = lock_stats::now_ns() - t0;
  if (total > combining_ns) lock_stats::add_wait(total - combining_ns);
  lock_stats::add_acquisition(true);
}

bool FlatCombiningDc::submit(OpType type, Vertex u, Vertex v) {
  Slot& s = slots_.mine();
  s.type = type;
  s.u = u;
  s.v = v;
  submit_and_wait(s);
  return s.result != 0;
}

BatchResult FlatCombiningDc::apply_batch(std::span<const Op> ops) {
  BatchResult r;
  r.values.resize(ops.size());
  if (ops.empty()) return r;

  if (all_reads(ops)) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      r.set_op(i, ops[i].kind, hdt_.exec_query(ops[i]));
    }
    return r;
  }

  Slot& s = slots_.mine();
  s.type = OpType::kBatch;
  s.batch = ops.data();
  s.batch_len = static_cast<uint32_t>(ops.size());
  s.batch_out = &r;
  submit_and_wait(s);
  s.batch = nullptr;
  s.batch_out = nullptr;
  return r;
}

}  // namespace condyn
