#pragma once

#include <string>

#include "api/dynamic_connectivity.hpp"
#include "combining/combining_core.hpp"
#include "core/hdt.hpp"

namespace condyn {

/// Variant (12): parallel combining (Aksenov, Kuznetsov, Shalyto — OPODIS'18)
/// applied to dynamic connectivity, the paper's strongest prior baseline.
///
/// Like flat combining, updates are applied sequentially by the combiner.
/// Unlike flat combining, published *read* operations are executed by their
/// owning threads in a parallel phase: the combiner flips every pending read
/// slot to GO, the owners run their own connected() on the then-quiescent
/// structure concurrently, and only after all reads drain does the combiner
/// apply the batched updates. This is the "readers-writer lock"-like batching
/// the paper describes in §1.
class ParallelCombiningDc final : public DynamicConnectivity {
 public:
  explicit ParallelCombiningDc(Vertex n,
                               std::string name = "parallel-combining",
                               bool sampling = true);

  bool add_edge(Vertex u, Vertex v) override {
    return submit(combining::OpType::kAdd, u, v) != 0;
  }
  bool remove_edge(Vertex u, Vertex v) override {
    return submit(combining::OpType::kRemove, u, v) != 0;
  }
  bool connected(Vertex u, Vertex v) override {
    return submit(combining::OpType::kConnected, u, v) != 0;
  }

  /// Value queries publish through the same slot protocol as connected():
  /// the combiner releases them into the parallel read phase (they are
  /// reads), where their owners execute the root lookup on the quiescent
  /// structure.
  uint64_t component_size(Vertex u) override {
    return submit(combining::OpType::kComponentSize, u, u);
  }
  Vertex representative(Vertex u) override {
    return static_cast<Vertex>(
        submit(combining::OpType::kRepresentative, u, u));
  }

  /// Batched path: the whole (possibly mixed) batch is published through
  /// this thread's slot — one publication per batch instead of one per op.
  /// Update-containing batches are applied by the combiner in the
  /// sequential update phase, after the parallel read phase has drained;
  /// query-only batches are released into that read phase and executed by
  /// their owner on the quiescent structure, keeping this variant's
  /// parallel-read advantage for read batches.
  BatchResult apply_batch(std::span<const Op> ops) override;

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  Hdt& engine() noexcept { return hdt_; }

 private:
  uint64_t submit(combining::OpType type, Vertex u, Vertex v);
  void submit_and_wait(combining::Slot& s);
  void run_reads(combining::Slot& s);
  void combine();

  Hdt hdt_;
  std::string name_;
  combining::SlotArray slots_;
  SpinLock combiner_lock_;
};

}  // namespace condyn
