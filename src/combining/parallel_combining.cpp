#include "combining/parallel_combining.hpp"

#include "core/stats.hpp"
#include "util/lock_stats.hpp"

namespace condyn {

using combining::kDone;
using combining::kEmpty;
using combining::kGo;
using combining::kPending;
using combining::OpType;
using combining::Slot;

ParallelCombiningDc::ParallelCombiningDc(Vertex n, std::string name,
                                         bool sampling)
    : hdt_(n, sampling), name_(std::move(name)) {}

/// Execute a read-only slot (single query or query-only batch) on the
/// quiescent structure — shared by the GO read phase (owner side) and the
/// combiner running its own slot.
void ParallelCombiningDc::run_reads(Slot& s) {
  if (s.type == OpType::kBatch) {
    op_stats::local().reads += s.batch_len;
    for (uint32_t i = 0; i < s.batch_len; ++i) {
      // Only read-only batches enter this phase; the shared engine dispatch
      // covers the whole query vocabulary.
      s.batch_out->set_op(i, s.batch[i].kind,
                          hdt_.exec_query_writer(s.batch[i]));
    }
  } else {
    ++op_stats::local().reads;
    switch (s.type) {
      case OpType::kComponentSize:
        s.result = hdt_.component_size_writer(s.u);
        break;
      case OpType::kRepresentative:
        s.result = hdt_.representative_writer(s.u);
        break;
      default:
        s.result = hdt_.connected_writer(s.u, s.v) ? 1 : 0;
        break;
    }
  }
}

void ParallelCombiningDc::combine() {
  // Phase 1 — snapshot the batch. Reads are released to run concurrently on
  // the quiescent structure (their owners execute them); updates — including
  // published whole batches, which may mix reads and updates — are
  // remembered for phase 2.
  unsigned updates[combining::SlotArray::size()];
  unsigned n_updates = 0;
  unsigned reads_in_flight[combining::SlotArray::size()];
  unsigned n_reads = 0;

  const unsigned me = thread_index() % combining::SlotArray::size();
  const unsigned active = slots_.active_size();
  for (unsigned i = 0; i < active; ++i) {
    Slot& s = slots_.at(i);
    if (s.state.load(std::memory_order_seq_cst) != kPending) continue;
    const bool read_only =
        combining::is_read_type(s.type) ||
        (s.type == OpType::kBatch && s.batch_read_only);
    if (read_only) {
      if (i == me) {
        // The combiner's own read(s): executing them via GO would deadlock
        // the drain loop below, so run directly (structure is quiescent).
        run_reads(s);
        s.state.store(kDone, std::memory_order_seq_cst);
      } else {
        s.state.store(kGo, std::memory_order_seq_cst);
        reads_in_flight[n_reads++] = i;
      }
    } else {
      updates[n_updates++] = i;
    }
  }

  // Wait for the parallel read phase to drain before mutating anything.
  Backoff backoff;
  for (unsigned k = 0; k < n_reads; ++k) {
    Slot& s = slots_.at(reads_in_flight[k]);
    while (s.state.load(std::memory_order_seq_cst) == kGo) backoff.pause();
  }

  // Phase 2 — apply updates sequentially (single writer).
  for (unsigned k = 0; k < n_updates; ++k) {
    Slot& s = slots_.at(updates[k]);
    switch (s.type) {
      case OpType::kAdd:
        s.result = hdt_.add_edge(s.u, s.v).performed ? 1 : 0;
        break;
      case OpType::kRemove:
        s.result = hdt_.remove_edge(s.u, s.v).performed ? 1 : 0;
        break;
      case OpType::kBatch:
        hdt_.apply_batch({s.batch, s.batch_len}, *s.batch_out);
        break;
      default:
        break;
    }
    s.state.store(kDone, std::memory_order_seq_cst);
  }
}

/// Publish the already-filled slot and spin until it is executed: by a
/// combiner, by this thread's own combining pass, or (reads only) by this
/// thread during a GO read phase.
void ParallelCombiningDc::submit_and_wait(Slot& s) {
  s.state.store(kPending, std::memory_order_seq_cst);

  const uint64_t t0 = lock_stats::now_ns();
  uint64_t useful_ns = 0;
  Backoff backoff;
  for (;;) {
    const uint32_t st = s.state.load(std::memory_order_seq_cst);
    if (st == kDone) break;
    if (st == kGo) {
      // Parallel read phase: execute our own query / read-only batch on the
      // quiescent structure; the combiner is blocked until every GO slot
      // drains.
      const uint64_t c0 = lock_stats::now_ns();
      run_reads(s);
      s.state.store(kDone, std::memory_order_seq_cst);
      useful_ns += lock_stats::now_ns() - c0;
      break;
    }
    if (combiner_lock_.try_lock()) {
      const uint64_t c0 = lock_stats::now_ns();
      combine();
      combiner_lock_.unlock();
      useful_ns += lock_stats::now_ns() - c0;
      continue;
    }
    backoff.pause();
  }
  s.state.store(kEmpty, std::memory_order_seq_cst);
  const uint64_t total = lock_stats::now_ns() - t0;
  if (total > useful_ns) lock_stats::add_wait(total - useful_ns);
  lock_stats::add_acquisition(true);
}

uint64_t ParallelCombiningDc::submit(OpType type, Vertex u, Vertex v) {
  Slot& s = slots_.mine();
  s.type = type;
  s.u = u;
  s.v = v;
  submit_and_wait(s);
  return s.result;
}

BatchResult ParallelCombiningDc::apply_batch(std::span<const Op> ops) {
  BatchResult r;
  r.values.resize(ops.size());
  if (ops.empty()) return r;
  Slot& s = slots_.mine();
  s.type = OpType::kBatch;
  s.batch = ops.data();
  s.batch_len = static_cast<uint32_t>(ops.size());
  s.batch_out = &r;
  s.batch_read_only = all_reads(ops);  // eligible for the parallel read phase
  submit_and_wait(s);
  s.batch = nullptr;
  s.batch_out = nullptr;
  return r;
}

}  // namespace condyn
