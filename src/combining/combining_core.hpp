#pragma once

#include <atomic>
#include <memory>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/spinlock.hpp"
#include "util/thread_index.hpp"

namespace condyn::combining {

/// Publication-slot substrate shared by the flat-combining (Hendler et al.)
/// and parallel-combining (Aksenov et al.) baselines. Each thread owns one
/// cache-line-private slot indexed by its process-wide thread_index(); a
/// thread publishes its operation, and whichever thread holds the combiner
/// lock executes pending operations on behalf of everyone.
enum class OpType : uint32_t {
  kNone,
  kAdd,
  kRemove,
  kConnected,
  kBatch,
  kComponentSize,   ///< value query: |V| of u's component (Query API v2)
  kRepresentative,  ///< value query: smallest vertex id in u's component
};

/// Published single-op types a combiner may execute on behalf of the owner
/// without mutating the structure (the parallel-combining read phase).
constexpr bool is_read_type(OpType t) noexcept {
  return t == OpType::kConnected || t == OpType::kComponentSize ||
         t == OpType::kRepresentative;
}

enum SlotState : uint32_t {
  kEmpty = 0,
  kPending = 1,  ///< published, waiting for a combiner
  kGo = 2,       ///< parallel-combining read phase: owner runs its own read
  kDone = 3,     ///< result available
};

struct alignas(kCacheLine) Slot {
  std::atomic<uint32_t> state{kEmpty};
  OpType type = OpType::kNone;
  Vertex u = 0;
  Vertex v = 0;
  /// Raw result of the published op: 0/1 for the boolean types, the
  /// component size / representative id for the value-query types.
  uint64_t result = 0;
  /// kBatch publication: the whole batch rides in one slot, so a combiner
  /// pass costs one synchronization per *batch* per thread instead of one
  /// per operation. The owner keeps `batch`/`batch_out` alive until the
  /// combiner flips the slot to kDone. `batch_read_only` (set by the owner
  /// at publication) lets parallel combining release query-only batches
  /// into its parallel read phase instead of the sequential update phase.
  const Op* batch = nullptr;
  uint32_t batch_len = 0;
  BatchResult* batch_out = nullptr;
  bool batch_read_only = false;
};

class SlotArray {
 public:
  SlotArray() : slots_(std::make_unique<Slot[]>(kMaxThreadIndex)) {}

  Slot& mine() noexcept {
    const unsigned idx = thread_index() % kMaxThreadIndex;
    // Publish a high-water mark so combiners scan only slots that can
    // possibly be occupied — with the process-wide id space this is what
    // keeps the combiner pass O(#threads ever seen), not O(capacity).
    unsigned hw = high_water_.load(std::memory_order_relaxed);
    while (hw < idx + 1 && !high_water_.compare_exchange_weak(
                               hw, idx + 1, std::memory_order_relaxed)) {
    }
    return slots_[idx];
  }
  Slot& at(unsigned i) noexcept { return slots_[i]; }
  /// Upper bound (exclusive) of slots any thread has ever published to.
  unsigned active_size() const noexcept {
    return high_water_.load(std::memory_order_acquire);
  }
  static constexpr unsigned size() noexcept { return kMaxThreadIndex; }

 private:
  std::unique_ptr<Slot[]> slots_;
  std::atomic<unsigned> high_water_{0};
};

}  // namespace condyn::combining
