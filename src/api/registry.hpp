#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"

namespace condyn {

/// Capability flags a variant declares when it registers (DESIGN.md §5.2).
/// The harness, benches and tests branch on these instead of hard-coding
/// variant names.
struct VariantCaps {
  /// apply_batch is a real batched implementation, not the per-op fallback.
  bool native_batch = false;
  /// connected() never blocks (Listing 1's lock-free read path).
  bool lock_free_reads = false;
  /// apply_batch applies update-containing batches atomically with respect
  /// to concurrent callers (coarse-locked and combining families).
  /// Pure-read batches may instead run as individual lock-free queries
  /// when lock_free_reads is also set — see DynamicConnectivity::apply_batch.
  bool atomic_batch = false;
  /// Updates funnel through a combining substrate (one thread applies
  /// everyone's published operations).
  bool combining = false;
  /// component_size() is a native O(find_root) path over the ETT's
  /// vertex-count augmentation rather than the base class's O(n)
  /// connected() scan (Query API v2, DESIGN.md §5.4).
  bool sized_components = false;
  /// representative() natively returns the canonical (smallest-id) member
  /// of the component, stable between updates of that component.
  bool stable_representative = false;
  /// Reads route through the epoch-published component-label cache
  /// (DESIGN.md §8): O(1) hits for connected/component_size/representative
  /// and snapshot-consistent components(), gated at construction by
  /// DC_LABEL_CACHE. Set by the families whose reads are lock-free (the
  /// cache's fallback is exactly that read path).
  bool label_cache = false;
  /// apply_batch processes one batch with *internal* parallelism — a
  /// worker gang preprocesses, groups and applies the batch's ops
  /// concurrently (the pbd family, DESIGN.md §9) — rather than pushing one
  /// caller's batch through a single engine pass. Batch-heavy callers
  /// (examples/batch_processor) prefer this over plain native_batch.
  bool internal_parallel = false;
};

/// One evaluated algorithm combination (paper §5.2; numbering kept
/// consistent with the plots and with DESIGN.md §1).
struct VariantInfo {
  int id;            ///< 1..13, the paper's numbering (registration order)
  const char* name;  ///< stable identifier used in tables ("coarse", ...)
  const char* description;
  VariantCaps caps;
  /// Builder: (num_vertices, sampling) -> instance.
  std::function<std::unique_ptr<DynamicConnectivity>(Vertex, bool)> make;
};

/// Name -> builder + capabilities registry behind the factory. Variant
/// families register themselves through family registration functions (one
/// per translation unit, see register_builtin_variants below) rather than
/// static initializers: with a static library, an object file containing
/// only an unreferenced registrar is silently dropped by the linker, so the
/// factory pulls each family in explicitly.
class VariantRegistry {
 public:
  /// Process-wide registry, with the built-in families registered on first
  /// access.
  static VariantRegistry& instance();

  /// Register a variant; ids are assigned sequentially in registration
  /// order. Throws std::invalid_argument on duplicate names, or when the
  /// registry is full (kReserved entries — the bound that keeps previously
  /// returned VariantInfo pointers stable). Not thread-safe: perform custom
  /// registrations at startup, before concurrent lookups begin.
  int add(const char* name, const char* description, VariantCaps caps,
          std::function<std::unique_ptr<DynamicConnectivity>(Vertex, bool)>
              make);

  /// Capacity bound: 13 built-ins plus room for custom variants.
  static constexpr std::size_t kReserved = 32;

  const std::vector<VariantInfo>& variants() const noexcept {
    return variants_;
  }
  const VariantInfo* find(const std::string& name) const noexcept;
  const VariantInfo* find(int id) const noexcept;

 private:
  VariantRegistry() = default;
  std::vector<VariantInfo> variants_;
};

/// Family registration hooks, each defined next to the variants it creates.
void register_coarse_variants(VariantRegistry& r);     // (1)–(5)
void register_fine_variants(VariantRegistry& r);       // (6)–(8)
void register_nb_variants(VariantRegistry& r);         // (9)–(11)
void register_combining_variants(VariantRegistry& r);  // (12)–(13)
void register_pbd_variants(VariantRegistry& r);        // (14)
void register_sharded_variants(VariantRegistry& r);    // (15)–(16)

}  // namespace condyn
