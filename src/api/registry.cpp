#include "api/registry.hpp"

#include <mutex>
#include <stdexcept>

namespace condyn {

VariantRegistry& VariantRegistry::instance() {
  static VariantRegistry reg;
  static std::once_flag once;
  std::call_once(once, [] {
    // Headroom for custom registrations beyond the 13 built-ins, so the
    // VariantInfo pointers/references handed out by find()/variants() are
    // not invalidated by a later add() reallocating the vector.
    reg.variants_.reserve(kReserved);
    // Registration order defines the ids; keep the paper's 1..13 numbering,
    // with the post-paper parallel batch-dynamic family appended as (14).
    register_coarse_variants(reg);
    register_fine_variants(reg);
    register_nb_variants(reg);
    register_combining_variants(reg);
    register_pbd_variants(reg);
    // Last: the sharded facade picks its inner variants by capability
    // profile from the families registered above.
    register_sharded_variants(reg);
  });
  return reg;
}

int VariantRegistry::add(
    const char* name, const char* description, VariantCaps caps,
    std::function<std::unique_ptr<DynamicConnectivity>(Vertex, bool)> make) {
  if (variants_.size() >= kReserved) {
    throw std::invalid_argument(
        "variant registry full (VariantRegistry::kReserved)");
  }
  for (const VariantInfo& v : variants_) {
    if (std::string(name) == v.name) {
      throw std::invalid_argument("duplicate variant name \"" +
                                  std::string(name) + "\"");
    }
  }
  const int id = static_cast<int>(variants_.size()) + 1;
  variants_.push_back({id, name, description, caps, std::move(make)});
  return id;
}

const VariantInfo* VariantRegistry::find(const std::string& name)
    const noexcept {
  for (const VariantInfo& v : variants_) {
    if (name == v.name) return &v;
  }
  return nullptr;
}

const VariantInfo* VariantRegistry::find(int id) const noexcept {
  if (id < 1 || id > static_cast<int>(variants_.size())) return nullptr;
  return &variants_[id - 1];
}

}  // namespace condyn
