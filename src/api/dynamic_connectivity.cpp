#include "api/dynamic_connectivity.hpp"

namespace condyn {

BatchResult DynamicConnectivity::apply_batch(std::span<const Op> ops) {
  BatchResult r;
  r.values.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    r.set_op(i, ops[i].kind, exec_single(*this, ops[i]));
  }
  return r;
}

uint64_t DynamicConnectivity::component_size(Vertex u) {
  // Scratch scan over the vertex universe: count the members of u's
  // component one connectivity query at a time. Each query is individually
  // linearizable, but the aggregate is only consistent when no update races
  // the scan — the documented base-fallback contract. Variants override
  // with a snapshot-consistent native path.
  uint64_t count = 0;
  const Vertex n = num_vertices();
  for (Vertex i = 0; i < n; ++i) {
    if (connected(u, i)) ++count;
  }
  return count;
}

ComponentsSnapshot DynamicConnectivity::components() {
  // One representative() per vertex, through the virtual so every variant's
  // native (lock-free or locked) read path is used. Each entry is
  // individually linearizable; the aggregate is consistent at quiescence —
  // the same contract as the base component_size scan above.
  ComponentsSnapshot s;
  const Vertex n = num_vertices();
  s.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) s.labels[v] = representative(v);
  return s;
}

Vertex DynamicConnectivity::representative(Vertex u) {
  // First (smallest) vertex connected to u; connected(u, u) is always true,
  // so the scan terminates by u at the latest.
  const Vertex n = num_vertices();
  for (Vertex i = 0; i < n; ++i) {
    if (connected(u, i)) return i;
  }
  return u;
}

}  // namespace condyn
