#include "api/dynamic_connectivity.hpp"

namespace condyn {

BatchResult DynamicConnectivity::apply_batch(std::span<const Op> ops) {
  BatchResult r;
  r.results.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    bool value = false;
    switch (op.kind) {
      case OpKind::kAdd:
        value = add_edge(op.u, op.v);
        break;
      case OpKind::kRemove:
        value = remove_edge(op.u, op.v);
        break;
      case OpKind::kConnected:
        value = connected(op.u, op.v);
        break;
    }
    r.set(i, op.kind, value);
  }
  return r;
}

}  // namespace condyn
