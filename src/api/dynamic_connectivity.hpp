#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace condyn {

/// One operation of the batch vocabulary (DESIGN.md §5). The first three
/// kinds are exactly the paper's boolean interface; kComponentSize and
/// kRepresentative are the value-returning queries a connectivity *service*
/// is asked (De Man et al. 2024 make them first-class): "how big is u's
/// component?" and "give me a stable, canonical member of u's component so I
/// can shard by it". A batch is simply a program — a sequence of operations
/// applied in index order.
enum class OpKind : uint8_t {
  kAdd = 0,
  kRemove = 1,
  kConnected = 2,
  kComponentSize = 3,   ///< |V| of u's component (v unused, set to u)
  kRepresentative = 4,  ///< smallest vertex id in u's component (v unused)
};

/// Number of operation kinds (array-sizing bound for per-kind counters).
inline constexpr std::size_t kNumOpKinds = 5;

/// Updates mutate the edge set; everything else is a query.
constexpr bool is_update(OpKind k) noexcept {
  return k == OpKind::kAdd || k == OpKind::kRemove;
}
constexpr bool is_query(OpKind k) noexcept { return !is_update(k); }

struct Op {
  OpKind kind = OpKind::kConnected;
  Vertex u = 0;
  Vertex v = 0;

  static constexpr Op add(Vertex u, Vertex v) noexcept {
    return {OpKind::kAdd, u, v};
  }
  static constexpr Op remove(Vertex u, Vertex v) noexcept {
    return {OpKind::kRemove, u, v};
  }
  static constexpr Op connected(Vertex u, Vertex v) noexcept {
    return {OpKind::kConnected, u, v};
  }
  /// Single-vertex queries keep v == u so the wire formats (delta-encoded
  /// against u) and edge-canonicalizing code paths stay well-defined.
  static constexpr Op component_size(Vertex u) noexcept {
    return {OpKind::kComponentSize, u, u};
  }
  static constexpr Op representative(Vertex u) noexcept {
    return {OpKind::kRepresentative, u, u};
  }

  friend bool operator==(const Op&, const Op&) = default;
};

/// Does the batch contain only queries (connectivity, size, representative)?
/// Variants use this for the pure-read exemption (see apply_batch below): a
/// read-only batch can run on the variant's read path instead of its update
/// synchronization.
inline bool all_reads(std::span<const Op> ops) noexcept {
  for (const Op& op : ops) {
    if (is_update(op.kind)) return false;
  }
  return true;
}

/// Per-operation results of one apply_batch call: values[i] is the raw value
/// the single-op API would have returned for ops[i] — 0/1 for the boolean
/// kinds (add/remove/connected), the component size for kComponentSize, the
/// representative vertex id for kRepresentative — plus summary counters so
/// callers that only need aggregates never rescan the batch.
struct BatchResult {
  std::vector<uint64_t> values;    ///< raw per-op values, indexed like ops
  uint64_t adds_performed = 0;     ///< adds that changed the graph
  uint64_t removes_performed = 0;  ///< removes that changed the graph
  uint64_t queries_true = 0;       ///< connected() calls that answered true

  /// Boolean view of op i (add/remove/connected kinds).
  bool result(std::size_t i) const noexcept { return values[i] != 0; }
  /// Raw value of op i (component size / representative kinds).
  uint64_t value(std::size_t i) const noexcept { return values[i]; }
  std::size_t size() const noexcept { return values.size(); }

  /// Record op i's raw outcome (keeps the counters and values consistent).
  void set_op(std::size_t i, OpKind kind, uint64_t raw) noexcept {
    values[i] = raw;
    if (raw == 0) return;
    switch (kind) {
      case OpKind::kAdd: ++adds_performed; break;
      case OpKind::kRemove: ++removes_performed; break;
      case OpKind::kConnected: ++queries_true; break;
      case OpKind::kComponentSize:
      case OpKind::kRepresentative:
        break;  // value queries carry no summary counter
    }
  }

  /// Boolean-kind convenience (the historical entry point).
  void set(std::size_t i, OpKind kind, bool value) noexcept {
    set_op(i, kind, value ? 1 : 0);
  }
};

/// The label array of one components() call: labels[v] is the canonical
/// (smallest-id) member of v's component, so labels[u] == labels[v] iff u
/// and v were connected — the flat form a sharding or partitioning layer
/// consumes directly.
struct ComponentsSnapshot {
  std::vector<Vertex> labels;
  /// True when every entry comes from one atomically published epoch (the
  /// label-cache path); false for the base per-vertex scan, which is only
  /// consistent at quiescence (like the other base query fallbacks).
  bool consistent = false;

  bool same_component(Vertex u, Vertex v) const noexcept {
    return labels[u] == labels[v];
  }
  std::size_t num_components() const noexcept {
    std::size_t n = 0;
    for (Vertex v = 0; v < labels.size(); ++v) {
      if (labels[v] == v) ++n;
    }
    return n;
  }
};

/// The public interface every algorithm variant implements — the three
/// operations of the dynamic connectivity problem (paper §1):
///   addEdge(u,v), removeEdge(u,v), connected(u,v)
/// extended with the value-returning queries of the Query API v2
/// (component_size, representative) and the batch entry point apply_batch
/// the rest of this repo's pipeline (harness, benches, combining layer) is
/// built around.
/// All implementations in this library are linearizable and safe for
/// arbitrary concurrent use of all operations.
class DynamicConnectivity {
 public:
  virtual ~DynamicConnectivity() = default;

  /// Insert the undirected edge (u,v). Returns false if it was present.
  virtual bool add_edge(Vertex u, Vertex v) = 0;

  /// Erase the undirected edge (u,v). Returns false if it was absent.
  virtual bool remove_edge(Vertex u, Vertex v) = 0;

  /// Are u and v in the same connected component?
  virtual bool connected(Vertex u, Vertex v) = 0;

  /// Number of vertices in u's component (>= 1: u is always a member).
  /// The base fallback answers by scanning connected(u, i) over the whole
  /// vertex universe — a consistent read only at quiescence, O(n) queries.
  /// Every built-in variant overrides it with its native O(find_root) path
  /// over the ETT's vertex-count augmentation, under the same
  /// synchronization regime as its connected() (VariantCaps::
  /// sized_components); overrides are exact at quiescence and between
  /// updates of u's component.
  virtual uint64_t component_size(Vertex u);

  /// Canonical representative of u's component: the smallest vertex id the
  /// component contains. representative(u) == representative(v) iff
  /// connected(u, v), and the value is stable as long as the component's
  /// membership does not change — the property that makes it usable as a
  /// sharding key. Being a pure function of the member set, it is also
  /// identical across variants (trace replays stay comparable). Base
  /// fallback: first i with connected(u, i); overridden natively via the
  /// ETT's min-vertex augmentation (VariantCaps::stable_representative).
  virtual Vertex representative(Vertex u);

  /// Every component at once: a full label array (see ComponentsSnapshot).
  /// The base fallback calls representative(v) per vertex — n independent
  /// queries, consistent only at quiescence. Variants with
  /// VariantCaps::label_cache override it to read one published epoch of
  /// the label cache, which *is* a consistent snapshot even under
  /// concurrent updates (falling back to the scan when churn defeats it).
  virtual ComponentsSnapshot components();

  /// Apply a batch of operations with results equivalent to calling the
  /// single-op methods in index order. Each operation remains individually
  /// linearizable; for variants whose VariantCaps::atomic_batch is set (the
  /// coarse-locked and combining families), a batch containing at least one
  /// update is additionally atomic with respect to concurrent callers.
  /// Pure-read batches are exempt even there: on variants with non-blocking
  /// reads they run as individual lock-free queries, not under the lock.
  /// The base implementation is the correct single-op fallback loop;
  /// variants override it to amortize synchronization across the batch
  /// (DESIGN.md §5).
  virtual BatchResult apply_batch(std::span<const Op> ops);

  virtual Vertex num_vertices() const = 0;

  /// Settle lazily maintained internal state at a known-quiescent point:
  /// callers that can guarantee no concurrent updates (the ingest applier
  /// parked at a batch boundary, a recovery that just finished its replay)
  /// invoke this before snapshotting or serving queries, so deferred
  /// structures (the sharded facade's boundary index, caches) are rebuilt
  /// once here instead of on the first post-quiesce query. Base: no-op —
  /// most variants keep nothing deferred.
  virtual void quiesce() {}

  /// Stable identifier used in benchmark tables (matches DESIGN.md §1).
  virtual std::string name() const = 0;
};

/// Execute one op through the single-op virtuals, returning the raw value
/// (bool kinds as 0/1). The one switch behind the base apply_batch fallback,
/// the harness driver and trace replay.
inline uint64_t exec_single(DynamicConnectivity& dc, const Op& op) {
  switch (op.kind) {
    case OpKind::kAdd:
      return dc.add_edge(op.u, op.v) ? 1 : 0;
    case OpKind::kRemove:
      return dc.remove_edge(op.u, op.v) ? 1 : 0;
    case OpKind::kConnected:
      return dc.connected(op.u, op.v) ? 1 : 0;
    case OpKind::kComponentSize:
      return dc.component_size(op.u);
    case OpKind::kRepresentative:
      return dc.representative(op.u);
  }
  return 0;
}

}  // namespace condyn
