#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace condyn {

/// One operation of the batch vocabulary (DESIGN.md §5). The three kinds are
/// exactly the paper's interface; a batch is simply a program — a sequence of
/// operations applied in index order.
enum class OpKind : uint8_t { kAdd, kRemove, kConnected };

struct Op {
  OpKind kind = OpKind::kConnected;
  Vertex u = 0;
  Vertex v = 0;

  static constexpr Op add(Vertex u, Vertex v) noexcept {
    return {OpKind::kAdd, u, v};
  }
  static constexpr Op remove(Vertex u, Vertex v) noexcept {
    return {OpKind::kRemove, u, v};
  }
  static constexpr Op connected(Vertex u, Vertex v) noexcept {
    return {OpKind::kConnected, u, v};
  }

  friend bool operator==(const Op&, const Op&) = default;
};

/// Does the batch contain only connectivity queries? Variants use this for
/// the pure-read exemption (see apply_batch below): a read-only batch can
/// run on the variant's read path instead of its update synchronization.
inline bool all_reads(std::span<const Op> ops) noexcept {
  for (const Op& op : ops) {
    if (op.kind != OpKind::kConnected) return false;
  }
  return true;
}

/// Per-operation results of one apply_batch call: results[i] is the boolean
/// the single-op API would have returned for ops[i], plus summary counters so
/// callers that only need aggregates never rescan the batch.
struct BatchResult {
  std::vector<uint8_t> results;  ///< 0/1 per op, indexed like the input batch
  uint64_t adds_performed = 0;     ///< adds that changed the graph
  uint64_t removes_performed = 0;  ///< removes that changed the graph
  uint64_t queries_true = 0;       ///< connected() calls that answered true

  bool result(std::size_t i) const noexcept { return results[i] != 0; }
  std::size_t size() const noexcept { return results.size(); }

  /// Record op i's outcome (keeps the counters and results consistent).
  void set(std::size_t i, OpKind kind, bool value) noexcept {
    results[i] = value ? 1 : 0;
    if (!value) return;
    switch (kind) {
      case OpKind::kAdd: ++adds_performed; break;
      case OpKind::kRemove: ++removes_performed; break;
      case OpKind::kConnected: ++queries_true; break;
    }
  }
};

/// The public interface every algorithm variant implements — the three
/// operations of the dynamic connectivity problem (paper §1):
///   addEdge(u,v), removeEdge(u,v), connected(u,v)
/// plus the batch entry point apply_batch the rest of this repo's pipeline
/// (harness, benches, combining layer) is built around.
/// All implementations in this library are linearizable and safe for
/// arbitrary concurrent use of all operations.
class DynamicConnectivity {
 public:
  virtual ~DynamicConnectivity() = default;

  /// Insert the undirected edge (u,v). Returns false if it was present.
  virtual bool add_edge(Vertex u, Vertex v) = 0;

  /// Erase the undirected edge (u,v). Returns false if it was absent.
  virtual bool remove_edge(Vertex u, Vertex v) = 0;

  /// Are u and v in the same connected component?
  virtual bool connected(Vertex u, Vertex v) = 0;

  /// Apply a batch of operations with results equivalent to calling the
  /// single-op methods in index order. Each operation remains individually
  /// linearizable; for variants whose VariantCaps::atomic_batch is set (the
  /// coarse-locked and combining families), a batch containing at least one
  /// update is additionally atomic with respect to concurrent callers.
  /// Pure-read batches are exempt even there: on variants with non-blocking
  /// reads they run as individual lock-free queries, not under the lock.
  /// The base implementation is the correct single-op fallback loop;
  /// variants override it to amortize synchronization across the batch
  /// (DESIGN.md §5).
  virtual BatchResult apply_batch(std::span<const Op> ops);

  virtual Vertex num_vertices() const = 0;

  /// Stable identifier used in benchmark tables (matches DESIGN.md §1).
  virtual std::string name() const = 0;
};

}  // namespace condyn
