#pragma once

#include <memory>
#include <string>

#include "graph/graph.hpp"

namespace condyn {

/// The public interface every algorithm variant implements — the three
/// operations of the dynamic connectivity problem (paper §1):
///   addEdge(u,v), removeEdge(u,v), connected(u,v).
/// All implementations in this library are linearizable and safe for
/// arbitrary concurrent use of all three operations.
class DynamicConnectivity {
 public:
  virtual ~DynamicConnectivity() = default;

  /// Insert the undirected edge (u,v). Returns false if it was present.
  virtual bool add_edge(Vertex u, Vertex v) = 0;

  /// Erase the undirected edge (u,v). Returns false if it was absent.
  virtual bool remove_edge(Vertex u, Vertex v) = 0;

  /// Are u and v in the same connected component?
  virtual bool connected(Vertex u, Vertex v) = 0;

  virtual Vertex num_vertices() const = 0;

  /// Stable identifier used in benchmark tables (matches DESIGN.md §1).
  virtual std::string name() const = 0;
};

}  // namespace condyn
