#include "api/factory.hpp"

#include <stdexcept>

namespace condyn {

const std::vector<VariantInfo>& all_variants() {
  return VariantRegistry::instance().variants();
}

const VariantInfo* find_variant(const std::string& name) {
  return VariantRegistry::instance().find(name);
}

const VariantInfo* find_variant(int id) {
  return VariantRegistry::instance().find(id);
}

std::unique_ptr<DynamicConnectivity> make_variant(int id, Vertex n,
                                                  bool sampling) {
  const VariantInfo* v = find_variant(id);
  if (v == nullptr) {
    throw std::invalid_argument("unknown variant id " + std::to_string(id));
  }
  return v->make(n, sampling);
}

std::unique_ptr<DynamicConnectivity> make_variant(const std::string& name,
                                                  Vertex n, bool sampling) {
  const VariantInfo* v = find_variant(name);
  if (v == nullptr) {
    throw std::invalid_argument("unknown variant name \"" + name + "\"");
  }
  return v->make(n, sampling);
}

}  // namespace condyn
