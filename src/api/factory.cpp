#include "api/factory.hpp"

#include <stdexcept>

#include "combining/flat_combining.hpp"
#include "combining/parallel_combining.hpp"
#include "core/coarse_dc.hpp"
#include "core/fine_dc.hpp"
#include "core/nb_hdt.hpp"
#include "util/elision_lock.hpp"
#include "util/rw_lock.hpp"
#include "util/spinlock.hpp"

namespace condyn {

const std::vector<VariantInfo>& all_variants() {
  static const std::vector<VariantInfo> kVariants = {
      {1, "coarse", "coarse-grained locking for all operations"},
      {2, "coarse-rw", "coarse-grained readers-writer lock"},
      {3, "coarse-nbreads", "coarse-grained updates + non-blocking reads"},
      {4, "coarse-htm", "coarse-grained with HTM lock elision (all ops)"},
      {5, "coarse-htm-nbreads",
       "HTM-elided lock for updates + non-blocking reads"},
      {6, "fine", "fine-grained per-component locks for all operations"},
      {7, "fine-rw", "fine-grained readers-writer component locks"},
      {8, "fine-nbreads", "fine-grained updates + non-blocking reads"},
      {9, "full",
       "our algorithm: fine-grained + non-blocking reads + lock-free "
       "non-spanning updates"},
      {10, "full-coarse",
       "our algorithm with a coarse lock for spanning updates"},
      {11, "full-coarse-htm",
       "our algorithm with an HTM-elided coarse lock"},
      {12, "parallel-combining",
       "parallel combining (Aksenov et al.): batched updates, parallel "
       "read phase"},
      {13, "fc-nbreads",
       "flat combining for updates + our non-blocking reads"},
  };
  return kVariants;
}

std::unique_ptr<DynamicConnectivity> make_variant(int id, Vertex n,
                                                  bool sampling) {
  switch (id) {
    case 1:
      return std::make_unique<CoarseDc<SpinLock, false>>(n, "coarse",
                                                         sampling);
    case 2:
      return std::make_unique<CoarseDc<RwSpinLock, false>>(n, "coarse-rw",
                                                           sampling);
    case 3:
      return std::make_unique<CoarseDc<SpinLock, true>>(n, "coarse-nbreads",
                                                        sampling);
    case 4:
      return std::make_unique<CoarseDc<ElisionLock, false>>(n, "coarse-htm",
                                                            sampling);
    case 5:
      return std::make_unique<CoarseDc<ElisionLock, true>>(
          n, "coarse-htm-nbreads", sampling);
    case 6:
      return std::make_unique<FineDc<FineReadMode::kLocked>>(n, "fine",
                                                             sampling);
    case 7:
      return std::make_unique<FineDc<FineReadMode::kSharedLocks>>(
          n, "fine-rw", sampling);
    case 8:
      return std::make_unique<FineDc<FineReadMode::kNonBlocking>>(
          n, "fine-nbreads", sampling);
    case 9:
      return std::make_unique<NbDc>(n, NbLockMode::kFine, "full", sampling);
    case 10:
      return std::make_unique<NbDc>(n, NbLockMode::kCoarseSpin, "full-coarse",
                                    sampling);
    case 11:
      return std::make_unique<NbDc>(n, NbLockMode::kCoarseElision,
                                    "full-coarse-htm", sampling);
    case 12:
      return std::make_unique<ParallelCombiningDc>(n, "parallel-combining",
                                                   sampling);
    case 13:
      return std::make_unique<FlatCombiningDc>(n, "fc-nbreads", sampling);
    default:
      throw std::invalid_argument("unknown variant id " + std::to_string(id));
  }
}

std::unique_ptr<DynamicConnectivity> make_variant(const std::string& name,
                                                  Vertex n, bool sampling) {
  for (const VariantInfo& v : all_variants()) {
    if (name == v.name) return make_variant(v.id, n, sampling);
  }
  throw std::invalid_argument("unknown variant name \"" + name + "\"");
}

}  // namespace condyn
