#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"

namespace condyn {

/// One evaluated algorithm combination (paper §5.2; numbering kept
/// consistent with the plots and with DESIGN.md §1).
struct VariantInfo {
  int id;            ///< 1..13, the paper's numbering
  const char* name;  ///< stable identifier used in tables ("coarse", ...)
  const char* description;
};

/// All 13 variants, in paper order.
const std::vector<VariantInfo>& all_variants();

/// Construct variant `id` (1..13) for an n-vertex graph. `sampling` toggles
/// the Iyer-et-al. replacement-sampling heuristic (on for every variant in
/// the paper's experiments; the ablation bench turns it off).
std::unique_ptr<DynamicConnectivity> make_variant(int id, Vertex n,
                                                  bool sampling = true);

/// Construct by stable name; throws std::invalid_argument on unknown names.
std::unique_ptr<DynamicConnectivity> make_variant(const std::string& name,
                                                  Vertex n,
                                                  bool sampling = true);

}  // namespace condyn
