#pragma once

#include <memory>
#include <string>
#include <vector>

#include "api/registry.hpp"

namespace condyn {

/// All registered variants, in paper order (1..13 for the built-ins).
const std::vector<VariantInfo>& all_variants();

/// Lookup by stable name / id; nullptr when unknown.
const VariantInfo* find_variant(const std::string& name);
const VariantInfo* find_variant(int id);

/// Construct variant `id` (1..13) for an n-vertex graph. `sampling` toggles
/// the Iyer-et-al. replacement-sampling heuristic (on for every variant in
/// the paper's experiments; the ablation bench turns it off).
std::unique_ptr<DynamicConnectivity> make_variant(int id, Vertex n,
                                                  bool sampling = true);

/// Construct by stable name; throws std::invalid_argument on unknown names.
std::unique_ptr<DynamicConnectivity> make_variant(const std::string& name,
                                                  Vertex n,
                                                  bool sampling = true);

}  // namespace condyn
