#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/snapshot.hpp"
#include "util/ring_buffer.hpp"

namespace condyn::ingest {

/// What a producer experiences when the ring is full (DESIGN.md §11.2,
/// DC_INGEST_POLICY):
///   * kBlock      spin/yield until a slot frees — closed-loop degradation,
///                 nothing is ever lost (the default);
///   * kDrop       the op is refused (submit returns false) — open-loop
///                 load-shedding, the caller decides whether to retry;
///   * kShedReads  queries are refused, updates block — reads are
///                 re-askable, updates are the durable state.
enum class Backpressure { kBlock, kDrop, kShedReads };

/// Parse "block" / "drop" / "shed-reads" (unknown strings = kBlock).
Backpressure parse_policy(const std::string& s) noexcept;
const char* policy_name(Backpressure p) noexcept;

struct IngestOptions {
  std::size_t ring_capacity = 4096;  ///< rounded up to a power of two
  std::size_t max_batch = 256;       ///< group-commit drain bound (DC_INGEST_BATCH)
  Backpressure policy = Backpressure::kBlock;  ///< DC_INGEST_POLICY
  /// Append-only journal path (DC_JOURNAL); empty = no durability. The
  /// journal is created (with header) if absent, appended to otherwise.
  std::string journal_path;
  /// fsync the journal once per group commit, before any op in the batch is
  /// acknowledged (DC_JOURNAL_FSYNC; default on when a journal is set —
  /// turning it off keeps the write() ordering but trusts the page cache).
  bool journal_fsync = true;
  /// Auto-snapshot every N applied updates (0 = only explicit snapshot_to
  /// calls); requires snapshot_path. Written atomically (tmp + rename) by
  /// the applier itself at a batch boundary.
  uint64_t snapshot_every = 0;
  std::string snapshot_path;
  /// Record per-op sojourn time (enqueue -> acknowledged) for every ring op;
  /// samples are u32 nanoseconds, collected via take_sojourn_ns().
  bool record_sojourn = false;
  /// Edges already present in `dc` when the service attaches (a prefilled
  /// or recovered structure): seeds the applier's live-edge set so
  /// snapshots include them. Must match dc's actual edge set — recover()
  /// returns exactly this list for the restart-after-crash chain.
  std::vector<Edge> initial_edges;
};

/// Options resolved from the environment (DC_INGEST_BATCH, DC_INGEST_POLICY,
/// DC_INGEST_RING, DC_JOURNAL, DC_JOURNAL_FSYNC), everything else default.
IngestOptions env_options();

/// Completion token a producer may attach to a submitted op: the applier
/// stores the op's raw value and flips `state` *after* the group commit's
/// journal write (and fsync, when enabled) — an acknowledged update is a
/// durable update. kFailed means the journal append itself failed (ENOSPC,
/// EIO): the op was neither persisted nor applied, and the service is
/// fail-stopped (every later op also fails). Caller-owned; must outlive the
/// op's application (stack allocation + wait() is the intended pattern).
struct Ticket {
  enum State : uint32_t { kPending = 0, kDone = 1, kDropped = 2, kFailed = 3 };

  std::atomic<uint32_t> state{kPending};
  std::atomic<uint64_t> value{0};

  /// Spin-then-yield until the op reaches a final state. Returns that state
  /// (kDone, kDropped, or kFailed).
  uint32_t wait() const noexcept {
    uint32_t s;
    for (int spins = 0; (s = state.load(std::memory_order_acquire)) == kPending;
         ++spins) {
      if (spins > 64) std::this_thread::yield();
    }
    return s;
  }
  void reset() noexcept {
    state.store(kPending, std::memory_order_relaxed);
    value.store(0, std::memory_order_relaxed);
  }
};

/// Aggregate counters of one service's lifetime (monotone, approximate
/// while running, exact after stop()/drain()).
struct IngestStats {
  uint64_t submitted = 0;     ///< ops accepted into the ring
  /// Ops the applier completed: applied + journaled (kDone), or refused
  /// with kFailed after a journal error. drain() waits for acked ==
  /// submitted, so both outcomes count.
  uint64_t acked = 0;
  uint64_t dropped = 0;       ///< refused by kDrop (or dropped at stop())
  uint64_t shed_reads = 0;    ///< queries refused by kShedReads
  uint64_t failed = 0;        ///< ops refused with kFailed (journal error)
  uint64_t batches = 0;       ///< group commits (apply_batch calls)
  uint64_t max_batch_fill = 0;  ///< largest single drain
  uint64_t journal_records = 0;
  uint64_t fsyncs = 0;
  uint64_t journal_errors = 0;  ///< failed journal appends/flushes
  uint64_t snapshots = 0;
  uint64_t applied_seq = 0;   ///< journal seq of the last applied update
  /// Ops accepted into the ring but not yet acknowledged — the backlog a
  /// health probe reports (the server's status frame, DESIGN.md §12.3) and
  /// the headroom signal admission control sheds against. Computed from the
  /// submitted/acked counters at stats() time, saturating at 0 (the two are
  /// sampled independently, so a racing reader could otherwise underflow).
  uint64_t queue_depth = 0;
};

/// Group-commit ingest front-end over any DynamicConnectivity (DESIGN.md
/// §11): producers push ops into a bounded MPSC ring; one applier thread
/// drains up to max_batch ops per pass, applies them through apply_batch,
/// appends the batch's updates to the journal with a single write (+ one
/// fsync), and only then acknowledges tickets — group commit amortizes both
/// the structure's synchronization and the durability syscall across the
/// batch. The applier also owns the live-edge set, so snapshots are taken
/// at batch boundaries with no structure cooperation beyond quiesce().
class IngestService {
 public:
  /// Starts the applier thread. `dc` must outlive the service.
  explicit IngestService(DynamicConnectivity& dc, IngestOptions opts = {});
  ~IngestService();

  IngestService(const IngestService&) = delete;
  IngestService& operator=(const IngestService&) = delete;

  /// Submit one op. `ticket` (optional) is completed when the op is applied.
  /// Returns false when the op was refused — kDrop/kShedReads with a full
  /// ring, or a stop() already in progress — in which case the op was *not*
  /// enqueued and the ticket (if any) is marked kDropped.
  bool submit(const Op& op, Ticket* ticket = nullptr);

  /// Block until every op accepted so far has reached a final state (kDone,
  /// or kFailed after a journal error).
  void drain();

  /// Drain, flush, and join the applier. A submit() blocked on a full ring
  /// returns false (ticket kDropped) instead of waiting forever, and any op
  /// still in the ring after the applier exits is dropped the same way.
  /// For exactly-once accounting, join producers before calling stop(): a
  /// submit racing the shutdown may be refused. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Park the applier at the next batch boundary (returns once parked; the
  /// ring keeps accepting ops, they just wait). Refcounted: the applier
  /// resumes draining when every pause() has been matched by a resume().
  void pause();
  void resume();

  /// Write a point-in-time snapshot of the live edge set (atomic tmp+rename,
  /// fsynced) and return the applied_seq it captures. Safe to call from any
  /// thread and serialized against other snapshot_to calls: the applier is
  /// parked at a batch boundary for the duration, so the snapshot is exactly
  /// "every acknowledged update, nothing in flight".
  uint64_t snapshot_to(const std::string& path);

  IngestStats stats() const;

  /// Move out the sojourn samples collected so far (record_sojourn only).
  std::vector<uint32_t> take_sojourn_ns();

  const IngestOptions& options() const noexcept { return opts_; }

 private:
  struct Req {
    Op op;
    Ticket* ticket = nullptr;
    uint64_t t_enqueue_ns = 0;
  };

  bool submit_impl(const Op& op, Ticket* ticket);
  void applier_main();
  void apply_group(std::vector<Req>& reqs);
  void write_snapshot_locked(const std::string& path);
  void open_journal();

  DynamicConnectivity& dc_;
  IngestOptions opts_;
  MpscRingBuffer<Req> ring_;

  // Producer-side counters (multi-writer).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> shed_reads_{0};
  std::atomic<uint64_t> inflight_{0};  ///< submit() calls currently running
  // Applier-side counters: written only by the applier thread, read via
  // stats() — atomics with relaxed ordering keep that race benign.
  std::atomic<uint64_t> acked_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> max_batch_fill_{0};
  std::atomic<uint64_t> journal_records_{0};
  std::atomic<uint64_t> fsyncs_{0};
  std::atomic<uint64_t> journal_errors_{0};
  std::atomic<uint64_t> snapshots_{0};
  std::atomic<uint64_t> applied_seq_{0};

  // Applier-private state; other threads may only look while the applier is
  // parked (pause()/park_mu_ provides the happens-before).
  std::unordered_set<uint64_t> live_edges_;  ///< Edge::key() of present edges
  uint64_t seq_ = 0;                         ///< last assigned journal seq
  uint64_t applied_updates_ = 0;             ///< drives snapshot_every
  uint64_t last_snapshot_updates_ = 0;
  std::FILE* journal_ = nullptr;
  bool journal_broken_ = false;  ///< sticky: a journal append failed
  std::vector<char> journal_buf_;
  std::vector<Op> ops_scratch_;

  std::mutex park_mu_;
  std::condition_variable park_cv_;
  int pause_depth_ = 0;          ///< outstanding pause() calls (refcount)
  bool parked_ = false;
  bool applier_running_ = false;  ///< cleared by the applier on exit
  std::atomic<bool> stop_{false};

  std::mutex snapshot_mu_;  ///< serializes snapshot_to callers

  std::mutex sojourn_mu_;
  std::vector<uint32_t> sojourn_ns_;

  std::thread applier_;
};

/// Result of one recovery (load snapshot -> replay journal tail).
struct RecoveryResult {
  uint64_t snapshot_edges = 0;    ///< adds replayed from the snapshot
  uint64_t journal_records = 0;   ///< records decoded from the journal
  uint64_t replayed = 0;          ///< records with seq > snapshot.applied_seq
  uint64_t applied_seq = 0;       ///< seq of the recovered state
  bool truncated_tail = false;    ///< journal ended in a torn/corrupt record
  /// The recovered live edge set — feed it to IngestOptions::initial_edges
  /// when re-attaching a service to the recovered structure.
  std::vector<Edge> live_edges;
};

/// Rebuild `dc` (which must be empty and sized >= the persisted
/// num_vertices) from decoded durability state: apply the snapshot's edge
/// set, then every journal record with seq > snapshot.applied_seq, in
/// apply_batch chunks. Pass snap == nullptr when no snapshot exists
/// (recovery from the journal alone).
RecoveryResult recover(DynamicConnectivity& dc, const io::Snapshot* snap,
                       const io::JournalData& journal);

/// File convenience: missing snapshot file -> journal-only recovery;
/// missing journal file -> snapshot-only. Throws std::runtime_error on a
/// corrupt snapshot or journal *header* (torn journal tails are tolerated
/// by design).
RecoveryResult recover_files(DynamicConnectivity& dc,
                             const std::string& snapshot_path,
                             const std::string& journal_path);

}  // namespace condyn::ingest
