#include "ingest/ingest.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/lock_stats.hpp"

namespace condyn::ingest {

namespace {

uint32_t clamped_u32(uint64_t ns) noexcept {
  return ns > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(ns);
}

}  // namespace

Backpressure parse_policy(const std::string& s) noexcept {
  if (s == "drop") return Backpressure::kDrop;
  if (s == "shed-reads") return Backpressure::kShedReads;
  return Backpressure::kBlock;
}

const char* policy_name(Backpressure p) noexcept {
  switch (p) {
    case Backpressure::kDrop: return "drop";
    case Backpressure::kShedReads: return "shed-reads";
    case Backpressure::kBlock: break;
  }
  return "block";
}

IngestOptions env_options() {
  IngestOptions o;
  const auto u64 = [](const char* name, uint64_t fallback) {
    const char* s = std::getenv(name);
    return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10)
                                      : fallback;
  };
  o.max_batch = std::max<uint64_t>(1, u64("DC_INGEST_BATCH", 256));
  o.ring_capacity = std::max<uint64_t>(2, u64("DC_INGEST_RING", 4096));
  if (const char* s = std::getenv("DC_INGEST_POLICY"); s != nullptr && *s) {
    o.policy = parse_policy(s);
  }
  if (const char* s = std::getenv("DC_JOURNAL"); s != nullptr && *s) {
    o.journal_path = s;
  }
  o.journal_fsync = u64("DC_JOURNAL_FSYNC", 1) != 0;
  return o;
}

IngestService::IngestService(DynamicConnectivity& dc, IngestOptions opts)
    : dc_(dc), opts_(std::move(opts)), ring_(opts_.ring_capacity) {
  for (const Edge& e : opts_.initial_edges) live_edges_.insert(e.key());
  open_journal();
  applier_running_ = true;
  applier_ = std::thread([this] { applier_main(); });
}

IngestService::~IngestService() { stop(); }

void IngestService::open_journal() {
  if (opts_.journal_path.empty()) return;
  const std::string& path = opts_.journal_path;
  const bool exists = std::ifstream(path, std::ios::binary).good();
  if (exists) {
    // Attach to an existing journal: continue its seq numbering and chop
    // any torn tail first — those bytes were never acknowledged, and
    // appending after them would poison every later record for the
    // tolerant loader.
    const io::JournalData j = io::load_journal_file(path);
    if (j.num_vertices != dc_.num_vertices()) {
      throw std::runtime_error(
          "ingest: journal " + path + " addresses " +
          std::to_string(j.num_vertices) + " vertices, structure has " +
          std::to_string(dc_.num_vertices()));
    }
    if (j.truncated_tail) {
      const auto clean = static_cast<off_t>(
          io::kJournalHeaderBytes +
          j.records.size() * io::kJournalRecordBytes);
      if (::truncate(path.c_str(), clean) != 0) {
        throw std::runtime_error("ingest: cannot truncate torn tail of " +
                                 path);
      }
    }
    if (!j.records.empty()) seq_ = j.records.back().seq;
    applied_seq_.store(seq_, std::memory_order_relaxed);
    journal_ = std::fopen(path.c_str(), "ab");
  } else {
    journal_ = std::fopen(path.c_str(), "wb");
    if (journal_ != nullptr) {
      char header[io::kJournalHeaderBytes];
      io::encode_journal_header(header, dc_.num_vertices());
      if (std::fwrite(header, 1, sizeof header, journal_) != sizeof header ||
          std::fflush(journal_) != 0 ||
          (opts_.journal_fsync && ::fsync(fileno(journal_)) != 0)) {
        std::fclose(journal_);
        journal_ = nullptr;
        throw std::runtime_error("ingest: cannot write journal header to " +
                                 path);
      }
    }
  }
  if (journal_ == nullptr) {
    throw std::runtime_error("ingest: cannot open journal " + path);
  }
}

bool IngestService::submit(const Op& op, Ticket* ticket) {
  // In-flight guard for stop(): a submit past the entry stop_ check may
  // still push into the ring, so shutdown keeps draining until every
  // in-flight call has returned — no op or ticket is ever stranded.
  inflight_.fetch_add(1, std::memory_order_relaxed);
  const bool accepted = submit_impl(op, ticket);
  inflight_.fetch_sub(1, std::memory_order_release);
  return accepted;
}

bool IngestService::submit_impl(const Op& op, Ticket* ticket) {
  // Counted before the push so drain() can never observe acked_ overtaking
  // submitted_ and return while this op is still in the ring; un-counted on
  // every refusal path below.
  submitted_.fetch_add(1, std::memory_order_release);
  const auto refuse = [&](std::atomic<uint64_t>& counter) {
    submitted_.fetch_sub(1, std::memory_order_release);
    counter.fetch_add(1, std::memory_order_relaxed);
    if (ticket != nullptr) {
      ticket->state.store(Ticket::kDropped, std::memory_order_release);
    }
    return false;
  };
  if (stop_.load(std::memory_order_acquire)) return refuse(dropped_);
  Req r{op, ticket,
        opts_.record_sojourn ? lock_stats::now_ns() : uint64_t{0}};
  if (!ring_.try_push(r)) {
    const bool shed_this =
        opts_.policy == Backpressure::kDrop ||
        (opts_.policy == Backpressure::kShedReads && is_query(op.kind));
    if (shed_this) {
      return refuse(opts_.policy == Backpressure::kDrop ? dropped_
                                                        : shed_reads_);
    }
    // kBlock (and kShedReads updates): closed-loop degradation — wait for
    // the applier to free a slot. A stop() in the meantime would leave the
    // applier gone and this loop spinning forever, so it refuses instead.
    for (int spins = 0; !ring_.try_push(r); ++spins) {
      if (stop_.load(std::memory_order_acquire)) return refuse(dropped_);
      if (spins > 64) std::this_thread::yield();
    }
  }
  return true;
}

void IngestService::drain() {
  while (acked_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
}

void IngestService::stop() {
  if (!applier_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  {
    // An applier between its park check and park_cv_.wait would miss a bare
    // notify; taking the lock orders the store before its predicate check.
    std::lock_guard lk(park_mu_);
  }
  park_cv_.notify_all();
  applier_.join();
  // A producer that pushed between the applier's final drain and its exit
  // (or while it was parked) left ops behind; they were never applied, so
  // drop them — tickets terminate, and submitted_ is un-counted so drain()
  // does too. Loop until no submit is in flight: one that already passed
  // its stop_ check can still push into a slot this very drain frees, so a
  // single pass could strand it. Reading inflight_ *before* draining makes
  // the exit sound — every push by an exited submit is visible to the final
  // pop_batch pass.
  std::vector<Req> leftovers;
  for (;;) {
    const bool quiesced = inflight_.load(std::memory_order_acquire) == 0;
    while (ring_.pop_batch(leftovers, opts_.max_batch) > 0) {
      for (const Req& r : leftovers) {
        if (r.ticket != nullptr) {
          r.ticket->state.store(Ticket::kDropped, std::memory_order_release);
        }
      }
      dropped_.fetch_add(leftovers.size(), std::memory_order_relaxed);
      submitted_.fetch_sub(leftovers.size(), std::memory_order_release);
      leftovers.clear();
    }
    if (quiesced) break;
    std::this_thread::yield();
  }
  if (journal_ != nullptr) {
    if (std::fflush(journal_) != 0 ||
        (opts_.journal_fsync && ::fsync(fileno(journal_)) != 0)) {
      // Every acked batch was already flushed (and fsynced) by apply_group,
      // so this is only the close-out of an already-failed stream; stop()
      // runs on the destructor path and must not throw.
      journal_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    std::fclose(journal_);
    journal_ = nullptr;
  }
}

void IngestService::pause() {
  std::unique_lock lk(park_mu_);
  ++pause_depth_;
  park_cv_.wait(lk, [&] { return parked_ || !applier_running_; });
}

void IngestService::resume() {
  {
    std::lock_guard lk(park_mu_);
    if (pause_depth_ > 0) --pause_depth_;
  }
  park_cv_.notify_all();
}

uint64_t IngestService::snapshot_to(const std::string& path) {
  // Serialized: two concurrent callers would otherwise race on the same
  // tmp file, and one's resume() would unpark the applier while the other
  // is still reading live_edges_.
  std::lock_guard snap_lk(snapshot_mu_);
  if (applier_.joinable()) {
    pause();  // parked at a batch boundary: nothing is in flight
    write_snapshot_locked(path);
    resume();
  } else {
    write_snapshot_locked(path);
  }
  return applied_seq_.load(std::memory_order_relaxed);
}

void IngestService::write_snapshot_locked(const std::string& path) {
  // The applier is parked (or joined), so live_edges_ is stable and the
  // structure is at a batch boundary: settle any lazily maintained state
  // (boundary index, caches) before freezing.
  dc_.quiesce();
  std::vector<Edge> edges;
  edges.reserve(live_edges_.size());
  for (const uint64_t key : live_edges_) edges.push_back(Edge::from_key(key));
  const io::Snapshot s =
      io::make_snapshot(applied_seq_.load(std::memory_order_relaxed),
                        dc_.num_vertices(), std::move(edges));
  io::save_snapshot_file_atomic(s, path);
  snapshots_.fetch_add(1, std::memory_order_relaxed);
}

void IngestService::applier_main() {
  std::vector<Req> reqs;
  reqs.reserve(opts_.max_batch);
  int idle = 0;
  for (;;) {
    {
      std::unique_lock lk(park_mu_);
      if (pause_depth_ > 0) {
        parked_ = true;
        park_cv_.notify_all();
        park_cv_.wait(lk, [&] {
          return pause_depth_ == 0 || stop_.load(std::memory_order_acquire);
        });
        parked_ = false;
        if (pause_depth_ > 0) {
          // stop() raced an active pauser (who may be mid-read of
          // live_edges_): exit without touching anything further; stop()
          // drops whatever is left in the ring.
          break;
        }
      }
    }
    reqs.clear();
    ring_.pop_batch(reqs, opts_.max_batch);
    if (reqs.empty()) {
      if (stop_.load(std::memory_order_acquire)) {
        // One more look: a producer may have published between the failed
        // pop and the stop check.
        if (ring_.pop_batch(reqs, opts_.max_batch) == 0) break;
      } else {
        if (++idle > 64) std::this_thread::yield();
        continue;
      }
    }
    idle = 0;
    apply_group(reqs);
    if (opts_.snapshot_every > 0 && !opts_.snapshot_path.empty() &&
        applied_updates_ - last_snapshot_updates_ >= opts_.snapshot_every) {
      last_snapshot_updates_ = applied_updates_;
      write_snapshot_locked(opts_.snapshot_path);
    }
  }
  {
    // Unblock any pause() still waiting for parked_: the applier is gone,
    // which is as parked as it gets.
    std::lock_guard lk(park_mu_);
    applier_running_ = false;
  }
  park_cv_.notify_all();
}

void IngestService::apply_group(std::vector<Req>& reqs) {
  // Group commit, write-ahead: one journal append (and at most one fsync)
  // covers every update in the batch, persisted *before* the batch is
  // applied or any ticket acknowledged — an acked update is a durable
  // update, and a failed append (ENOSPC, EIO) fails the batch without
  // letting in-memory state run ahead of the log. A crash between the
  // append and the apply only means recovery replays ops that were never
  // acked, which the redo-log contract allows.
  uint64_t updates = 0;
  if (journal_ != nullptr && !journal_broken_) {
    journal_buf_.clear();
    char rec[io::kJournalRecordBytes];
    uint64_t next_seq = seq_;
    for (const Req& r : reqs) {
      if (!is_update(r.op.kind)) continue;
      io::encode_journal_record(rec, ++next_seq, r.op);
      journal_buf_.insert(journal_buf_.end(), rec, rec + sizeof rec);
      ++updates;
    }
    if (!journal_buf_.empty()) {
      bool ok = std::fwrite(journal_buf_.data(), 1, journal_buf_.size(),
                            journal_) == journal_buf_.size() &&
                std::fflush(journal_) == 0;
      if (ok && opts_.journal_fsync) {
        ok = ::fsync(fileno(journal_)) == 0;
        fsyncs_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!ok) {
        // Sticky fail-stop: the file position and on-disk tail are now
        // unknown, so no later append can be trusted either. The torn tail
        // (if any) is exactly what the tolerant loader chops on recovery.
        journal_broken_ = true;
        journal_errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        journal_records_.fetch_add(updates, std::memory_order_relaxed);
        seq_ = next_seq;
      }
    }
  } else if (journal_ == nullptr) {
    for (const Req& r : reqs) {
      if (is_update(r.op.kind)) {
        ++seq_;
        ++updates;
      }
    }
  }
  if (journal_broken_) {
    for (const Req& r : reqs) {
      if (r.ticket != nullptr) {
        r.ticket->state.store(Ticket::kFailed, std::memory_order_release);
      }
    }
    failed_.fetch_add(reqs.size(), std::memory_order_relaxed);
    acked_.fetch_add(reqs.size(), std::memory_order_release);
    return;
  }

  ops_scratch_.clear();
  for (const Req& r : reqs) ops_scratch_.push_back(r.op);
  const BatchResult res = dc_.apply_batch(ops_scratch_);

  // Live-edge bookkeeping: only *effective* updates change the set (a
  // duplicate add / absent remove reports value 0 from apply_batch).
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Op& op = reqs[i].op;
    if (res.values[i] == 0) continue;
    if (op.kind == OpKind::kAdd) {
      live_edges_.insert(Edge(op.u, op.v).key());
    } else if (op.kind == OpKind::kRemove) {
      live_edges_.erase(Edge(op.u, op.v).key());
    }
  }
  applied_updates_ += updates;
  applied_seq_.store(seq_, std::memory_order_relaxed);

  const uint64_t now = opts_.record_sojourn ? lock_stats::now_ns() : 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    if (Ticket* t = reqs[i].ticket; t != nullptr) {
      t->value.store(res.values[i], std::memory_order_relaxed);
      t->state.store(Ticket::kDone, std::memory_order_release);
    }
  }
  if (opts_.record_sojourn) {
    std::lock_guard lk(sojourn_mu_);
    for (const Req& r : reqs) {
      sojourn_ns_.push_back(clamped_u32(now - r.t_enqueue_ns));
    }
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  uint64_t prev = max_batch_fill_.load(std::memory_order_relaxed);
  if (reqs.size() > prev) {
    max_batch_fill_.store(reqs.size(), std::memory_order_relaxed);
  }
  acked_.fetch_add(reqs.size(), std::memory_order_release);
}

IngestStats IngestService::stats() const {
  IngestStats s;
  s.submitted = submitted_.load(std::memory_order_acquire);
  s.acked = acked_.load(std::memory_order_acquire);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.shed_reads = shed_reads_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.max_batch_fill = max_batch_fill_.load(std::memory_order_relaxed);
  s.journal_records = journal_records_.load(std::memory_order_relaxed);
  s.fsyncs = fsyncs_.load(std::memory_order_relaxed);
  s.journal_errors = journal_errors_.load(std::memory_order_relaxed);
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.applied_seq = applied_seq_.load(std::memory_order_relaxed);
  // acked_ is read after submitted_ above, so it may have advanced past the
  // submitted_ sample under concurrent draining — clamp instead of wrapping.
  s.queue_depth = s.submitted > s.acked ? s.submitted - s.acked : 0;
  return s;
}

std::vector<uint32_t> IngestService::take_sojourn_ns() {
  std::lock_guard lk(sojourn_mu_);
  return std::exchange(sojourn_ns_, {});
}

// ---------------------------------------------------------------------------
// Recovery

namespace {

constexpr std::size_t kReplayChunk = 1024;

void apply_chunked(DynamicConnectivity& dc, const std::vector<Op>& ops) {
  for (std::size_t i = 0; i < ops.size(); i += kReplayChunk) {
    dc.apply_batch(std::span<const Op>(ops).subspan(
        i, std::min(kReplayChunk, ops.size() - i)));
  }
}

}  // namespace

RecoveryResult recover(DynamicConnectivity& dc, const io::Snapshot* snap,
                       const io::JournalData& journal) {
  RecoveryResult r;
  std::unordered_set<uint64_t> live;
  if (snap != nullptr) {
    if (snap->edges.num_vertices > dc.num_vertices()) {
      throw std::runtime_error("recover: snapshot addresses more vertices "
                               "than the structure");
    }
    r.snapshot_edges = snap->edges.ops.size();
    r.applied_seq = snap->applied_seq;
    apply_chunked(dc, snap->edges.ops);
    for (const Op& op : snap->edges.ops) {
      live.insert(Edge(op.u, op.v).key());
    }
  }
  r.journal_records = journal.records.size();
  r.truncated_tail = journal.truncated_tail;
  if (!journal.records.empty() && journal.num_vertices > dc.num_vertices()) {
    throw std::runtime_error("recover: journal addresses more vertices than "
                             "the structure");
  }
  std::vector<Op> tail;
  for (const io::JournalRecord& rec : journal.records) {
    if (rec.seq <= r.applied_seq) continue;  // folded into the snapshot
    tail.push_back(rec.op);
    ++r.replayed;
  }
  if (!journal.records.empty()) {
    r.applied_seq = std::max(r.applied_seq, journal.records.back().seq);
  }
  apply_chunked(dc, tail);
  for (const Op& op : tail) {
    const uint64_t key = Edge(op.u, op.v).key();
    if (op.kind == OpKind::kAdd) {
      live.insert(key);
    } else {
      live.erase(key);
    }
  }
  // No-op replays (duplicate add, absent remove) leave `live` correct: the
  // set mirrors presence, and insert/erase are idempotent on it.
  r.live_edges.reserve(live.size());
  for (const uint64_t key : live) r.live_edges.push_back(Edge::from_key(key));
  std::sort(r.live_edges.begin(), r.live_edges.end());
  dc.quiesce();  // settle lazily maintained state before serving queries
  return r;
}

RecoveryResult recover_files(DynamicConnectivity& dc,
                             const std::string& snapshot_path,
                             const std::string& journal_path) {
  io::Snapshot snap;
  bool have_snap = false;
  if (!snapshot_path.empty()) {
    std::ifstream f(snapshot_path, std::ios::binary);
    if (f) {
      snap = io::load_snapshot(f);
      have_snap = true;
    }
  }
  const io::JournalData journal =
      journal_path.empty() ? io::JournalData{}
                           : io::load_journal_file(journal_path);
  return recover(dc, have_snap ? &snap : nullptr, journal);
}

}  // namespace condyn::ingest
