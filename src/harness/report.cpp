#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace condyn::harness {

SeriesReport::SeriesReport(std::string title, std::string unit,
                           std::vector<unsigned> thread_counts)
    : title_(std::move(title)),
      unit_(std::move(unit)),
      thread_counts_(std::move(thread_counts)) {}

void SeriesReport::begin_graph(const std::string& graph_name) {
  blocks_.push_back(Block{graph_name, {}});
}

void SeriesReport::add_point(const std::string& variant, unsigned threads,
                             double value) {
  Block& b = blocks_.back();
  auto it = std::find_if(b.rows.begin(), b.rows.end(),
                         [&](const Row& r) { return r.variant == variant; });
  if (it == b.rows.end()) {
    b.rows.push_back(Row{variant, std::vector<double>(thread_counts_.size(),
                                                      -1.0)});
    it = b.rows.end() - 1;
  }
  for (std::size_t i = 0; i < thread_counts_.size(); ++i) {
    if (thread_counts_[i] == threads) it->values[i] = value;
  }
}

void SeriesReport::print() const {
  std::printf("== %s  [%s] ==\n", title_.c_str(), unit_.c_str());
  for (const Block& b : blocks_) {
    std::printf("\nGraph: %s\n", b.graph.c_str());
    std::printf("%-22s", "variant \\ threads");
    for (unsigned t : thread_counts_) std::printf("%10u", t);
    std::printf("\n");
    for (const Row& r : b.rows) {
      std::printf("%-22s", r.variant.c_str());
      for (double v : r.values) {
        if (v < 0) {
          std::printf("%10s", "-");
        } else {
          std::printf("%10.1f", v);
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

TableReport::TableReport(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableReport::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TableReport::print() const {
  std::printf("== %s ==\n", title_.c_str());
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c)
    width[c] = columns_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
    std::printf("\n");
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
  std::fflush(stdout);
}

std::string TableReport::pct(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

std::string TableReport::num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void write_fields(std::ostream& out,
                  const std::vector<std::pair<std::string, std::string>>& kv) {
  bool first = true;
  for (const auto& [key, value] : kv) {
    if (!first) out << ", ";
    first = false;
    out << json_escape(key) << ": " << value;
  }
}

}  // namespace

JsonReport::Record& JsonReport::Record::field(const std::string& key,
                                              const std::string& value) {
  fields_.emplace_back(key, json_escape(value));
  return *this;
}

JsonReport::Record& JsonReport::Record::field(const std::string& key,
                                              const char* value) {
  return field(key, std::string(value));
}

JsonReport::Record& JsonReport::Record::field(const std::string& key,
                                              double value) {
  fields_.emplace_back(key, json_number(value));
  return *this;
}

JsonReport::Record& JsonReport::Record::field(const std::string& key,
                                              uint64_t value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

JsonReport::Record& JsonReport::Record::field(const std::string& key,
                                              int value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

void JsonReport::meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, json_escape(value));
}

void JsonReport::meta(const std::string& key, double value) {
  meta_.emplace_back(key, json_number(value));
}

void JsonReport::meta(const std::string& key, uint64_t value) {
  meta_.emplace_back(key, std::to_string(value));
}

JsonReport::Record& JsonReport::add_record() {
  records_.emplace_back();
  return records_.back();
}

void JsonReport::write(std::ostream& out) const {
  out << "{\n  \"suite\": " << json_escape(suite_) << ",\n  \"meta\": {";
  write_fields(out, meta_);
  out << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    out << "    {";
    write_fields(out, records_[i].fields_);
    out << (i + 1 < records_.size() ? "},\n" : "}\n");
  }
  out << "  ]\n}\n";
}

void JsonReport::save_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("JsonReport: cannot write " + path);
  write(f);
  f.flush();
  if (!f) throw std::runtime_error("JsonReport: write failed for " + path);
}

std::string json_report(const JsonReport& report) {
  std::ostringstream ss;
  report.write(ss);
  return ss.str();
}

}  // namespace condyn::harness
