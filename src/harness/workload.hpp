#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "util/random.hpp"

namespace condyn::harness {

/// One benchmark execution's configuration (see driver.hpp for the env
/// defaults every bench binary resolves through env_config()). Validated by
/// harness::validated() before any driver runs it: threads == 0 or
/// measure_ms <= 0 are rejected, read_percent is clamped to [0, 100].
struct RunConfig {
  unsigned threads = 1;
  int read_percent = 80;   ///< read-mix scenarios only
  uint64_t seed = 42;
  int warmup_ms = 100;     ///< timed scenarios only (finite runs need none)
  int measure_ms = 300;
  std::size_t batch_size = 64;  ///< batch scenarios only
  std::string trace_path;       ///< trace-replay scenario only (DC_BENCH_TRACE)
  // Generator knobs, exposed so skew/locality can be swept without
  // recompiling (DC_BENCH_ZIPF_THETA / WINDOW / COMMUNITIES / RUNLEN);
  // validated() clamps them to sane ranges.
  double zipf_theta = 0.99;      ///< zipfian scenario skew, in (0, 1)
  double window_fraction = 0.25; ///< sliding-window live share of the stripe
  unsigned communities = 16;     ///< component-local community count
  unsigned run_length = 64;      ///< component-local ops before hopping
  double shard_skew = 0.8;       ///< work-imbalance hot-shard probability
  /// Open-loop target arrival rate in ops/sec, aggregate across threads
  /// (DC_BENCH_RATE); 0 = unpaced. Only paced scenarios (ScenarioCaps::
  /// paced — firehose) honor it; validated(cfg, caps) *rejects* it on
  /// batched closed-loop scenarios, where pacing the batch filler would
  /// silently measure neither arrival process.
  double arrival_rate = 0;
  /// Set by run_scenario for needs_trace scenarios: the trace loaded once
  /// for validation, shared with every worker's stream factory so a run
  /// doesn't re-read the file per thread. Leave unset to load trace_path.
  std::shared_ptr<const io::Trace> preloaded_trace;
};

/// Pull-based operation stream — the unit the scenario registry's factories
/// produce (scenario.hpp). Finite streams (incremental, decremental, trace
/// replay) signal exhaustion by returning false; infinite mixes never do.
class OpStream {
 public:
  virtual ~OpStream() = default;

  /// Fill `op` with the next operation; false once a finite stream is done.
  virtual bool next(Op& op) = 0;
};

/// Per-thread operation stream for the *random subset* scenario: every draw
/// picks a uniformly random graph edge and an operation type so that the
/// percentage of additions equals the percentage of removals (keeping the
/// live edge count roughly constant, §5.1). Emits the api Op vocabulary so
/// per-op and batch drivers share one generator.
class RandomOpStream final : public OpStream {
 public:
  RandomOpStream(const Graph& g, int read_percent, uint64_t seed)
      : edges_(&g.edges()),
        read_percent_(read_percent < 0 ? 0 : (read_percent > 100 ? 100 : read_percent)),
        rng_(seed) {}

  Op next() noexcept {
    const Edge& e = (*edges_)[rng_.next_below(edges_->size())];
    OpKind k = OpKind::kConnected;
    if (rng_.next_below(100) >= static_cast<uint64_t>(read_percent_)) {
      // The add/remove coin is an independent draw: deriving it from the
      // read/update roll's parity made removals impossible whenever the
      // update share was odd (e.g. 99% reads => 1% adds, 0% removes),
      // silently growing the live edge set all run.
      k = rng_.next_below(2) == 0 ? OpKind::kAdd : OpKind::kRemove;
    }
    return {k, e.u, e.v};
  }

  bool next(Op& op) override {
    op = next();
    return true;
  }

 private:
  const std::vector<Edge>* edges_;
  int read_percent_;
  Xoshiro256 rng_;
};

/// Batch-size-parameterized generator over the same random mix: each next()
/// refills a reusable buffer with `batch_size` draws, ready for apply_batch.
/// The batched driver now chunks plain OpStreams itself, so this class is
/// the library's span-producing generator for external batch submitters and
/// the test oracle for the chunking contract (chunking must not change the
/// underlying op sequence — tests/test_harness.cpp).
class RandomBatchStream {
 public:
  RandomBatchStream(const Graph& g, int read_percent, std::size_t batch_size,
                    uint64_t seed)
      // Clamp like update_batches: batch_size 0 would make every next()
      // an empty span and the batch driver a busy-loop of no-op calls.
      : stream_(g, read_percent, seed), batch_(batch_size == 0 ? 1 : batch_size) {}

  std::span<const Op> next() noexcept {
    for (Op& op : batch_) op = stream_.next();
    return batch_;
  }

  std::size_t batch_size() const noexcept { return batch_.size(); }

 private:
  RandomOpStream stream_;
  std::vector<Op> batch_;
};

/// Read-heavy mix over the value-returning query vocabulary (the
/// `size-query` scenario): like RandomOpStream, each draw picks a uniform
/// random graph edge; reads rotate connected -> component_size ->
/// representative so every query kind carries ~a third of the read share,
/// while updates keep the independent add/remove coin. The workload a
/// connectivity *service* sees: "how big is this community, who represents
/// it, are these two users together" over a churning edge set.
class SizeQueryStream final : public OpStream {
 public:
  SizeQueryStream(const Graph& g, int read_percent, uint64_t seed)
      : edges_(&g.edges()),
        read_percent_(read_percent < 0 ? 0
                                       : (read_percent > 100 ? 100
                                                             : read_percent)),
        rng_(seed) {}

  bool next(Op& op) override {
    if (edges_->empty()) return false;
    const Edge& e = (*edges_)[rng_.next_below(edges_->size())];
    if (rng_.next_below(100) >= static_cast<uint64_t>(read_percent_)) {
      op = rng_.next_below(2) == 0 ? Op::add(e.u, e.v) : Op::remove(e.u, e.v);
      return true;
    }
    switch (rotate_++ % 3) {
      case 0: op = Op::connected(e.u, e.v); break;
      case 1: op = Op::component_size(e.u); break;
      default: op = Op::representative(e.v); break;
    }
    return true;
  }

 private:
  const std::vector<Edge>* edges_;
  int read_percent_;
  uint32_t rotate_ = 0;
  Xoshiro256 rng_;
};

/// Finite stream over a pre-materialized program; the incremental,
/// decremental and trace-replay scenarios are all instances of this.
class VectorOpStream final : public OpStream {
 public:
  explicit VectorOpStream(std::vector<Op> ops) : ops_(std::move(ops)) {}

  bool next(Op& op) override {
    if (pos_ >= ops_.size()) return false;
    op = ops_[pos_++];
    return true;
  }

  std::size_t size() const noexcept { return ops_.size(); }

 private:
  std::vector<Op> ops_;
  std::size_t pos_ = 0;
};

/// Zipfian-skewed random mix: edge popularity follows a Zipf(theta)
/// distribution (YCSB's generator), so a handful of hot edges absorb most
/// operations — the contention regime uniform mixes cannot produce. Hot
/// ranks are decorrelated from edge-list order through a fixed affine
/// permutation derived from the base seed, shared by all threads so they
/// hammer the *same* hot set.
class ZipfianOpStream final : public OpStream {
 public:
  static constexpr double kTheta = 0.99;  // YCSB default skew

  /// `theta` in (0, 1): higher = more skew (RunConfig::zipf_theta).
  ZipfianOpStream(const Graph& g, int read_percent, uint64_t base_seed,
                  unsigned thread, double theta = kTheta);

  bool next(Op& op) override;

  /// Rank -> edge index under the popularity permutation (exposed for tests).
  std::size_t index_of_rank(uint64_t rank) const noexcept {
    return static_cast<std::size_t>((rank * step_ + offset_) % m_);
  }

 private:
  uint64_t zipf_rank() noexcept;

  const std::vector<Edge>* edges_;
  uint64_t m_;
  uint64_t step_;    // coprime with m_: rank -> index is a bijection
  uint64_t offset_;
  double theta_, zetan_, eta_, alpha_;
  int read_percent_;
  Xoshiro256 rng_;
};

/// Sliding-window churn over this thread's stripe of the edge list: updates
/// add a moving front edge and remove the trailing one, so the live window
/// marches through the graph like a temporal stream; reads query inside the
/// current window. The live edge count stays pinned near the window size.
class SlidingWindowStream final : public OpStream {
 public:
  /// `window_fraction` in (0, 1]: live-window share of the stripe
  /// (RunConfig::window_fraction).
  SlidingWindowStream(std::vector<Edge> stripe, int read_percent,
                      uint64_t seed, double window_fraction = 0.25);

  bool next(Op& op) override;

  std::size_t window() const noexcept { return window_; }
  /// Edges currently live (adds minus removes); bounded by window().
  std::size_t live() const noexcept { return adds_ - removes_; }

 private:
  std::vector<Edge> edges_;
  std::size_t window_;
  uint64_t adds_ = 0;     // total front insertions
  uint64_t removes_ = 0;  // total trailing removals
  bool remove_next_ = false;
  int read_percent_;
  Xoshiro256 rng_;
};

/// Component-local mix: vertices are split into `communities` contiguous
/// blocks and each thread works inside one community for a stretch of
/// operations before hopping to another. Operations cluster inside one
/// region of the graph — the locality that separates per-component
/// synchronization (fine/full families) from global locks.
class ComponentLocalStream final : public OpStream {
 public:
  static constexpr unsigned kDefaultCommunities = 16;
  static constexpr unsigned kRunLength = 64;  // default ops before hopping

  ComponentLocalStream(const Graph& g, int read_percent, unsigned communities,
                       uint64_t base_seed, unsigned thread,
                       unsigned run_length = kRunLength);

  bool next(Op& op) override;

  std::size_t num_communities() const noexcept { return buckets_.size(); }

 private:
  const std::vector<Edge>* edges_;
  std::vector<std::vector<uint32_t>> buckets_;  // edge indices per community
  std::size_t current_ = 0;
  unsigned run_length_;
  unsigned run_left_ = 0;
  int read_percent_;
  Xoshiro256 rng_;
};

/// Shard-skewed mix for the sharded facade (DESIGN.md §10): with probability
/// `skew` a draw comes from the *hot* bucket — edges both of whose endpoints
/// route to shard 0 under ShardedDc's vertex router at the current DC_SHARDS
/// setting — and otherwise from the whole edge list. High skew concentrates
/// work on one shard (the imbalance regime a static partition handles
/// worst); skew 0 degrades to the uniform random mix, as does any graph
/// whose hot bucket is empty.
class WorkImbalanceStream final : public OpStream {
 public:
  static constexpr double kDefaultSkew = 0.8;

  /// `skew` in [0, 1]: probability a draw targets the hot shard
  /// (RunConfig::shard_skew / DC_BENCH_SHARD_SKEW).
  WorkImbalanceStream(const Graph& g, int read_percent, uint64_t seed,
                      double skew = kDefaultSkew);

  bool next(Op& op) override;

  std::size_t hot_edges() const noexcept { return hot_.size(); }

 private:
  const std::vector<Edge>* edges_;
  std::vector<uint32_t> hot_;  // edge indices fully inside shard 0
  uint32_t skew_pct_;          // skew as a [0, 100] percentage
  int read_percent_;
  Xoshiro256 rng_;
};

/// Open-loop pacing decorator: arrivals of the inner stream are released on
/// a fixed schedule of one op every 1/ops_per_sec seconds, anchored at the
/// first draw. When the consumer falls behind the schedule, next() does not
/// sleep at all until the backlog is worked off — that is the open-loop
/// property (arrivals don't slow down because the system is slow), and it
/// is what makes sojourn time under overload diverge instead of plateau.
/// ops_per_sec <= 0 degrades to the unpaced inner stream.
class PacedStream final : public OpStream {
 public:
  PacedStream(std::unique_ptr<OpStream> inner, double ops_per_sec)
      : inner_(std::move(inner)),
        interval_ns_(ops_per_sec > 0
                         ? static_cast<uint64_t>(1e9 / ops_per_sec)
                         : 0) {}

  bool next(Op& op) override {
    if (!inner_->next(op)) return false;
    if (interval_ns_ == 0) return true;
    const uint64_t now = now_ns();
    if (due_ns_ == 0) due_ns_ = now;  // schedule starts at the first draw
    due_ns_ += interval_ns_;
    if (now < due_ns_) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(due_ns_ - now));
    }
    return true;
  }

  uint64_t interval_ns() const noexcept { return interval_ns_; }

 private:
  static uint64_t now_ns() noexcept {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  std::unique_ptr<OpStream> inner_;
  uint64_t interval_ns_;
  uint64_t due_ns_ = 0;  ///< next scheduled arrival (0 = not started)
};

/// Deterministic half-of-the-graph subset used to pre-fill the structure in
/// the random scenario (the other half starts absent).
std::vector<Edge> random_half(const Graph& g, uint64_t seed);

/// Striped partition of the edge list for the incremental / decremental
/// scenarios: thread t of T handles edges t, t+T, t+2T, ...
std::vector<Edge> stripe(const std::vector<Edge>& edges, unsigned thread,
                         unsigned num_threads);

/// Canonical per-edge hash behind the dependency-preserving replay
/// partition: order-insensitive in (u, v), seed-free so every thread of a
/// run (and every run) agrees on edge ownership.
uint64_t edge_partition_hash(Vertex u, Vertex v) noexcept;

/// Hash-partition of a recorded op stream for the `trace-replay-dep`
/// scenario: thread t of T owns every op whose edge hashes to t, in
/// recorded order. Unlike `stripe`'s round-robin (which scatters one
/// edge's add/remove/query history across workers, so replay races against
/// itself), this keeps all ops touching one edge ordered on one thread —
/// the final edge set, and hence final connectivity, of a concurrent
/// replay matches the sequential one.
std::vector<Op> edge_partition(std::span<const Op> ops, unsigned thread,
                               unsigned num_threads);

/// Chop an edge list into apply_batch-ready batches of `kind` updates
/// (kAdd to build a structure up — e.g. batch pre-fill — kRemove to
/// tear one down). The final batch holds the remainder.
std::vector<std::vector<Op>> update_batches(const std::vector<Edge>& edges,
                                            std::size_t batch_size,
                                            OpKind kind);

}  // namespace condyn::harness
