#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace condyn::harness {

/// The three benchmark scenarios of paper §5.1.
enum class Scenario {
  kRandom,       ///< half the graph pre-inserted; random mixed operations
  kIncremental,  ///< threads insert the whole graph into an empty structure
  kDecremental,  ///< threads erase every edge from a full structure
};

const char* scenario_name(Scenario s) noexcept;

/// Per-thread operation stream for the *random subset* scenario: every draw
/// picks a uniformly random graph edge and an operation type so that the
/// percentage of additions equals the percentage of removals (keeping the
/// live edge count roughly constant, §5.1).
class RandomOpStream {
 public:
  enum class Kind : uint8_t { kConnected, kAdd, kRemove };

  RandomOpStream(const Graph& g, int read_percent, uint64_t seed)
      : edges_(&g.edges()), read_percent_(read_percent), rng_(seed) {}

  struct Op {
    Kind kind;
    Vertex u, v;
  };

  Op next() noexcept {
    const Edge& e = (*edges_)[rng_.next_below(edges_->size())];
    const uint64_t roll = rng_.next_below(100);
    Kind k = Kind::kConnected;
    if (roll >= static_cast<uint64_t>(read_percent_)) {
      k = (roll - read_percent_) % 2 == 0 ? Kind::kAdd : Kind::kRemove;
    }
    return {k, e.u, e.v};
  }

 private:
  const std::vector<Edge>* edges_;
  int read_percent_;
  Xoshiro256 rng_;
};

/// Deterministic half-of-the-graph subset used to pre-fill the structure in
/// the random scenario (the other half starts absent).
std::vector<Edge> random_half(const Graph& g, uint64_t seed);

/// Striped partition of the edge list for the incremental / decremental
/// scenarios: thread t of T handles edges t, t+T, t+2T, ...
std::vector<Edge> stripe(const std::vector<Edge>& edges, unsigned thread,
                         unsigned num_threads);

}  // namespace condyn::harness
