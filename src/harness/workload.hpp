#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace condyn::harness {

/// The benchmark scenarios: the paper's three (§5.1) plus the batch family
/// layered on the same operation mixes (DESIGN.md §5.3).
enum class Scenario {
  kRandom,       ///< half the graph pre-inserted; random mixed operations
  kIncremental,  ///< threads insert the whole graph into an empty structure
  kDecremental,  ///< threads erase every edge from a full structure
  kBatchRandom,  ///< the random mix submitted as apply_batch calls
};

const char* scenario_name(Scenario s) noexcept;

/// Per-thread operation stream for the *random subset* scenario: every draw
/// picks a uniformly random graph edge and an operation type so that the
/// percentage of additions equals the percentage of removals (keeping the
/// live edge count roughly constant, §5.1). Emits the api Op vocabulary so
/// per-op and batch drivers share one generator.
class RandomOpStream {
 public:
  RandomOpStream(const Graph& g, int read_percent, uint64_t seed)
      : edges_(&g.edges()), read_percent_(read_percent), rng_(seed) {}

  Op next() noexcept {
    const Edge& e = (*edges_)[rng_.next_below(edges_->size())];
    const uint64_t roll = rng_.next_below(100);
    OpKind k = OpKind::kConnected;
    if (roll >= static_cast<uint64_t>(read_percent_)) {
      k = (roll - read_percent_) % 2 == 0 ? OpKind::kAdd : OpKind::kRemove;
    }
    return {k, e.u, e.v};
  }

 private:
  const std::vector<Edge>* edges_;
  int read_percent_;
  Xoshiro256 rng_;
};

/// Batch-size-parameterized generator over the same random mix: each next()
/// refills a reusable buffer with `batch_size` draws, ready for apply_batch.
class RandomBatchStream {
 public:
  RandomBatchStream(const Graph& g, int read_percent, std::size_t batch_size,
                    uint64_t seed)
      // Clamp like update_batches: batch_size 0 would make every next()
      // an empty span and run_batch a busy-loop of no-op apply_batch calls.
      : stream_(g, read_percent, seed), batch_(batch_size == 0 ? 1 : batch_size) {}

  std::span<const Op> next() noexcept {
    for (Op& op : batch_) op = stream_.next();
    return batch_;
  }

  std::size_t batch_size() const noexcept { return batch_.size(); }

 private:
  RandomOpStream stream_;
  std::vector<Op> batch_;
};

/// Deterministic half-of-the-graph subset used to pre-fill the structure in
/// the random scenario (the other half starts absent).
std::vector<Edge> random_half(const Graph& g, uint64_t seed);

/// Striped partition of the edge list for the incremental / decremental
/// scenarios: thread t of T handles edges t, t+T, t+2T, ...
std::vector<Edge> stripe(const std::vector<Edge>& edges, unsigned thread,
                         unsigned num_threads);

/// Chop an edge list into apply_batch-ready batches of `kind` updates
/// (kAdd to build a structure up — e.g. run_batch's pre-fill — kRemove to
/// tear one down). The final batch holds the remainder.
std::vector<std::vector<Op>> update_batches(const std::vector<Edge>& edges,
                                            std::size_t batch_size,
                                            OpKind kind);

}  // namespace condyn::harness
