#include "harness/workload.hpp"

#include <algorithm>

namespace condyn::harness {

const char* scenario_name(Scenario s) noexcept {
  switch (s) {
    case Scenario::kRandom:
      return "random";
    case Scenario::kIncremental:
      return "incremental";
    case Scenario::kDecremental:
      return "decremental";
  }
  return "?";
}

std::vector<Edge> random_half(const Graph& g, uint64_t seed) {
  std::vector<Edge> all = g.edges();
  Xoshiro256 rng(seed);
  // Fisher-Yates prefix shuffle: the first half is a uniform subset.
  const std::size_t half = all.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const std::size_t j = i + rng.next_below(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(half);
  return all;
}

std::vector<Edge> stripe(const std::vector<Edge>& edges, unsigned thread,
                         unsigned num_threads) {
  std::vector<Edge> out;
  out.reserve(edges.size() / num_threads + 1);
  for (std::size_t i = thread; i < edges.size(); i += num_threads)
    out.push_back(edges[i]);
  return out;
}

}  // namespace condyn::harness
