#include "harness/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/batch_runs.hpp"
#include "core/sharded_dc.hpp"

namespace condyn::harness {

namespace {

int clamp_pct(int p) noexcept { return p < 0 ? 0 : (p > 100 ? 100 : p); }

/// Generalized harmonic number H_{n,theta} = sum_{i=1..n} i^-theta, with an
/// integral tail approximation beyond the first 10k terms so paper-sized
/// edge counts don't cost an O(m) pow() loop per stream.
double zeta(uint64_t n, double theta) {
  const uint64_t head = std::min<uint64_t>(n, 10000);
  double z = 0;
  for (uint64_t i = 1; i <= head; ++i)
    z += std::pow(static_cast<double>(i), -theta);
  if (n > head) {
    z += (std::pow(static_cast<double>(n), 1 - theta) -
          std::pow(static_cast<double>(head), 1 - theta)) /
         (1 - theta);
  }
  return z;
}

}  // namespace

ZipfianOpStream::ZipfianOpStream(const Graph& g, int read_percent,
                                 uint64_t base_seed, unsigned thread,
                                 double theta)
    : edges_(&g.edges()),
      m_(std::max<uint64_t>(1, g.num_edges())),
      // theta = 1 divides by zero in alpha_; clamp to a sane open interval.
      theta_(std::clamp(theta, 0.01, 0.999)),
      read_percent_(clamp_pct(read_percent)),
      rng_(mix64(base_seed ^ (0x21b5ull + thread))) {
  // Popularity permutation shared by every thread of a run: derived from the
  // base seed only, so all threads agree on which edges are hot.
  step_ = (mix64(base_seed ^ 0x5eedull) % m_) | 1;  // odd, nonzero
  while (std::gcd(step_, m_) != 1) step_ += 2;
  step_ %= m_;  // 0 only when m_ == 1, where every rank maps to index 0
  offset_ = mix64(base_seed ^ 0x0ff5ull) % m_;
  zetan_ = zeta(m_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(m_), 1.0 - theta_)) /
         (1.0 - zeta(2, theta_) / zetan_);
}

uint64_t ZipfianOpStream::zipf_rank() noexcept {
  // Gray et al. / YCSB constant-time Zipfian inversion.
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto r = static_cast<uint64_t>(
      static_cast<double>(m_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return r >= m_ ? m_ - 1 : r;
}

bool ZipfianOpStream::next(Op& op) {
  if (edges_->empty()) return false;
  const Edge& e = (*edges_)[index_of_rank(zipf_rank())];
  OpKind k = OpKind::kConnected;
  if (rng_.next_below(100) >= static_cast<uint64_t>(read_percent_)) {
    k = rng_.next_below(2) == 0 ? OpKind::kAdd : OpKind::kRemove;
  }
  op = {k, e.u, e.v};
  return true;
}

SlidingWindowStream::SlidingWindowStream(std::vector<Edge> stripe,
                                         int read_percent, uint64_t seed,
                                         double window_fraction)
    : edges_(std::move(stripe)),
      window_(std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(edges_.size()) *
                 std::clamp(window_fraction, 0.01, 1.0)))),
      read_percent_(clamp_pct(read_percent)),
      rng_(seed) {}

bool SlidingWindowStream::next(Op& op) {
  if (edges_.empty()) return false;  // degenerate stripe (threads > edges)
  const std::size_t n = edges_.size();
  if (rng_.next_below(100) < static_cast<uint64_t>(read_percent_) &&
      adds_ > removes_) {
    // Query a uniformly random edge of the current live window.
    const uint64_t off = rng_.next_below(adds_ - removes_);
    const Edge& e = edges_[(removes_ + off) % n];
    op = Op::connected(e.u, e.v);
    return true;
  }
  // Updates march the window forward: fill it with adds first, then strictly
  // alternate trailing-remove / front-add so the live count stays at
  // window_ (the temporal-graph contract: old edges expire as new arrive).
  if (adds_ - removes_ < window_) {
    const Edge& e = edges_[adds_++ % n];
    op = Op::add(e.u, e.v);
    remove_next_ = true;
  } else if (remove_next_) {
    const Edge& e = edges_[removes_++ % n];
    op = Op::remove(e.u, e.v);
    remove_next_ = false;
  } else {
    const Edge& e = edges_[adds_++ % n];
    op = Op::add(e.u, e.v);
    remove_next_ = true;
  }
  return true;
}

ComponentLocalStream::ComponentLocalStream(const Graph& g, int read_percent,
                                           unsigned communities,
                                           uint64_t base_seed, unsigned thread,
                                           unsigned run_length)
    : edges_(&g.edges()),
      run_length_(std::max(1u, run_length)),
      read_percent_(clamp_pct(read_percent)),
      rng_(mix64(base_seed ^ (0xc0a1ull + thread))) {
  if (communities == 0) communities = 1;
  const Vertex n = std::max<Vertex>(1, g.num_vertices());
  const Vertex block = (n + communities - 1) / communities;
  // Bucket edges by the community of their lower endpoint; an edge whose
  // endpoints straddle blocks still belongs to exactly one bucket, keeping
  // the partition total.
  std::vector<std::vector<uint32_t>> buckets(communities);
  for (std::size_t i = 0; i < edges_->size(); ++i) {
    buckets[(*edges_)[i].u / block].push_back(static_cast<uint32_t>(i));
  }
  for (auto& b : buckets) {
    if (!b.empty()) buckets_.push_back(std::move(b));
  }
}

bool ComponentLocalStream::next(Op& op) {
  if (buckets_.empty()) return false;
  if (run_left_ == 0) {
    current_ = rng_.next_below(buckets_.size());
    run_left_ = run_length_;
  }
  --run_left_;
  const std::vector<uint32_t>& bucket = buckets_[current_];
  const Edge& e = (*edges_)[bucket[rng_.next_below(bucket.size())]];
  OpKind k = OpKind::kConnected;
  if (rng_.next_below(100) >= static_cast<uint64_t>(read_percent_)) {
    k = rng_.next_below(2) == 0 ? OpKind::kAdd : OpKind::kRemove;
  }
  op = {k, e.u, e.v};
  return true;
}

WorkImbalanceStream::WorkImbalanceStream(const Graph& g, int read_percent,
                                         uint64_t seed, double skew)
    : edges_(&g.edges()),
      skew_pct_(static_cast<uint32_t>(
          std::clamp(skew, 0.0, 1.0) * 100.0 + 0.5)),
      read_percent_(clamp_pct(read_percent)),
      rng_(seed) {
  // The hot bucket is defined by the *same* router the sharded facade uses,
  // at the same DC_SHARDS setting, so "hot" is exactly "lands on shard 0
  // without crossing a boundary". With one shard every edge is hot and the
  // stream is the uniform mix by construction.
  const uint32_t mask = ShardedDc::env_shards() - 1;
  for (std::size_t i = 0; i < edges_->size(); ++i) {
    const Edge& e = (*edges_)[i];
    if (ShardedDc::route(e.u, mask) == 0 && ShardedDc::route(e.v, mask) == 0)
      hot_.push_back(static_cast<uint32_t>(i));
  }
}

bool WorkImbalanceStream::next(Op& op) {
  if (edges_->empty()) return false;
  const Edge* e;
  if (!hot_.empty() && rng_.next_below(100) < skew_pct_) {
    e = &(*edges_)[hot_[rng_.next_below(hot_.size())]];
  } else {
    e = &(*edges_)[rng_.next_below(edges_->size())];
  }
  OpKind k = OpKind::kConnected;
  if (rng_.next_below(100) >= static_cast<uint64_t>(read_percent_)) {
    k = rng_.next_below(2) == 0 ? OpKind::kAdd : OpKind::kRemove;
  }
  op = {k, e->u, e->v};
  return true;
}

std::vector<Edge> random_half(const Graph& g, uint64_t seed) {
  std::vector<Edge> all = g.edges();
  Xoshiro256 rng(seed);
  // Fisher-Yates prefix shuffle: the first half is a uniform subset.
  const std::size_t half = all.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const std::size_t j = i + rng.next_below(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(half);
  return all;
}

std::vector<Edge> stripe(const std::vector<Edge>& edges, unsigned thread,
                         unsigned num_threads) {
  std::vector<Edge> out;
  out.reserve(edges.size() / num_threads + 1);
  for (std::size_t i = thread; i < edges.size(); i += num_threads)
    out.push_back(edges[i]);
  return out;
}

uint64_t edge_partition_hash(Vertex u, Vertex v) noexcept {
  // Canonical orientation (hash(u,v) == hash(v,u)); the definition lives in
  // core/batch_runs.hpp since PR 7 so PbdDc's batch planner shares it.
  return condyn::edge_partition_hash(u, v);
}

std::vector<Op> edge_partition(std::span<const Op> ops, unsigned thread,
                               unsigned num_threads) {
  std::vector<Op> out;
  if (num_threads == 0) return out;
  out.reserve(ops.size() / num_threads + 1);
  for (const Op& op : ops) {
    if (edge_partition_hash(op.u, op.v) % num_threads == thread)
      out.push_back(op);
  }
  return out;
}

std::vector<std::vector<Op>> update_batches(const std::vector<Edge>& edges,
                                            std::size_t batch_size,
                                            OpKind kind) {
  std::vector<std::vector<Op>> out;
  if (batch_size == 0) batch_size = 1;
  out.reserve(edges.size() / batch_size + 1);
  for (std::size_t i = 0; i < edges.size(); i += batch_size) {
    std::vector<Op> batch;
    const std::size_t end = std::min(edges.size(), i + batch_size);
    batch.reserve(end - i);
    for (std::size_t j = i; j < end; ++j) {
      batch.push_back({kind, edges[j].u, edges[j].v});
    }
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace condyn::harness
