#include "harness/workload.hpp"

#include <algorithm>

namespace condyn::harness {

const char* scenario_name(Scenario s) noexcept {
  switch (s) {
    case Scenario::kRandom:
      return "random";
    case Scenario::kIncremental:
      return "incremental";
    case Scenario::kDecremental:
      return "decremental";
    case Scenario::kBatchRandom:
      return "batch-random";
  }
  return "?";
}

std::vector<Edge> random_half(const Graph& g, uint64_t seed) {
  std::vector<Edge> all = g.edges();
  Xoshiro256 rng(seed);
  // Fisher-Yates prefix shuffle: the first half is a uniform subset.
  const std::size_t half = all.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const std::size_t j = i + rng.next_below(all.size() - i);
    std::swap(all[i], all[j]);
  }
  all.resize(half);
  return all;
}

std::vector<Edge> stripe(const std::vector<Edge>& edges, unsigned thread,
                         unsigned num_threads) {
  std::vector<Edge> out;
  out.reserve(edges.size() / num_threads + 1);
  for (std::size_t i = thread; i < edges.size(); i += num_threads)
    out.push_back(edges[i]);
  return out;
}

std::vector<std::vector<Op>> update_batches(const std::vector<Edge>& edges,
                                            std::size_t batch_size,
                                            OpKind kind) {
  std::vector<std::vector<Op>> out;
  if (batch_size == 0) batch_size = 1;
  out.reserve(edges.size() / batch_size + 1);
  for (std::size_t i = 0; i < edges.size(); i += batch_size) {
    std::vector<Op> batch;
    const std::size_t end = std::min(edges.size(), i + batch_size);
    batch.reserve(end - i);
    for (std::size_t j = i; j < end; ++j) {
      batch.push_back({kind, edges[j].u, edges[j].v});
    }
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace condyn::harness
