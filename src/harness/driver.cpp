#include "harness/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "api/factory.hpp"
#include "util/random.hpp"

namespace condyn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Sense-reversing spin barrier for phase changes (start / measure / stop).
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}
  void arrive_and_wait() noexcept {
    const uint32_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
    } else {
      while (gen_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  unsigned n_;
  std::atomic<uint32_t> count_{0};
  std::atomic<uint32_t> gen_{0};
};

struct ThreadTotals {
  uint64_t ops = 0;
  op_stats::Counters op_counters;
  lock_stats::Counters lock_counters;
  uint64_t batches = 0;
  uint64_t batch_ns_total = 0;
  uint64_t batch_ns_max = 0;
};

RunResult combine(const std::vector<ThreadTotals>& totals, double elapsed_ms,
                  unsigned threads) {
  RunResult r;
  r.elapsed_ms = elapsed_ms;
  uint64_t wait_ns = 0;
  uint64_t batch_ns_total = 0;
  uint64_t batch_ns_max = 0;
  for (const ThreadTotals& t : totals) {
    r.total_ops += t.ops;
    r.op_counters += t.op_counters;
    r.lock_counters.wait_ns += t.lock_counters.wait_ns;
    r.lock_counters.acquisitions += t.lock_counters.acquisitions;
    r.lock_counters.contended += t.lock_counters.contended;
    wait_ns += t.lock_counters.wait_ns;
    r.batches += t.batches;
    batch_ns_total += t.batch_ns_total;
    batch_ns_max = std::max(batch_ns_max, t.batch_ns_max);
  }
  r.ops_per_ms = elapsed_ms > 0 ? r.total_ops / elapsed_ms : 0;
  if (r.batches > 0) {
    r.batch_latency_us_avg =
        static_cast<double>(batch_ns_total) / r.batches / 1e3;
    r.batch_latency_us_max = batch_ns_max / 1e3;
  }
  const double total_ns = elapsed_ms * 1e6 * threads;
  r.active_time_percent =
      total_ns > 0
          ? 100.0 * (total_ns - std::min<double>(wait_ns, total_ns)) / total_ns
          : 100.0;
  return r;
}

}  // namespace

RunResult run_random(DynamicConnectivity& dc, const Graph& g,
                     const RunConfig& cfg) {
  for (const Edge& e : random_half(g, cfg.seed)) dc.add_edge(e.u, e.v);

  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  SpinBarrier start(cfg.threads + 1);
  std::vector<ThreadTotals> totals(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      RandomOpStream stream(g, cfg.read_percent,
                            mix64(cfg.seed ^ (0x9e37 + t)));
      auto exec = [&](const Op& op) {
        switch (op.kind) {
          case OpKind::kConnected:
            dc.connected(op.u, op.v);
            break;
          case OpKind::kAdd:
            dc.add_edge(op.u, op.v);
            break;
          case OpKind::kRemove:
            dc.remove_edge(op.u, op.v);
            break;
        }
      };
      start.arrive_and_wait();
      while (phase.load(std::memory_order_acquire) == 0) exec(stream.next());
      // Measurement starts with clean per-thread counters.
      op_stats::reset_local();
      lock_stats::reset_local();
      uint64_t ops = 0;
      while (phase.load(std::memory_order_acquire) == 1) {
        exec(stream.next());
        ++ops;
      }
      totals[t].ops = ops;
      totals[t].op_counters = op_stats::local();
      totals[t].lock_counters = lock_stats::local();
    });
  }

  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const auto t0 = Clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  phase.store(2, std::memory_order_release);
  const double elapsed = ms_since(t0);
  for (auto& w : workers) w.join();
  return combine(totals, elapsed, cfg.threads);
}

namespace {

/// Finite-run driver shared by the incremental and decremental scenarios:
/// each worker applies `op` to its stripe of the edge list; the measured
/// window is first-op to last-completion.
template <typename OpFn>
RunResult run_finite(const Graph& g, unsigned threads, OpFn&& op) {
  SpinBarrier start(threads + 1);
  std::vector<ThreadTotals> totals(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Edge> mine = stripe(g.edges(), t, threads);
      start.arrive_and_wait();
      op_stats::reset_local();
      lock_stats::reset_local();
      for (const Edge& e : mine) op(e);
      totals[t].ops = mine.size();
      totals[t].op_counters = op_stats::local();
      totals[t].lock_counters = lock_stats::local();
    });
  }
  start.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& w : workers) w.join();
  const double elapsed = ms_since(t0);
  return combine(totals, elapsed, threads);
}

}  // namespace

RunResult run_incremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg) {
  return run_finite(g, cfg.threads,
                    [&](const Edge& e) { dc.add_edge(e.u, e.v); });
}

RunResult run_batch(DynamicConnectivity& dc, const Graph& g,
                    const RunConfig& cfg) {
  // Pre-fill through the batch path too: it exercises apply_batch before
  // measurement starts and amortizes the lock for the coarse variants.
  for (const std::vector<Op>& b :
       update_batches(random_half(g, cfg.seed), cfg.batch_size, OpKind::kAdd)) {
    dc.apply_batch(b);
  }

  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  SpinBarrier start(cfg.threads + 1);
  std::vector<ThreadTotals> totals(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      RandomBatchStream stream(g, cfg.read_percent, cfg.batch_size,
                               mix64(cfg.seed ^ (0x9e37 + t)));
      start.arrive_and_wait();
      while (phase.load(std::memory_order_acquire) == 0) {
        dc.apply_batch(stream.next());
      }
      op_stats::reset_local();
      lock_stats::reset_local();
      ThreadTotals& mine = totals[t];
      while (phase.load(std::memory_order_acquire) == 1) {
        const std::span<const Op> batch = stream.next();
        const uint64_t b0 = lock_stats::now_ns();
        dc.apply_batch(batch);
        const uint64_t ns = lock_stats::now_ns() - b0;
        mine.ops += batch.size();
        ++mine.batches;
        mine.batch_ns_total += ns;
        mine.batch_ns_max = std::max(mine.batch_ns_max, ns);
      }
      mine.op_counters = op_stats::local();
      mine.lock_counters = lock_stats::local();
    });
  }

  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const auto t0 = Clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  phase.store(2, std::memory_order_release);
  const double elapsed = ms_since(t0);
  for (auto& w : workers) w.join();
  return combine(totals, elapsed, cfg.threads);
}

RunResult run_decremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg) {
  for (const Edge& e : g.edges()) dc.add_edge(e.u, e.v);
  return run_finite(g, cfg.threads,
                    [&](const Edge& e) { dc.remove_edge(e.u, e.v); });
}

RunResult run_scenario(Scenario s, DynamicConnectivity& dc, const Graph& g,
                       const RunConfig& cfg) {
  switch (s) {
    case Scenario::kRandom:
      return run_random(dc, g, cfg);
    case Scenario::kIncremental:
      return run_incremental(dc, g, cfg);
    case Scenario::kDecremental:
      return run_decremental(dc, g, cfg);
    case Scenario::kBatchRandom:
      return run_batch(dc, g, cfg);
  }
  return {};
}

namespace {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtod(s, nullptr) : fallback;
}

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, s.find_last_not_of(" \t") - b + 1);
}

/// A sane, overflow-free numeric env entry (≤ 9 digits keeps the value
/// within every integer type std::stoul/std::stoi feed below).
bool all_digits(const std::string& s) {
  if (s.empty() || s.size() > 9) return false;
  for (char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

}  // namespace

EnvConfig env_config() {
  EnvConfig cfg;
  cfg.warmup_ms = static_cast<int>(env_u64("DC_BENCH_WARMUP", 100));
  cfg.measure_ms = static_cast<int>(env_u64("DC_BENCH_MILLIS", 300));
  cfg.scale = env_double("DC_BENCH_SCALE", 0.05);
  cfg.seed = env_u64("DC_BENCH_SEED", 42);
  cfg.full = env_u64("DC_BENCH_FULL", 0) != 0;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (const char* s = std::getenv("DC_BENCH_THREADS"); s != nullptr && *s) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item = trimmed(item);
      if (!all_digits(item)) continue;  // malformed entries are skipped
      const unsigned t = static_cast<unsigned>(std::stoul(item));
      if (t > 0) cfg.thread_counts.push_back(t);
    }
  }
  if (cfg.thread_counts.empty()) {
    for (unsigned t = 1; t <= 2 * hw; t *= 2) cfg.thread_counts.push_back(t);
  }

  if (const char* s = std::getenv("DC_BENCH_VARIANTS"); s != nullptr && *s) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item = trimmed(item);
      if (all_digits(item)) {
        cfg.variants.push_back(std::stoi(item));
      } else if (const VariantInfo* v = find_variant(item)) {
        cfg.variants.push_back(v->id);
      }
    }
  }

  if (const char* s = std::getenv("DC_BENCH_BATCH"); s != nullptr && *s) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item = trimmed(item);
      if (!all_digits(item)) continue;  // malformed entries are skipped
      const std::size_t b = static_cast<std::size_t>(std::stoul(item));
      if (b > 0) cfg.batch_sizes.push_back(b);
    }
  }
  if (cfg.batch_sizes.empty()) cfg.batch_sizes = {1, 16, 64, 256};
  return cfg;
}

}  // namespace condyn::harness
