#include "harness/driver.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <span>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "api/factory.hpp"
#include "util/random.hpp"

namespace condyn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Sense-reversing spin barrier for phase changes (start / measure / stop).
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}
  void arrive_and_wait() noexcept {
    const uint32_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
    } else {
      while (gen_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  unsigned n_;
  std::atomic<uint32_t> count_{0};
  std::atomic<uint32_t> gen_{0};
};

struct ThreadTotals {
  uint64_t ops = 0;
  uint64_t by_kind[kNumOpKinds] = {};  ///< measured ops split by OpKind
  op_stats::Counters op_counters;
  lock_stats::Counters lock_counters;
  pool_stats::Counters mem_counters;
  uint64_t batches = 0;
  uint64_t batch_ns_total = 0;
  uint64_t batch_ns_max = 0;
  // caps.tracks_latency only: one sample per measured op. u32 nanoseconds
  // caps a sample at ~4.3 s — far beyond any single connectivity op — and
  // halves the footprint of paper-sized traces.
  std::vector<uint32_t> latency_ns;
};

uint32_t clamped_ns(uint64_t ns) noexcept {
  return ns > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(ns);
}

RunResult combine(std::vector<ThreadTotals>& totals, double elapsed_ms,
                  unsigned threads) {
  RunResult r;
  r.elapsed_ms = elapsed_ms;
  uint64_t wait_ns = 0;
  uint64_t batch_ns_total = 0;
  uint64_t batch_ns_max = 0;
  for (const ThreadTotals& t : totals) {
    r.total_ops += t.ops;
    for (std::size_t k = 0; k < kNumOpKinds; ++k)
      r.ops_by_kind[k] += t.by_kind[k];
    r.op_counters += t.op_counters;
    r.mem_counters += t.mem_counters;
    r.lock_counters.wait_ns += t.lock_counters.wait_ns;
    r.lock_counters.acquisitions += t.lock_counters.acquisitions;
    r.lock_counters.contended += t.lock_counters.contended;
    wait_ns += t.lock_counters.wait_ns;
    r.batches += t.batches;
    batch_ns_total += t.batch_ns_total;
    batch_ns_max = std::max(batch_ns_max, t.batch_ns_max);
  }
  r.ops_per_ms = elapsed_ms > 0 ? r.total_ops / elapsed_ms : 0;
  if (r.batches > 0) {
    r.batch_latency_us_avg =
        static_cast<double>(batch_ns_total) / r.batches / 1e3;
    r.batch_latency_us_max = batch_ns_max / 1e3;
  }
  const double total_ns = elapsed_ms * 1e6 * threads;
  r.active_time_percent =
      total_ns > 0
          ? 100.0 * (total_ns - std::min<double>(wait_ns, total_ns)) / total_ns
          : 100.0;

  // Per-op latency distribution (tracks_latency scenarios): merge every
  // worker's samples, sort once, read the percentiles off the order
  // statistics. Worker vectors are moved from — totals is dead after this.
  std::vector<uint32_t> samples;
  for (ThreadTotals& t : totals) {
    if (samples.empty()) {
      samples = std::move(t.latency_ns);
    } else {
      samples.insert(samples.end(), t.latency_ns.begin(), t.latency_ns.end());
    }
  }
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double q) {
      const auto idx = static_cast<std::size_t>(q * samples.size());
      return samples[std::min(idx, samples.size() - 1)] / 1e3;
    };
    uint64_t sum = 0;
    for (uint32_t ns : samples) sum += ns;
    r.latency_samples = samples.size();
    r.latency_us_avg = static_cast<double>(sum) / samples.size() / 1e3;
    r.latency_us_p50 = at(0.50);
    r.latency_us_p90 = at(0.90);
    r.latency_us_p99 = at(0.99);
    r.latency_us_max = samples.back() / 1e3;
  }
  return r;
}

void exec_op(DynamicConnectivity& dc, const Op& op) {
  exec_single(dc, op);  // the one per-kind dispatch (api header)
}

void count_kind(ThreadTotals& t, OpKind kind) noexcept {
  ++t.by_kind[static_cast<std::size_t>(kind)];
}

/// Refill `buf` with up to buf.capacity-of-batch ops; returns the filled
/// count (0 = stream exhausted).
std::size_t fill_batch(OpStream& stream, std::vector<Op>& buf,
                       std::size_t batch_size) {
  buf.clear();
  Op op;
  while (buf.size() < batch_size && stream.next(op)) buf.push_back(op);
  return buf.size();
}

/// Timed-window driver for infinite streams: warmup, then a measured window
/// with clean per-thread counters. With `batched`, ops are submitted through
/// apply_batch in chunks of cfg.batch_size and per-batch latency is tracked.
RunResult run_timed(const ScenarioInfo& s, DynamicConnectivity& dc,
                    const Graph& g, const RunConfig& cfg) {
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  SpinBarrier start(cfg.threads + 1);
  std::vector<ThreadTotals> totals(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      const std::unique_ptr<OpStream> stream = s.make_stream(g, cfg, t);
      std::vector<Op> buf;
      if (s.caps.batched) buf.reserve(cfg.batch_size);
      Op op;
      start.arrive_and_wait();
      while (phase.load(std::memory_order_acquire) == 0) {
        if (s.caps.batched) {
          if (fill_batch(*stream, buf, cfg.batch_size) == 0) break;
          dc.apply_batch(buf);
        } else {
          if (!stream->next(op)) break;
          exec_op(dc, op);
        }
      }
      // Measurement starts with clean per-thread counters.
      op_stats::reset_local();
      lock_stats::reset_local();
      pool_stats::reset_local();
      ThreadTotals& mine = totals[t];
      while (phase.load(std::memory_order_acquire) == 1) {
        if (s.caps.batched) {
          const std::size_t n = fill_batch(*stream, buf, cfg.batch_size);
          if (n == 0) break;
          const uint64_t b0 = lock_stats::now_ns();
          dc.apply_batch(buf);
          const uint64_t ns = lock_stats::now_ns() - b0;
          mine.ops += n;
          for (const Op& o : buf) count_kind(mine, o.kind);
          ++mine.batches;
          mine.batch_ns_total += ns;
          mine.batch_ns_max = std::max(mine.batch_ns_max, ns);
        } else if (s.caps.tracks_latency) {
          if (!stream->next(op)) break;
          const uint64_t t0 = lock_stats::now_ns();
          exec_op(dc, op);
          mine.latency_ns.push_back(clamped_ns(lock_stats::now_ns() - t0));
          ++mine.ops;
          count_kind(mine, op.kind);
        } else {
          if (!stream->next(op)) break;
          exec_op(dc, op);
          ++mine.ops;
          count_kind(mine, op.kind);
        }
      }
      mine.op_counters = op_stats::local();
      mine.lock_counters = lock_stats::local();
      mine.mem_counters = pool_stats::local();
    });
  }

  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const auto t0 = Clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  phase.store(2, std::memory_order_release);
  const double elapsed = ms_since(t0);
  for (auto& w : workers) w.join();
  return combine(totals, elapsed, cfg.threads);
}

/// Finite driver: each worker drains its stream to exhaustion; the measured
/// window is first-op to last-completion (no warmup). Stream construction
/// happens before the start barrier and is excluded from timing.
RunResult run_finite(const ScenarioInfo& s, DynamicConnectivity& dc,
                     const Graph& g, const RunConfig& cfg) {
  SpinBarrier start(cfg.threads + 1);
  std::vector<ThreadTotals> totals(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      const std::unique_ptr<OpStream> stream = s.make_stream(g, cfg, t);
      std::vector<Op> buf;
      if (s.caps.batched) buf.reserve(cfg.batch_size);
      start.arrive_and_wait();
      op_stats::reset_local();
      lock_stats::reset_local();
      pool_stats::reset_local();
      ThreadTotals& mine = totals[t];
      if (s.caps.batched) {
        std::size_t n;
        while ((n = fill_batch(*stream, buf, cfg.batch_size)) > 0) {
          const uint64_t b0 = lock_stats::now_ns();
          dc.apply_batch(buf);
          const uint64_t ns = lock_stats::now_ns() - b0;
          mine.ops += n;
          for (const Op& o : buf) count_kind(mine, o.kind);
          ++mine.batches;
          mine.batch_ns_total += ns;
          mine.batch_ns_max = std::max(mine.batch_ns_max, ns);
        }
      } else if (s.caps.tracks_latency) {
        Op op;
        while (stream->next(op)) {
          const uint64_t b0 = lock_stats::now_ns();
          exec_op(dc, op);
          mine.latency_ns.push_back(clamped_ns(lock_stats::now_ns() - b0));
          ++mine.ops;
          count_kind(mine, op.kind);
        }
      } else {
        Op op;
        while (stream->next(op)) {
          exec_op(dc, op);
          ++mine.ops;
          count_kind(mine, op.kind);
        }
      }
      mine.op_counters = op_stats::local();
      mine.lock_counters = lock_stats::local();
      mine.mem_counters = pool_stats::local();
    });
  }
  start.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& w : workers) w.join();
  const double elapsed = ms_since(t0);
  return combine(totals, elapsed, cfg.threads);
}

const ScenarioInfo& must_find_scenario(const char* name) {
  const ScenarioInfo* s = find_scenario(name);
  if (s == nullptr) {
    throw std::logic_error(std::string("built-in scenario missing: ") + name);
  }
  return *s;
}

}  // namespace

RunConfig validated(const RunConfig& cfg) {
  if (cfg.threads == 0) {
    throw std::invalid_argument("RunConfig: threads must be >= 1");
  }
  if (cfg.measure_ms <= 0) {
    throw std::invalid_argument("RunConfig: measure_ms must be positive");
  }
  if (cfg.warmup_ms < 0) {
    throw std::invalid_argument("RunConfig: warmup_ms must be >= 0");
  }
  RunConfig out = cfg;
  out.read_percent = std::clamp(out.read_percent, 0, 100);
  if (out.batch_size == 0) out.batch_size = 1;
  // Generator knobs: clamp rather than reject — sweeps feed raw env values.
  out.zipf_theta = std::clamp(out.zipf_theta, 0.01, 0.999);
  out.window_fraction = std::clamp(out.window_fraction, 0.01, 1.0);
  if (out.communities == 0) out.communities = 1;
  if (out.run_length == 0) out.run_length = 1;
  out.shard_skew = std::clamp(out.shard_skew, 0.0, 1.0);
  if (out.arrival_rate < 0) out.arrival_rate = 0;
  return out;
}

RunConfig validated(const RunConfig& cfg, const ScenarioCaps& caps) {
  RunConfig out = validated(cfg);
  if (out.arrival_rate > 0) {
    if (caps.batched) {
      // A paced *batched* run would sleep inside fill_batch: the arrival
      // schedule would gate batch assembly, so neither the closed-loop
      // apply_batch cost nor the open-loop sojourn is what gets measured.
      // This is a config bug, not a preference — reject it loudly.
      throw std::invalid_argument(
          "RunConfig: arrival_rate (DC_BENCH_RATE) is incompatible with a "
          "batched closed-loop scenario; use the firehose scenario or the "
          "bench ingest section for paced runs");
    }
    if (!caps.paced) out.arrival_rate = 0;  // no pacing hook: ignore
  }
  return out;
}

RunResult run_scenario(const ScenarioInfo& s, DynamicConnectivity& dc,
                       const Graph& g, const RunConfig& raw) {
  RunConfig cfg = validated(raw, s.caps);
  if (s.caps.needs_trace && cfg.preloaded_trace == nullptr) {
    // Load the trace once here, for two reasons: trace problems surface on
    // the caller thread (an exception escaping a worker's stream factory
    // would terminate the process), and the workers then stripe the shared
    // copy instead of re-reading the file per thread.
    if (cfg.trace_path.empty()) {
      throw std::invalid_argument(std::string(s.name) +
                                  ": RunConfig::trace_path is empty "
                                  "(set DC_BENCH_TRACE)");
    }
    cfg.preloaded_trace =
        std::make_shared<const io::Trace>(io::load_trace_file(cfg.trace_path));
  }
  if (s.caps.needs_trace &&
      cfg.preloaded_trace->num_vertices > dc.num_vertices()) {
    throw std::invalid_argument(
        cfg.trace_path + " addresses " +
        std::to_string(cfg.preloaded_trace->num_vertices) +
        " vertices but the structure only has " +
        std::to_string(dc.num_vertices()));
  }
  const std::vector<Op> pre = prefill_ops(s.caps.prefill, g, cfg.seed);
  if (s.caps.batched) {
    // Pre-fill through the batch path too: it exercises apply_batch before
    // measurement starts and amortizes the lock for the coarse variants.
    for (std::size_t i = 0; i < pre.size(); i += cfg.batch_size) {
      dc.apply_batch(std::span<const Op>(pre).subspan(
          i, std::min(cfg.batch_size, pre.size() - i)));
    }
  } else {
    for (const Op& op : pre) dc.add_edge(op.u, op.v);
  }
  return s.caps.finite ? run_finite(s, dc, g, cfg) : run_timed(s, dc, g, cfg);
}

RunResult run_random(DynamicConnectivity& dc, const Graph& g,
                     const RunConfig& cfg) {
  return run_scenario(must_find_scenario("random"), dc, g, cfg);
}

RunResult run_incremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg) {
  return run_scenario(must_find_scenario("incremental"), dc, g, cfg);
}

RunResult run_decremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg) {
  return run_scenario(must_find_scenario("decremental"), dc, g, cfg);
}

RunResult run_batch(DynamicConnectivity& dc, const Graph& g,
                    const RunConfig& cfg) {
  return run_scenario(must_find_scenario("batch-random"), dc, g, cfg);
}

namespace {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtod(s, nullptr) : fallback;
}

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, s.find_last_not_of(" \t") - b + 1);
}

/// A sane, overflow-free numeric env entry (≤ 9 digits keeps the value
/// within every integer type std::stoul/std::stoi feed below).
bool all_digits(const std::string& s) {
  if (s.empty() || s.size() > 9) return false;
  for (char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

}  // namespace

std::vector<std::string> env_list(const char* name,
                                  const std::string& fallback) {
  std::vector<std::string> out;
  const char* s = std::getenv(name);
  std::stringstream ss(s != nullptr && *s != '\0' ? std::string(s) : fallback);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trimmed(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

EnvConfig env_config() {
  EnvConfig cfg;
  cfg.warmup_ms = static_cast<int>(env_u64("DC_BENCH_WARMUP", 100));
  cfg.measure_ms = static_cast<int>(env_u64("DC_BENCH_MILLIS", 300));
  cfg.scale = env_double("DC_BENCH_SCALE", 0.05);
  cfg.seed = env_u64("DC_BENCH_SEED", 42);
  cfg.full = env_u64("DC_BENCH_FULL", 0) != 0;
  if (const char* s = std::getenv("DC_BENCH_TRACE"); s != nullptr && *s) {
    cfg.trace_path = s;
  }
  cfg.zipf_theta = env_double("DC_BENCH_ZIPF_THETA", 0.99);
  cfg.window_fraction = env_double("DC_BENCH_WINDOW", 0.25);
  cfg.communities = static_cast<unsigned>(env_u64("DC_BENCH_COMMUNITIES", 16));
  cfg.run_length = static_cast<unsigned>(env_u64("DC_BENCH_RUNLEN", 64));
  cfg.shard_skew = env_double("DC_BENCH_SHARD_SKEW", 0.8);
  cfg.arrival_rate = env_double("DC_BENCH_RATE", 0);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::string& item : env_list("DC_BENCH_THREADS")) {
    if (!all_digits(item)) continue;  // malformed entries are skipped
    const unsigned t = static_cast<unsigned>(std::stoul(item));
    if (t > 0) cfg.thread_counts.push_back(t);
  }
  if (cfg.thread_counts.empty()) {
    for (unsigned t = 1; t <= 2 * hw; t *= 2) cfg.thread_counts.push_back(t);
  }

  for (const std::string& item : env_list("DC_BENCH_VARIANTS")) {
    if (all_digits(item)) {
      cfg.variants.push_back(std::stoi(item));
    } else if (const VariantInfo* v = find_variant(item)) {
      cfg.variants.push_back(v->id);
    }
  }

  for (const std::string& item : env_list("DC_BENCH_SCENARIOS")) {
    const ScenarioInfo* s = all_digits(item) ? find_scenario(std::stoi(item))
                                             : find_scenario(item);
    if (s != nullptr) cfg.scenarios.push_back(s->name);
  }

  // DC_BENCH_BATCH_SIZES is the preferred spelling (ISSUE 7); the original
  // DC_BENCH_BATCH is honored as a fallback so existing scripts keep
  // working. One run sweeps every listed size on the batch scenarios.
  std::vector<std::string> batch_items = env_list("DC_BENCH_BATCH_SIZES");
  if (batch_items.empty()) batch_items = env_list("DC_BENCH_BATCH");
  for (const std::string& item : batch_items) {
    if (!all_digits(item)) continue;  // malformed entries are skipped
    const std::size_t b = static_cast<std::size_t>(std::stoul(item));
    if (b > 0) cfg.batch_sizes.push_back(b);
  }
  if (cfg.batch_sizes.empty()) cfg.batch_sizes = {1, 16, 64, 256};

  for (const std::string& item : env_list("DC_BENCH_READS")) {
    if (!all_digits(item)) continue;
    const int r = std::stoi(item);
    if (r >= 0 && r <= 100) cfg.read_percents.push_back(r);
  }
  if (cfg.read_percents.empty()) cfg.read_percents = {80, 99};
  return cfg;
}

}  // namespace condyn::harness
