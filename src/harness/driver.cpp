#include "harness/driver.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "api/factory.hpp"
#include "util/random.hpp"

namespace condyn::harness {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Sense-reversing spin barrier for phase changes (start / measure / stop).
class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned n) : n_(n) {}
  void arrive_and_wait() noexcept {
    const uint32_t gen = gen_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      gen_.fetch_add(1, std::memory_order_release);
    } else {
      while (gen_.load(std::memory_order_acquire) == gen) {
        std::this_thread::yield();
      }
    }
  }

 private:
  unsigned n_;
  std::atomic<uint32_t> count_{0};
  std::atomic<uint32_t> gen_{0};
};

struct ThreadTotals {
  uint64_t ops = 0;
  op_stats::Counters op_counters;
  lock_stats::Counters lock_counters;
};

RunResult combine(const std::vector<ThreadTotals>& totals, double elapsed_ms,
                  unsigned threads) {
  RunResult r;
  r.elapsed_ms = elapsed_ms;
  uint64_t wait_ns = 0;
  for (const ThreadTotals& t : totals) {
    r.total_ops += t.ops;
    r.op_counters += t.op_counters;
    r.lock_counters.wait_ns += t.lock_counters.wait_ns;
    r.lock_counters.acquisitions += t.lock_counters.acquisitions;
    r.lock_counters.contended += t.lock_counters.contended;
    wait_ns += t.lock_counters.wait_ns;
  }
  r.ops_per_ms = elapsed_ms > 0 ? r.total_ops / elapsed_ms : 0;
  const double total_ns = elapsed_ms * 1e6 * threads;
  r.active_time_percent =
      total_ns > 0
          ? 100.0 * (total_ns - std::min<double>(wait_ns, total_ns)) / total_ns
          : 100.0;
  return r;
}

}  // namespace

RunResult run_random(DynamicConnectivity& dc, const Graph& g,
                     const RunConfig& cfg) {
  for (const Edge& e : random_half(g, cfg.seed)) dc.add_edge(e.u, e.v);

  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  SpinBarrier start(cfg.threads + 1);
  std::vector<ThreadTotals> totals(cfg.threads);
  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);

  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      RandomOpStream stream(g, cfg.read_percent,
                            mix64(cfg.seed ^ (0x9e37 + t)));
      auto exec = [&](const RandomOpStream::Op& op) {
        switch (op.kind) {
          case RandomOpStream::Kind::kConnected:
            dc.connected(op.u, op.v);
            break;
          case RandomOpStream::Kind::kAdd:
            dc.add_edge(op.u, op.v);
            break;
          case RandomOpStream::Kind::kRemove:
            dc.remove_edge(op.u, op.v);
            break;
        }
      };
      start.arrive_and_wait();
      while (phase.load(std::memory_order_acquire) == 0) exec(stream.next());
      // Measurement starts with clean per-thread counters.
      op_stats::reset_local();
      lock_stats::reset_local();
      uint64_t ops = 0;
      while (phase.load(std::memory_order_acquire) == 1) {
        exec(stream.next());
        ++ops;
      }
      totals[t].ops = ops;
      totals[t].op_counters = op_stats::local();
      totals[t].lock_counters = lock_stats::local();
    });
  }

  start.arrive_and_wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const auto t0 = Clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.measure_ms));
  phase.store(2, std::memory_order_release);
  const double elapsed = ms_since(t0);
  for (auto& w : workers) w.join();
  return combine(totals, elapsed, cfg.threads);
}

namespace {

/// Finite-run driver shared by the incremental and decremental scenarios:
/// each worker applies `op` to its stripe of the edge list; the measured
/// window is first-op to last-completion.
template <typename OpFn>
RunResult run_finite(const Graph& g, unsigned threads, OpFn&& op) {
  SpinBarrier start(threads + 1);
  std::vector<ThreadTotals> totals(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Edge> mine = stripe(g.edges(), t, threads);
      start.arrive_and_wait();
      op_stats::reset_local();
      lock_stats::reset_local();
      for (const Edge& e : mine) op(e);
      totals[t].ops = mine.size();
      totals[t].op_counters = op_stats::local();
      totals[t].lock_counters = lock_stats::local();
    });
  }
  start.arrive_and_wait();
  const auto t0 = Clock::now();
  for (auto& w : workers) w.join();
  const double elapsed = ms_since(t0);
  return combine(totals, elapsed, threads);
}

}  // namespace

RunResult run_incremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg) {
  return run_finite(g, cfg.threads,
                    [&](const Edge& e) { dc.add_edge(e.u, e.v); });
}

RunResult run_decremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg) {
  for (const Edge& e : g.edges()) dc.add_edge(e.u, e.v);
  return run_finite(g, cfg.threads,
                    [&](const Edge& e) { dc.remove_edge(e.u, e.v); });
}

RunResult run_scenario(Scenario s, DynamicConnectivity& dc, const Graph& g,
                       const RunConfig& cfg) {
  switch (s) {
    case Scenario::kRandom:
      return run_random(dc, g, cfg);
    case Scenario::kIncremental:
      return run_incremental(dc, g, cfg);
    case Scenario::kDecremental:
      return run_decremental(dc, g, cfg);
  }
  return {};
}

namespace {

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10) : fallback;
}

double env_double(const char* name, double fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtod(s, nullptr) : fallback;
}

}  // namespace

EnvConfig env_config() {
  EnvConfig cfg;
  cfg.warmup_ms = static_cast<int>(env_u64("DC_BENCH_WARMUP", 100));
  cfg.measure_ms = static_cast<int>(env_u64("DC_BENCH_MILLIS", 300));
  cfg.scale = env_double("DC_BENCH_SCALE", 0.05);
  cfg.seed = env_u64("DC_BENCH_SEED", 42);
  cfg.full = env_u64("DC_BENCH_FULL", 0) != 0;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (const char* s = std::getenv("DC_BENCH_THREADS"); s != nullptr && *s) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const unsigned t = static_cast<unsigned>(std::stoul(item));
      if (t > 0) cfg.thread_counts.push_back(t);
    }
  }
  if (cfg.thread_counts.empty()) {
    for (unsigned t = 1; t <= 2 * hw; t *= 2) cfg.thread_counts.push_back(t);
  }

  if (const char* s = std::getenv("DC_BENCH_VARIANTS"); s != nullptr && *s) {
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
      bool numeric = !item.empty();
      for (char c : item) numeric = numeric && c >= '0' && c <= '9';
      if (numeric) {
        cfg.variants.push_back(std::stoi(item));
      } else {
        for (const VariantInfo& v : all_variants())
          if (item == v.name) cfg.variants.push_back(v.id);
      }
    }
  }
  return cfg;
}

}  // namespace condyn::harness
