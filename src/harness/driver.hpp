#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "harness/workload.hpp"
#include "util/lock_stats.hpp"

namespace condyn::harness {

/// One benchmark execution's configuration. Defaults come from the
/// environment so every bench binary scales from laptop-quick to paper-size
/// without recompilation (see env_config() and DESIGN.md §3):
///   DC_BENCH_MILLIS   measurement window per data point      (default 300)
///   DC_BENCH_WARMUP   warmup window per data point           (default 100)
///   DC_BENCH_THREADS  comma list of thread counts            (default
///                     "1,2,4,8" capped at 2*hardware_concurrency)
///   DC_BENCH_SCALE    graph size multiplier                  (default 0.05)
///   DC_BENCH_SEED     base RNG seed                          (default 42)
///   DC_BENCH_FULL     1 = paper-size graphs, all variants    (default 0)
///   DC_BENCH_BATCH    comma list of batch sizes              (default
///                     "1,16,64,256"; batch scenarios only)
struct RunConfig {
  unsigned threads = 1;
  int read_percent = 80;   ///< random scenario only
  uint64_t seed = 42;
  int warmup_ms = 100;     ///< random scenario only (finite runs need none)
  int measure_ms = 300;
  std::size_t batch_size = 64;  ///< batch scenarios only
};

/// Aggregated measurements of one run.
struct RunResult {
  double ops_per_ms = 0;         ///< total completed operations per ms
  double active_time_percent = 100;  ///< 100 * (1 - lock-wait share)
  uint64_t total_ops = 0;
  double elapsed_ms = 0;
  op_stats::Counters op_counters;       ///< summed over worker threads
  lock_stats::Counters lock_counters;   ///< summed over worker threads
  // Batch runs only (run_batch): per-apply_batch latency over all workers.
  uint64_t batches = 0;
  double batch_latency_us_avg = 0;
  double batch_latency_us_max = 0;
};

/// Random-subset scenario (§5.1): pre-fills dc with a random half of g's
/// edges, then `threads` workers execute the read/add/remove mix for the
/// configured window. The structure is left in whatever state the run ends
/// in — use a fresh instance per run.
RunResult run_random(DynamicConnectivity& dc, const Graph& g,
                     const RunConfig& cfg);

/// Incremental scenario: workers insert the whole graph, striped, into the
/// (empty) structure; the run measures time-to-completion.
RunResult run_incremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg);

/// Decremental scenario: pre-fills dc with all of g, then workers erase
/// their stripes; measures time-to-completion.
RunResult run_decremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg);

/// Batch scenario (DESIGN.md §5.3): the random mix, but each worker submits
/// cfg.batch_size operations per apply_batch call instead of one call per
/// op. Reports ops/ms like run_random plus per-batch latency in RunResult
/// (batches / batch_latency_us_avg / batch_latency_us_max).
RunResult run_batch(DynamicConnectivity& dc, const Graph& g,
                    const RunConfig& cfg);

RunResult run_scenario(Scenario s, DynamicConnectivity& dc, const Graph& g,
                       const RunConfig& cfg);

/// Benchmark-wide knobs resolved from the environment (see RunConfig docs).
struct EnvConfig {
  std::vector<unsigned> thread_counts;
  int warmup_ms;
  int measure_ms;
  double scale;
  uint64_t seed;
  bool full;
  /// Variant ids to run, resolved from DC_BENCH_VARIANTS (comma list of ids
  /// or names); empty = caller's default set.
  std::vector<int> variants;
  /// Batch sizes to sweep, from DC_BENCH_BATCH (batch benches only).
  std::vector<std::size_t> batch_sizes;
};

EnvConfig env_config();

}  // namespace condyn::harness
