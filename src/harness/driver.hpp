#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "util/lock_stats.hpp"

namespace condyn::harness {

// RunConfig lives in workload.hpp (it parameterizes the stream factories);
// defaults come from the environment so every bench binary scales from
// laptop-quick to paper-size without recompilation (see env_config() and
// DESIGN.md §3):
//   DC_BENCH_MILLIS    measurement window per data point      (default 300)
//   DC_BENCH_WARMUP    warmup window per data point           (default 100)
//   DC_BENCH_THREADS   comma list of thread counts            (default
//                      "1,2,4,8" capped at 2*hardware_concurrency)
//   DC_BENCH_SCALE     graph size multiplier                  (default 0.05)
//   DC_BENCH_SEED      base RNG seed                          (default 42)
//   DC_BENCH_FULL      1 = paper-size graphs, all variants    (default 0)
//   DC_BENCH_BATCH_SIZES  comma list of batch sizes           (default
//                      "1,16,64,256"; batch scenarios only; one run sweeps
//                      every listed size. DC_BENCH_BATCH is the legacy
//                      spelling, honored when _SIZES is unset)
//   DC_BENCH_SCENARIOS comma list of scenario names/ids       (default: all
//                      runnable — trace-replay needs DC_BENCH_TRACE)
//   DC_BENCH_READS     comma list of read percentages         (default
//                      "80,99"; read-mix scenarios only)
//   DC_BENCH_TRACE     recorded trace path (trace-replay scenario)
//   DC_BENCH_ZIPF_THETA   Zipf skew of the zipfian scenario   (default 0.99)
//   DC_BENCH_WINDOW       sliding-window live fraction of the stripe
//                         (default 0.25)
//   DC_BENCH_COMMUNITIES  community count, component-local    (default 16)
//   DC_BENCH_RUNLEN       ops per community before hopping    (default 64)
//   DC_BENCH_SHARD_SKEW   work-imbalance hot-shard probability (default 0.8;
//                         hot bucket defined by DC_SHARDS, DESIGN.md §10)
//   DC_BENCH_RATE         open-loop target arrival rate, ops/sec aggregate
//                         (default 0 = unpaced; paced scenarios only —
//                         firehose and the bench `ingest` section)

/// Validate a RunConfig before a driver runs it: rejects threads == 0,
/// measure_ms <= 0 and warmup_ms < 0 with std::invalid_argument; returns a
/// copy with read_percent clamped to [0, 100] and batch_size clamped to >= 1.
RunConfig validated(const RunConfig& cfg);

/// Caps-aware validation, called by run_scenario: everything above, plus
/// knob/scenario compatibility. arrival_rate > 0 on a batched closed-loop
/// scenario is rejected (pacing the batch filler measures neither the
/// closed-loop nor the open-loop regime); on a non-paced scenario it is
/// cleared to 0 (the stream has no pacing hook to honor it).
RunConfig validated(const RunConfig& cfg, const ScenarioCaps& caps);

/// Aggregated measurements of one run.
struct RunResult {
  double ops_per_ms = 0;         ///< total completed operations per ms
  double active_time_percent = 100;  ///< 100 * (1 - lock-wait share)
  uint64_t total_ops = 0;
  double elapsed_ms = 0;
  /// Completed operations by OpKind (indexed by static_cast<size_t>(kind)):
  /// the per-kind view behind bench_suite's per-kind throughput columns —
  /// a size-query mix reports how many of its ops were component_size /
  /// representative probes, not just a total.
  uint64_t ops_by_kind[kNumOpKinds] = {};
  /// Per-kind throughput (completed ops of `kind` per millisecond).
  double kind_per_ms(OpKind kind) const noexcept {
    return elapsed_ms > 0
               ? ops_by_kind[static_cast<std::size_t>(kind)] / elapsed_ms
               : 0;
  }
  op_stats::Counters op_counters;       ///< summed over worker threads
  lock_stats::Counters lock_counters;   ///< summed over worker threads
  pool_stats::Counters mem_counters;    ///< summed over worker threads
  // Batched scenarios only: per-apply_batch latency over all workers.
  uint64_t batches = 0;
  double batch_latency_us_avg = 0;
  double batch_latency_us_max = 0;
  // Scenarios whose caps set tracks_latency (trace-replay-dep): every
  // measured op is individually timed and the distribution over all
  // workers is summarized here — the closed-loop latency view throughput
  // numbers hide. latency_samples == 0 means the scenario doesn't track.
  uint64_t latency_samples = 0;
  double latency_us_avg = 0;
  double latency_us_p50 = 0;
  double latency_us_p90 = 0;
  double latency_us_p99 = 0;
  double latency_us_max = 0;
};

/// Run one registered scenario (harness/scenario.hpp): applies the prefill
/// its caps request, spawns cfg.threads workers each pulling from the
/// scenario's stream factory, and measures either a timed window (infinite
/// streams; warmup then measure) or time-to-completion (finite streams).
/// Scenarios with caps.batched submit chunks of cfg.batch_size through
/// apply_batch and report per-batch latency in RunResult. The structure is
/// left in whatever state the run ends in — use a fresh instance per run.
RunResult run_scenario(const ScenarioInfo& s, DynamicConnectivity& dc,
                       const Graph& g, const RunConfig& cfg);

/// Named wrappers for the paper's scenarios, kept for tests and examples;
/// each resolves the registry entry and calls run_scenario.
RunResult run_random(DynamicConnectivity& dc, const Graph& g,
                     const RunConfig& cfg);
RunResult run_incremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg);
RunResult run_decremental(DynamicConnectivity& dc, const Graph& g,
                          const RunConfig& cfg);
RunResult run_batch(DynamicConnectivity& dc, const Graph& g,
                    const RunConfig& cfg);

/// Benchmark-wide knobs resolved from the environment (see above).
struct EnvConfig {
  std::vector<unsigned> thread_counts;
  int warmup_ms;
  int measure_ms;
  double scale;
  uint64_t seed;
  bool full;
  /// Variant ids to run, resolved from DC_BENCH_VARIANTS (comma list of ids
  /// or names); empty = caller's default set.
  std::vector<int> variants;
  /// Scenario names to run, resolved from DC_BENCH_SCENARIOS (comma list of
  /// ids or names); empty = caller's default set.
  std::vector<std::string> scenarios;
  /// Batch sizes to sweep, from DC_BENCH_BATCH_SIZES (legacy spelling
  /// DC_BENCH_BATCH; batch scenarios only).
  std::vector<std::size_t> batch_sizes;
  /// Read percentages to sweep, from DC_BENCH_READS (read-mix scenarios).
  std::vector<int> read_percents;
  /// Recorded trace path from DC_BENCH_TRACE (trace-replay scenario).
  std::string trace_path;
  /// Generator knobs (see RunConfig for semantics and defaults).
  double zipf_theta;
  double window_fraction;
  unsigned communities;
  unsigned run_length;
  double shard_skew;
  /// Open-loop arrival rate from DC_BENCH_RATE (ops/sec aggregate; 0 =
  /// unpaced). Only handed to paced scenarios / the ingest bench section.
  double arrival_rate;
};

EnvConfig env_config();

/// Comma-separated env list, entries trimmed, empties dropped; `fallback`
/// is parsed the same way when the variable is unset or empty. The one
/// tokenizer behind every DC_BENCH_* list knob.
std::vector<std::string> env_list(const char* name,
                                  const std::string& fallback = "");

}  // namespace condyn::harness
