#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "harness/driver.hpp"

namespace condyn::harness {

/// Plot-shaped text output: one block per graph, one row per variant, one
/// column per thread count — the series behind each sub-plot of the paper's
/// figures. `unit` labels the measured quantity ("ops/ms" for the throughput
/// figures, "active %" for Figures 7/8/11/12).
class SeriesReport {
 public:
  SeriesReport(std::string title, std::string unit,
               std::vector<unsigned> thread_counts);

  void begin_graph(const std::string& graph_name);
  void add_point(const std::string& variant, unsigned threads, double value);
  /// Render everything collected so far to stdout.
  void print() const;

 private:
  struct Row {
    std::string variant;
    std::vector<double> values;  // indexed like thread_counts_
  };
  struct Block {
    std::string graph;
    std::vector<Row> rows;
  };

  std::string title_;
  std::string unit_;
  std::vector<unsigned> thread_counts_;
  std::vector<Block> blocks_;
};

/// Simple aligned key/column table for the statistics tables (Tables 3, 4).
class TableReport {
 public:
  explicit TableReport(std::string title, std::vector<std::string> columns);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string pct(double value);   // "93.4"
  static std::string num(double value);   // "12345.6"

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Machine-readable result sink for bench_suite (DESIGN.md §6.3): flat
/// records of key/value fields plus suite-wide metadata, rendered as
///   {"suite": ..., "meta": {...}, "results": [{...}, ...]}
/// so the perf trajectory is trackable across PRs (the CI build artifact).
class JsonReport {
 public:
  /// One result record. The reference returned by add_record() is valid
  /// until the next add_record() call — populate it immediately.
  class Record {
   public:
    Record& field(const std::string& key, const std::string& value);
    Record& field(const std::string& key, const char* value);
    Record& field(const std::string& key, double value);
    Record& field(const std::string& key, uint64_t value);
    Record& field(const std::string& key, int value);

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;  // key -> JSON
  };

  explicit JsonReport(std::string suite) : suite_(std::move(suite)) {}

  void meta(const std::string& key, const std::string& value);
  void meta(const std::string& key, double value);
  void meta(const std::string& key, uint64_t value);

  Record& add_record();
  std::size_t size() const noexcept { return records_.size(); }

  void write(std::ostream& out) const;
  void save_file(const std::string& path) const;

 private:
  std::string suite_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Record> records_;
};

/// Render a JsonReport to its JSON text.
std::string json_report(const JsonReport& report);

}  // namespace condyn::harness
