#pragma once

#include <string>
#include <vector>

#include "harness/driver.hpp"

namespace condyn::harness {

/// Plot-shaped text output: one block per graph, one row per variant, one
/// column per thread count — the series behind each sub-plot of the paper's
/// figures. `unit` labels the measured quantity ("ops/ms" for the throughput
/// figures, "active %" for Figures 7/8/11/12).
class SeriesReport {
 public:
  SeriesReport(std::string title, std::string unit,
               std::vector<unsigned> thread_counts);

  void begin_graph(const std::string& graph_name);
  void add_point(const std::string& variant, unsigned threads, double value);
  /// Render everything collected so far to stdout.
  void print() const;

 private:
  struct Row {
    std::string variant;
    std::vector<double> values;  // indexed like thread_counts_
  };
  struct Block {
    std::string graph;
    std::vector<Row> rows;
  };

  std::string title_;
  std::string unit_;
  std::vector<unsigned> thread_counts_;
  std::vector<Block> blocks_;
};

/// Simple aligned key/column table for the statistics tables (Tables 3, 4).
class TableReport {
 public:
  explicit TableReport(std::string title, std::vector<std::string> columns);
  void add_row(std::vector<std::string> cells);
  void print() const;

  static std::string pct(double value);   // "93.4"
  static std::string num(double value);   // "12345.6"

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace condyn::harness
