#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "harness/workload.hpp"

namespace condyn::harness {

/// What the driver does before the workers start pulling from the streams.
enum class Prefill {
  kNone,  ///< structure starts empty
  kHalf,  ///< random half of the graph pre-inserted (§5.1 steady state)
  kFull,  ///< every edge pre-inserted (decremental start state)
};

/// Capability flags a scenario declares when it registers (DESIGN.md §6.1),
/// mirroring VariantCaps: the driver, bench_suite and tests branch on these
/// instead of hard-coding scenario names.
struct ScenarioCaps {
  /// Streams exhaust; the run measures time-to-completion (no warmup).
  /// Unset: streams are infinite and the run is a timed window.
  bool finite = false;
  /// The read/add/remove mix obeys RunConfig::read_percent.
  bool uses_read_percent = false;
  /// The driver submits operations through apply_batch in chunks of
  /// RunConfig::batch_size instead of one call per op.
  bool batched = false;
  /// Requires RunConfig::trace_path to point at a recorded trace.
  bool needs_trace = false;
  /// The driver times every individual operation and RunResult carries
  /// latency percentiles (the closed-loop measurement of trace-replay-dep).
  bool tracks_latency = false;
  /// The stream paces itself to RunConfig::arrival_rate (DC_BENCH_RATE) —
  /// the open-loop firehose family. validated(cfg, caps) clears
  /// arrival_rate for non-paced scenarios and rejects it on batched ones.
  bool paced = false;
  Prefill prefill = Prefill::kNone;
};

/// Factory for one worker thread's operation stream. Called once per worker
/// before the start barrier (construction cost is excluded from timing);
/// `thread` is the worker index in [0, cfg.threads).
using StreamFactory = std::function<std::unique_ptr<OpStream>(
    const Graph& g, const RunConfig& cfg, unsigned thread)>;

/// One registered workload scenario: name -> description -> generator
/// factory -> capabilities.
struct ScenarioInfo {
  int id;            ///< 1..N, registration order
  const char* name;  ///< stable identifier used in tables and DC_BENCH_SCENARIOS
  const char* description;
  ScenarioCaps caps;
  StreamFactory make_stream;
};

/// Name -> stream factory + capabilities registry, the workload-side mirror
/// of VariantRegistry (api/registry.hpp): built-ins register on first access
/// through an explicit hook rather than static initializers (a static
/// library drops object files whose only content is an unreferenced
/// registrar).
class ScenarioRegistry {
 public:
  static ScenarioRegistry& instance();

  /// Register a scenario; ids are assigned sequentially in registration
  /// order. Throws std::invalid_argument on duplicate names or when the
  /// registry is full (kReserved entries — the bound that keeps previously
  /// returned ScenarioInfo pointers stable). Not thread-safe: perform custom
  /// registrations at startup, before concurrent lookups begin.
  int add(const char* name, const char* description, ScenarioCaps caps,
          StreamFactory make_stream);

  /// Capacity bound: 14 built-ins plus room for custom scenarios.
  static constexpr std::size_t kReserved = 24;

  const std::vector<ScenarioInfo>& scenarios() const noexcept {
    return scenarios_;
  }
  const ScenarioInfo* find(const std::string& name) const noexcept;
  const ScenarioInfo* find(int id) const noexcept;

 private:
  ScenarioRegistry() = default;
  std::vector<ScenarioInfo> scenarios_;
};

/// Registration hook for the built-in scenarios, defined in scenario.cpp.
void register_builtin_scenarios(ScenarioRegistry& r);

/// Thin wrappers over ScenarioRegistry::instance(), matching factory.hpp.
const std::vector<ScenarioInfo>& all_scenarios();
const ScenarioInfo* find_scenario(const std::string& name);
const ScenarioInfo* find_scenario(int id);

/// The prefill a scenario's caps request, materialized as explicit add ops
/// (deterministic in `seed` for Prefill::kHalf). Shared by the driver (which
/// applies it before the workers start) and record_trace (which freezes it
/// into the trace so replays are self-contained).
std::vector<Op> prefill_ops(Prefill p, const Graph& g, uint64_t seed);

/// Freeze a scenario into a trace: the prefill ops followed by the
/// single-threaded op stream (at most `max_ops` stream draws; finite
/// streams may end sooner). The result replays identically on every variant
/// through replay_trace / the trace-replay scenario.
io::Trace record_trace(const ScenarioInfo& s, const Graph& g,
                       const RunConfig& cfg, std::size_t max_ops);
void record_trace_file(const ScenarioInfo& s, const Graph& g,
                       const RunConfig& cfg, std::size_t max_ops,
                       const std::string& path);

/// Sequentially apply a recorded op stream, returning each op's raw value
/// (0/1 for the boolean kinds, size / representative for the value kinds;
/// indexed like `ops`). Deterministic: two correct variants must produce
/// identical vectors for the same trace — the representative is canonical
/// (smallest member id), so even value queries compare across variants.
std::vector<uint64_t> replay_trace(DynamicConnectivity& dc,
                                   std::span<const Op> ops);

}  // namespace condyn::harness
