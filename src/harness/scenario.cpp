#include "harness/scenario.hpp"

#include <mutex>
#include <stdexcept>

namespace condyn::harness {

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry reg;
  static std::once_flag once;
  std::call_once(once, [] {
    // Headroom beyond the built-ins so ScenarioInfo pointers handed out by
    // find()/scenarios() are not invalidated by later add() reallocations.
    reg.scenarios_.reserve(kReserved);
    register_builtin_scenarios(reg);
  });
  return reg;
}

int ScenarioRegistry::add(const char* name, const char* description,
                          ScenarioCaps caps, StreamFactory make_stream) {
  if (scenarios_.size() >= kReserved) {
    throw std::invalid_argument(
        "scenario registry full (ScenarioRegistry::kReserved)");
  }
  for (const ScenarioInfo& s : scenarios_) {
    if (std::string(name) == s.name) {
      throw std::invalid_argument("duplicate scenario name \"" +
                                  std::string(name) + "\"");
    }
  }
  const int id = static_cast<int>(scenarios_.size()) + 1;
  scenarios_.push_back({id, name, description, caps, std::move(make_stream)});
  return id;
}

const ScenarioInfo* ScenarioRegistry::find(const std::string& name)
    const noexcept {
  for (const ScenarioInfo& s : scenarios_) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

const ScenarioInfo* ScenarioRegistry::find(int id) const noexcept {
  if (id < 1 || id > static_cast<int>(scenarios_.size())) return nullptr;
  return &scenarios_[id - 1];
}

const std::vector<ScenarioInfo>& all_scenarios() {
  return ScenarioRegistry::instance().scenarios();
}

const ScenarioInfo* find_scenario(const std::string& name) {
  return ScenarioRegistry::instance().find(name);
}

const ScenarioInfo* find_scenario(int id) {
  return ScenarioRegistry::instance().find(id);
}

namespace {

/// Per-thread seed derivation shared by every random-mix scenario; the
/// 0x9e37 constant predates the registry (run_random used it), kept so
/// recorded traces and measurements stay reproducible across PRs.
uint64_t thread_seed(const RunConfig& cfg, unsigned thread) {
  return mix64(cfg.seed ^ (0x9e37ull + thread));
}

std::vector<Op> edges_as_ops(std::vector<Edge> edges, OpKind kind) {
  std::vector<Op> ops;
  ops.reserve(edges.size());
  for (const Edge& e : edges) ops.push_back({kind, e.u, e.v});
  return ops;
}

/// The trace both replay scenarios pull from: run_scenario pre-loads it into
/// cfg.preloaded_trace so N workers don't re-read the file N times; direct
/// factory callers (record_trace, tests) fall back to loading it here.
std::shared_ptr<const io::Trace> resolve_trace(const RunConfig& cfg,
                                               const char* scenario) {
  if (cfg.preloaded_trace != nullptr) return cfg.preloaded_trace;
  if (cfg.trace_path.empty()) {
    throw std::invalid_argument(std::string(scenario) +
                                " scenario needs RunConfig::trace_path "
                                "(DC_BENCH_TRACE)");
  }
  return std::make_shared<const io::Trace>(io::load_trace_file(cfg.trace_path));
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& r) {
  ScenarioCaps random_caps;
  random_caps.uses_read_percent = true;
  random_caps.prefill = Prefill::kHalf;
  r.add("random",
        "uniform random mix over the edge list; half the graph pre-inserted "
        "(paper §5.1)",
        random_caps,
        [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<RandomOpStream>(g, cfg.read_percent,
                                                  thread_seed(cfg, t));
        });

  ScenarioCaps inc_caps;
  inc_caps.finite = true;
  r.add("incremental",
        "threads insert the whole graph, striped, into an empty structure",
        inc_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<VectorOpStream>(
              edges_as_ops(stripe(g.edges(), t, cfg.threads), OpKind::kAdd));
        });

  ScenarioCaps dec_caps;
  dec_caps.finite = true;
  dec_caps.prefill = Prefill::kFull;
  r.add("decremental",
        "threads erase every edge, striped, from a full structure "
        "(replacement-search heavy)",
        dec_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<VectorOpStream>(
              edges_as_ops(stripe(g.edges(), t, cfg.threads), OpKind::kRemove));
        });

  ScenarioCaps brand_caps = random_caps;
  brand_caps.batched = true;
  r.add("batch-random",
        "the random mix submitted as apply_batch calls of batch_size ops",
        brand_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<RandomOpStream>(g, cfg.read_percent,
                                                  thread_seed(cfg, t));
        });

  ScenarioCaps binc_caps = inc_caps;
  binc_caps.batched = true;
  r.add("batch-incremental",
        "the incremental insertion submitted as apply_batch calls",
        binc_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<VectorOpStream>(
              edges_as_ops(stripe(g.edges(), t, cfg.threads), OpKind::kAdd));
        });

  ScenarioCaps zipf_caps = random_caps;
  r.add("zipfian",
        "Zipf(0.99)-skewed edge popularity: a hot set of edges absorbs most "
        "operations (contention regime)",
        zipf_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<ZipfianOpStream>(g, cfg.read_percent,
                                                   cfg.seed, t,
                                                   cfg.zipf_theta);
        });

  ScenarioCaps slide_caps;
  slide_caps.uses_read_percent = true;
  r.add("sliding-window",
        "temporal churn: adds march a window through each thread's stripe, "
        "removes expire the trailing edge, reads stay inside the window",
        slide_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<SlidingWindowStream>(
              stripe(g.edges(), t, cfg.threads), cfg.read_percent,
              thread_seed(cfg, t), cfg.window_fraction);
        });

  ScenarioCaps local_caps = random_caps;
  r.add("component-local",
        "operations clustered inside vertex communities with sticky runs "
        "(exercises fine/full per-component locality)",
        local_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<ComponentLocalStream>(
              g, cfg.read_percent, cfg.communities, cfg.seed, t,
              cfg.run_length);
        });

  ScenarioCaps trace_caps;
  trace_caps.finite = true;
  trace_caps.needs_trace = true;
  r.add("trace-replay",
        "replay a recorded trace file (RunConfig::trace_path / "
        "DC_BENCH_TRACE), striped across threads",
        trace_caps, [](const Graph&, const RunConfig& cfg, unsigned t) {
          const auto trace = resolve_trace(cfg, "trace-replay");
          std::vector<Op> mine;
          mine.reserve(trace->ops.size() / cfg.threads + 1);
          for (std::size_t i = t; i < trace->ops.size(); i += cfg.threads)
            mine.push_back(trace->ops[i]);
          return std::make_unique<VectorOpStream>(std::move(mine));
        });

  ScenarioCaps dep_caps = trace_caps;
  dep_caps.tracks_latency = true;
  r.add("trace-replay-dep",
        "replay a recorded trace hash-partitioned by edge: all ops on one "
        "edge stay ordered on one thread (dependency-preserving, closed-loop "
        "per-op latency)",
        dep_caps, [](const Graph&, const RunConfig& cfg, unsigned t) {
          const auto trace = resolve_trace(cfg, "trace-replay-dep");
          return std::make_unique<VectorOpStream>(
              edge_partition(trace->ops, t, cfg.threads));
        });

  // --- Query API v2 scenarios ----------------------------------------------

  ScenarioCaps sizeq_caps = random_caps;
  r.add("size-query",
        "read-heavy value-query mix: reads rotate connected / component_size "
        "/ representative over a churning edge set (Query API v2)",
        sizeq_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<SizeQueryStream>(g, cfg.read_percent,
                                                   thread_seed(cfg, t));
        });

  ScenarioCaps bulk_caps;
  bulk_caps.batched = true;
  bulk_caps.prefill = Prefill::kHalf;
  r.add("bulk-connected",
        "pure connectivity-pair queries submitted as apply_batch calls "
        "(\"answer these 10k pairs at once\"); read-only batches hit the "
        "variants' pure-read exemption",
        bulk_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          // 100% reads: every batch is query-only regardless of
          // cfg.read_percent.
          return std::make_unique<RandomOpStream>(g, 100,
                                                  thread_seed(cfg, t));
        });

  // Batched variants of the skewed scenarios (ROADMAP follow-on): whether
  // combining wins grow under contention is only measurable if the
  // contended mixes can be driven through apply_batch too.
  ScenarioCaps bzipf_caps = zipf_caps;
  bzipf_caps.batched = true;
  r.add("batch-zipfian",
        "the zipfian hot-edge mix submitted as apply_batch calls of "
        "batch_size ops",
        bzipf_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<ZipfianOpStream>(g, cfg.read_percent,
                                                   cfg.seed, t,
                                                   cfg.zipf_theta);
        });

  ScenarioCaps bwin_caps = slide_caps;
  bwin_caps.batched = true;
  r.add("batch-window",
        "the sliding-window churn submitted as apply_batch calls of "
        "batch_size ops",
        bwin_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<SlidingWindowStream>(
              stripe(g.edges(), t, cfg.threads), cfg.read_percent,
              thread_seed(cfg, t), cfg.window_fraction);
        });

  ScenarioCaps blocal_caps = local_caps;
  blocal_caps.batched = true;
  r.add("batch-component-local",
        "the community-clustered sticky-run mix submitted as apply_batch "
        "calls of batch_size ops: whole batches stay inside one community — "
        "the locality regime the label cache's published epochs survive "
        "longest",
        blocal_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<ComponentLocalStream>(
              g, cfg.read_percent, cfg.communities, cfg.seed, t,
              cfg.run_length);
        });

  ScenarioCaps imb_caps = random_caps;
  r.add("work-imbalance",
        "shard-skewed mix: shard_skew of the draws hit edges that land "
        "entirely on shard 0 of the sharded facade's router (DC_SHARDS / "
        "DC_BENCH_SHARD_SKEW) — the static-partition worst case",
        imb_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          return std::make_unique<WorkImbalanceStream>(
              g, cfg.read_percent, thread_seed(cfg, t), cfg.shard_skew);
        });

  ScenarioCaps fire_caps = random_caps;
  fire_caps.paced = true;
  r.add("firehose",
        "open-loop sustained ingest: the random mix released on a fixed "
        "arrival schedule of DC_BENCH_RATE ops/sec aggregate across threads "
        "(0 = unpaced) — the arrival process of the ingest pipeline "
        "(DESIGN.md §11), whose sojourn tails the bench `ingest` section "
        "measures end to end",
        fire_caps, [](const Graph& g, const RunConfig& cfg, unsigned t) {
          auto inner = std::make_unique<RandomOpStream>(g, cfg.read_percent,
                                                        thread_seed(cfg, t));
          // Aggregate rate split evenly over the workers; each thread owns
          // an independent fixed-interval schedule.
          return std::make_unique<PacedStream>(
              std::move(inner),
              cfg.arrival_rate > 0 ? cfg.arrival_rate / cfg.threads : 0);
        });
}

std::vector<Op> prefill_ops(Prefill p, const Graph& g, uint64_t seed) {
  switch (p) {
    case Prefill::kNone:
      return {};
    case Prefill::kHalf:
      return edges_as_ops(random_half(g, seed), OpKind::kAdd);
    case Prefill::kFull:
      return edges_as_ops(g.edges(), OpKind::kAdd);
  }
  return {};
}

io::Trace record_trace(const ScenarioInfo& s, const Graph& g,
                       const RunConfig& cfg, std::size_t max_ops) {
  RunConfig one = cfg;
  one.threads = 1;  // the trace is one linear program
  io::Trace t;
  t.num_vertices = g.num_vertices();
  t.ops = prefill_ops(s.caps.prefill, g, one.seed);
  t.ops.reserve(t.ops.size() + max_ops);  // one allocation, not log2 regrows
  const std::unique_ptr<OpStream> stream = s.make_stream(g, one, 0);
  Op op;
  for (std::size_t i = 0; i < max_ops && stream->next(op); ++i)
    t.ops.push_back(op);
  return t;
}

void record_trace_file(const ScenarioInfo& s, const Graph& g,
                       const RunConfig& cfg, std::size_t max_ops,
                       const std::string& path) {
  const io::Trace t = record_trace(s, g, cfg, max_ops);
  // v2 for the boolean vocabulary, v3 as soon as a scenario (size-query)
  // emits value-returning ops — the writer refuses the lossy downgrade.
  io::save_trace_file(t, path, io::preferred_format(t));
}

std::vector<uint64_t> replay_trace(DynamicConnectivity& dc,
                                   std::span<const Op> ops) {
  std::vector<uint64_t> results;
  results.reserve(ops.size());
  for (const Op& op : ops) results.push_back(exec_single(dc, op));
  return results;
}

}  // namespace condyn::harness
