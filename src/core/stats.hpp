#pragma once

#include <cstdint>

// Memory-subsystem counters (pool hits, allocator calls, bytes) ride
// alongside the operation counters: the harness resets and collects
// pool_stats::local() at the same points as op_stats::local(), and
// bench_suite's `memory` section reports both (DESIGN.md §7.4).
#include "util/pool_stats.hpp"

namespace condyn::op_stats {

/// Thread-local operation statistics matching what the paper reports:
///  * read retries (§5.3 "more than 99.99% reads succeed on the first try");
///  * non-spanning vs spanning update counts (Tables 3 and 4);
///  * non-blocking vs blocking update paths.
struct Counters {
  uint64_t reads = 0;
  uint64_t read_retries = 0;          ///< extra passes of Listing 1's loop
  uint64_t additions = 0;
  uint64_t nonspanning_additions = 0; ///< adds that did not touch the forest
  uint64_t removals = 0;
  uint64_t nonspanning_removals = 0;  ///< removals of non-forest edges
  uint64_t nonblocking_updates = 0;   ///< updates completed without locks
  uint64_t replacement_searches = 0;
  uint64_t replacements_found = 0;
  uint64_t sampling_hits = 0;         ///< replacement found on the sampling fast path
  uint64_t label_hits = 0;            ///< label-cache O(1) answers (DESIGN.md §8)
  uint64_t label_misses = 0;          ///< label-cache fallbacks to the tree walk
  uint64_t label_publishes = 0;       ///< chains published by walk_and_publish
  uint64_t shard_cross_updates = 0;   ///< boundary-layer edge updates (§10)
  uint64_t shard_boundary_queries = 0;  ///< queries that consulted the index
  uint64_t shard_index_rebuilds = 0;    ///< boundary index rebuilds

  Counters& operator+=(const Counters& o) noexcept {
    reads += o.reads;
    read_retries += o.read_retries;
    additions += o.additions;
    nonspanning_additions += o.nonspanning_additions;
    removals += o.removals;
    nonspanning_removals += o.nonspanning_removals;
    nonblocking_updates += o.nonblocking_updates;
    replacement_searches += o.replacement_searches;
    replacements_found += o.replacements_found;
    sampling_hits += o.sampling_hits;
    label_hits += o.label_hits;
    label_misses += o.label_misses;
    label_publishes += o.label_publishes;
    shard_cross_updates += o.shard_cross_updates;
    shard_boundary_queries += o.shard_boundary_queries;
    shard_index_rebuilds += o.shard_index_rebuilds;
    return *this;
  }
};

Counters& local() noexcept;
void reset_local() noexcept;

}  // namespace condyn::op_stats
