#include "core/edge_state.hpp"

#ifdef CONDYN_TRACE_EDGE_STATES
#include <cstdio>

namespace condyn {

void EdgeStateCell::dump_trace() const noexcept {
  const uint32_t end = trace_pos.load(std::memory_order_relaxed);
  const uint32_t n = end < kTraceLen ? end : kTraceLen;
  std::fprintf(stderr, "edge-state trace (most recent last, %u entries):\n", n);
  for (uint32_t k = 0; k < n; ++k) {
    const EdgeTrace& t = traces[(end - n + k) % kTraceLen];
    const EdgeState f(t.from), to(t.to);
    std::fprintf(stderr,
                 "  site=%2u  (%d,l%d,s%llu) -> (%d,l%d,s%llu)\n", t.site,
                 (int)f.status(), f.level(), (unsigned long long)f.stamp(),
                 (int)to.status(), to.level(), (unsigned long long)to.stamp());
  }
}

}  // namespace condyn
#endif
