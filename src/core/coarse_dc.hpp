#pragma once

#include <mutex>
#include <string>

#include "api/dynamic_connectivity.hpp"
#include "core/hdt.hpp"
#include "core/label_cache.hpp"
#include "core/stats.hpp"

namespace condyn {

/// Coarse-grained variants (1)–(5): the HDT engine behind one global lock.
///
/// Template knobs cover the paper's combinations:
///  * Lock = SpinLock     → (1) plain coarse-grained locking;
///  * Lock = RwSpinLock   → (2) readers–writer lock (reads take shared mode);
///  * Lock = ElisionLock  → (4)/(5) HTM lock elision;
///  * NonBlockingReads    → (3)/(5): connected() bypasses the lock entirely
///    and runs the single-writer ETT's lock-free query.
template <typename Lock, bool NonBlockingReads>
class CoarseDc final : public DynamicConnectivity {
 public:
  explicit CoarseDc(Vertex n, std::string name, bool sampling = true)
      : hdt_(n, sampling), name_(std::move(name)) {
    // The label cache's hit path and fallback are both lock-free, so only
    // the non-blocking-reads instantiations build one (DESIGN.md §8).
    if constexpr (NonBlockingReads) {
      if (LabelCache::env_enabled())
        cache_ = std::make_unique<LabelCache>(&hdt_.level0());
    }
  }

  bool add_edge(Vertex u, Vertex v) override {
    std::lock_guard<Lock> lk(mu_);
    return hdt_.add_edge(u, v).performed;
  }

  bool remove_edge(Vertex u, Vertex v) override {
    std::lock_guard<Lock> lk(mu_);
    return hdt_.remove_edge(u, v).performed;
  }

  bool connected(Vertex u, Vertex v) override {
    if constexpr (NonBlockingReads) {
      return cache_ ? cache_->connected(u, v) : hdt_.connected(u, v);
    } else {
      ++op_stats::local().reads;
      mu_.lock_shared();  // == lock() for exclusive-only locks
      const bool r = hdt_.connected_writer(u, v);
      mu_.unlock_shared();
      return r;
    }
  }

  /// Value queries follow the family's read discipline exactly: lock-free
  /// against the published F_0 augmentation when reads are non-blocking,
  /// shared (or exclusive) locked root lookup otherwise.
  uint64_t component_size(Vertex u) override {
    if constexpr (NonBlockingReads) {
      return cache_ ? cache_->component_size(u) : hdt_.component_size(u);
    } else {
      ++op_stats::local().reads;
      mu_.lock_shared();
      const uint64_t r = hdt_.component_size_writer(u);
      mu_.unlock_shared();
      return r;
    }
  }

  Vertex representative(Vertex u) override {
    if constexpr (NonBlockingReads) {
      return cache_ ? cache_->representative(u) : hdt_.representative(u);
    } else {
      ++op_stats::local().reads;
      mu_.lock_shared();
      const Vertex r = hdt_.representative_writer(u);
      mu_.unlock_shared();
      return r;
    }
  }

  /// One lock acquisition for the whole batch — the amortization this
  /// variant family exists to demonstrate. Update-containing batches are
  /// atomic with respect to concurrent single ops and batches
  /// (caps.atomic_batch); with non-blocking reads, pure-read batches skip
  /// the lock and run as individual lock-free queries instead.
  BatchResult apply_batch(std::span<const Op> ops) override {
    BatchResult r;
    r.values.resize(ops.size());
    if (ops.empty()) return r;
    if (all_reads(ops)) {
      // A pure-read batch (connectivity + value queries) never needs
      // exclusivity: answer exactly like a sequence of single-op calls —
      // lock-free when the variant reads non-blocking, shared mode
      // otherwise (so coarse-rw read batches keep their reader
      // parallelism).
      if constexpr (NonBlockingReads) {
        for (std::size_t i = 0; i < ops.size(); ++i) {
          r.set_op(i, ops[i].kind,
                   cache_ ? cache_->exec_query(ops[i])
                          : hdt_.exec_query(ops[i]));
        }
      } else {
        op_stats::local().reads += ops.size();
        mu_.lock_shared();  // == lock() for exclusive-only locks
        for (std::size_t i = 0; i < ops.size(); ++i) {
          r.set_op(i, ops[i].kind, hdt_.exec_query_writer(ops[i]));
        }
        mu_.unlock_shared();
      }
      return r;
    }
    std::lock_guard<Lock> lk(mu_);
    hdt_.apply_batch(ops, r);
    return r;
  }

  ComponentsSnapshot components() override {
    if constexpr (NonBlockingReads) {
      if (cache_ != nullptr) {
        ComponentsSnapshot s;
        if (cache_->snapshot_labels(s.labels)) {
          s.consistent = true;
          return s;
        }
      }
    }
    return DynamicConnectivity::components();
  }

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  Hdt& engine() noexcept { return hdt_; }

 private:
  Hdt hdt_;
  Lock mu_;
  std::string name_;
  /// Declared last: destroyed first, detaching from hdt_'s level-0 forest.
  std::unique_ptr<LabelCache> cache_;
};

}  // namespace condyn
