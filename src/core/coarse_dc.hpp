#pragma once

#include <mutex>
#include <string>

#include "api/dynamic_connectivity.hpp"
#include "core/hdt.hpp"
#include "core/stats.hpp"

namespace condyn {

/// Coarse-grained variants (1)–(5): the HDT engine behind one global lock.
///
/// Template knobs cover the paper's combinations:
///  * Lock = SpinLock     → (1) plain coarse-grained locking;
///  * Lock = RwSpinLock   → (2) readers–writer lock (reads take shared mode);
///  * Lock = ElisionLock  → (4)/(5) HTM lock elision;
///  * NonBlockingReads    → (3)/(5): connected() bypasses the lock entirely
///    and runs the single-writer ETT's lock-free query.
template <typename Lock, bool NonBlockingReads>
class CoarseDc final : public DynamicConnectivity {
 public:
  explicit CoarseDc(Vertex n, std::string name, bool sampling = true)
      : hdt_(n, sampling), name_(std::move(name)) {}

  bool add_edge(Vertex u, Vertex v) override {
    std::lock_guard<Lock> lk(mu_);
    return hdt_.add_edge(u, v).performed;
  }

  bool remove_edge(Vertex u, Vertex v) override {
    std::lock_guard<Lock> lk(mu_);
    return hdt_.remove_edge(u, v).performed;
  }

  bool connected(Vertex u, Vertex v) override {
    if constexpr (NonBlockingReads) {
      return hdt_.connected(u, v);
    } else {
      ++op_stats::local().reads;
      mu_.lock_shared();  // == lock() for exclusive-only locks
      const bool r = hdt_.connected_writer(u, v);
      mu_.unlock_shared();
      return r;
    }
  }

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  Hdt& engine() noexcept { return hdt_; }

 private:
  Hdt hdt_;
  Lock mu_;
  std::string name_;
};

}  // namespace condyn
