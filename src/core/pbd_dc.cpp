#include "core/pbd_dc.hpp"

#include <algorithm>
#include <utility>

#include "core/batch_runs.hpp"
#include "core/component_lock.hpp"

namespace condyn {

PbdDc::PbdDc(Vertex n, std::string name, bool sampling, unsigned workers,
             std::size_t par_read_cutoff, std::size_t par_update_cutoff)
    : hdt_(n, sampling),
      name_(std::move(name)),
      par_read_cutoff_(par_read_cutoff),
      par_update_cutoff_(par_update_cutoff),
      pool_(workers) {
  part_scratch_.resize(pool_.workers());
  part_nets_.resize(pool_.workers());
  part_counts_.resize(pool_.workers());
}

bool PbdDc::add_edge(Vertex u, Vertex v) {
  std::lock_guard<std::mutex> lk(mu_);
  return hdt_.add_edge(u, v).performed;
}

bool PbdDc::remove_edge(Vertex u, Vertex v) {
  std::lock_guard<std::mutex> lk(mu_);
  return hdt_.remove_edge(u, v).performed;
}

/// Phase 1: per-edge simulation. Each gang member owns the edges whose
/// edge_partition_hash lands in its partition, sorts its share of the
/// update ops by canonical edge key (ties broken by batch position, so a
/// group is that edge's ops in batch order), and replays each group against
/// the edge's initial presence. Return values come straight out of the
/// replay — an add/remove result depends only on its own edge's prior
/// history, never on queries or other edges — and the engine is asked to
/// materialize only the *net* state change per run: interleaved add/remove
/// pairs on one edge cancel before any tree work happens.
void PbdDc::preprocess(std::span<const Op> ops, BatchResult& r) {
  const unsigned gang = pool_.workers();
  const unsigned P =
      (gang > 1 && upd_pos_.size() >= 2 * par_update_cutoff_) ? gang : 1;

  auto simulate = [&](unsigned p) {
    std::vector<uint32_t>& mine = part_scratch_[p];
    std::vector<NetOp>& nets = part_nets_[p];
    mine.clear();
    nets.clear();
    for (uint32_t k = 0; k < upd_pos_.size(); ++k) {
      const Op& o = ops[upd_pos_[k]];
      if (P == 1 || edge_partition_hash(o.u, o.v) % P == p) mine.push_back(k);
    }
    std::sort(mine.begin(), mine.end(), [&](uint32_t a, uint32_t b) {
      const uint64_t ka = Edge(ops[upd_pos_[a]].u, ops[upd_pos_[a]].v).key();
      const uint64_t kb = Edge(ops[upd_pos_[b]].u, ops[upd_pos_[b]].v).key();
      return ka != kb ? ka < kb : a < b;
    });
    uint64_t adds = 0, removes = 0;
    std::size_t s = 0;
    while (s < mine.size()) {
      const Op& first = ops[upd_pos_[mine[s]]];
      const Edge e(first.u, first.v);
      std::size_t t = s;
      while (t < mine.size() &&
             Edge(ops[upd_pos_[mine[t]]].u, ops[upd_pos_[mine[t]]].v) == e) {
        ++t;
      }
      const bool self_loop = e.u == e.v;
      // The structure is quiescent during preprocessing (batch mutex held,
      // no engine op issued yet), so the presence read is a plain lookup.
      bool cur = !self_loop && hdt_.has_edge(e.u, e.v);
      bool materialized = cur;
      uint32_t prev_run = run_of_[mine[s]];
      for (std::size_t q = s; q < t; ++q) {
        const uint32_t pos = mine[q];
        const Op& o = ops[upd_pos_[pos]];
        const uint32_t run = run_of_[pos];
        if (run != prev_run && cur != materialized) {
          nets.push_back({prev_run, cur ? OpKind::kAdd : OpKind::kRemove,
                          e.u, e.v});
          materialized = cur;
        }
        bool res;
        if (o.kind == OpKind::kAdd) {
          res = !self_loop && !cur;
          cur = cur || !self_loop;
          adds += res;
        } else {
          res = cur;
          cur = false;
          removes += res;
        }
        r.values[upd_pos_[pos]] = res;
        prev_run = run;
      }
      if (cur != materialized) {
        nets.push_back({prev_run, cur ? OpKind::kAdd : OpKind::kRemove, e.u,
                        e.v});
      }
      s = t;
    }
    part_counts_[p] = {adds, removes};
  };

  if (P == 1) {
    simulate(0);
    for (unsigned p = 1; p < gang; ++p) part_nets_[p].clear();
  } else {
    pool_.run(simulate);
  }

  for (unsigned p = 0; p < gang; ++p) {
    r.adds_performed += part_counts_[p].first;
    r.removes_performed += part_counts_[p].second;
    if (P == 1) break;
  }

  // Bucket the surviving net ops by run (counting sort; order within a run
  // is irrelevant — each edge appears at most once per run and distinct
  // edges commute).
  run_net_begin_.assign(num_runs_ + 1, 0);
  for (unsigned p = 0; p < gang; ++p) {
    for (const NetOp& n : part_nets_[p]) ++run_net_begin_[n.run + 1];
  }
  for (std::size_t k = 1; k <= num_runs_; ++k) {
    run_net_begin_[k] += run_net_begin_[k - 1];
  }
  net_ops_.resize(run_net_begin_[num_runs_]);
  std::vector<uint32_t> cursor(run_net_begin_.begin(),
                               run_net_begin_.end() - 1);
  for (unsigned p = 0; p < gang; ++p) {
    for (const NetOp& n : part_nets_[p]) net_ops_[cursor[n.run]++] = n;
  }
}

/// Phase 2: segment plan. Query stretches and surviving-net-op runs, in
/// batch order; a run whose net ops all cancelled is dropped, which merges
/// the query stretches around it into one longer (better-parallelizable)
/// stretch — the cancelled updates' results were already written by the
/// simulation, so execution just skips those indices.
void PbdDc::build_segments(std::span<const Op> ops) {
  segments_.clear();
  const unsigned gang = pool_.workers();
  bool read_open = false;
  std::size_t read_queries = 0;
  uint32_t run_ord = 0;
  auto close_read = [&](std::size_t) {
    if (read_open) {
      segments_.back().parallel =
          gang > 1 && read_queries >= par_read_cutoff_;
      read_open = false;
    }
  };
  for_each_batch_segment(
      ops,
      [&](std::size_t i) {
        if (!read_open) {
          segments_.push_back({true, false, static_cast<uint32_t>(i),
                               static_cast<uint32_t>(i + 1)});
          read_open = true;
          read_queries = 0;
        }
        segments_.back().end = static_cast<uint32_t>(i + 1);
        ++read_queries;
      },
      [&](std::size_t i, std::size_t j) {
        const uint32_t nb = run_net_begin_[run_ord];
        const uint32_t ne = run_net_begin_[run_ord + 1];
        ++run_ord;
        if (nb == ne) {
          // Fully cancelled run: keep any open read stretch open across it.
          if (read_open) segments_.back().end = static_cast<uint32_t>(j);
          return;
        }
        close_read(i);
        segments_.push_back(
            {false, gang > 1 && ne - nb >= par_update_cutoff_, nb, ne});
      });
  close_read(ops.size());
}

void PbdDc::exec_read(std::span<const Op> ops, BatchResult& r,
                      const Segment& s, unsigned worker, unsigned stride,
                      std::atomic<uint64_t>& queries_true) {
  uint64_t local_true = 0;
  for (uint32_t i = s.begin + worker; i < s.end; i += stride) {
    const Op& o = ops[i];
    if (!is_query(o.kind)) continue;  // cancelled update inside the stretch
    const uint64_t val = hdt_.exec_query(o);
    r.values[i] = val;
    local_true += (o.kind == OpKind::kConnected && val != 0);
  }
  if (local_true != 0) {
    queries_true.fetch_add(local_true, std::memory_order_relaxed);
  }
}

void PbdDc::exec_update(const Segment& s, unsigned worker, unsigned stride,
                        bool guarded) {
  for (uint32_t k = s.begin + worker; k < s.end; k += stride) {
    const NetOp& n = net_ops_[k];
    if (guarded) {
      // Concurrent gang members follow the fine-family discipline: the
      // Listing-2 component guard serializes spanning-forest repair of
      // overlapping components and lets disjoint ones proceed in parallel.
      ComponentGuard g(hdt_.level0(), n.u, n.v);
      if (n.kind == OpKind::kAdd) {
        hdt_.add_edge(n.u, n.v);
      } else {
        hdt_.remove_edge(n.u, n.v);
      }
    } else if (n.kind == OpKind::kAdd) {
      hdt_.add_edge(n.u, n.v);
    } else {
      hdt_.remove_edge(n.u, n.v);
    }
  }
}

BatchResult PbdDc::apply_batch(std::span<const Op> ops) {
  BatchResult r;
  r.values.resize(ops.size());
  if (ops.empty()) return r;
  if (all_reads(ops)) {
    // Pure-read exemption: a query-only batch runs as individual lock-free
    // queries, exactly like the other lock_free_reads families.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      r.set_op(i, ops[i].kind, hdt_.exec_query(ops[i]));
    }
    return r;
  }

  std::lock_guard<std::mutex> lk(mu_);

  if (pool_.workers() == 1) {
    // Gang of one (single-core machine or DC_PBD_WORKERS=1): the plan could
    // only ever produce sequential residue, so the simulate/sort/segment
    // phases are pure overhead — go straight to the engine's batch loop.
    // The blocking mutex still makes the batch atomic to concurrent callers.
    hdt_.apply_batch(ops, r);
    return r;
  }

  // Scan: update positions and their run ordinals (queries delimit runs).
  upd_pos_.clear();
  run_of_.clear();
  num_runs_ = 0;
  for_each_batch_segment(
      ops, [](std::size_t) {},
      [&](std::size_t i, std::size_t j) {
        for (std::size_t k = i; k < j; ++k) {
          upd_pos_.push_back(static_cast<uint32_t>(k));
          run_of_.push_back(static_cast<uint32_t>(num_runs_));
        }
        ++num_runs_;
      });

  preprocess(ops, r);
  build_segments(ops);

  std::atomic<uint64_t> queries_true{0};
  bool any_parallel = false;
  for (const Segment& s : segments_) any_parallel |= s.parallel;

  if (!any_parallel) {
    // Sequential residue only: the leader applies the plan directly, with
    // no guards (the batch mutex makes it the sole writer).
    for (const Segment& s : segments_) {
      if (s.read) {
        exec_read(ops, r, s, 0, 1, queries_true);
      } else {
        exec_update(s, 0, 1, /*guarded=*/false);
      }
    }
  } else {
    const unsigned gang = pool_.workers();
    SpinBarrier barrier(gang);
    pool_.run([&](unsigned w) {
      for (const Segment& s : segments_) {
        if (!s.parallel) {
          // Sequential residue: the leader runs it while the gang coasts to
          // the next fan-out barrier (it is guaranteed idle — the previous
          // parallel segment's exit barrier has been passed).
          if (w == 0) {
            if (s.read) {
              exec_read(ops, r, s, 0, 1, queries_true);
            } else {
              exec_update(s, 0, 1, /*guarded=*/false);
            }
          }
          continue;
        }
        barrier.arrive_and_wait();
        if (s.read) {
          exec_read(ops, r, s, w, gang, queries_true);
        } else {
          exec_update(s, w, gang, /*guarded=*/true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  r.queries_true = queries_true.load(std::memory_order_relaxed);
  return r;
}

}  // namespace condyn
