#pragma once

#include <cstddef>
#include <cstring>
#include <mutex>
#include <new>

#include "graph/graph.hpp"
#include "util/cacheline.hpp"
#include "util/pool_stats.hpp"
#include "util/random.hpp"
#include "util/spinlock.hpp"

namespace condyn {

/// Sharded flat hash map from 64-bit keys to records with stable addresses
/// (DESIGN.md §7.2).
///
/// Uses in this library:
///  * arc-node tables of each ETT forest (key = canonical edge key);
///  * the per-edge state table of the full algorithm (Listing 5's
///    `ConcurrentHashMap<Edge, State>`);
///  * per-level non-spanning adjacency sets (key = vertex).
///
/// Contract (unchanged from the node-based predecessor): records are
/// created once and never move or die until erase()/clear()/dtor, so a
/// caller may hold a Record* and CAS its atomic fields without a
/// reclamation protocol; "removed" is a state value, not an erased entry
/// (erase() exists for writer-only tables such as arc maps and is only safe
/// when no thread can still hold the pointer). Lookups take a per-shard
/// spinlock only to find/insert the record — the record's fields themselves
/// are then accessed lock-free or under the owning component's lock.
///
/// Layout: each shard is a stack of open-addressing segments (linear
/// probing, power-of-two capacity, one control byte per slot, the Record
/// stored INLINE next to its key — a hit costs one probe run in one array
/// instead of the bucket-node-unique_ptr chase of
/// `unordered_map<uint64_t, unique_ptr<Record>>`). Growth appends a
/// double-size segment rather than rehashing, because rehashing would move
/// records out from under concurrent holders; lookups probe newest → oldest
/// (older segments hold a geometrically-shrinking share of the keys, and a
/// map sized from `expected_keys` at construction rarely grows at all).
/// erase() leaves a tombstone that keeps probe chains intact; a later
/// insert whose probe run passes a tombstone reuses the slot in place.
template <typename Record>
class ShardedU64Map {
 public:
  /// `expected_keys` sizes the initial segment of every shard so the
  /// steady-state map needs no growth segment; `shards` (rounded up to a
  /// power of two, default 64) bounds writer concurrency.
  explicit ShardedU64Map(std::size_t expected_keys = 0, unsigned shards = 0)
      : shards_(round_pow2(shards == 0 ? kDefaultShards : shards)) {
    std::size_t per_shard = expected_keys / shards_ + 1;
    // 7/8 max load plus headroom so "expected" does not mean "about to grow".
    init_cap_ = round_pow2(std::max<std::size_t>(kMinCap, per_shard * 2));
    table_ = static_cast<Shard*>(
        ::operator new(sizeof(Shard) * shards_, std::align_val_t{kCacheLine}));
    for (unsigned i = 0; i < shards_; ++i) ::new (&table_[i]) Shard();
  }

  ~ShardedU64Map() {
    for (unsigned i = 0; i < shards_; ++i) {
      free_segments(table_[i]);
      table_[i].~Shard();
    }
    ::operator delete(table_, std::align_val_t{kCacheLine});
  }

  ShardedU64Map(const ShardedU64Map&) = delete;
  ShardedU64Map& operator=(const ShardedU64Map&) = delete;

  Record* find(uint64_t key) const {
    const uint64_t h = mix64(key);
    Shard& s = shard(h);
    std::lock_guard<SpinLock> lk(s.mu);
    for (Segment* seg = s.newest; seg != nullptr; seg = seg->older) {
      const std::size_t idx = probe_find(*seg, key, h);
      if (idx != kNotFound) return &seg->slots[idx].rec;
    }
    return nullptr;
  }

  Record* get_or_create(uint64_t key) {
    const uint64_t h = mix64(key);
    Shard& s = shard(h);
    std::lock_guard<SpinLock> lk(s.mu);
    if (s.newest == nullptr) push_segment(s, init_cap_);

    // One probe pass over every segment: return on a hit, remember the first
    // tombstone on the key's chain for in-place reuse.
    Segment* tomb_seg = nullptr;
    std::size_t tomb_idx = 0;
    for (Segment* seg = s.newest; seg != nullptr; seg = seg->older) {
      std::size_t i = static_cast<std::size_t>(h >> 32) & seg->mask;
      for (;;) {
        const uint8_t c = seg->ctrl[i];
        if (c == kEmpty) break;
        if (c == kFull && seg->slots[i].key == key) return &seg->slots[i].rec;
        if (c == kTomb && tomb_seg == nullptr) {
          tomb_seg = seg;
          tomb_idx = i;
        }
        i = (i + 1) & seg->mask;
      }
    }

    if (tomb_seg != nullptr) {
      // Reuse lies on the key's probe chain of its segment (we passed it
      // while probing), so later finds reach it before any empty slot.
      construct(*tomb_seg, tomb_idx, key);
      --tomb_seg->tombs;
      ++s.live;
      return &tomb_seg->slots[tomb_idx].rec;
    }

    if ((s.newest->fill + 1) * 8 > (s.newest->mask + 1) * 7) {
      push_segment(s, (s.newest->mask + 1) * 2);
    }
    Segment& seg = *s.newest;
    std::size_t i = static_cast<std::size_t>(h >> 32) & seg.mask;
    while (seg.ctrl[i] != kEmpty) i = (i + 1) & seg.mask;
    construct(seg, i, key);
    ++seg.fill;
    ++s.live;
    return &seg.slots[i].rec;
  }

  /// Physically erase (only safe when no thread can hold the pointer).
  /// The slot becomes a tombstone; probe chains through it stay intact.
  void erase(uint64_t key) {
    const uint64_t h = mix64(key);
    Shard& s = shard(h);
    std::lock_guard<SpinLock> lk(s.mu);
    for (Segment* seg = s.newest; seg != nullptr; seg = seg->older) {
      const std::size_t idx = probe_find(*seg, key, h);
      if (idx == kNotFound) continue;
      seg->slots[idx].rec.~Record();
      seg->ctrl[idx] = kTomb;
      ++seg->tombs;
      --s.live;
      return;
    }
  }

  void clear() {
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      free_segments(table_[i]);
      table_[i].newest = nullptr;
      table_[i].live = 0;
    }
  }

  /// Visit every record (takes each shard lock in turn).
  template <typename F>
  void for_each(F&& f) const {
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      for (Segment* seg = table_[i].newest; seg != nullptr; seg = seg->older) {
        for (std::size_t j = 0; j <= seg->mask; ++j) {
          if (seg->ctrl[j] == kFull) f(seg->slots[j].key, seg->slots[j].rec);
        }
      }
    }
  }

  /// Live records (introspection/tests; takes each shard lock in turn).
  std::size_t size() const {
    std::size_t n = 0;
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      n += table_[i].live;
    }
    return n;
  }

  /// Total open-addressing segments (1 per shard until a shard grows).
  std::size_t segments() const {
    std::size_t n = 0;
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      for (Segment* seg = table_[i].newest; seg != nullptr; seg = seg->older)
        ++n;
    }
    return n;
  }

  /// Total slot capacity across all shards and segments.
  std::size_t capacity() const {
    std::size_t n = 0;
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      for (Segment* seg = table_[i].newest; seg != nullptr; seg = seg->older)
        n += seg->mask + 1;
    }
    return n;
  }

 private:
  static constexpr unsigned kDefaultShards = 64;
  static constexpr std::size_t kMinCap = 8;
  static constexpr std::size_t kNotFound = ~std::size_t{0};
  static constexpr uint8_t kEmpty = 0, kFull = 1, kTomb = 2;

  struct Slot {
    uint64_t key;
    Record rec;
  };

  /// One open-addressing segment: control bytes and inline slots share a
  /// single allocation (slots first for alignment, ctrl bytes after).
  struct Segment {
    Segment* older;
    std::size_t mask;   ///< capacity - 1 (power of two)
    std::size_t fill;   ///< full + tombstone slots (probe-length bound)
    std::size_t tombs;
    uint8_t* ctrl;
    Slot* slots;
  };

  struct alignas(kCacheLine) Shard {
    mutable SpinLock mu;
    Segment* newest = nullptr;
    std::size_t live = 0;
  };

  static std::size_t round_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Shard& shard(uint64_t h) const { return table_[h & (shards_ - 1)]; }

  /// Index of `key` in `seg`, or kNotFound at the chain's first empty slot.
  static std::size_t probe_find(const Segment& seg, uint64_t key,
                                uint64_t h) noexcept {
    std::size_t i = static_cast<std::size_t>(h >> 32) & seg.mask;
    for (;;) {
      const uint8_t c = seg.ctrl[i];
      if (c == kEmpty) return kNotFound;
      if (c == kFull && seg.slots[i].key == key) return i;
      i = (i + 1) & seg.mask;
    }
  }

  static void construct(Segment& seg, std::size_t idx, uint64_t key) {
    seg.ctrl[idx] = kFull;
    seg.slots[idx].key = key;
    ::new (&seg.slots[idx].rec) Record();
  }

  // Header and slots share one allocation; the slot offset is rounded up so
  // over-aligned Records (e.g. a future alignas(kCacheLine) one) still get
  // correctly-aligned storage.
  static constexpr std::size_t seg_align() noexcept {
    return alignof(Slot) > alignof(Segment) ? alignof(Slot)
                                            : alignof(Segment);
  }
  static constexpr std::size_t slots_offset() noexcept {
    return (sizeof(Segment) + alignof(Slot) - 1) / alignof(Slot) *
           alignof(Slot);
  }

  void push_segment(Shard& s, std::size_t cap) {
    const std::size_t bytes = slots_offset() + cap * sizeof(Slot) + cap;
    auto* base = static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{seg_align()}));
    auto* seg = ::new (base) Segment();
    seg->older = s.newest;
    seg->mask = cap - 1;
    seg->fill = 0;
    seg->tombs = 0;
    seg->slots = reinterpret_cast<Slot*>(base + slots_offset());
    seg->ctrl = reinterpret_cast<uint8_t*>(seg->slots + cap);
    std::memset(seg->ctrl, kEmpty, cap);
    s.newest = seg;
    auto& st = pool_stats::local();
    ++st.allocator_calls;
    st.bytes_allocated += bytes;
    pool_stats::add_resident(static_cast<int64_t>(bytes));
  }

  void free_segments(Shard& s) {
    auto& st = pool_stats::local();
    for (Segment* seg = s.newest; seg != nullptr;) {
      Segment* older = seg->older;
      for (std::size_t j = 0; j <= seg->mask; ++j) {
        if (seg->ctrl[j] == kFull) seg->slots[j].rec.~Record();
      }
      ++st.allocator_frees;
      pool_stats::add_resident(
          -static_cast<int64_t>(slots_offset() + (seg->mask + 1) *
                                                     (sizeof(Slot) + 1)));
      seg->~Segment();
      ::operator delete(reinterpret_cast<std::byte*>(seg),
                        std::align_val_t{seg_align()});
      seg = older;
    }
  }

  unsigned shards_;
  std::size_t init_cap_;
  Shard* table_;
};

/// Edge-keyed convenience wrapper.
template <typename Record>
class ShardedEdgeMap {
 public:
  explicit ShardedEdgeMap(std::size_t expected_keys = 0, unsigned shards = 0)
      : map_(expected_keys, shards) {}

  Record* find(const Edge& e) const { return map_.find(e.key()); }
  Record* get_or_create(const Edge& e) { return map_.get_or_create(e.key()); }
  void erase(const Edge& e) { map_.erase(e.key()); }
  void clear() { map_.clear(); }
  std::size_t size() const { return map_.size(); }

  template <typename F>
  void for_each(F&& f) const {
    map_.for_each([&](uint64_t k, Record& r) { f(Edge::from_key(k), r); });
  }

 private:
  ShardedU64Map<Record> map_;
};

}  // namespace condyn
