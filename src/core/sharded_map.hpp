#pragma once

#include <memory>
#include <mutex>
#include <unordered_map>

#include "graph/graph.hpp"
#include "util/cacheline.hpp"
#include "util/random.hpp"
#include "util/spinlock.hpp"

namespace condyn {

/// Sharded hash map from 64-bit keys to records with stable addresses.
///
/// Uses in this library:
///  * arc-node tables of each ETT forest (key = canonical edge key);
///  * the per-edge state table of the full algorithm (Listing 5's
///    `ConcurrentHashMap<Edge, State>`);
///  * per-level non-spanning adjacency sets (key = vertex).
///
/// Records are allocated once and never move or die until clear()/dtor, so a
/// caller may hold a Record* and CAS its atomic fields without a reclamation
/// protocol; "removed" is a state value, not an erased entry (erase() exists
/// for writer-only tables such as arc maps). Lookups take a per-shard
/// spinlock only to find/insert the record — the record's fields themselves
/// are then accessed lock-free or under the owning component's lock.
template <typename Record>
class ShardedU64Map {
 public:
  explicit ShardedU64Map(unsigned shards = 64)
      : shards_(shards), table_(std::make_unique<Shard[]>(shards)) {}

  Record* find(uint64_t key) const {
    Shard& s = shard(key);
    std::lock_guard<SpinLock> lk(s.mu);
    auto it = s.map.find(key);
    return it == s.map.end() ? nullptr : it->second.get();
  }

  Record* get_or_create(uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<SpinLock> lk(s.mu);
    auto& slot = s.map[key];
    if (!slot) slot = std::make_unique<Record>();
    return slot.get();
  }

  /// Physically erase (only safe when no thread can hold the pointer).
  void erase(uint64_t key) {
    Shard& s = shard(key);
    std::lock_guard<SpinLock> lk(s.mu);
    s.map.erase(key);
  }

  void clear() {
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      table_[i].map.clear();
    }
  }

  /// Visit every record (takes each shard lock in turn).
  template <typename F>
  void for_each(F&& f) const {
    for (unsigned i = 0; i < shards_; ++i) {
      std::lock_guard<SpinLock> lk(table_[i].mu);
      for (auto& [k, rec] : table_[i].map) f(k, *rec);
    }
  }

 private:
  struct alignas(kCacheLine) Shard {
    mutable SpinLock mu;
    std::unordered_map<uint64_t, std::unique_ptr<Record>> map;
  };

  Shard& shard(uint64_t key) const { return table_[mix64(key) % shards_]; }

  unsigned shards_;
  std::unique_ptr<Shard[]> table_;
};

/// Edge-keyed convenience wrapper.
template <typename Record>
class ShardedEdgeMap {
 public:
  explicit ShardedEdgeMap(unsigned shards = 64) : map_(shards) {}

  Record* find(const Edge& e) const { return map_.find(e.key()); }
  Record* get_or_create(const Edge& e) { return map_.get_or_create(e.key()); }
  void erase(const Edge& e) { map_.erase(e.key()); }
  void clear() { map_.clear(); }

  template <typename F>
  void for_each(F&& f) const {
    map_.for_each([&](uint64_t k, Record& r) { f(Edge::from_key(k), r); });
  }

 private:
  ShardedU64Map<Record> map_;
};

}  // namespace condyn
