// Registry entries for the fine-grained family, variants (6)-(8).
#include "api/registry.hpp"
#include "core/fine_dc.hpp"

namespace condyn {

namespace {

VariantCaps fine_caps(bool lock_free_reads) {
  VariantCaps c;
  c.native_batch = true;
  c.lock_free_reads = lock_free_reads;
  c.sized_components = true;       // certified root's vcount under the guard
  c.stable_representative = true;  // certified root's vmin under the guard
  c.label_cache = lock_free_reads;  // cache hits/fallback are lock-free (§8)
  return c;  // not atomic_batch: per-component guards, not a batch lock
}

}  // namespace

void register_fine_variants(VariantRegistry& r) {
  r.add("fine", "fine-grained per-component locks for all operations",
        fine_caps(false), [](Vertex n, bool sampling) {
          return std::make_unique<FineDc<FineReadMode::kLocked>>(n, "fine",
                                                                 sampling);
        });
  r.add("fine-rw", "fine-grained readers-writer component locks",
        fine_caps(false), [](Vertex n, bool sampling) {
          return std::make_unique<FineDc<FineReadMode::kSharedLocks>>(
              n, "fine-rw", sampling);
        });
  r.add("fine-nbreads", "fine-grained updates + non-blocking reads",
        fine_caps(true), [](Vertex n, bool sampling) {
          return std::make_unique<FineDc<FineReadMode::kNonBlocking>>(
              n, "fine-nbreads", sampling);
        });
}

}  // namespace condyn
