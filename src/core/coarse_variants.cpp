// Registry entries for the coarse-grained family, variants (1)-(5).
#include "api/registry.hpp"
#include "core/coarse_dc.hpp"
#include "util/elision_lock.hpp"
#include "util/rw_lock.hpp"
#include "util/spinlock.hpp"

namespace condyn {

namespace {

VariantCaps coarse_caps(bool lock_free_reads) {
  VariantCaps c;
  c.native_batch = true;
  c.atomic_batch = true;
  c.lock_free_reads = lock_free_reads;
  c.sized_components = true;       // native root-vcount lookup (under/without
  c.stable_representative = true;  // the lock, per the read discipline)
  c.label_cache = lock_free_reads;  // cache hits/fallback are lock-free (§8)
  return c;
}

}  // namespace

void register_coarse_variants(VariantRegistry& r) {
  r.add("coarse", "coarse-grained locking for all operations",
        coarse_caps(false), [](Vertex n, bool sampling) {
          return std::make_unique<CoarseDc<SpinLock, false>>(n, "coarse",
                                                             sampling);
        });
  r.add("coarse-rw", "coarse-grained readers-writer lock", coarse_caps(false),
        [](Vertex n, bool sampling) {
          return std::make_unique<CoarseDc<RwSpinLock, false>>(n, "coarse-rw",
                                                               sampling);
        });
  r.add("coarse-nbreads", "coarse-grained updates + non-blocking reads",
        coarse_caps(true), [](Vertex n, bool sampling) {
          return std::make_unique<CoarseDc<SpinLock, true>>(
              n, "coarse-nbreads", sampling);
        });
  r.add("coarse-htm", "coarse-grained with HTM lock elision (all ops)",
        coarse_caps(false), [](Vertex n, bool sampling) {
          return std::make_unique<CoarseDc<ElisionLock, false>>(
              n, "coarse-htm", sampling);
        });
  r.add("coarse-htm-nbreads",
        "HTM-elided lock for updates + non-blocking reads", coarse_caps(true),
        [](Vertex n, bool sampling) {
          return std::make_unique<CoarseDc<ElisionLock, true>>(
              n, "coarse-htm-nbreads", sampling);
        });
}

}  // namespace condyn
