#include "core/ett.hpp"

#include <algorithm>
#include <cassert>

#include "core/label_cache.hpp"
#include "core/stats.hpp"
#include "util/ebr.hpp"
#include "util/node_pool.hpp"
#include "util/random.hpp"

namespace condyn::ett {

namespace {

/// Tour nodes come from the cacheline-strided pool (DESIGN.md §7.1): link()
/// and cut() recycle arc nodes through the EBR grace period instead of
/// paying the general-purpose allocator per spanning update.
NodePool<Node, kCacheLine>& node_pool() {
  return NodePool<Node, kCacheLine>::instance();
}

constexpr uint64_t kVertexPriorityBit = uint64_t{1} << 63;

/// Vertex priorities live in the top half, arc priorities in the bottom half,
/// so the max-priority node of any tour — its treap root — is always a
/// vertex node. See the Forest class comment for why that matters.
uint64_t draw_vertex_priority() noexcept {
  return kVertexPriorityBit | (thread_rng().next() >> 1);
}
uint64_t draw_arc_priority() noexcept { return thread_rng().next() >> 1; }

uint32_t sz(const Node* x) noexcept { return x ? x->size : 0; }
// vstat is written by the structure's writer only; relaxed is enough on the
// writer side (readers carry consistency through the version protocol, see
// component_size_nonblocking).
uint64_t vs(const Node* x) noexcept {
  return x ? x->vstat.load(std::memory_order_relaxed) : Node::kEmptyVstat;
}
uint32_t vc(const Node* x) noexcept { return Node::vstat_count(vs(x)); }
Vertex vmn(const Node* x) noexcept { return Node::vstat_min(vs(x)); }
bool sla(const Node* x) noexcept { return x ? x->sub_level_arc : false; }
// sub_nonspanning / local_nonspanning stay seq_cst everywhere: the flag
// protocol is a store-load (Dekker) race — recalculate_flags stores false
// then re-reads the inputs, while a lock-free adder bumps the counter then
// reads the flag (Lemma C.1). Acquire/release cannot order a store before a
// later load of a different variable, so both sides need the seq_cst total
// order. See the audit table in DESIGN.md §7.3.
bool sns(const Node* x) noexcept {
  return x && x->sub_nonspanning.load(std::memory_order_seq_cst);
}
bool local_ns(const Node* x) noexcept {
  return x->local_nonspanning.load(std::memory_order_seq_cst) != 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lock-free reader operations
// ---------------------------------------------------------------------------

RootSnapshot find_root_versioned(const Node* start) noexcept {
  // parent/version run at acquire (not seq_cst — this is THE read hot path):
  // every writer bumps the involved root versions before its first physical
  // store (I3) and issues every physical store with release, so a reader
  // that acquires *any* store of an update observes that update's version
  // bumps on its subsequent version read. If the reader instead saw only
  // pre-update values, its snapshot is a consistent older state. That is
  // exactly the seqlock-style double-collect argument of Listing 1; no
  // cross-variable total order is consulted (DESIGN.md §7.3).
  const Node* cur = start;
  for (;;) {
    const Node* p = cur->parent.load(std::memory_order_acquire);
    if (p == nullptr) break;
    cur = p;
  }
  return {cur, cur->version.load(std::memory_order_acquire)};
}

Node* find_root(Node* start) noexcept {
  Node* cur = start;
  for (;;) {
    Node* p = cur->parent.load(std::memory_order_acquire);
    if (p == nullptr) return cur;
    cur = p;
  }
}

bool connected_nonblocking(const Node* nu, const Node* nv) noexcept {
  auto guard = ebr::pin();
  auto& st = op_stats::local();
  ++st.reads;
  for (;;) {
    const RootSnapshot su = find_root_versioned(nu);
    const RootSnapshot sv = find_root_versioned(nv);
    // Has the component of `u` changed?
    if (find_root_versioned(nu) != su) {
      ++st.read_retries;
      continue;
    }
    if (su.root != sv.root) {
      // Likely different components; re-check that the two roots were
      // snapshotted atomically. The second re-check of `u` is required —
      // Appendix A constructs a non-linearizable history without it.
      if (find_root_versioned(nv) != sv) {
        ++st.read_retries;
        continue;
      }
      if (find_root_versioned(nu) != su) {
        ++st.read_retries;
        continue;
      }
    }
    return su.root == sv.root;
  }
}

void set_flags_up(Node* x) noexcept {
  // Listing 6's set_flags_up: stop as soon as a flag is already raised —
  // the raiser that performed that transition continues the walk. The flag
  // accesses stay seq_cst (Dekker pair with recalculate_flags, see sns());
  // the parent chase itself only needs acquire like any reader ascent.
  Node* cur = x;
  while (cur != nullptr) {
    if (cur->sub_nonspanning.load(std::memory_order_seq_cst)) return;
    cur->sub_nonspanning.store(true, std::memory_order_seq_cst);
    cur = cur->parent.load(std::memory_order_acquire);
  }
}

// ---------------------------------------------------------------------------
// Writer-side treap machinery
// ---------------------------------------------------------------------------

void Forest::set_parent(Node* child, Node* p) noexcept {
  assert(p == nullptr || node_less(child, p));  // invariant I1
  // Release: a reader that acquires this store must also observe the
  // version bumps sequenced before it in the writer (I3) — the pairing
  // find_root_versioned's acquire loads rely on. No reader decision is
  // based on the relative order of two different writers' independent
  // stores, so the stronger seq_cst total order is not needed here.
  if (child->parent.load(std::memory_order_relaxed) != p)
    child->parent.store(p, std::memory_order_release);
}

void Forest::pull(Node* x) noexcept {
  x->size = 1 + sz(x->left) + sz(x->right);
  // One packed load per child, one packed store: the count sum and the min
  // fold over the same two words. The store is a release, paired with the
  // acquire load in root_vstat_nonblocking: release alone does NOT stop
  // this (later) store from overtaking the writer's earlier version bump
  // on weakly-ordered hardware — instead, a reader whose acquire load
  // returns a transient mid-restructure word thereby synchronizes with it
  // and must observe the bump on its second version collect, so the
  // double-collect retries (same pairing as set_parent; x86-TSO gives this
  // for free either way).
  const uint64_t l = vs(x->left);
  const uint64_t r = vs(x->right);
  const uint32_t count =
      (x->is_vertex ? 1 : 0) + Node::vstat_count(l) + Node::vstat_count(r);
  Vertex mn = x->is_vertex ? x->tail : Node::kNoVertexSentinel;
  if (Node::vstat_min(l) < mn) mn = Node::vstat_min(l);
  if (Node::vstat_min(r) < mn) mn = Node::vstat_min(r);
  x->vstat.store(Node::pack_vstat(count, mn), std::memory_order_release);
  x->sub_level_arc = x->arc_at_level || sla(x->left) || sla(x->right);
  recalculate_flags(x);
}

void Forest::recalculate_flags(Node* x) noexcept {
  const bool ns = local_ns(x) || sns(x->left) || sns(x->right);
  x->sub_nonspanning.store(ns, std::memory_order_seq_cst);
  if (!ns) {
    // Lemma C.1: a lock-free adder may have raised the flag between our read
    // and our store; re-check after writing false and repair.
    if (local_ns(x) || sns(x->left) || sns(x->right))
      x->sub_nonspanning.store(true, std::memory_order_seq_cst);
  }
}

uint32_t Forest::rank_of(Node* x) noexcept {
  uint32_t r = sz(x->left);
  Node* cur = x;
  for (;;) {
    Node* p = cur->parent.load(std::memory_order_relaxed);
    if (p == nullptr || (p->left != cur && p->right != cur)) break;  // root
    if (p->right == cur) r += sz(p->left) + 1;
    cur = p;
  }
  return r;
}

Node* Forest::merge(Node* a, Node* b) noexcept {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (node_less(b, a)) {
    Node* r = merge(a->right, b);
    a->right = r;
    set_parent(r, a);
    pull(a);
    return a;
  }
  Node* l = merge(a, b->left);
  b->left = l;
  set_parent(l, b);
  pull(b);
  return b;
}

void Forest::split_walk(Node* prev, Node*& l, Node*& r) noexcept {
  // Ascend from `prev`, distributing path nodes onto the L / R sides.
  // The walk stops at the tree's root, detected as "prev is not a child of
  // its (possibly stale) parent pointer" — piece roots produced by earlier
  // splits keep stale parents by design (invariant I2).
  Node* p = prev->parent.load(std::memory_order_relaxed);
  bool prev_left = p != nullptr && p->left == prev;
  while (p != nullptr && (p->left == prev || p->right == prev)) {
    Node* np = p->parent.load(std::memory_order_relaxed);
    const bool p_left = np != nullptr && np->left == p;
    if (prev_left) {
      // p and its right subtree follow prev's subtree in tour order.
      p->left = r;
      if (r != nullptr) set_parent(r, p);
      pull(p);
      r = p;
    } else {
      p->right = l;
      if (l != nullptr) set_parent(l, p);
      pull(p);
      l = p;
    }
    prev = p;
    p = np;
    prev_left = p_left;
  }
}

std::pair<Node*, Node*> Forest::split_before(Node* x) noexcept {
  Node* l = x->left;  // keeps its stale parent pointer (invariant I2)
  x->left = nullptr;
  pull(x);
  Node* r = x;
  split_walk(x, l, r);
  return {l, r};
}

std::pair<Node*, Node*> Forest::split_after(Node* x) noexcept {
  Node* r = x->right;  // keeps its stale parent pointer
  x->right = nullptr;
  pull(x);
  Node* l = x;
  split_walk(x, l, r);
  return {l, r};
}

Node* Forest::reroot(Node* u_node) noexcept {
  // Tours are cyclic: rotating [A | u..] to [u.. | A] rebases the tour at u
  // without changing the node set — hence without changing the (max
  // priority) root, so no version/parent protocol is involved here.
  auto [a, b] = split_before(u_node);
  return merge(b, a);
}

// ---------------------------------------------------------------------------
// Forest lifecycle
// ---------------------------------------------------------------------------

Forest::Forest(Vertex n, int level)
    : n_(n),
      level_(level),
      nodes_(std::make_unique<std::atomic<Node*>[]>(n)),
      arcs_(n) {  // a spanning forest holds at most n-1 arc pairs
  for (Vertex i = 0; i < n; ++i)
    nodes_[i].store(nullptr, std::memory_order_relaxed);
}

Forest::~Forest() {
  // Teardown is quiescent: recycle every node straight into the pool.
  arcs_.for_each([](const Edge&, ArcPair& p) {
    node_pool().destroy(p.uv);
    node_pool().destroy(p.vu);
  });
  for (Vertex i = 0; i < n_; ++i)
    node_pool().destroy(nodes_[i].load(std::memory_order_relaxed));
}

Node* Forest::new_vertex_node(Vertex v) {
  Node* x = node_pool().create();
  x->priority = draw_vertex_priority();
  x->tail = x->head = v;
  x->is_vertex = true;
  x->vstat.store(Node::pack_vstat(1, v), std::memory_order_relaxed);
  return x;
}

Node* Forest::new_arc_node(Vertex t, Vertex h, uint64_t) {
  Node* x = node_pool().create();
  x->priority = draw_arc_priority();
  x->tail = t;
  x->head = h;
  x->is_vertex = false;
  return x;
}

Node* Forest::vertex_node(Vertex v) {
  assert(v < n_);
  Node* cur = nodes_[v].load(std::memory_order_acquire);
  if (cur != nullptr) return cur;
  Node* fresh = new_vertex_node(v);
  if (nodes_[v].compare_exchange_strong(cur, fresh,
                                        std::memory_order_acq_rel)) {
    return fresh;
  }
  // Lost the creation race: nobody else can hold `fresh`, so it goes back
  // to the pool immediately (the seed heap-deleted here, bypassing reuse).
  node_pool().destroy(fresh);
  return cur;
}

// ---------------------------------------------------------------------------
// Public operations
// ---------------------------------------------------------------------------

bool Forest::has_edge(Vertex u, Vertex v) const {
  return arcs_.find(Edge(u, v)) != nullptr;
}

bool Forest::connected_writer(Vertex u, Vertex v) {
  return find_root(vertex_node(u)) == find_root(vertex_node(v));
}

bool Forest::connected(Vertex u, Vertex v) {
  return connected_nonblocking(vertex_node(u), vertex_node(v));
}

uint32_t Forest::component_vertices(Vertex u) {
  return vc(find_root(vertex_node(u)));
}

Vertex Forest::representative_writer(Vertex u) {
  return vmn(find_root(vertex_node(u)));
}

uint64_t Forest::root_vstat_nonblocking(Vertex u) {
  auto guard = ebr::pin();
  const Node* nu = vertex_node(u);
  auto& st = op_stats::local();
  ++st.reads;
  for (;;) {
    const RootSnapshot s = find_root_versioned(nu);
    const uint64_t stat = s.root->vstat.load(std::memory_order_acquire);
    // Seqlock double-collect (Listing 1's argument, applied to the root
    // augmentation): every spanning update bumps the involved root versions
    // before its first physical store, and the acquire load above pairs
    // with pull()'s release store (see pull for the weak-ordering
    // argument), so an unchanged snapshot means the word read belongs to a
    // consistent state of u's component. A pending two-phase cut keeps
    // both pieces chained to (and counted at) the old root until its
    // commit — exactly the not-yet-linearized state.
    if (find_root_versioned(nu) == s) return stat;
    ++st.read_retries;
  }
}

uint64_t Forest::component_size_nonblocking(Vertex u) {
  return Node::vstat_count(root_vstat_nonblocking(u));
}

Vertex Forest::representative_nonblocking(Vertex u) {
  return Node::vstat_min(root_vstat_nonblocking(u));
}

void Forest::link(Vertex u, Vertex v) {
  // Label-cache bracket: the merge changes the membership of exactly these
  // two components, so both their label eras are expired before the first
  // physical store (begin first — the stamp must count this bracket before
  // any publisher could observe the invalidations).
  if (cache_ != nullptr) cache_->begin_update();
  Node* nu = vertex_node(u);
  Node* nv = vertex_node(v);
  Node* ru = find_root(nu);
  Node* rv = find_root(nv);
  assert(ru != rv && "link precondition: different components");
  assert(!has_edge(u, v));
  if (cache_ != nullptr) {
    cache_->invalidate(
        Node::vstat_min(ru->vstat.load(std::memory_order_relaxed)));
    cache_->invalidate(
        Node::vstat_min(rv->vstat.load(std::memory_order_relaxed)));
  }

  // I3: bump both root versions before any physical change. Release: the
  // bumps only need to be visible to readers that acquire a later physical
  // store of this update (see set_parent / DESIGN.md §7.3).
  ru->version.fetch_add(1, std::memory_order_release);
  rv->version.fetch_add(1, std::memory_order_release);

  // Logical merge (Fig. 2): one store makes the two trees one component for
  // concurrent readers. The lower-priority root points at the higher one, so
  // the eventual root (always a vertex node, always the max-priority node of
  // the union) is `hi`, whose version was just bumped.
  Node* hi = node_less(ru, rv) ? rv : ru;
  Node* lo = hi == ru ? rv : ru;
  set_parent(lo, hi);

  // Physical restructuring; all stores keep chains rooted at `hi`.
  Node* tu = reroot(nu);
  Node* tv = reroot(nv);

  auto* pair = arcs_.get_or_create(Edge(u, v));
  assert(pair->uv == nullptr && pair->vu == nullptr &&
         "link precondition: edge not already in the forest");
  Node* a1 = new_arc_node(u, v, 0);
  Node* a2 = new_arc_node(v, u, 0);
  if (u <= v) {
    pair->uv = a1;
    pair->vu = a2;
  } else {
    pair->uv = a2;
    pair->vu = a1;
  }

  Node* t = merge(merge(merge(tu, a1), tv), a2);
  (void)t;
  assert(t == hi);
  assert(hi->parent.load(std::memory_order_relaxed) == nullptr);
  if (cache_ != nullptr) cache_->end_update();
}

Node* Forest::find_piece_root(Node* x) noexcept {
  Node* cur = x;
  for (;;) {
    Node* p = cur->parent.load(std::memory_order_relaxed);
    if (p == nullptr || (p->left != cur && p->right != cur)) return cur;
    cur = p;
  }
}

Forest::CutHandle Forest::cut_prepare(Vertex u, Vertex v) {
  // Label-cache bracket spanning the whole two-phase cut: the root's vstat
  // transiently holds piece-only values mid-prepare (pull() rewrites it
  // with no further version bump), so the whole prepare→commit/relink
  // window must be writer-active; the component's era is expired up front
  // (the prior word rides in the handle so cut_relink can restore it — a
  // relink changes nothing). The bracket closes in cut_commit or
  // cut_relink.
  if (cache_ != nullptr) cache_->begin_update();
  ArcPair* pair = arcs_.find(Edge(u, v));
  assert(pair != nullptr && "cut precondition: edge in forest");
  Node* a = u <= v ? pair->uv : pair->vu;  // arc u->v
  Node* b = u <= v ? pair->vu : pair->uv;  // arc v->u

  Node* rt = find_root(a);
  Vertex cache_rep = 0;
  uint64_t cache_word = 0;
  if (cache_ != nullptr) {
    cache_rep = Node::vstat_min(rt->vstat.load(std::memory_order_relaxed));
    cache_word = cache_->invalidate(cache_rep);
  }
  // I3: bump the current root's version before any physical change
  // (release — paired with readers' acquire loads, see link()).
  rt->version.fetch_add(1, std::memory_order_release);

  if (rank_of(a) > rank_of(b)) std::swap(a, b);

  // Tour layout: A | a | B | b | C. All splits keep stale parents, so every
  // chain still terminates at rt until cut_commit's unlink (or forever, if
  // cut_relink splices the pieces back together).
  auto [piece_a, r1] = split_before(a);
  (void)r1;
  auto [a_only, r2] = split_after(a);
  assert(a_only == a && r2 != nullptr);
  auto [piece_b, r3] = split_before(b);
  assert(r3 != nullptr);
  auto [b_only, piece_c] = split_after(b);
  assert(b_only == b);
  (void)a_only;
  (void)b_only;
  (void)r2;
  (void)r3;

  Node* ac = merge(piece_a, piece_c);
  assert(ac != nullptr && piece_b != nullptr);
  assert((ac == rt) != (piece_b == rt));

  CutHandle h;
  h.old_root = rt;
  h.arc1 = a;
  h.arc2 = b;
  h.u = u;
  h.v = v;
  Node* ru = find_piece_root(vertex_node(u));
  assert(ru == ac || ru == piece_b);
  h.root_u = ru;
  h.root_v = (ru == ac) ? piece_b : ac;
  h.cache_rep = cache_rep;
  h.cache_word = cache_word;
  arcs_.erase(Edge(u, v));  // writer-only table; readers never consult it
  return h;
}

void Forest::cut_commit(CutHandle& h) {
  // The piece that is not the old root becomes a root now: bump its version
  // (I3), then the single null store is the linearization point (Fig. 3).
  Node* fresh_root = (h.root_u == h.old_root) ? h.root_v : h.root_u;
  assert(fresh_root != h.old_root);
  // The version bump must be visible to any reader that acquires the null
  // store below; release on both gives exactly that (I3 + DESIGN.md §7.3).
  fresh_root->version.fetch_add(1, std::memory_order_release);
  fresh_root->parent.store(nullptr, std::memory_order_release);

  // I4: readers may still be traversing the removed arcs; their stale parent
  // pointers keep chains valid, and EBR delays the recycle into the pool.
  node_pool().retire(h.arc1);
  node_pool().retire(h.arc2);
  // The split expires only the old component's era (invalidated at
  // prepare); the piece that gained a new representative cannot alias a
  // stale era — its comp_ slot was expired when that representative's own
  // component last changed, and only a reader's validated republish can
  // revive it.
  if (cache_ != nullptr) cache_->end_update();
}

void Forest::cut_relink(CutHandle& h, Vertex x, Vertex y) {
  Node* nx = vertex_node(x);
  Node* ny = vertex_node(y);
  [[maybe_unused]] Node* rx = find_piece_root(nx);
  [[maybe_unused]] Node* ry = find_piece_root(ny);
  assert(rx != ry);
  assert((rx == h.root_u || rx == h.root_v) &&
         (ry == h.root_u || ry == h.root_v));

  // No version/logical-merge protocol here: for readers this entire removal
  // never changed anything — every intermediate store keeps chains rooted at
  // old_root, and the final structure is again one tree rooted at old_root
  // (it remains the maximum-priority node of the unchanged vertex set).
  Node* tx = reroot(nx);
  Node* ty = reroot(ny);

  auto* pair = arcs_.get_or_create(Edge(x, y));
  assert(pair->uv == nullptr && pair->vu == nullptr &&
         "relink precondition: replacement not already in the forest");
  Node* a1 = new_arc_node(x, y, 0);
  Node* a2 = new_arc_node(y, x, 0);
  if (x <= y) {
    pair->uv = a1;
    pair->vu = a2;
  } else {
    pair->uv = a2;
    pair->vu = a1;
  }

  [[maybe_unused]] Node* t = merge(merge(merge(tx, a1), ty), a2);
  assert(t == h.old_root);
  assert(h.old_root->parent.load(std::memory_order_relaxed) == nullptr);

  node_pool().retire(h.arc1);
  node_pool().retire(h.arc2);
  // Membership unchanged: restore the pre-bracket component word, making
  // every label of the old era valid again — the warm-under-churn property
  // the labels section measures.
  if (cache_ != nullptr) {
    cache_->revalidate(h.cache_rep, h.cache_word);
    cache_->end_update();
  }
}

void Forest::cut(Vertex u, Vertex v) {
  CutHandle h = cut_prepare(u, v);
  cut_commit(h);
}

void Forest::set_arc_at_level(Vertex u, Vertex v, bool value) {
  ArcPair* pair = arcs_.find(Edge(u, v));
  assert(pair != nullptr);
  for (Node* arc : {pair->uv, pair->vu}) {
    arc->arc_at_level = value;
    for (Node* x = arc; x != nullptr;) {
      pull(x);
      Node* p = x->parent.load(std::memory_order_relaxed);
      x = (p != nullptr && (p->left == x || p->right == x)) ? p : nullptr;
    }
  }
}

void Forest::nonspanning_inc(Vertex v) {
  Node* x = vertex_node(v);
  x->local_nonspanning.fetch_add(1, std::memory_order_seq_cst);
  set_flags_up(x);
}

void Forest::nonspanning_dec(Vertex v) {
  Node* x = vertex_node(v);
  [[maybe_unused]] uint32_t prev =
      x->local_nonspanning.fetch_sub(1, std::memory_order_seq_cst);
  assert(prev > 0);
  // Flags are deliberately left possibly-true (Listing 6's remove_info);
  // only replacement searches under locks lower them, with the recheck.
}

// ---------------------------------------------------------------------------
// Introspection (tests)
// ---------------------------------------------------------------------------

namespace {

void collect_tour(const Node* x, std::vector<const Node*>& out) {
  if (x == nullptr) return;
  collect_tour(x->left, out);
  out.push_back(x);
  collect_tour(x->right, out);
}

std::size_t validate_rec(const Node* x) {
  if (x == nullptr) return 0;
  std::size_t cnt = 1;
  for (const Node* c : {x->left, x->right}) {
    if (c == nullptr) continue;
    assert(node_less(c, x) && "heap order violated");
    assert(c->parent.load(std::memory_order_relaxed) == x &&
           "child parent pointer mismatch");
    cnt += validate_rec(c);
  }
  assert(x->size == 1 + sz(x->left) + sz(x->right));
  assert(vc(x) == (x->is_vertex ? 1u : 0u) + vc(x->left) + vc(x->right));
  assert(vmn(x) == std::min({x->is_vertex ? x->tail : Node::kNoVertexSentinel,
                             vmn(x->left), vmn(x->right)}));
  assert(x->sub_level_arc ==
         (x->arc_at_level || sla(x->left) || sla(x->right)));
  // sub_nonspanning may be conservatively true, but never falsely false.
  if (local_ns(x) || sns(x->left) || sns(x->right))
    assert(x->sub_nonspanning.load(std::memory_order_relaxed));
  return cnt;
}

}  // namespace

std::vector<const Node*> Forest::tour(Vertex u) {
  std::vector<const Node*> out;
  collect_tour(find_root(vertex_node(u)), out);
  return out;
}

std::size_t Forest::validate(Vertex u) {
  Node* r = find_root(vertex_node(u));
  assert(r->parent.load(std::memory_order_relaxed) == nullptr);
  assert(r->is_vertex && "root must be a vertex node");
  return validate_rec(r);
}

}  // namespace condyn::ett
