#include "core/hdt.hpp"

#include <cassert>

#include "core/batch_runs.hpp"
#include "core/stats.hpp"

namespace condyn {

using ett::Forest;
using ett::Node;

namespace {

int levels_for(Vertex n) noexcept {
  int l = 0;
  while ((Vertex{1} << (l + 1)) <= n) ++l;  // ⌊log2 n⌋
  return l;
}

}  // namespace

Hdt::Hdt(Vertex n, bool sampling)
    : n_(n),
      lmax_(levels_for(std::max<Vertex>(n, 2))),
      sampling_(sampling),
      forests_(std::make_unique<std::atomic<Forest*>[]>(lmax_ + 2)),
      edges_(2 * static_cast<std::size_t>(n)),  // steady-state |E| guess
      adj_(std::make_unique<ShardedU64Map<AdjSet>[]>(lmax_ + 2)) {
  for (int i = 0; i <= lmax_ + 1; ++i)
    forests_[i].store(nullptr, std::memory_order_relaxed);
  forest0_ = new Forest(n_, 0);
  forests_[0].store(forest0_, std::memory_order_release);
}

Hdt::~Hdt() {
  for (int i = 0; i <= lmax_ + 1; ++i)
    delete forests_[i].load(std::memory_order_relaxed);
}

Forest& Hdt::forest(int i) {
  assert(i <= lmax_ + 1);
  Forest* f = forests_[i].load(std::memory_order_acquire);
  if (f != nullptr) return *f;
  auto* fresh = new Forest(n_, i);
  Forest* expected = nullptr;
  if (forests_[i].compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;  // lost the creation race (fine-grained writers)
  return *expected;
}

void Hdt::adj_insert(int level, Vertex a, Vertex b) {
  adj_[level].get_or_create(a)->s.insert(b);
  adj_[level].get_or_create(b)->s.insert(a);
  Forest& f = forest(level);
  f.nonspanning_inc(a);
  f.nonspanning_inc(b);
}

void Hdt::adj_erase(int level, Vertex a, Vertex b) {
  adj_[level].find(a)->s.erase(b);
  adj_[level].find(b)->s.erase(a);
  Forest& f = forest(level);
  f.nonspanning_dec(a);
  f.nonspanning_dec(b);
}

bool Hdt::has_edge(Vertex u, Vertex v) const {
  const EdgeInfo* info = edges_.find(Edge(u, v));
  return info != nullptr && info->present;
}

bool Hdt::is_spanning(Vertex u, Vertex v) const {
  const EdgeInfo* info = edges_.find(Edge(u, v));
  return info != nullptr && info->present && info->spanning;
}

int Hdt::edge_level(Vertex u, Vertex v) const {
  const EdgeInfo* info = edges_.find(Edge(u, v));
  return (info != nullptr && info->present) ? info->level : -1;
}

Hdt::UpdateOutcome Hdt::add_edge(Vertex u, Vertex v) {
  if (u == v) return {};
  auto& st = op_stats::local();
  EdgeInfo* info = edges_.get_or_create(Edge(u, v));
  if (info->present) return {};
  ++st.additions;

  if (forest0_->connected_writer(u, v)) {
    // Same component: record as a non-spanning edge of level 0.
    info->present = true;
    info->spanning = false;
    info->level = 0;
    adj_insert(0, u, v);
    ++st.nonspanning_additions;
    return {true, false};
  }
  info->present = true;
  info->spanning = true;
  info->level = 0;
  forest0_->link(u, v);
  forest0_->set_arc_at_level(u, v, true);
  return {true, true};
}

Hdt::UpdateOutcome Hdt::remove_edge(Vertex u, Vertex v) {
  if (u == v) return {};
  auto& st = op_stats::local();
  EdgeInfo* info = edges_.find(Edge(u, v));
  if (info == nullptr || !info->present) return {};
  ++st.removals;

  if (!info->spanning) {
    adj_erase(info->level, u, v);
    info->present = false;
    ++st.nonspanning_removals;
    return {true, false};
  }

  // Spanning-edge removal. Cut the private levels immediately; keep the
  // published F_0 split pending until the search settles (see class docs).
  const int le = info->level;
  for (int i = le; i >= 1; --i) forest(i).cut(u, v);
  Forest::CutHandle h = forest0_->cut_prepare(u, v);
  info->present = false;
  info->spanning = false;

  Edge repl;
  bool found = false;
  int found_level = -1;
  for (int i = le; i >= 0 && !found; --i) {
    Forest& fi = forest(i);
    Node* ru = (i == 0) ? h.root_u : Forest::find_piece_root(fi.vertex_node(u));
    Node* rv = (i == 0) ? h.root_v : Forest::find_piece_root(fi.vertex_node(v));
    assert(ru != rv);
    Node* tv = Forest::subtree_vertices(ru) <= Forest::subtree_vertices(rv)
                   ? ru
                   : rv;
    Node* other = (tv == ru) ? rv : ru;
    ++st.replacement_searches;

    if (sampling_ && sample_replacement(i, tv, other, &repl)) {
      found = true;
      found_level = i;
      ++st.sampling_hits;
      break;
    }
    if (i + 1 <= lmax_) promote_level_arcs(i, tv);
    if (search_replacement(i, tv, other, &repl)) {
      found = true;
      found_level = i;
    }
  }

  if (found) {
    ++st.replacements_found;
    EdgeInfo* rinfo = edges_.find(repl);
    assert(rinfo != nullptr && rinfo->present && !rinfo->spanning);
    rinfo->spanning = true;
    rinfo->level = static_cast<uint8_t>(found_level);
    for (int j = found_level; j >= 1; --j) forest(j).link(repl.u, repl.v);
    forest0_->cut_relink(h, repl.u, repl.v);
    forest(found_level).set_arc_at_level(repl.u, repl.v, true);
  } else {
    forest0_->cut_commit(h);
  }
  return {true, true};
}

void Hdt::apply_batch(std::span<const Op> ops, BatchResult& out) {
  assert(out.values.size() == ops.size());
  for_each_batch_run(
      ops,
      [&](std::size_t i) {
        ++op_stats::local().reads;
        out.set_op(i, ops[i].kind, exec_query_writer(ops[i]));
      },
      [&](std::span<const uint32_t> order) {
        for (uint32_t k : order) {
          const Op& op = ops[k];
          const bool performed = op.kind == OpKind::kAdd
                                     ? add_edge(op.u, op.v).performed
                                     : remove_edge(op.u, op.v).performed;
          out.set(k, op.kind, performed);
        }
      });
}

void Hdt::collect_level_arcs(const Node* x, std::vector<Edge>& out) const {
  if (x == nullptr || !x->sub_level_arc) return;
  if (x->arc_at_level && x->tail < x->head)  // each arc pair reported once
    out.emplace_back(x->tail, x->head);
  collect_level_arcs(x->left, out);
  collect_level_arcs(x->right, out);
}

void Hdt::promote_level_arcs(int i, Node* tv_root) {
  assert(i + 1 <= lmax_);
  std::vector<Edge> to_promote;
  collect_level_arcs(tv_root, to_promote);
  Forest& fi = forest(i);
  Forest& fn = forest(i + 1);
  for (const Edge& e : to_promote) {
    fi.set_arc_at_level(e.u, e.v, false);
    fn.link(e.u, e.v);
    fn.set_arc_at_level(e.u, e.v, true);
    EdgeInfo* info = edges_.find(e);
    assert(info != nullptr && info->present && info->spanning &&
           info->level == i);
    info->level = static_cast<uint8_t>(i + 1);
  }
}

bool Hdt::search_replacement(int i, Node* x, Node* other_root, Edge* out) {
  if (x == nullptr || !x->sub_nonspanning.load(std::memory_order_seq_cst))
    return false;
  bool found = false;
  if (x->is_vertex &&
      x->local_nonspanning.load(std::memory_order_seq_cst) > 0) {
    const Vertex a = x->tail;
    AdjSet* rec = adj_[i].find(a);
    Forest& fi = forest(i);
    while (rec != nullptr && !rec->s.empty()) {
      const Vertex w = rec->s.front();
      if (Forest::find_piece_root(fi.vertex_node(w)) == other_root) {
        *out = Edge(a, w);
        adj_erase(i, a, w);  // it becomes spanning; caller links it
        found = true;
        break;
      }
      // Not a replacement: promote to level i+1 to amortize this visit.
      assert(i + 1 <= lmax_);
      adj_erase(i, a, w);
      adj_insert(i + 1, a, w);
      EdgeInfo* info = edges_.find(Edge(a, w));
      assert(info != nullptr && info->present && !info->spanning);
      info->level = static_cast<uint8_t>(i + 1);
    }
  }
  if (!found) found = search_replacement(i, x->left, other_root, out);
  if (!found) found = search_replacement(i, x->right, other_root, out);
  Forest::recalculate_flags(x);
  return found;
}

bool Hdt::sample_scan(int i, Node* x, Node* other_root, Edge* out,
                      int& budget) {
  if (x == nullptr || budget <= 0 ||
      !x->sub_nonspanning.load(std::memory_order_seq_cst))
    return false;
  if (x->is_vertex &&
      x->local_nonspanning.load(std::memory_order_seq_cst) > 0) {
    AdjSet* rec = adj_[i].find(x->tail);
    if (rec != nullptr) {
      Forest& fi = forest(i);
      for (Vertex w : rec->s) {
        if (budget-- <= 0) return false;
        if (Forest::find_piece_root(fi.vertex_node(w)) == other_root) {
          *out = Edge(x->tail, w);
          adj_erase(i, x->tail, w);
          return true;
        }
      }
    }
  }
  if (sample_scan(i, x->left, other_root, out, budget)) return true;
  return sample_scan(i, x->right, other_root, out, budget);
}

bool Hdt::sample_replacement(int i, Node* tv_root, Node* other_root,
                             Edge* out) {
  int budget = kSampleBudget;
  return sample_scan(i, tv_root, other_root, out, budget);
}

void Hdt::check_invariants() {
  // F_0 ⊇ F_i: every spanning edge of level l must be present in F_0..F_l,
  // absent above; non-spanning edges must be in the adjacency sets of their
  // level; component sizes in G_i bounded by n / 2^i.
  edges_.for_each([&](const Edge& e, EdgeInfo& info) {
    if (!info.present) return;
    if (info.spanning) {
      for (int i = 0; i <= info.level; ++i) {
        [[maybe_unused]] Forest* f = forest_if(i);
        assert(f != nullptr && f->has_edge(e.u, e.v));
      }
      for (int i = info.level + 1; i <= lmax_; ++i) {
        [[maybe_unused]] Forest* f = forest_if(i);
        assert(f == nullptr || !f->has_edge(e.u, e.v));
      }
    } else {
      [[maybe_unused]] AdjSet* au = adj_[info.level].find(e.u);
      [[maybe_unused]] AdjSet* av = adj_[info.level].find(e.v);
      assert(au != nullptr && au->s.contains(e.v));
      assert(av != nullptr && av->s.contains(e.u));
    }
    // Size invariant: the component of e in G_level has ≤ n/2^level vertices.
    Forest* f = forest_if(info.level);
    if (f != nullptr) {
      Node* nu = f->vertex_node_if_exists(e.u);
      if (nu != nullptr) {
        const uint32_t sz =
            Forest::subtree_vertices(Forest::find_piece_root(nu));
        assert(static_cast<uint64_t>(sz) << info.level <= n_);
        (void)sz;
      }
    }
  });
  (void)this;
}

}  // namespace condyn
