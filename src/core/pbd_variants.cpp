// Registry entry for the parallel batch-dynamic family, variant (14).
#include "api/registry.hpp"
#include "core/pbd_dc.hpp"

namespace condyn {

void register_pbd_variants(VariantRegistry& r) {
  VariantCaps c;
  c.native_batch = true;
  c.atomic_batch = true;  // update batches hold the batch mutex end to end
  c.lock_free_reads = true;
  c.sized_components = true;
  c.stable_representative = true;
  c.internal_parallel = true;
  r.add("pbd",
        "parallel batch-dynamic: one batch preprocessed, grouped and "
        "applied by an internal worker gang (Acar et al. shape, De Man et "
        "al. simplifications)",
        c, [](Vertex n, bool sampling) {
          return std::make_unique<PbdDc>(n, "pbd", sampling);
        });
}

}  // namespace condyn
