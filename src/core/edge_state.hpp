#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "core/sharded_map.hpp"
#include "graph/graph.hpp"

namespace condyn {

/// Edge statuses of the full non-blocking algorithm — the state machine of
/// paper Figure 13 (Figure 4 plus IN_PROGRESS for concurrent same-edge
/// additions). kRemoved is a real stored value rather than physical absence:
/// records in the sharded map are stable, so threads can CAS on them without
/// a reclamation protocol, and a fresh stamp on each re-insertion defeats
/// ABA (Appendix C "to avoid the ABA problem we pair INITIAL status with
/// random bits").
enum class EdgeStatus : uint8_t {
  kRemoved = 0,      ///< not in the graph (logically absent)
  kInitial = 1,      ///< being inserted; final kind not yet decided
  kNonSpanning = 2,  ///< in the graph, not in the spanning forest
  kSpanning = 3,     ///< in the spanning forest
  kInProgress = 4,   ///< a writer is inserting it as a spanning edge
};

/// One edge's (status, level, stamp) packed into a single CAS-able word,
/// exactly the paper's "an edge level and a status can be merged to fit in a
/// machine word" optimization. Layout: [stamp:53][level:8][status:3].
class EdgeState {
 public:
  static constexpr uint64_t kStatusBits = 3;
  static constexpr uint64_t kLevelBits = 8;
  static constexpr uint64_t kStatusMask = (uint64_t{1} << kStatusBits) - 1;
  static constexpr uint64_t kLevelMask = (uint64_t{1} << kLevelBits) - 1;

  constexpr EdgeState() noexcept = default;
  constexpr explicit EdgeState(uint64_t word) noexcept : word_(word) {}
  constexpr EdgeState(EdgeStatus st, int level, uint64_t stamp) noexcept
      : word_((stamp << (kStatusBits + kLevelBits)) |
              ((static_cast<uint64_t>(level) & kLevelMask) << kStatusBits) |
              static_cast<uint64_t>(st)) {}

  constexpr EdgeStatus status() const noexcept {
    return static_cast<EdgeStatus>(word_ & kStatusMask);
  }
  constexpr int level() const noexcept {
    return static_cast<int>((word_ >> kStatusBits) & kLevelMask);
  }
  constexpr uint64_t stamp() const noexcept {
    return word_ >> (kStatusBits + kLevelBits);
  }
  constexpr uint64_t word() const noexcept { return word_; }

  /// Same stamp, new status/level — the shape of every legal transition out
  /// of a live state (the stamp changes only on kRemoved → kInitial).
  constexpr EdgeState with(EdgeStatus st, int level) const noexcept {
    return EdgeState(st, level, stamp());
  }

  constexpr bool present() const noexcept {
    return status() != EdgeStatus::kRemoved &&
           status() != EdgeStatus::kInitial;
  }

  friend constexpr bool operator==(EdgeState, EdgeState) = default;

 private:
  uint64_t word_ = 0;  // status kRemoved, level 0, stamp 0
};

#ifdef CONDYN_TRACE_EDGE_STATES
struct EdgeTrace {
  uint32_t site;
  uint64_t from, to;
};
#endif

/// The per-edge record: one atomic word. Records are created on first touch
/// and never destroyed until the owning map dies, so any thread may hold the
/// pointer and CAS freely (Listing 5's `states` ConcurrentHashMap).
///
/// Memory-order scheme (DESIGN.md §7.3): by default every access is
/// seq_cst — the CASes are the linearization points of the edge state
/// machine, and the plain store/load pairs take part in the Dekker-style
/// publication between `sub_nonspanning` witnesses and removal flaggers.
/// With DC_EDGE_FENCE=1 the plain store becomes release + an explicit
/// `atomic_thread_fence(seq_cst)` and the plain load drops to acquire;
/// the fence after the store keeps the store↔load Dekker pair in the SC
/// total order (the fence orders the store before any later load on the
/// storing thread, which is the property the seq_cst store bought), while
/// the acquire load sheds the x86 `mfence`-equivalent the compiler would
/// otherwise attach to a seq_cst load on weaker ISAs. CASes stay seq_cst
/// under both settings. Flipped at process start only; see §7.3 for the
/// measured A/B delta.
struct EdgeStateCell {
  std::atomic<uint64_t> word{0};

  /// DC_EDGE_FENCE=1 selects the fence-based store/load pair. Read once;
  /// callers hit a predictable branch thereafter.
  static bool fence_mode() noexcept {
    static const bool on = [] {
      const char* s = std::getenv("DC_EDGE_FENCE");
      return s != nullptr && s[0] == '1';
    }();
    return on;
  }

  EdgeState load() const noexcept {
    if (fence_mode()) {
      return EdgeState(word.load(std::memory_order_acquire));
    }
    return EdgeState(word.load(std::memory_order_seq_cst));
  }
  /// CAS expected → desired; on failure `expected` is refreshed.
  bool cas(EdgeState& expected, EdgeState desired,
           uint32_t site = 0) noexcept {
    uint64_t w = expected.word();
    const bool ok = word.compare_exchange_strong(w, desired.word(),
                                                 std::memory_order_seq_cst);
    if (!ok) expected = EdgeState(w);
#ifdef CONDYN_TRACE_EDGE_STATES
    if (ok) trace(site, w, desired.word());
#else
    (void)site;
#endif
    return ok;
  }
  void store(EdgeState s, uint32_t site = 0) noexcept {
#ifdef CONDYN_TRACE_EDGE_STATES
    trace(site, word.load(std::memory_order_relaxed), s.word());
#else
    (void)site;
#endif
    if (fence_mode()) {
      word.store(s.word(), std::memory_order_release);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      return;
    }
    word.store(s.word(), std::memory_order_seq_cst);
  }

#ifdef CONDYN_TRACE_EDGE_STATES
  static constexpr unsigned kTraceLen = 96;
  std::atomic<uint32_t> trace_pos{0};
  EdgeTrace traces[kTraceLen] = {};
  void trace(uint32_t site, uint64_t from, uint64_t to) noexcept {
    const uint32_t i = trace_pos.fetch_add(1, std::memory_order_relaxed);
    traces[i % kTraceLen] = EdgeTrace{site, from, to};
  }
  void dump_trace() const noexcept;
#endif
};

/// Sharded edge → state table of the full algorithm.
class EdgeStateMap {
 public:
  explicit EdgeStateMap(std::size_t expected_keys = 0, unsigned shards = 0)
      : map_(expected_keys, shards) {}

  /// The record for (u,v), created (as kRemoved) if missing.
  EdgeStateCell* cell(const Edge& e) { return map_.get_or_create(e); }

  /// Read-only lookup: state of the edge, kRemoved if never seen.
  EdgeState load(const Edge& e) const {
    const EdgeStateCell* c = map_.find(e);
    return c != nullptr ? c->load() : EdgeState();
  }

  template <typename F>
  void for_each(F&& f) const {
    map_.for_each(
        [&](const Edge& e, const EdgeStateCell& c) { f(e, c.load()); });
  }

 private:
  ShardedEdgeMap<EdgeStateCell> map_;
};

}  // namespace condyn
