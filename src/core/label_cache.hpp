#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"

namespace condyn::ett {
class Forest;
struct Node;
}  // namespace condyn::ett

namespace condyn {

/// Published per-vertex component labels with per-component invalidation:
/// the read-mostly fast path (DESIGN.md §8).
///
/// The paper's lock-free read (Listing 1) walks O(log n) parent pointers per
/// query. For the production mix — overwhelmingly reads against a slowly
/// changing forest — this cache turns a query into two or three loads, the
/// DSU-speed lookup De Man et al. 2024 argue practical systems need. Two
/// flat arrays sit beside the level-0 forest, each entry a packed
/// version:32 | value:32 word:
///
///   labels_[v] = pack(era, representative of v's component)
///   comp_[r]   = pack(era, |component whose representative is r|)
///
/// where `representative` is the Query API v2 canonical (smallest-id)
/// member. comp_[r]'s version is a per-component seqlock: even and nonzero
/// marks a stable *era* of r's component, odd marks it unstable, zero is
/// never-published. A label is valid iff its version equals comp_[rep]'s
/// current version and that version names an era. Invalidation is therefore
/// per component, not global: a structural update expires only the labels
/// of the one or two components it touches, which is what keeps the cache
/// hot at 99% reads while updates churn elsewhere — the crossover the
/// bench labels section measures.
///
/// Writer protocol (hooked from ett::Forest, level 0 only):
///  * begin_update(): one fetch_add on the packed stamp (begins:48 in the
///    high bits, writers:16 in the low) increments both fields atomically;
///  * invalidate(rep): CAS comp_[rep]'s version to the next odd value,
///    *before* any physical change to that component — called once per
///    affected root (two for link, one for a cut);
///  * end_update(): decrements the writer count (begins stays incremented
///    forever — the monotone high bits are what make a publisher's
///    stamp-unchanged check ABA-free);
///  * revalidate(rep, prior): cut_relink only — the removal found a
///    replacement, membership never changed, so the pre-bracket comp word
///    is restored by CAS (expected: the odd value our own invalidate
///    wrote). The CAS fails harmlessly if another bracket has since touched
///    the slot; on success every label of the old era is valid again — the
///    measured reason spanning churn on well-connected graphs leaves the
///    99%-read fast path intact.
///
/// The whole cut_prepare→commit/relink window is one bracket because
/// cut_prepare bumps the old root's version once up front and then
/// restructures: mid-prepare the root's vstat transiently holds piece-only
/// values that a concurrent label walk could otherwise publish.
///
/// Reader side:
///  * hit: load labels_[u] = (v, r); the hit is valid iff v is an era and
///    comp_[r]'s version still equals v — linearized at the comp_ load
///    (era semantics: membership of r's component cannot change within an
///    era, because every change CASes the version odd before mutating).
///    connected() needs both endpoints valid *simultaneously*: after
///    validating each, it re-reads the first component word. Versions are
///    not monotone per slot (revalidate restores an older word), but a slot
///    can only return to era v via revalidate, which guarantees era v's
///    membership is unchanged — so an unchanged re-read means the first
///    era's membership spanned the second's validation instant, and
///    distinct canonical reps at one instant are distinct components.
///  * miss: walk_and_publish — an EBR-pinned seqlock walk identical in
///    structure to Forest::root_vstat_nonblocking that additionally
///    collects the vertex ids on u's parent chain. If the packed stamp is
///    writer-free and unchanged across the walk (no bracket overlapped: the
///    begins bits are monotone), the walk saw a quiescent forest; the
///    component word is then installed by CAS — expected value read inside
///    the quiescent window, so a bracket sneaking in after the stamp
///    re-check fails the CAS via its own invalidate bump — and the chain's
///    labels are stored under the resulting era. Repair is lazy and
///    amortized across readers: each miss relabels its own O(log n) chain,
///    so hot components converge after a handful of misses instead of
///    every update paying O(component).
///
/// Versions are 32-bit and wrap; a stale hit would need 2^31 membership
/// changes of one component between a label store and its use, with the
/// version landing back on the exact era value — not reachable in practice.
/// The wrap skips 0 (the reserved never-hits value) on the invalidate side:
/// next_odd(0xFFFFFFFF) wraps to 1. On the publish side a slot sitting at
/// 0xFFFFFFFF computes next-even 0, which is not an era, so no era is
/// installed and that component stays cold (every query takes the slow
/// walk) until its next structural update moves the version to 1 —
/// deliberately: jumping to 2 instead could revive ancient era-2 labels.
///
/// Lifetime: the facade owns the cache and declares it after its engine, so
/// the destructor detaches from the forest before the forest dies.
class LabelCache {
 public:
  explicit LabelCache(ett::Forest* forest);
  ~LabelCache();
  LabelCache(const LabelCache&) = delete;
  LabelCache& operator=(const LabelCache&) = delete;

  // --- reader API -----------------------------------------------------------

  /// Linearizable connectivity: label validation on a double hit, otherwise
  /// publish both chains and retry once, finally Listing 1 (the fallback is
  /// the existing lock-free read, so a miss is never worse than no cache).
  bool connected(Vertex u, Vertex v);

  /// Component size / canonical representative, same hit-else-walk shape.
  uint64_t component_size(Vertex u);
  Vertex representative(Vertex u);

  /// One query op of any is_query kind (mirrors Hdt::exec_query) — the
  /// dispatch behind the facades' pure-read batch loops.
  uint64_t exec_query(const Op& op);

  /// Fill `out` (resized to num_vertices) with a consistent label array:
  /// every entry validated against its component word under a stamp
  /// unchanged across the scan (quiescent throughout). Misses are repaired
  /// in place via walk_and_publish, so a quiescent call both succeeds and
  /// leaves the cache fully warm. Returns false when concurrent membership
  /// churn defeats every attempt (or the cache is globally disabled) —
  /// callers fall back to per-vertex queries.
  bool snapshot_labels(std::vector<Vertex>& out);

  // --- writer hooks (called by ett::Forest on the level-0 structure) --------

  void begin_update() noexcept;
  /// Expire comp_[rep] before mutating its component. Returns the prior
  /// word for a possible revalidate().
  uint64_t invalidate(Vertex rep) noexcept;
  /// cut_relink: membership unchanged — restore the pre-bracket word.
  void revalidate(Vertex rep, uint64_t prior) noexcept;
  void end_update() noexcept;

  // --- switches -------------------------------------------------------------

  /// Process-wide runtime kill switch (bench A/B sections and the mid-run
  /// force-disable test). Disabled: every query routes straight to the
  /// forest's existing read path and nothing is published. Re-enabling is
  /// safe at any time — the writer hooks run regardless of the switch, so
  /// membership changes during the disabled window expired their components
  /// exactly as usual and stale words cannot hit.
  static void set_globally_enabled(bool on) noexcept;
  static bool globally_enabled() noexcept;

  /// Construction-time knob: DC_LABEL_CACHE=0 makes the facades not build a
  /// cache at all (default: on). Read once per process.
  static bool env_enabled() noexcept;

  /// Diagnostics (tests): structural brackets opened so far.
  uint64_t brackets() const noexcept {
    return stamp_.load(std::memory_order_relaxed) >> kWriterBits;
  }

 private:
  // stamp_ layout: monotone bracket count in the high 48 bits, active-writer
  // count in the low 16. begin_update's single fetch_add(kBeginOne + 1)
  // increments both indivisibly — there is no window where a bracket is
  // counted in one field but not the other, which is what makes the
  // publisher's "writer-free and unchanged" check airtight.
  static constexpr unsigned kWriterBits = 16;
  static constexpr uint64_t kBeginOne = uint64_t{1} << kWriterBits;
  static constexpr uint32_t stamp_writers(uint64_t s) noexcept {
    return static_cast<uint32_t>(s & (kBeginOne - 1));
  }

  static constexpr uint64_t pack_word(uint32_t ver, uint32_t value) noexcept {
    return (static_cast<uint64_t>(ver) << 32) | value;
  }
  static constexpr uint32_t word_ver(uint64_t w) noexcept {
    return static_cast<uint32_t>(w >> 32);
  }
  static constexpr uint32_t word_value(uint64_t w) noexcept {
    return static_cast<uint32_t>(w);
  }
  /// Even and nonzero: a published, stable era.
  static constexpr bool is_era(uint32_t ver) noexcept {
    return ver != 0 && (ver & 1) == 0;
  }
  /// The next odd version after w's (odd stays odd: a bracket overlapping
  /// an unstable slot still has to move the version, or a publisher whose
  /// walk predates the bracket could CAS stale data in).
  static constexpr uint32_t next_odd(uint32_t ver) noexcept {
    return (ver & 1) != 0 ? ver + 2 : ver + 1;
  }

  /// Longest parent chain published per miss; deeper chains publish a
  /// prefix (treap depth is O(log n) w.h.p., so 64 covers any realistic n).
  static constexpr std::size_t kChainCap = 64;
  static constexpr int kSnapshotAttempts = 8;

  /// The seqlock tree walk behind every miss: returns the validated root
  /// vstat (the caller's fallback answer) and publishes the chain's labels
  /// when no writer bracket overlapped the walk.
  uint64_t walk_and_publish(Vertex u);

  /// Hit-path label fetch: true iff labels_[i] carries era `*ver` for rep
  /// `*rep` and comp_[*rep] is still at that version.
  bool load_label(Vertex i, uint32_t* ver, uint32_t* rep) const noexcept {
    const uint64_t w = labels_[i].load(std::memory_order_seq_cst);
    const uint32_t v = word_ver(w);
    if (!is_era(v)) return false;
    const uint32_t r = word_value(w);
    if (word_ver(comp_[r].load(std::memory_order_seq_cst)) != v) return false;
    *ver = v;
    *rep = r;
    return true;
  }

  /// connected() hit attempt: 1 / 0, or -1 for a miss.
  int try_connected(Vertex u, Vertex v) const noexcept;

  ett::Forest* forest_;
  Vertex n_;
  std::atomic<uint64_t> stamp_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> labels_;
  std::unique_ptr<std::atomic<uint64_t>[]> comp_;
};

}  // namespace condyn
