// Registry entries for the paper's full algorithm, variants (9)-(11).
#include "api/registry.hpp"
#include "core/nb_hdt.hpp"

namespace condyn {

namespace {

VariantCaps nb_caps() {
  VariantCaps c;
  c.native_batch = true;
  c.lock_free_reads = true;
  c.sized_components = true;       // lock-free seqlock double-collect over
  c.stable_representative = true;  // the root vcount/vmin augmentation
  c.label_cache = true;            // epoch-published labels over F_0 (§8)
  return c;  // batches stay concurrent with other threads: not atomic_batch
}

}  // namespace

void register_nb_variants(VariantRegistry& r) {
  r.add("full",
        "our algorithm: fine-grained + non-blocking reads + lock-free "
        "non-spanning updates",
        nb_caps(), [](Vertex n, bool sampling) {
          return std::make_unique<NbDc>(n, NbLockMode::kFine, "full",
                                        sampling);
        });
  r.add("full-coarse", "our algorithm with a coarse lock for spanning updates",
        nb_caps(), [](Vertex n, bool sampling) {
          return std::make_unique<NbDc>(n, NbLockMode::kCoarseSpin,
                                        "full-coarse", sampling);
        });
  r.add("full-coarse-htm", "our algorithm with an HTM-elided coarse lock",
        nb_caps(), [](Vertex n, bool sampling) {
          return std::make_unique<NbDc>(n, NbLockMode::kCoarseElision,
                                        "full-coarse-htm", sampling);
        });
}

}  // namespace condyn
