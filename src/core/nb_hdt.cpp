#include "core/nb_hdt.hpp"

#include <cassert>
#include <vector>

#include "core/stats.hpp"
#include "util/ebr.hpp"
#include "util/node_pool.hpp"

namespace condyn {

using ett::Forest;
using ett::Node;

namespace {

/// Removal descriptors and proposal cells are allocated per spanning remove
/// / per proposal and retired through EBR; both recycle through the pool
/// (DESIGN.md §7.1). A reused RemovalOp is placement-new'd, so its slot
/// starts empty again.
NodePool<RemovalOp>& op_pool() { return NodePool<RemovalOp>::instance(); }
NodePool<RemovalOp::Cell>& cell_pool() {
  return NodePool<RemovalOp::Cell>::instance();
}

int levels_for(Vertex n) noexcept {
  int l = 0;
  while ((Vertex{1} << (l + 1)) <= n) ++l;  // ⌊log2 n⌋
  return l;
}

constexpr EdgeStatus kRemoved = EdgeStatus::kRemoved;
constexpr EdgeStatus kInitial = EdgeStatus::kInitial;
constexpr EdgeStatus kNonSpanning = EdgeStatus::kNonSpanning;
constexpr EdgeStatus kSpanning = EdgeStatus::kSpanning;
constexpr EdgeStatus kInProgress = EdgeStatus::kInProgress;

}  // namespace

NbHdt::NbHdt(Vertex n, NbLockMode mode, bool sampling)
    : n_(n),
      lmax_(levels_for(std::max<Vertex>(n, 2))),
      mode_(mode),
      sampling_(sampling),
      forests_(std::make_unique<std::atomic<Forest*>[]>(lmax_ + 2)),
      states_(2 * static_cast<std::size_t>(n)),  // steady-state |E| guess
      adj_(std::make_unique<ShardedU64Map<VertexMultiset>[]>(lmax_ + 2)) {
  for (int i = 0; i <= lmax_ + 1; ++i)
    forests_[i].store(nullptr, std::memory_order_relaxed);
  forest0_ = new Forest(n_, 0);
  forests_[0].store(forest0_, std::memory_order_release);
}

NbHdt::~NbHdt() {
  for (int i = 0; i <= lmax_ + 1; ++i)
    delete forests_[i].load(std::memory_order_relaxed);
}

Forest& NbHdt::forest(int i) {
  assert(i <= lmax_ + 1);
  Forest* f = forests_[i].load(std::memory_order_acquire);
  if (f != nullptr) return *f;
  auto* fresh = new Forest(n_, i);
  Forest* expected = nullptr;
  if (forests_[i].compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel)) {
    return *fresh;
  }
  delete fresh;
  return *expected;
}

// ---------------------------------------------------------------------------
// Edge information management (Appendix C "Edge Management"): a copy of a
// non-spanning edge is inserted in the multisets of both endpoints *before*
// the linearizing status CAS and removed only *after* it, so a live
// non-spanning edge of level r always has at least one visible copy.
// ---------------------------------------------------------------------------

void NbHdt::add_info(int level, const Edge& e) {
  adj_[level].get_or_create(e.u)->add(e.v);
  adj_[level].get_or_create(e.v)->add(e.u);
  Forest& f = forest(level);
  f.nonspanning_inc(e.u);  // raises subtree flags bottom-up (Listing 6)
  f.nonspanning_inc(e.v);
}

void NbHdt::remove_info(int level, const Edge& e) {
  VertexMultiset* mu = adj_[level].find(e.u);
  VertexMultiset* mv = adj_[level].find(e.v);
  assert(mu != nullptr && mv != nullptr);
  mu->remove_one(e.v);
  mv->remove_one(e.u);
  Forest& f = forest(level);
  f.nonspanning_dec(e.u);  // flags deliberately stay possibly-true
  f.nonspanning_dec(e.v);
}

// ---------------------------------------------------------------------------
// Lock-free side queries
// ---------------------------------------------------------------------------

bool NbHdt::has_edge(Vertex u, Vertex v) const {
  return states_.load(Edge(u, v)).present();
}

bool NbHdt::is_spanning(Vertex u, Vertex v) const {
  const EdgeStatus s = states_.load(Edge(u, v)).status();
  return s == kSpanning || s == kInProgress;
}

int NbHdt::edge_level(Vertex u, Vertex v) const {
  const EdgeState st = states_.load(Edge(u, v));
  return st.present() ? st.level() : -1;
}

// ---------------------------------------------------------------------------
// Pending-cut membership for lock-free adders
// ---------------------------------------------------------------------------

NbHdt::CutSide NbHdt::cut_side(const RemovalOp* op, Vertex x) {
  // Parent-pointer-only ascent: while the cut is pending every chain of the
  // component terminates at old_root, and it passes through detached_root
  // exactly when x is on the detached side (the detached piece's root keeps
  // a stale parent into the other piece by invariant I2). Once the cut
  // commits, the detached side's chains terminate at detached_root instead,
  // which this function reports as kElsewhere — making can_be_replacement
  // false, exactly as required after the removal's linearization point.
  const Node* cur = forest0_->vertex_node(x);
  bool saw_detached = false;
  for (;;) {
    if (cur == op->detached_root) saw_detached = true;
    // Acquire suffices: this ascent only needs each pointer it dereferences
    // to be a fully-published node, like every reader ascent (§7.3).
    const Node* p = cur->parent.load(std::memory_order_acquire);
    if (p == nullptr) break;
    cur = p;
  }
  if (cur != op->old_root) return CutSide::kElsewhere;
  return saw_detached ? CutSide::kDetachedSide : CutSide::kRootSide;
}

bool NbHdt::can_be_replacement(const RemovalOp* op, const Edge& e) {
  // The edge being removed is the one spanning edge that crosses its own
  // pending cut — and the one edge that must never be its own replacement.
  // Without this check, a straggling joiner of the edge's (long-completed)
  // addition can propose it with its stale INITIAL word, and because the
  // completed addition used the *same incarnation*, the finalize stamp
  // check would accept the already-spanning edge as the winner: the removal
  // would splice the edge it is deleting back in and leak its arcs.
  if (Edge(op->u, op->v) == e) return false;
  const CutSide su = cut_side(op, e.u);
  if (su == CutSide::kElsewhere) return false;
  const CutSide sv = cut_side(op, e.v);
  return sv != CutSide::kElsewhere && su != sv;
}

// ---------------------------------------------------------------------------
// The replacement-proposal slot protocol (Listing 9 lines 29-51)
// ---------------------------------------------------------------------------

NbHdt::ProposeResult NbHdt::propose_replacement(RemovalOp* op, const Edge& e,
                                                EdgeState state,
                                                EdgeStateCell* rec,
                                                RemovalOp::Cell* winner) {
  auto guard = ebr::pin();
  RemovalOp::Cell* mine = nullptr;
  for (;;) {
    RemovalOp::Cell* cur = op->slot.load(std::memory_order_seq_cst);
    if (cur == RemovalOp::closed()) {
      cell_pool().destroy(mine);
      return ProposeResult::kClosed;
    }
    if (cur == nullptr) {
      if (mine == nullptr) mine = cell_pool().create(e, state, rec);
      RemovalOp::Cell* expected = nullptr;
      if (op->slot.compare_exchange_strong(expected, mine,
                                           std::memory_order_seq_cst)) {
        return ProposeResult::kProposed;
      }
      continue;
    }
    if (cur->edge == Edge(op->u, op->v)) {
      // Defunct by definition (see can_be_replacement): evict.
      RemovalOp::Cell* expected = cur;
      if (op->slot.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_seq_cst)) {
        cell_pool().retire(cur);
      }
      continue;
    }
    if (cur->edge == e && cur->state.stamp() == state.stamp()) {
      // The same incarnation of the same edge is already proposed (a joiner
      // of the same addition, or the writer re-proposing after a status
      // race): count as ours. The stamp comparison is essential: a cell for
      // a *previous* incarnation of this edge can linger in the slot after
      // a demote + non-blocking remove + re-add, and treating it as "ours"
      // would let the new incarnation turn SPANNING while finalize rightly
      // rejects the stale cell — an orphaned spanning edge with no arcs.
      // A stale same-edge cell instead falls through to the help/evict path
      // below, which evicts it (its CAS word can never match again).
      cell_pool().destroy(mine);
      return ProposeResult::kProposed;
    }
    // A different edge occupies the slot — help finalize it (make it
    // spanning) so the occupancy is justified, or evict it if it is defunct.
    EdgeState occ = cur->state;
    if (cur->rec->cas(occ, occ.with(kSpanning, 0), 17)) {
      *winner = *cur;
      cell_pool().destroy(mine);
      return ProposeResult::kOtherWon;
    }
    const EdgeState now = cur->rec->load();
    if (now.status() == kSpanning && now.stamp() == occ.stamp()) {
      *winner = *cur;
      cell_pool().destroy(mine);
      return ProposeResult::kOtherWon;
    }
    // The occupant was removed, demoted to plain non-spanning by a joiner,
    // or replaced by a new incarnation: clear the slot and retry.
    RemovalOp::Cell* expected = cur;
    if (op->slot.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_seq_cst)) {
      cell_pool().retire(cur);
    }
  }
}

RemovalOp::Cell* NbHdt::finalize_replacement_search(RemovalOp* op) {
  auto guard = ebr::pin();
  for (;;) {
    RemovalOp::Cell* cur = op->slot.load(std::memory_order_seq_cst);
    assert(cur != RemovalOp::closed());
    if (cur == nullptr) {
      RemovalOp::Cell* expected = nullptr;
      if (op->slot.compare_exchange_strong(expected, RemovalOp::closed(),
                                           std::memory_order_seq_cst)) {
        return nullptr;  // slot closed; no replacement
      }
      continue;
    }
    if (cur->edge == Edge(op->u, op->v)) {
      RemovalOp::Cell* expected = cur;
      if (op->slot.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_seq_cst)) {
        cell_pool().retire(cur);
      }
      continue;
    }
    EdgeState occ = cur->state;
    if (cur->rec->cas(occ, occ.with(kSpanning, 0), 18)) return cur;
    const EdgeState now = cur->rec->load();
    if (now.status() == kSpanning && now.stamp() == occ.stamp()) return cur;
    RemovalOp::Cell* expected = cur;
    if (op->slot.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_seq_cst)) {
      cell_pool().retire(cur);
    }
  }
}

// ---------------------------------------------------------------------------
// add_edge (Listings 8 + 9)
// ---------------------------------------------------------------------------

bool NbHdt::add_edge(Vertex u, Vertex v) {
  if (u == v) return false;
  const Edge e(u, v);
  EdgeStateCell* rec = states_.cell(e);

  // Acquire an INITIAL incarnation of the edge, or join the one in flight.
  // A fresh incarnation gets a fresh stamp — the ABA defense of Appendix C.
  EdgeState st = rec->load();
  EdgeState init;
  bool creator = false;
  for (;;) {
    if (st.status() == kRemoved) {
      const EdgeState want(kInitial, 0, st.stamp() + 1);
      if (rec->cas(st, want, 1)) {
        init = want;
        creator = true;
        break;
      }
      continue;  // st refreshed
    }
    if (st.status() == kInitial) {
      init = st;  // join: help complete, then report "was already present"
      break;
    }
    return false;  // present (non-spanning / spanning / in-progress)
  }

  auto& stats = op_stats::local();
  for (;;) {
    const EdgeState cur = rec->load();
    if (cur != init) {
      // Our incarnation was committed (possibly by a helper or joiner).
      if (cur.status() == kInProgress && cur.stamp() == init.stamp()) {
        // A writer is inserting it as a spanning edge: synchronize by
        // passing through the locks (Listing 8 lines 14-15).
        with_locked(u, v, [] {});
      }
      if (creator) ++stats.additions;
      return creator;
    }
    if (connected(u, v)) {
      if (try_add_non_spanning(e, init, rec)) {
        if (creator) ++stats.additions;
        return creator;
      }
      continue;
    }
    blocking_add_edge(e, init, rec);
    if (creator) ++stats.additions;
    return creator;
  }
}

bool NbHdt::try_add_non_spanning(const Edge& e, EdgeState init,
                                 EdgeStateCell* rec) {
  auto guard = ebr::pin();
  auto& stats = op_stats::local();

  // Publish the edge info *before* looking for a concurrent removal — the
  // ordering Theorem 4.1's case analysis rests on.
  add_info(0, e);

  Node* root = ett::find_root(forest0_->vertex_node(e.u));
  auto* op =
      static_cast<RemovalOp*>(root->removal_op.load(std::memory_order_seq_cst));
  if (op != nullptr) {
    if (can_be_replacement(op, e)) {
      RemovalOp::Cell winner;
      switch (propose_replacement(op, e, init, rec, &winner)) {
        case ProposeResult::kProposed: {
          // Our edge is the replacement: it reconnects the halves, so it is
          // spanning. The writer performs the physical relink.
          remove_info(0, e);
          EdgeState expect = init;
          rec->cas(expect, init.with(kSpanning, 0), 2);  // helper may have won
          ++stats.nonblocking_updates;
          return true;
        }
        case ProposeResult::kClosed: {
          // The removal completed without a replacement; our edge now
          // connects different components (Listing 9 lines 15-19).
          remove_info(0, e);
          blocking_add_edge(e, init, rec);
          return true;
        }
        case ProposeResult::kOtherWon:
          break;  // a replacement exists; the component stays connected
      }
    }
  }

  // Re-check and linearize as a plain non-spanning edge (Listing 9 21-26).
  if (forest0_->connected(e.u, e.v)) {
    EdgeState expect = init;
    if (rec->cas(expect, init.with(kNonSpanning, 0), 3)) {
      ++stats.nonspanning_additions;
      ++stats.nonblocking_updates;
      return true;
    }
  }
  remove_info(0, e);
  return false;  // restart the outer loop
}

void NbHdt::blocking_add_edge(const Edge& e, EdgeState init,
                              EdgeStateCell* rec) {
  auto& stats = op_stats::local();
  with_locked(e.u, e.v, [&] {
    EdgeState cur = rec->load();
    if (cur != init) return;  // committed by a helper meanwhile
    if (!forest0_->connected_writer(e.u, e.v)) {
      // Spanning insertion: IN_PROGRESS marks the window so that concurrent
      // additions of the same edge wait instead of observing a half-inserted
      // spanning edge (Appendix C "Edge Statuses").
      if (!rec->cas(cur, init.with(kInProgress, 0), 4)) return;
      forest0_->link(e.u, e.v);
      forest0_->set_arc_at_level(e.u, e.v, true);
#ifdef CONDYN_TRACE_EDGE_STATES
      rec->trace(22, 0, 0);  // arcs created (blocking spanning add)
#endif
      rec->store(init.with(kSpanning, 0), 5);
    } else {
      add_info(0, e);
      EdgeState expect = init;
      if (!rec->cas(expect, init.with(kNonSpanning, 0), 6)) {
        remove_info(0, e);
        return;
      }
      ++stats.nonspanning_additions;
    }
  });
}

// ---------------------------------------------------------------------------
// remove_edge (Listing 7)
// ---------------------------------------------------------------------------

bool NbHdt::remove_edge(Vertex u, Vertex v) {
  if (u == v) return false;
  const Edge e(u, v);
  EdgeStateCell* rec = states_.cell(e);
  auto& stats = op_stats::local();
  for (;;) {
    const EdgeState st = rec->load();
    switch (st.status()) {
      case kRemoved:
        return false;
      case kInitial:
        // Not added yet: linearize this removal before that addition.
        return false;
      case kNonSpanning:
        if (try_remove_non_spanning(e, st, rec)) {
          ++stats.removals;
          ++stats.nonspanning_removals;
          ++stats.nonblocking_updates;
          return true;
        }
        continue;
      case kSpanning:
      case kInProgress:
        if (blocking_remove_edge(e, rec)) {
          ++stats.removals;
          return true;
        }
        return false;
    }
  }
}

bool NbHdt::try_remove_non_spanning(const Edge& e, EdgeState st,
                                    EdgeStateCell* rec) {
  EdgeState expect = st;
  if (!rec->cas(expect, st.with(kRemoved, 0), 7)) return false;
  remove_info(st.level(), e);  // physical deletion after the linearization
  return true;
}

bool NbHdt::blocking_remove_edge(const Edge& e, EdgeStateCell* rec) {
  bool removed = false;
  auto& stats = op_stats::local();
  with_locked(e.u, e.v, [&] {
    for (;;) {
      const EdgeState st = rec->load();
      switch (st.status()) {
        case kRemoved:
        case kInitial:
          return;  // removed (or never committed) by someone else
        case kNonSpanning:
          if (try_remove_non_spanning(e, st, rec)) {
            ++stats.nonspanning_removals;
            removed = true;
            return;
          }
          continue;
        case kInProgress:
          // Unreachable: IN_PROGRESS is set and cleared under the same
          // component/global locks we now hold.
          assert(false && "IN_PROGRESS observed under the component locks");
          return;
        case kSpanning:
          remove_spanning_edge(e, st, rec);
          removed = true;
          return;
      }
    }
  });
  return removed;
}

// ---------------------------------------------------------------------------
// Spanning-edge removal: replacement search across levels, slot-coordinated
// at level 0 (Listings 7 + 10)
// ---------------------------------------------------------------------------

void NbHdt::remove_spanning_edge(const Edge& e, EdgeState st,
                                 EdgeStateCell* rec) {
  auto guard = ebr::pin();  // scans traverse lock-free multisets
  const int le = st.level();

  // Private levels are cut immediately; the published F_0 split stays
  // pending until the search settles, so readers observe the removal only
  // at its linearization point — or never, if a replacement exists.
  for (int i = le; i >= 1; --i) forest(i).cut(e.u, e.v);
  Forest::CutHandle h = forest0_->cut_prepare(e.u, e.v);
#ifdef CONDYN_TRACE_EDGE_STATES
  rec->trace(20, 0, 0);  // arcs removed from F0 (pending)
#endif

  Edge repl;
  int found_level = -1;
  bool found = search_upper_levels(e, le, &repl, &found_level);

  if (!found) {
    // Level-0 phase: publish the removal descriptor so concurrent
    // non-blocking additions can propose their edge as the replacement.
    Node* tv = Forest::subtree_vertices(h.root_u) <=
                       Forest::subtree_vertices(h.root_v)
                   ? h.root_u
                   : h.root_v;
    Node* other = (tv == h.root_u) ? h.root_v : h.root_u;
    auto* op = op_pool().create();
    op->u = e.u;
    op->v = e.v;
    op->old_root = h.old_root;
    op->detached_root = (h.root_u == h.old_root) ? h.root_v : h.root_u;
    h.old_root->removal_op.store(op, std::memory_order_seq_cst);

    ++op_stats::local().replacement_searches;
    level0_search(op, LevelSearch{0, tv, other});
    RemovalOp::Cell* winner = finalize_replacement_search(op);

    if (winner != nullptr) {
      repl = winner->edge;
      found_level = 0;
      found = true;
      ++op_stats::local().replacements_found;
      forest0_->cut_relink(h, repl.u, repl.v);
      forest0_->set_arc_at_level(repl.u, repl.v, true);
#ifdef CONDYN_TRACE_EDGE_STATES
      winner->rec->trace(21, 0, 0);  // arcs created for winner
#endif
      // Replace the winner with the closed sentinel before anything else:
      // a proposer still holding this descriptor could otherwise observe the
      // winner's later removal, clear the slot, and install its own edge
      // into a descriptor no writer will ever serve — an orphaned
      // SPANNING-status edge with no forest arcs. While we hold the lock the
      // winner stays kSpanning, so no helper can clear it before this store,
      // which also makes us the unique retirer of the cell.
      op->slot.store(RemovalOp::closed(), std::memory_order_seq_cst);
      cell_pool().retire(winner);
    } else {
      forest0_->cut_commit(h);
#ifdef CONDYN_TRACE_EDGE_STATES
      rec->trace(24, 0, 0);  // split committed
#endif
    }
    h.old_root->removal_op.store(nullptr, std::memory_order_seq_cst);
    op_pool().retire(op);
  } else {
    // Replacement found above level 0: no descriptor was ever published, so
    // no proposal can exist; relink and record the new spanning edge.
    for (int j = found_level; j >= 1; --j) forest(j).link(repl.u, repl.v);
    forest0_->cut_relink(h, repl.u, repl.v);
    forest(found_level).set_arc_at_level(repl.u, repl.v, true);
#ifdef CONDYN_TRACE_EDGE_STATES
    states_.cell(repl)->trace(23, 0, 0);  // arcs created (upper-level repl)
#endif
  }

  // The removed edge leaves the graph; same stamp — the next incarnation of
  // this edge bumps it (kRemoved → kInitial).
  rec->store(st.with(kRemoved, 0), 8);
}

bool NbHdt::search_upper_levels(const Edge& removed, int top_level, Edge* out,
                                int* out_level) {
  auto& stats = op_stats::local();
  for (int i = top_level; i >= 1; --i) {
    Forest& fi = forest(i);
    Node* ru = ett::find_root(fi.vertex_node(removed.u));
    Node* rv = ett::find_root(fi.vertex_node(removed.v));
    assert(ru != rv);
    Node* tv =
        Forest::subtree_vertices(ru) <= Forest::subtree_vertices(rv) ? ru : rv;
    Node* other = (tv == ru) ? rv : ru;
    ++stats.replacement_searches;
    const LevelSearch ls{i, tv, other};
    if (sampling_ && sample_level(ls, out)) {
      *out_level = i;
      ++stats.sampling_hits;
      ++stats.replacements_found;
      return true;
    }
    promote_spanning(i, tv);
    if (scan_level(ls, out)) {
      *out_level = i;
      ++stats.replacements_found;
      return true;
    }
  }
  return false;
}

namespace {

/// Shared subtree walk: visit every vertex node whose subtree flag promises
/// non-spanning edges; `visit(vertex_node)` returns true to stop the walk.
/// When `recalc` is set, repair flags bottom-up (full scans lower stale
/// flags; sampling must not, it skips edges without processing them).
template <typename V>
bool walk_flagged(Node* x, bool recalc, V&& visit) {
  if (x == nullptr || !x->sub_nonspanning.load(std::memory_order_seq_cst))
    return false;
  bool found = false;
  if (x->is_vertex &&
      x->local_nonspanning.load(std::memory_order_seq_cst) > 0) {
    found = visit(x);
  }
  if (!found) found = walk_flagged(x->left, recalc, visit);
  if (!found) found = walk_flagged(x->right, recalc, visit);
  if (recalc) Forest::recalculate_flags(x);
  return found;
}

}  // namespace

bool NbHdt::sample_level(const LevelSearch& ls, Edge* out) {
  // Iyer et al. fast path: test up to kSampleBudget candidates without
  // promoting anything (§5.2 "Sampling").
  Forest& fi = forest(ls.level);
  int budget = kSampleBudget;
  bool found = false;
  walk_flagged(ls.tv_root, /*recalc=*/false, [&](Node* vx) {
    const Vertex a = vx->tail;
    VertexMultiset* ms = adj_[ls.level].find(a);
    if (ms == nullptr) return false;
    ms->for_each([&](Vertex w) {
      if (budget-- <= 0) return false;
      const Edge e(a, w);
      EdgeStateCell* rec = states_.cell(e);
      EdgeState st = rec->load();
      if (st.status() != kNonSpanning || st.level() != ls.level) return true;
      if (ett::find_root(fi.vertex_node(w)) != ls.other_root) return true;
      if (rec->cas(st, st.with(kSpanning, ls.level), 11)) {
        remove_info(ls.level, e);
        *out = e;
        found = true;
        return false;
      }
      return true;
    });
    return found || budget <= 0;
  });
  return found;
}

bool NbHdt::scan_level(const LevelSearch& ls, Edge* out) {
  const int i = ls.level;
  assert(i >= 1 && i + 1 <= lmax_ + 1);
  Forest& fi = forest(i);
  bool found = false;
  walk_flagged(ls.tv_root, /*recalc=*/true, [&](Node* vx) {
    const Vertex a = vx->tail;
    VertexMultiset* ms = adj_[i].find(a);
    if (ms == nullptr) return false;
    ms->for_each([&](Vertex w) {
      const Edge e(a, w);
      EdgeStateCell* rec = states_.cell(e);
      for (EdgeState st = rec->load();;) {
        if (st.status() != kNonSpanning || st.level() != i)
          return true;  // stale copy (removed / promoted / re-added)
        Node* rw = ett::find_root(fi.vertex_node(w));
        if (rw == ls.other_root) {
          // Replacement found. Levels ≥ 1 have no proposal slot — only
          // level-0 additions are non-blocking — so adopt directly.
          if (!rec->cas(st, st.with(kSpanning, i), 9)) continue;  // st refreshed
          remove_info(i, e);
          *out = e;
          found = true;
          return false;
        }
        if (rw != ls.tv_root) return true;  // foreign/stale; skip
        // Both endpoints inside the smaller piece: promote to amortize this
        // visit (info goes to level i+1 before the status CAS, the loser
        // copy is deleted after — the multiset invariant's ordering).
        add_info(i + 1, e);
        EdgeState expect = st;
        if (rec->cas(expect, st.with(kNonSpanning, i + 1), 10)) {
          remove_info(i, e);
        } else {
          remove_info(i + 1, e);
        }
        return true;
      }
    });
    return found;
  });
  return found;
}

namespace {

void collect_level_arcs(const Node* x, std::vector<Edge>& out) {
  if (x == nullptr || !x->sub_level_arc) return;
  if (x->arc_at_level && x->tail < x->head)  // each arc pair reported once
    out.emplace_back(x->tail, x->head);
  collect_level_arcs(x->left, out);
  collect_level_arcs(x->right, out);
}

}  // namespace

void NbHdt::promote_spanning(int i, Node* tv_root) {
  assert(i + 1 <= lmax_);
  // Collect level-i spanning arcs inside the smaller piece, then raise them.
  std::vector<Edge> arcs;
  collect_level_arcs(tv_root, arcs);

  Forest& fi = forest(i);
  Forest& fn = forest(i + 1);
  for (const Edge& e : arcs) {
    fi.set_arc_at_level(e.u, e.v, false);
    fn.link(e.u, e.v);
    fn.set_arc_at_level(e.u, e.v, true);
    EdgeStateCell* rec = states_.cell(e);
    EdgeState st = rec->load();
#ifdef CONDYN_TRACE_EDGE_STATES
    if (st.status() != kSpanning || st.level() != i) rec->dump_trace();
#endif
    assert(st.status() == kSpanning && st.level() == i &&
           "arc flags and edge states must agree under the locks we hold");
    [[maybe_unused]] const bool ok = rec->cas(st, st.with(kSpanning, i + 1), 12);
    assert(ok && "spanning states only change under the locks we hold");
  }
}

void NbHdt::level0_search(RemovalOp* op, const LevelSearch& ls) {
  auto& stats = op_stats::local();
  bool found = false;
  if (sampling_) {
    int budget = kSampleBudget;
    walk_flagged(ls.tv_root, /*recalc=*/false, [&](Node* vx) {
      const Vertex a = vx->tail;
      VertexMultiset* ms = adj_[0].find(a);
      if (ms == nullptr) return false;
      ms->for_each([&](Vertex w) {
        if (budget-- <= 0) return false;
        found = level0_visit_edge(op, ls, a, w, /*allow_promote=*/false);
        return !found;
      });
      return found || budget <= 0;
    });
    if (found) {
      ++stats.sampling_hits;
      return;
    }
  }
  promote_spanning(0, ls.tv_root);
  walk_flagged(ls.tv_root, /*recalc=*/true, [&](Node* vx) {
    const Vertex a = vx->tail;
    VertexMultiset* ms = adj_[0].find(a);
    if (ms == nullptr) return false;
    ms->for_each([&](Vertex w) {
      found = level0_visit_edge(op, ls, a, w, /*allow_promote=*/true);
      return !found;
    });
    return found;
  });
}

bool NbHdt::level0_visit_edge(RemovalOp* op, const LevelSearch& ls, Vertex a,
                              Vertex w, bool allow_promote) {
  const Edge e(a, w);
  EdgeStateCell* rec = states_.cell(e);
  const EdgeState first = rec->load();
  for (EdgeState st = first;;) {
    if (st.stamp() != first.stamp()) return false;  // new incarnation: stale copy
    if (st.status() == kInitial) {
      // A concurrent addition is in flight; the paper requires helping it
      // (Listing 10 lines 13-27) — skipping could let the edge linearize as
      // non-spanning across a committed split.
      Node* rw = Forest::find_piece_root(forest0_->vertex_node(w));
      if (rw == ls.other_root) {
        RemovalOp::Cell winner;
        switch (propose_replacement(op, e, st, rec, &winner)) {
          case ProposeResult::kProposed: {
            EdgeState expect = st;
            if (rec->cas(expect, st.with(kSpanning, 0), 13)) return true;
            const EdgeState now = rec->load();
            if (now.status() == kSpanning && now.stamp() == st.stamp())
              return true;  // the proposer's own CAS won
            st = now;  // a joiner demoted it to NON-SPANNING: reprocess
            continue;
          }
          case ProposeResult::kOtherWon:
            return true;  // the slot already holds a finalized winner
          case ProposeResult::kClosed:
            assert(false && "slot closed during our own search");
            return false;
        }
      }
      if (rw == ls.tv_root) {
        // Same side: help complete it as a plain non-spanning edge.
        add_info(0, e);
        EdgeState expect = st;
        if (rec->cas(expect, st.with(kNonSpanning, 0), 14)) {
          st = st.with(kNonSpanning, 0);
        } else {
          remove_info(0, e);
          st = expect;
        }
        continue;
      }
      return false;  // endpoints in another component; the adder re-checks
    }
    if (st.status() == kNonSpanning && st.level() == 0) {
      Node* rw = Forest::find_piece_root(forest0_->vertex_node(w));
      if (rw == ls.other_root) {
        // Candidate: make it spanning *first*, then publish through the slot
        // (Listing 10 lines 29-35); revert if a foreign proposal won.
        EdgeState expect = st;
        if (!rec->cas(expect, st.with(kSpanning, 0), 15)) {
          st = expect;
          continue;
        }
        RemovalOp::Cell winner;
        switch (propose_replacement(op, e, st, rec, &winner)) {
          case ProposeResult::kProposed:
            remove_info(0, e);
            return true;
          case ProposeResult::kOtherWon:
            rec->store(st, 16);  // revert: the slot winner reconnects instead
            return true;
          case ProposeResult::kClosed:
            assert(false && "slot closed during our own search");
            return false;
        }
      }
      if (rw != ls.tv_root) return false;  // stale
      if (!allow_promote) return false;    // sampling pass: just skip
      if (1 > lmax_) return false;         // degenerate 2-vertex graphs
      add_info(1, e);
      EdgeState expect = st;
      if (rec->cas(expect, st.with(kNonSpanning, 1), 19)) {
        remove_info(0, e);
      } else {
        remove_info(1, e);
      }
      return false;
    }
    return false;  // removed / spanning / wrong level: stale copy
  }
}

// ---------------------------------------------------------------------------
// Invariant checking (tests; quiescent structure only)
// ---------------------------------------------------------------------------

void NbHdt::check_invariants() {
  states_.for_each([&](const Edge& e, EdgeState st) {
    switch (st.status()) {
      case kRemoved:
        return;
      case kInitial:
      case kInProgress:
        assert(false && "transient status on a quiescent structure");
        return;
      case kSpanning: {
        for (int i = 0; i <= st.level(); ++i) {
          [[maybe_unused]] Forest* f = forest_if(i);
          assert(f != nullptr && f->has_edge(e.u, e.v));
        }
        for (int i = st.level() + 1; i <= lmax_; ++i) {
          [[maybe_unused]] Forest* f = forest_if(i);
          assert(f == nullptr || !f->has_edge(e.u, e.v));
        }
        break;
      }
      case kNonSpanning: {
        // At least one live copy in each endpoint's multiset at this level.
        for (auto [x, y] : {std::pair{e.u, e.v}, std::pair{e.v, e.u}}) {
          [[maybe_unused]] VertexMultiset* ms = adj_[st.level()].find(x);
          assert(ms != nullptr);
          [[maybe_unused]] bool present = false;
          ms->for_each([&](Vertex t) {
            if (t == y) {
              present = true;
              return false;
            }
            return true;
          });
          assert(present);
        }
        // Both endpoints connected at the edge's level.
        [[maybe_unused]] Forest* f = forest_if(st.level());
        assert(f != nullptr);
        assert(ett::find_root(f->vertex_node(e.u)) ==
               ett::find_root(f->vertex_node(e.v)));
        break;
      }
    }
    // Component-size invariant: |component of e in G_l| ≤ n / 2^l.
    Forest* f = forest_if(st.level());
    if (f != nullptr) {
      Node* nu = f->vertex_node_if_exists(e.u);
      if (nu != nullptr) {
        [[maybe_unused]] const uint32_t sz =
            Forest::subtree_vertices(ett::find_root(nu));
        assert(static_cast<uint64_t>(sz) << st.level() <= n_);
      }
    }
  });
}

}  // namespace condyn
