#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "core/hdt.hpp"
#include "util/task_pool.hpp"

namespace condyn {

/// (14) pbd — the parallel batch-dynamic variant: one apply_batch call is
/// itself a parallel program (DESIGN.md §9). Where every other family
/// serializes a batch through one lock, one combiner or one engine pass,
/// PbdDc pipelines it through three phases over a persistent fork-join gang
/// (TaskPool, DC_PBD_WORKERS):
///
///  1. *preprocess* — partition the batch's update ops across the gang by
///     edge_partition_hash, sort each partition by canonical edge key, and
///     simulate every same-edge group against its initial presence: all
///     update return values fall out (an update's result depends only on its
///     own edge's history), and consecutive add/remove pairs cancel into at
///     most one *net* engine op per edge per run;
///  2. *group* — queries are reorder barriers (batch_runs.hpp), so the batch
///     decomposes into query stretches and update runs; runs whose net ops
///     all cancelled disappear entirely, merging the neighboring stretches;
///  3. *apply* — the gang walks the segment plan in lockstep: long query
///     stretches fan out over the workers on the lock-free read path, long
///     net-op runs fan out under per-component Listing-2 guards (spanning-
///     forest repair included), and everything below the fan-out cutoffs is
///     the sequential residue the leader applies directly.
///
/// Synchronization: an update-containing batch (and every single-op update)
/// holds one blocking mutex, so batches are atomic with respect to
/// concurrent update callers (caps.atomic_batch) — waiters park instead of
/// spinning, which is also what lets the gang own the cores. Reads —
/// single-op queries and pure-read batches — never touch the mutex: they run
/// the engine's lock-free Listing-1 paths (caps.lock_free_reads).
class PbdDc final : public DynamicConnectivity {
 public:
  /// `workers` is the gang size including the caller (0 = DC_PBD_WORKERS
  /// default); the cutoffs are the minimum segment sizes worth fanning out
  /// (tests lower them to force the parallel paths on tiny batches).
  explicit PbdDc(Vertex n, std::string name, bool sampling = true,
                 unsigned workers = 0, std::size_t par_read_cutoff = 32,
                 std::size_t par_update_cutoff = 8);

  bool add_edge(Vertex u, Vertex v) override;
  bool remove_edge(Vertex u, Vertex v) override;

  bool connected(Vertex u, Vertex v) override { return hdt_.connected(u, v); }
  uint64_t component_size(Vertex u) override {
    return hdt_.component_size(u);
  }
  Vertex representative(Vertex u) override { return hdt_.representative(u); }

  BatchResult apply_batch(std::span<const Op> ops) override;

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  unsigned workers() const noexcept { return pool_.workers(); }
  Hdt& engine() noexcept { return hdt_; }

 private:
  /// One materialization op: the surviving net effect of an edge's update
  /// group within one run, applied to the engine at that run's end.
  struct NetOp {
    uint32_t run;
    OpKind kind;  // kAdd or kRemove
    Vertex u, v;
  };

  /// One step of the execution plan: a query stretch (batch index range;
  /// non-query indices inside are cancelled updates and are skipped) or an
  /// update run (range into net_ops_).
  struct Segment {
    bool read;
    bool parallel;
    uint32_t begin, end;
  };

  void preprocess(std::span<const Op> ops, BatchResult& r);
  void build_segments(std::span<const Op> ops);
  void exec_read(std::span<const Op> ops, BatchResult& r, const Segment& s,
                 unsigned worker, unsigned stride,
                 std::atomic<uint64_t>& queries_true);
  void exec_update(const Segment& s, unsigned worker, unsigned stride,
                   bool guarded);

  Hdt hdt_;
  std::string name_;
  std::mutex mu_;  ///< update/batch exclusion; waiters block, never spin
  const std::size_t par_read_cutoff_;
  const std::size_t par_update_cutoff_;

  // Plan scratch, reused across batches; touched only under mu_.
  std::vector<uint32_t> upd_pos_;  ///< update batch indices, batch order
  std::vector<uint32_t> run_of_;   ///< run ordinal per upd_pos_ entry
  std::size_t num_runs_ = 0;
  std::vector<std::vector<uint32_t>> part_scratch_;  ///< per-worker sort keys
  std::vector<std::vector<NetOp>> part_nets_;        ///< per-worker net ops
  std::vector<std::pair<uint64_t, uint64_t>> part_counts_;  ///< adds,removes
  std::vector<NetOp> net_ops_;            ///< bucketed by run, contiguous
  std::vector<uint32_t> run_net_begin_;   ///< per-run offsets into net_ops_
  std::vector<Segment> segments_;

  /// Declared last: destroyed (joined) first, so no gang thread outlives
  /// the engine whose guards and pools it touched.
  TaskPool pool_;
};

}  // namespace condyn
