#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "core/ett.hpp"
#include "core/sharded_map.hpp"
#include "graph/graph.hpp"
#include "util/small_flat_set.hpp"

namespace condyn {

/// Holm–de Lichtenberg–Thorup dynamic connectivity over single-writer
/// Euler Tour Trees (paper §4.1–§4.2).
///
/// Levels 0..⌊log2 n⌋; forest F_i spans the subgraph G_i of edges with level
/// ≥ i; F_0 is the published spanning forest that connectivity queries read.
/// A spanning edge of level l has arc pairs in F_0..F_l; a non-spanning edge
/// of level l is recorded in the per-level adjacency sets of its endpoints.
/// Replacement searches promote edges of the smaller side to amortize their
/// cost, with the Iyer-et-al. random-sampling fast path the paper enables
/// for all evaluated algorithms (§5.2 "Sampling").
///
/// Concurrency contract:
///  * connected() is lock-free and linearizable (level-0 single-writer ETT);
///  * add_edge/remove_edge/connected_writer require the caller to hold
///    lock(s) covering the involved component(s) — a global lock for the
///    coarse variants, the level-0 root locks of Listing 2 for the
///    fine-grained ones. Cross-component shared state (edge table, adjacency
///    maps, lazy forest creation) is internally sharded/atomic, so writers
///    of disjoint components proceed in parallel.
///  * A spanning-edge removal keeps the F_0 split *pending* (ett two-phase
///    cut) for the whole replacement search, so readers observe the removal
///    only at its linearization point — or never, if a replacement exists.
class Hdt {
 public:
  struct UpdateOutcome {
    bool performed = false;  ///< the graph changed
    bool spanning = false;   ///< the spanning forest changed (or was probed)
  };

  explicit Hdt(Vertex n, bool sampling = true);
  virtual ~Hdt();
  Hdt(const Hdt&) = delete;
  Hdt& operator=(const Hdt&) = delete;

  Vertex num_vertices() const noexcept { return n_; }
  int max_level() const noexcept { return lmax_; }

  /// Lock-free linearizable connectivity query (Listing 1 on F_0).
  bool connected(Vertex u, Vertex v) { return forest0_->connected(u, v); }

  /// Writer-side query: caller holds lock(s) covering both components.
  bool connected_writer(Vertex u, Vertex v) {
    return forest0_->connected_writer(u, v);
  }

  /// Lock-free value queries over the published F_0 (Query API v2): the
  /// root's vcount / vmin augmentation read under the same versioned
  /// double-collect as connected().
  uint64_t component_size(Vertex u) {
    return forest0_->component_size_nonblocking(u);
  }
  Vertex representative(Vertex u) {
    return forest0_->representative_nonblocking(u);
  }

  /// Writer-side value queries: caller holds lock(s) covering u's component.
  uint64_t component_size_writer(Vertex u) {
    return forest0_->component_vertices(u);
  }
  Vertex representative_writer(Vertex u) {
    return forest0_->representative_writer(u);
  }

  /// One query op of any is_query kind, as a raw value — the single
  /// dispatch behind every variant's pure-read path (a new query kind is
  /// added here once, not in each variant's switch). exec_query runs
  /// lock-free; exec_query_writer requires the caller's lock(s).
  uint64_t exec_query(const Op& op) {
    switch (op.kind) {
      case OpKind::kConnected: return connected(op.u, op.v) ? 1 : 0;
      case OpKind::kComponentSize: return component_size(op.u);
      case OpKind::kRepresentative: return representative(op.u);
      default: return 0;  // updates never reach the query paths
    }
  }
  uint64_t exec_query_writer(const Op& op) {
    switch (op.kind) {
      case OpKind::kConnected: return connected_writer(op.u, op.v) ? 1 : 0;
      case OpKind::kComponentSize: return component_size_writer(op.u);
      case OpKind::kRepresentative: return representative_writer(op.u);
      default: return 0;
    }
  }

  /// Writer: insert (u,v). Returns {performed=false} if already present.
  UpdateOutcome add_edge(Vertex u, Vertex v);

  /// Writer: erase (u,v). Returns {performed=false} if absent.
  UpdateOutcome remove_edge(Vertex u, Vertex v);

  /// Writer: apply a whole batch under the caller's lock(s), writing per-op
  /// outcomes into `out` (whose results vector must already have ops.size()
  /// entries). Equivalent to applying ops in index order: maximal runs of
  /// updates between queries are stably grouped by edge — updates on
  /// distinct edges commute (their return values and the resulting edge set
  /// depend only on per-edge history), so the reorder preserves sequential
  /// batch semantics while repeated edges and same-component work apply
  /// back-to-back (DESIGN.md §5.1).
  void apply_batch(std::span<const Op> ops, BatchResult& out);

  bool has_edge(Vertex u, Vertex v) const;
  bool is_spanning(Vertex u, Vertex v) const;
  int edge_level(Vertex u, Vertex v) const;  ///< -1 when absent

  /// The published forest readers traverse; variant layers use it for root
  /// discovery (fine-grained locking) and non-blocking reads.
  ett::Forest& level0() noexcept { return *forest0_; }

  /// Testing: F_0 ⊇ F_1 ⊇ ..., level bounds, component-size invariant.
  void check_invariants();

 protected:
  struct EdgeInfo {
    uint8_t level = 0;
    bool spanning = false;
    bool present = false;
  };

  /// Per-(vertex, level) non-spanning neighbors. A small-inline flat set:
  /// degree is tiny almost always, so membership is a linear scan and the
  /// common case allocates nothing (DESIGN.md §7.2).
  struct AdjSet {
    SmallFlatSet<Vertex> s;
  };

  ett::Forest& forest(int i);
  ett::Forest* forest_if(int i) const noexcept {
    return forests_[i].load(std::memory_order_acquire);
  }

  void adj_insert(int level, Vertex a, Vertex b);
  void adj_erase(int level, Vertex a, Vertex b);

  /// Promote every level-i spanning edge inside tv's subtree to level i+1.
  void promote_level_arcs(int i, ett::Node* tv_root);

  /// Full scan (Listing-10 shape, locked engine): promote non-candidates,
  /// stop at the first edge crossing to other_root. Recalculates flags
  /// bottom-up. Returns true and fills *out when a replacement was found
  /// (already detached from the adjacency sets).
  bool search_replacement(int i, ett::Node* x, ett::Node* other_root,
                          Edge* out);

  /// Sampling fast path: test up to kSampleBudget candidate edges without
  /// promoting anything.
  bool sample_replacement(int i, ett::Node* tv_root, ett::Node* other_root,
                          Edge* out);

  static constexpr int kSampleBudget = 16;

  Vertex n_;
  int lmax_;
  bool sampling_;
  ett::Forest* forest0_;  // owned via forests_[0], cached for hot paths
  std::unique_ptr<std::atomic<ett::Forest*>[]> forests_;
  ShardedEdgeMap<EdgeInfo> edges_;
  std::unique_ptr<ShardedU64Map<AdjSet>[]> adj_;

 private:
  void collect_level_arcs(const ett::Node* x, std::vector<Edge>& out) const;
  bool sample_scan(int i, ett::Node* x, ett::Node* other_root, Edge* out,
                   int& budget);
};

}  // namespace condyn
