#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "util/cacheline.hpp"
#include "util/task_pool.hpp"

namespace condyn {

/// (15) sharded<inner> — two-level sharded scale-out (DESIGN.md §10,
/// ROADMAP direction 2): the vertex universe is partitioned into S
/// independent connectivity shards (each a full DynamicConnectivity of any
/// registered family) plus a *boundary layer* that tracks cross-shard edges
/// and answers global queries through a small top-level structure over
/// shard-component representatives.
///
///  * Router: vertex → shard by a pow2 mask over the same mix64 hashing the
///    dep-replay edge partition uses (`DC_SHARDS`, default 4). Per-shard
///    vertex ids are assigned in ascending global order, so the inner
///    structure's smallest-local-id representative maps back to the
///    smallest *global* id — PR 5's representative() contract survives the
///    translation and shard-component reps are durable super-node keys.
///  * Intra-shard ops (the common case the router maximizes) go straight to
///    the owning inner structure; no shared state is touched beyond one
///    per-shard version bump on successful updates.
///  * Cross-shard edges never reach an inner structure: they live in a
///    boundary edge set (with per-shard incidence counts) and contribute
///    connectivity only through the BoundaryIndex — a DSU over (shard,
///    representative) super-nodes rebuilt lazily and published behind
///    PR 6-style versioned invalidation: writers only bump cache-line-
///    padded version counters; the re-link work stays off the update path
///    and is paid by the first global query that needs it.
///  * apply_batch partitions each update run by shard and fans the
///    per-shard sub-batches out over a PR 7 TaskPool gang (shard s is
///    always handled by gang member s % workers, so the thread-local
///    NodePool arenas each worker populates stay shard-local); queries are
///    reorder barriers executed by the caller between runs.
///
/// Consistency contract: intra-shard queries are exactly as strong as the
/// inner variant's. Queries that consult the boundary layer (cross-shard
/// connected(), component_size()/representative()/components() of a
/// component that touches a boundary edge) are exact at quiescence and
/// between updates of the involved components — the same contract as the
/// base-class query fallbacks — because the index is a snapshot validated
/// against the per-shard versions, not a linearizable structure.
class ShardedDc final : public DynamicConnectivity {
 public:
  using InnerMake =
      std::function<std::unique_ptr<DynamicConnectivity>(Vertex, bool)>;

  /// `shards` is rounded down to a power of two and clamped to [1, 64];
  /// 0 picks the DC_SHARDS environment default. `workers` sizes the batch
  /// fan-out gang including the caller (0 = min(shards, TaskPool default)).
  ShardedDc(Vertex n, std::string name, InnerMake make_inner,
            bool sampling = true, unsigned shards = 0, unsigned workers = 0);

  bool add_edge(Vertex u, Vertex v) override;
  bool remove_edge(Vertex u, Vertex v) override;
  bool connected(Vertex u, Vertex v) override;
  uint64_t component_size(Vertex u) override;
  Vertex representative(Vertex u) override;
  ComponentsSnapshot components() override;
  BatchResult apply_batch(std::span<const Op> ops) override;
  /// Quiesce hook (ingest snapshot/recovery): force-rebuild the boundary
  /// index now if stale, so the first post-quiesce cross-shard query reads
  /// a published index instead of paying the rebuild inline.
  void quiesce() override;

  Vertex num_vertices() const override { return n_; }
  std::string name() const override { return name_; }

  unsigned num_shards() const noexcept {
    return static_cast<unsigned>(inner_.size());
  }
  uint32_t shard_of(Vertex v) const noexcept { return shard_of_[v]; }
  /// Count of boundary (cross-shard) edges currently present.
  std::size_t boundary_edges() const;

  /// DC_SHARDS environment default: pow2 in [1, 64], 4 when unset.
  static unsigned env_shards();
  /// The router hash, exposed so workload generators (work-imbalance) can
  /// target one shard's vertex range without constructing a ShardedDc.
  static uint32_t route(Vertex v, uint32_t pow2_mask) noexcept;

 private:
  /// One rebuilt snapshot of the top-level connectivity over shard-component
  /// representatives. Immutable once published; `built` holds the S+1
  /// version-counter values captured *before* the build, so any update that
  /// raced the build leaves the snapshot detectably stale.
  struct BoundaryIndex {
    std::vector<uint64_t> built;  ///< [shard 0..S-1, boundary]
    /// Shard-component representative (global id) → super-component ordinal.
    /// A representative absent from this map belongs to a component no
    /// boundary edge touches: its shard-local answers are globally exact.
    std::unordered_map<Vertex, uint32_t> super_of;
    std::vector<uint64_t> size;  ///< per ordinal: sum of member inner sizes
    std::vector<Vertex> rep;     ///< per ordinal: min member representative
  };

  struct alignas(kCacheLine) PaddedCounter {
    std::atomic<uint64_t> v{0};
  };

  uint32_t shard_index(Vertex v) const noexcept { return shard_of_[v]; }
  Vertex local_of(Vertex v) const noexcept { return local_of_[v]; }
  Vertex global_of(uint32_t s, Vertex local) const {
    return global_of_[s][local];
  }
  /// Inner representative of v, translated back to the global id space.
  Vertex rep_global(Vertex v) {
    const uint32_t s = shard_of_[v];
    return global_of_[s][static_cast<Vertex>(
        inner_[s]->representative(local_of_[v]))];
  }

  void bump_shard(uint32_t s) noexcept {
    shard_version_[s].v.fetch_add(1, std::memory_order_release);
  }
  void bump_boundary() noexcept {
    boundary_version_.v.fetch_add(1, std::memory_order_release);
  }
  bool versions_match(const BoundaryIndex& idx) const noexcept;

  /// True when v's shard component provably touches no boundary endpoint,
  /// making its inner answers globally exact without consulting (or
  /// rebuilding) the index: the probe scans the shard's published endpoint
  /// list and asks the inner structure for connectivity to each. False
  /// means "touches a boundary endpoint or the list is too big to scan"
  /// (capped at kConfinedScanCap — large boundaries pay the index instead).
  bool shard_confined(uint32_t s, Vertex local_v);
  static constexpr std::size_t kConfinedScanCap = 128;

  /// Version-bump an intra-shard update only if it touched a component a
  /// boundary edge can see (post-update probe; see the .cpp argument).
  void bump_if_boundary_adjacent(uint32_t s, Vertex u, Vertex v);

  /// Rebuild boundary_local_[s] from endpoint_refs_[s]; boundary_mu_ held.
  void republish_endpoints(uint32_t s);

  /// The published index if its captured versions still match, else null
  /// (never rebuilds — the probe fast path runs before any rebuild).
  std::shared_ptr<const BoundaryIndex> valid_index();
  /// The current valid index, rebuilding under index_mu_ if stale.
  std::shared_ptr<const BoundaryIndex> current_index();
  std::shared_ptr<const BoundaryIndex> rebuild_index();

  /// Global single-op query dispatch (used by connected/component_size/
  /// representative and by apply_batch's query barriers).
  uint64_t exec_query(const Op& op);

  bool add_cross(Vertex u, Vertex v);
  bool remove_cross(Vertex u, Vertex v);
  void apply_run(std::span<const Op> ops, std::size_t i, std::size_t j,
                 BatchResult& r, bool own_gang);

  Vertex n_;
  std::string name_;
  uint32_t mask_;  ///< num_shards() - 1 (pow2 router mask)

  std::vector<uint32_t> shard_of_;           ///< [n] router table
  std::vector<Vertex> local_of_;             ///< [n] global → shard-local id
  std::vector<std::vector<Vertex>> global_of_;  ///< [S][n_s] reverse map
  std::vector<std::unique_ptr<DynamicConnectivity>> inner_;

  /// Boundary layer: cross-shard edges by canonical key, plus lock-free
  /// readable per-shard incidence counts (the "is this shard isolated"
  /// fast path). Mutated only under boundary_mu_.
  mutable std::mutex boundary_mu_;
  std::unordered_set<uint64_t> boundary_;
  std::vector<PaddedCounter> boundary_count_;  ///< [S] incident cross edges
  /// Per-shard boundary endpoints by shard-local id with incidence counts
  /// (mutated under boundary_mu_), plus a copy-on-write published list per
  /// shard that the confined-component probe snapshots under a per-shard
  /// padded mutex (an uncontended lock per probe — NOT boundary_mu_, so
  /// probes never serialize against other shards' cross updates; a plain
  /// std::atomic<shared_ptr> was tried first but libstdc++'s _Sp_atomic
  /// lock-bit protocol is opaque to TSan). Republished whenever a shard's
  /// endpoint *set* changes (refcount 0 ↔ 1).
  struct alignas(kCacheLine) EndpointSlot {
    std::mutex mu;
    std::shared_ptr<const std::vector<Vertex>> list;
  };
  std::vector<std::unordered_map<Vertex, uint32_t>> endpoint_refs_;
  std::vector<EndpointSlot> boundary_local_;

  /// Versioned invalidation (PR 6 shape): one padded counter per shard plus
  /// one for the boundary edge set. Writers bump after a successful update;
  /// readers compare against the published index's captured values.
  std::vector<PaddedCounter> shard_version_;
  PaddedCounter boundary_version_;

  std::mutex index_ptr_mu_;  ///< guards the index_ shared_ptr slot only
  std::shared_ptr<const BoundaryIndex> index_;
  std::mutex index_mu_;  ///< serializes rebuilds

  std::mutex batch_mu_;  ///< owns pool_.run (TaskPool is single-driver)
  /// Declared last: destroyed (joined) first, so no gang thread outlives
  /// the inner structures it applied sub-batches to.
  TaskPool pool_;
};

}  // namespace condyn
