#pragma once

#include <string>

#include "api/dynamic_connectivity.hpp"
#include "core/batch_runs.hpp"
#include "core/component_lock.hpp"
#include "core/hdt.hpp"
#include "core/label_cache.hpp"
#include "core/stats.hpp"

namespace condyn {

/// Read-path selection for the fine-grained variants.
enum class FineReadMode {
  kLocked,       ///< (6) exclusive root locks for queries too
  kSharedLocks,  ///< (7) readers–writer root locks, queries take shared mode
  kNonBlocking,  ///< (8) lock-free linearizable reads (Listing 1)
};

/// Fine-grained per-component locking variants (6)(7)(8), paper §4.3.
///
/// Updates acquire the level-0 root locks of the involved component(s) via
/// Listing 2 (ComponentGuard) and then run the shared HDT engine; updates of
/// disjoint components therefore proceed fully in parallel. The successful
/// acquisition itself certifies the component memberships, so the locked
/// read answer is simply "same locked root".
template <FineReadMode Mode>
class FineDc final : public DynamicConnectivity {
 public:
  explicit FineDc(Vertex n, std::string name, bool sampling = true)
      : hdt_(n, sampling), name_(std::move(name)) {
    // Only the non-blocking read mode builds the cache: its hit path and
    // fallback are lock-free, matching that mode's read discipline.
    if constexpr (Mode == FineReadMode::kNonBlocking) {
      if (LabelCache::env_enabled())
        cache_ = std::make_unique<LabelCache>(&hdt_.level0());
    }
  }

  bool add_edge(Vertex u, Vertex v) override {
    if (u == v) return false;
    ComponentGuard g(hdt_.level0(), u, v);
    return hdt_.add_edge(u, v).performed;
  }

  bool remove_edge(Vertex u, Vertex v) override {
    if (u == v) return false;
    ComponentGuard g(hdt_.level0(), u, v);
    return hdt_.remove_edge(u, v).performed;
  }

  bool connected(Vertex u, Vertex v) override {
    if constexpr (Mode == FineReadMode::kNonBlocking) {
      return cache_ ? cache_->connected(u, v) : hdt_.connected(u, v);
    } else if constexpr (Mode == FineReadMode::kSharedLocks) {
      ++op_stats::local().reads;
      SharedComponentGuard g(hdt_.level0(), u, v);
      return g.connected();
    } else {
      ++op_stats::local().reads;
      ComponentGuard g(hdt_.level0(), u, v);
      return g.same_component();
    }
  }

  /// Value queries: the guard acquisition itself certifies the locked node
  /// is u's component root, so the answer is that root's vcount / vmin
  /// augmentation — read under the same (shared/exclusive/none) lock
  /// discipline as connected().
  uint64_t component_size(Vertex u) override {
    if constexpr (Mode == FineReadMode::kNonBlocking) {
      return cache_ ? cache_->component_size(u) : hdt_.component_size(u);
    } else {
      ++op_stats::local().reads;
      return ett::Node::vstat_count(locked_root_vstat(u));
    }
  }

  Vertex representative(Vertex u) override {
    if constexpr (Mode == FineReadMode::kNonBlocking) {
      return cache_ ? cache_->representative(u) : hdt_.representative(u);
    } else {
      ++op_stats::local().reads;
      return ett::Node::vstat_min(locked_root_vstat(u));
    }
  }

  /// Batched path. A single lock acquisition for the whole batch is not
  /// possible here: component locks live on level-0 roots, and a spanning
  /// update replaces those roots (a cut commits fresh piece roots), so a
  /// lock set taken up front stops excluding competitors mid-batch. Instead
  /// the batch stably groups update runs by edge (queries are reorder
  /// barriers; updates on distinct edges commute) and holds one
  /// ComponentGuard across consecutive same-edge ops for as long as no op
  /// touched the spanning forest — exactly the window in which the locked
  /// roots are still the components' representatives.
  BatchResult apply_batch(std::span<const Op> ops) override {
    BatchResult r;
    r.values.resize(ops.size());
    for_each_batch_run(
        ops,
        [&](std::size_t i) {
          // Queries take their own guards, so they run exactly like the
          // single-op methods (including the value-returning kinds).
          r.set_op(i, ops[i].kind, exec_single(*this, ops[i]));
        },
        [&](std::span<const uint32_t> order) {
          for (std::size_t p = 0; p < order.size();) {
            const Op& first = ops[order[p]];
            if (first.u == first.v) {
              r.set(order[p], first.kind, false);
              ++p;
              continue;
            }
            const Edge e(first.u, first.v);
            ComponentGuard g(hdt_.level0(), e.u, e.v);
            bool guard_valid = true;
            while (p < order.size() && guard_valid) {
              const Op& op = ops[order[p]];
              if (Edge(op.u, op.v) != e) break;
              const Hdt::UpdateOutcome o = op.kind == OpKind::kAdd
                                               ? hdt_.add_edge(op.u, op.v)
                                               : hdt_.remove_edge(op.u, op.v);
              r.set(order[p], op.kind, o.performed);
              ++p;
              guard_valid = !o.spanning;
            }
          }
        });
    return r;
  }

  ComponentsSnapshot components() override {
    if constexpr (Mode == FineReadMode::kNonBlocking) {
      if (cache_ != nullptr) {
        ComponentsSnapshot s;
        if (cache_->snapshot_labels(s.labels)) {
          s.consistent = true;
          return s;
        }
      }
    }
    return DynamicConnectivity::components();
  }

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  Hdt& engine() noexcept { return hdt_; }

 private:
  /// The certified root's packed (vcount, vmin) word, read under this
  /// mode's lock discipline (shared for (7), exclusive for (6)). The guard
  /// acquisition certifies g.first() is u's component root.
  uint64_t locked_root_vstat(Vertex u) {
    if constexpr (Mode == FineReadMode::kSharedLocks) {
      SharedComponentGuard g(hdt_.level0(), u, u);
      return g.first()->vstat.load(std::memory_order_relaxed);
    } else {
      ComponentGuard g(hdt_.level0(), u, u);
      return g.first()->vstat.load(std::memory_order_relaxed);
    }
  }

  Hdt hdt_;
  std::string name_;
  /// Declared last: destroyed first, detaching from hdt_'s level-0 forest.
  std::unique_ptr<LabelCache> cache_;
};

}  // namespace condyn
