#pragma once

#include <string>

#include "api/dynamic_connectivity.hpp"
#include "core/component_lock.hpp"
#include "core/hdt.hpp"
#include "core/stats.hpp"

namespace condyn {

/// Read-path selection for the fine-grained variants.
enum class FineReadMode {
  kLocked,       ///< (6) exclusive root locks for queries too
  kSharedLocks,  ///< (7) readers–writer root locks, queries take shared mode
  kNonBlocking,  ///< (8) lock-free linearizable reads (Listing 1)
};

/// Fine-grained per-component locking variants (6)(7)(8), paper §4.3.
///
/// Updates acquire the level-0 root locks of the involved component(s) via
/// Listing 2 (ComponentGuard) and then run the shared HDT engine; updates of
/// disjoint components therefore proceed fully in parallel. The successful
/// acquisition itself certifies the component memberships, so the locked
/// read answer is simply "same locked root".
template <FineReadMode Mode>
class FineDc final : public DynamicConnectivity {
 public:
  explicit FineDc(Vertex n, std::string name, bool sampling = true)
      : hdt_(n, sampling), name_(std::move(name)) {}

  bool add_edge(Vertex u, Vertex v) override {
    if (u == v) return false;
    ComponentGuard g(hdt_.level0(), u, v);
    return hdt_.add_edge(u, v).performed;
  }

  bool remove_edge(Vertex u, Vertex v) override {
    if (u == v) return false;
    ComponentGuard g(hdt_.level0(), u, v);
    return hdt_.remove_edge(u, v).performed;
  }

  bool connected(Vertex u, Vertex v) override {
    if constexpr (Mode == FineReadMode::kNonBlocking) {
      return hdt_.connected(u, v);
    } else if constexpr (Mode == FineReadMode::kSharedLocks) {
      ++op_stats::local().reads;
      SharedComponentGuard g(hdt_.level0(), u, v);
      return g.connected();
    } else {
      ++op_stats::local().reads;
      ComponentGuard g(hdt_.level0(), u, v);
      return g.same_component();
    }
  }

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  Hdt& engine() noexcept { return hdt_; }

 private:
  Hdt hdt_;
  std::string name_;
};

}  // namespace condyn
