#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/sharded_map.hpp"
#include "graph/graph.hpp"
#include "util/rw_lock.hpp"

namespace condyn {
class LabelCache;
}

namespace condyn::ett {

/// Single-writer, multi-reader Euler Tour Tree (paper §3).
///
/// The tour of each spanning tree is stored in a Cartesian tree (treap) with
/// implicit keys. The *writer* (the thread holding the component's lock)
/// restructures using the plain `left/right/size` fields; *readers* traverse
/// only the atomic `parent` pointers and the root `version` counters, giving
/// a non-blocking, linearizable `connected` (Listing 1 of the paper).
///
/// Reader-safety invariants maintained by every writer-side store (see
/// DESIGN.md §4.1):
///  I1 (acyclicity)   every parent pointer targets a strictly higher
///                    (priority, address) node, so chains terminate;
///  I2 (single sink)  parent pointers are never set to null except at the
///                    single linearization store of a split, and the
///                    linearization store of a merge is the single store
///                    that connects the two sink trees;
///  I3 (versions)     before a merge/split the writer bumps the versions of
///                    the involved roots and of the node that will become a
///                    root, so a version is at most one step ahead;
///  I4 (reclamation)  removed arc nodes keep their stale parent pointers and
///                    are retired through EBR, never freed in place.
struct Node {
  // --- fields shared with lock-free readers --------------------------------
  // parent/version run under acquire/release (writers bump versions before
  // any physical store, every physical store is a release — the seqlock
  // double-collect of Listing 1 needs no cross-variable total order);
  // sub_nonspanning/local_nonspanning/removal_op stay seq_cst because their
  // protocols are store-load races. Full audit table: DESIGN.md §7.3.
  std::atomic<Node*> parent{nullptr};
  std::atomic<uint64_t> version{0};
  /// Subtree contains a vertex with adjacent non-spanning edges at this
  /// level. Lock-free adders may set it to true bottom-up (Listing 6);
  /// the writer recomputes it with the write-false-then-recheck discipline.
  std::atomic<bool> sub_nonspanning{false};
  /// Number of non-spanning edges adjacent to this vertex at this level
  /// (authoritative "local" input of the flag; vertex nodes only).
  std::atomic<uint32_t> local_nonspanning{0};
  /// Per-component spanning-edge-removal announcement of the full algorithm
  /// (Listing 5's `removal_op`, meaningful on roots only).
  std::atomic<void*> removal_op{nullptr};
  /// Packed subtree statistics: high 32 bits = vertex-node count (component
  /// |V| at the root), low 32 bits = smallest vertex id in the subtree (the
  /// canonical representative at the root; kNoVertexSentinel for arc-only
  /// subtrees). One word so pull() publishes both with a single relaxed
  /// store — the Query API v2's non-blocking component_size /
  /// representative snapshot a consistent (count, min) pair with one
  /// acquire load at the root, under the same versioned double-collect as
  /// connected() (the version protocol, not store order, carries
  /// consistency; see component_size_nonblocking and DESIGN.md §7.3).
  std::atomic<uint64_t> vstat{kEmptyVstat};

  static constexpr Vertex kNoVertexSentinel = ~Vertex{0};  ///< arc-only subtree
  static constexpr uint64_t kEmptyVstat = kNoVertexSentinel;  // count 0
  static constexpr uint64_t pack_vstat(uint32_t count, Vertex mn) noexcept {
    return (static_cast<uint64_t>(count) << 32) | mn;
  }
  static constexpr uint32_t vstat_count(uint64_t s) noexcept {
    return static_cast<uint32_t>(s >> 32);
  }
  static constexpr Vertex vstat_min(uint64_t s) noexcept {
    return static_cast<Vertex>(s);
  }

  // --- writer-only fields ---------------------------------------------------
  Node* left = nullptr;
  Node* right = nullptr;
  uint64_t priority = 0;   ///< top bit set for vertex nodes (see Forest docs)
  uint32_t size = 1;       ///< subtree node count (order statistics)
  Vertex tail = 0;         ///< vertex nodes: the vertex; arcs: edge tail
  Vertex head = 0;         ///< vertex nodes: == tail; arcs: edge head
  bool is_vertex = false;
  bool arc_at_level = false;  ///< arc whose edge level == this forest's level
  bool sub_level_arc = false; ///< subtree contains such an arc

  /// Per-component lock for the fine-grained variants (valid on any node;
  /// only ever taken on (candidate) roots, per Listing 2). A readers–writer
  /// lock so variant (7) can take it in shared mode for queries.
  RwSpinLock lock;

  bool is_arc() const noexcept { return !is_vertex; }
};

/// Strict total order on (priority, address); "parent must be higher".
inline bool node_less(const Node* a, const Node* b) noexcept {
  return a->priority != b->priority ? a->priority < b->priority : a < b;
}

struct RootSnapshot {
  const Node* root = nullptr;
  uint64_t version = 0;
  friend bool operator==(const RootSnapshot&, const RootSnapshot&) = default;
};

/// Lock-free root search (Listing 1's find_root): follows parent pointers,
/// returns the sink and its version. Caller must hold an ebr guard.
RootSnapshot find_root_versioned(const Node* start) noexcept;

/// Writer-side root search (no version needed).
Node* find_root(Node* start) noexcept;

/// Lock-free linearizable connectivity check between two nodes of (possibly)
/// different forests' trees — Listing 1 verbatim, including the fifth
/// find_root that Appendix A proves necessary. Pins EBR internally.
bool connected_nonblocking(const Node* nu, const Node* nv) noexcept;

/// Lock-free bottom-up flag raising used by non-blocking non-spanning edge
/// additions (Listing 6's set_flags_up). Caller must hold an ebr guard.
void set_flags_up(Node* x) noexcept;

/// One Euler-tour forest (one level of the HDT structure).
///
/// Priorities: vertex nodes draw from [2^63, 2^64), arc nodes from [0, 2^63),
/// which guarantees the root of a component is always a vertex node. That
/// yields (a) stable roots under edge insertion (the post-link root is one of
/// the two pre-link roots, as required by invariant I3), and (b) removed arc
/// nodes are never roots, so a split has exactly one new root.
class Forest {
 public:
  explicit Forest(Vertex n, int level = 0);
  ~Forest();
  Forest(const Forest&) = delete;
  Forest& operator=(const Forest&) = delete;

  Vertex num_vertices() const noexcept { return n_; }
  int level() const noexcept { return level_; }

  /// The vertex's tour node, creating it lazily (thread-safe; concurrent
  /// creators race with CAS and the loser frees its allocation).
  Node* vertex_node(Vertex v);
  /// As above but returns null instead of creating.
  Node* vertex_node_if_exists(Vertex v) const noexcept {
    return nodes_[v].load(std::memory_order_acquire);
  }

  /// True if (u,v) is a spanning edge of this forest.
  bool has_edge(Vertex u, Vertex v) const;

  /// Writer: are u and v in the same tree (root comparison, not versioned)?
  bool connected_writer(Vertex u, Vertex v);

  /// Lock-free linearizable query (Listing 1); creates the vertex nodes if
  /// missing (isolated vertices are their own components).
  bool connected(Vertex u, Vertex v);

  /// Writer: add spanning edge (u,v). Preconditions: u,v in different trees,
  /// (u,v) not in the forest. Performs the atomic merge of Fig. 2.
  void link(Vertex u, Vertex v);

  /// Writer: remove spanning edge (u,v). Precondition: has_edge(u,v).
  /// Performs the atomic split of Fig. 3.
  void cut(Vertex u, Vertex v);

  /// Two-phase cut, used by the HDT engine for level-0 removals. The paper's
  /// linearization for spanning remove_edge is: "if there is no replacement
  /// in F0 the linearization point is the same as for the ETT removal,
  /// otherwise components of connectivity do not change". cut_prepare
  /// restructures the tour into the two would-be trees while keeping every
  /// parent chain rooted at the old root, so concurrent readers still see
  /// one component. The replacement search then runs on the pieces
  /// (find_piece_root / writer fields); finally either
  ///  * cut_commit — no replacement: bump + single unlink (linearization), or
  ///  * cut_relink — replacement (x,y) found: splice the pieces back together
  ///    through the new arcs; readers never observe any change.
  struct CutHandle {
    Node* root_u = nullptr;  ///< piece containing u (writer view)
    Node* root_v = nullptr;  ///< piece containing v
    Node* arc1 = nullptr;    ///< removed arcs, retired at commit/relink
    Node* arc2 = nullptr;
    Node* old_root = nullptr;
    Vertex u = 0, v = 0;
    Vertex cache_rep = 0;      ///< label-cache slot expired at prepare
    uint64_t cache_word = 0;   ///< its prior word, restored by cut_relink
  };
  CutHandle cut_prepare(Vertex u, Vertex v);
  void cut_commit(CutHandle& h);
  void cut_relink(CutHandle& h, Vertex x, Vertex y);

  /// Writer-side root of the *piece* containing x: ascends genuine
  /// parent/child edges only, so inside a pending cut it identifies the
  /// would-be component, while readers' find_root still reaches the old
  /// root through stale pointers. On a quiescent tree it equals find_root.
  static Node* find_piece_root(Node* x) noexcept;

  /// Number of vertices in u's component (writer-side).
  uint32_t component_vertices(Vertex u);

  /// Smallest vertex id in u's component (writer-side) — the canonical
  /// representative of the Query API v2.
  Vertex representative_writer(Vertex u);

  /// Lock-free component size: find_root_versioned double-collect around the
  /// root's vcount load, the same seqlock argument as connected() (Listing
  /// 1). If the snapshot repeats, no spanning update's version bump became
  /// visible between the two collects, so the value read belongs to a
  /// consistent state of u's component. Pins EBR internally.
  uint64_t component_size_nonblocking(Vertex u);

  /// Lock-free canonical representative (root vmin), same double-collect.
  Vertex representative_nonblocking(Vertex u);

  /// Writer: mark/unmark the (u,v) arc pair as "level arc" (the edge's level
  /// equals this forest's level) and fix subtree flags. Used by the HDT
  /// engine to iterate spanning edges to promote.
  void set_arc_at_level(Vertex u, Vertex v, bool value);

  /// Writer: adjust the local non-spanning counter of v's node and raise /
  /// recompute subtree flags (increment uses set_flags_up, decrement leaves
  /// flags stale-true per Listing 6's remove_info).
  void nonspanning_inc(Vertex v);
  void nonspanning_dec(Vertex v);

  /// Writer: recompute x's subtree flag from its children with the
  /// write-false-then-recheck discipline (Listing 6's recalculate_flags).
  static void recalculate_flags(Node* x) noexcept;

  /// Writer helpers for the HDT engine's subtree iteration.
  static uint32_t subtree_vertices(const Node* x) noexcept {
    return x ? Node::vstat_count(x->vstat.load(std::memory_order_relaxed))
             : 0;
  }

  /// Attach (or detach, with nullptr) the epoch-published label cache
  /// (DESIGN.md §8). Only ever set on a level-0 forest, by the owning
  /// facade, before concurrent use begins; when set, every structural
  /// bracket — link(), and cut_prepare() through cut_commit()/cut_relink()
  /// — notifies the cache so published labels expire exactly when level-0
  /// component membership changes, and only for the one or two components
  /// an update touches (a relink restores the word it expired: net zero).
  void set_label_cache(LabelCache* c) noexcept { cache_ = c; }

  /// In-order tour of u's component (testing/debugging).
  std::vector<const Node*> tour(Vertex u);

  /// Validate treap invariants of u's component (testing). Aborts via assert
  /// on violation; returns node count.
  std::size_t validate(Vertex u);

 private:
  friend class ForestTestPeer;

  struct ArcPair {
    Node* uv = nullptr;
    Node* vu = nullptr;
  };

  Node* new_vertex_node(Vertex v);
  Node* new_arc_node(Vertex t, Vertex h, uint64_t max_priority);

  static void set_parent(Node* child, Node* p) noexcept;
  static void pull(Node* x) noexcept;
  static uint32_t rank_of(Node* x) noexcept;  // in-order position
  /// Treap merge; never touches the result root's parent (invariant I2).
  static Node* merge(Node* a, Node* b) noexcept;
  /// Split off [begin..x) / [x..end]; piece roots keep stale parents.
  static std::pair<Node*, Node*> split_before(Node* x) noexcept;
  /// Split off [begin..x] / (x..end].
  static std::pair<Node*, Node*> split_after(Node* x) noexcept;
  static void split_walk(Node* prev, Node*& l, Node*& r) noexcept;
  /// Rotate u's tour so it starts at u; returns the (unchanged) root.
  Node* reroot(Node* u_node) noexcept;

  /// The shared seqlock loop behind both non-blocking value queries: the
  /// root's packed vstat word, validated by an unchanged (root, version)
  /// snapshot.
  uint64_t root_vstat_nonblocking(Vertex u);

  Vertex n_;
  int level_;
  LabelCache* cache_ = nullptr;  ///< level-0 only; see set_label_cache
  std::unique_ptr<std::atomic<Node*>[]> nodes_;
  ShardedEdgeMap<ArcPair> arcs_;
};

}  // namespace condyn::ett
