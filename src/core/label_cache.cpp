#include "core/label_cache.hpp"

#include <cstdlib>
#include <string_view>

#include "core/ett.hpp"
#include "core/stats.hpp"
#include "util/ebr.hpp"

namespace condyn {

namespace {

std::atomic<bool> g_label_cache_enabled{true};

}  // namespace

void LabelCache::set_globally_enabled(bool on) noexcept {
  g_label_cache_enabled.store(on, std::memory_order_release);
}

bool LabelCache::globally_enabled() noexcept {
  return g_label_cache_enabled.load(std::memory_order_acquire);
}

bool LabelCache::env_enabled() noexcept {
  static const bool on = [] {
    const char* e = std::getenv("DC_LABEL_CACHE");
    return e == nullptr || std::string_view(e) != "0";
  }();
  return on;
}

LabelCache::LabelCache(ett::Forest* forest)
    : forest_(forest),
      n_(forest->num_vertices()),
      labels_(std::make_unique<std::atomic<uint64_t>[]>(forest->num_vertices())),
      comp_(std::make_unique<std::atomic<uint64_t>[]>(forest->num_vertices())) {
  // Version 0 is the reserved never-hits value, so zeroed is "empty".
  for (Vertex v = 0; v < n_; ++v) {
    labels_[v].store(0, std::memory_order_relaxed);
    comp_[v].store(0, std::memory_order_relaxed);
  }
  forest_->set_label_cache(this);
}

LabelCache::~LabelCache() { forest_->set_label_cache(nullptr); }

void LabelCache::begin_update() noexcept {
  // One RMW opens the bracket: the begins field (monotone, never
  // decremented) and the writer count move together, so a publisher
  // comparing two stamp loads can never miss a bracket that was counted in
  // one field but not yet the other. seq_cst: the publisher's plain loads
  // must totally order against these RMWs (the same store-load discipline
  // as the flag protocol, DESIGN.md §7.3).
  stamp_.fetch_add(kBeginOne + 1, std::memory_order_seq_cst);
}

void LabelCache::end_update() noexcept {
  stamp_.fetch_sub(1, std::memory_order_seq_cst);
}

uint64_t LabelCache::invalidate(Vertex rep) noexcept {
  // Move comp_[rep]'s version to the next odd value before the component is
  // mutated. This is the whole invalidation story: labels of era v die the
  // instant the slot leaves v, and a publisher whose expected CAS value
  // predates this bump fails. Runs under the engine's structural
  // exclusivity for this component, but the CAS loop also tolerates a
  // concurrent bracket on the same slot.
  uint64_t w = comp_[rep].load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t nw = pack_word(next_odd(word_ver(w)), word_value(w));
    if (comp_[rep].compare_exchange_weak(w, nw, std::memory_order_seq_cst))
      return w;
  }
}

void LabelCache::revalidate(Vertex rep, uint64_t prior) noexcept {
  // cut_relink: the removal spliced the component back together —
  // membership, count and representative are exactly what they were before
  // cut_prepare, so the pre-bracket word becomes valid again. CAS from the
  // odd value our own invalidate() installed: if any other bracket touched
  // the slot meanwhile, its version moved on and the restore is dropped
  // (the slot stays unstable until a reader republishes — correct, just
  // colder). No publisher can have interfered: publishes require a
  // writer-free stamp window and our bracket is still open.
  uint64_t expected = pack_word(next_odd(word_ver(prior)), word_value(prior));
  comp_[rep].compare_exchange_strong(expected, prior,
                                     std::memory_order_seq_cst);
}

uint64_t LabelCache::walk_and_publish(Vertex u) {
  auto guard = ebr::pin();
  ett::Node* nu = forest_->vertex_node(u);
  auto& st = op_stats::local();
  ++st.reads;

  const uint64_t s1 = stamp_.load(std::memory_order_seq_cst);
  const bool can_publish = stamp_writers(s1) == 0 && globally_enabled();

  Vertex chain[kChainCap];
  std::size_t chain_len = 0;
  uint64_t stat;
  for (;;) {
    // Same seqlock double-collect as Forest::root_vstat_nonblocking, with
    // the vertex ids of u's parent chain collected on the way up. Vertex
    // nodes' is_vertex/tail are written once at construction, before the
    // node is published via a release store, so these plain reads are
    // race-free under the acquire chain + EBR pin.
    chain_len = 0;
    const ett::Node* cur = nu;
    for (;;) {
      if (cur->is_vertex && chain_len < kChainCap)
        chain[chain_len++] = cur->tail;
      const ett::Node* p = cur->parent.load(std::memory_order_acquire);
      if (p == nullptr) break;
      cur = p;
    }
    const ett::RootSnapshot s{cur,
                              cur->version.load(std::memory_order_acquire)};
    stat = cur->vstat.load(std::memory_order_acquire);
    if (ett::find_root_versioned(nu) == s) break;
    ++st.read_retries;
  }

  // Quiescence: writers == 0 at s1 and the stamp unchanged at the re-check
  // below means no bracket overlapped the walk — none was open at s1 (every
  // earlier bracket's end RMW precedes the value we read in stamp_'s
  // modification order, so its mutations are visible), and the monotone
  // begins bits rule out one that came and went. The walk therefore saw the
  // stable state of u's component. The comp_ word — the CAS expected value —
  // must be loaded BEFORE the stamp re-check so it too lies inside the
  // quiescent window: a bracket opening before the re-check fails the
  // re-check, and one opening after fails the CAS below, because its
  // invalidate() moves the version before any physical change. (Loading it
  // after the re-check would let a bracket land in between and have its
  // odd invalidation word adopted as expected — the CAS would then install
  // a fresh era carrying pre-bracket membership while the bracket is still
  // open, and nothing would ever expire it.)
  const Vertex rep = ett::Node::vstat_min(stat);
  const uint32_t count = ett::Node::vstat_count(stat);
  uint64_t wc = can_publish ? comp_[rep].load(std::memory_order_seq_cst) : 0;
  if (can_publish && stamp_.load(std::memory_order_seq_cst) == s1) {
    uint32_t era = 0;
    if (is_era(word_ver(wc))) {
      // An era is already live for this component; our quiescent walk must
      // agree with it (membership cannot have changed since the era began
      // or the version would have moved). Join it — installing a fresh era
      // here would needlessly kill every label already published under it.
      if (word_value(wc) == count) era = word_ver(wc);
    } else {
      const uint32_t nv = (word_ver(wc) | 1) + 1;  // next even above
      if (is_era(nv) &&
          comp_[rep].compare_exchange_strong(wc, pack_word(nv, count),
                                             std::memory_order_seq_cst)) {
        era = nv;
      }
    }
    if (era != 0) {
      // Label stores strictly after the era exists in comp_: a hit's
      // acquire load of a label synchronizes with these releases, so the
      // era it validates against is the one the label was published under.
      for (std::size_t i = 0; i < chain_len; ++i) {
        labels_[chain[i]].store(pack_word(era, rep),
                                std::memory_order_release);
      }
      ++st.label_publishes;
    }
  }
  return stat;
}

int LabelCache::try_connected(Vertex u, Vertex v) const noexcept {
  uint32_t va, ra, vb, rb;
  if (!load_label(u, &va, &ra) || !load_label(v, &vb, &rb)) return -1;
  if (ra == rb) {
    // Same slot: equal versions means one era, hence simultaneous
    // membership (load_label already validated va against comp_[ra]).
    return va == vb ? 1 : -1;
  }
  // Distinct reps: each label was valid at its own comp_ load; re-reading
  // the first slot brackets the second's validation. Per-slot versions are
  // NOT monotone — revalidate() restores an older word (v -> v+1 -> v) — so
  // an unchanged re-read is not proof of no intervening writes. It is still
  // proof of membership: the only way the slot returns to era va is via
  // revalidate, which by contract means era va's membership never changed.
  // Hence u's membership under era va held continuously across era vb's
  // validation instant — both memberships held at once, and distinct
  // canonical (min-id) representatives at one instant are distinct
  // components.
  if (word_ver(comp_[ra].load(std::memory_order_seq_cst)) != va) return -1;
  return 0;
}

bool LabelCache::connected(Vertex u, Vertex v) {
  if (globally_enabled()) {
    auto& st = op_stats::local();
    int r = try_connected(u, v);
    if (r >= 0) {
      ++st.label_hits;
      ++st.reads;
      return r != 0;
    }
    ++st.label_misses;
    walk_and_publish(u);
    walk_and_publish(v);
    r = try_connected(u, v);
    if (r >= 0) return r != 0;
    // Concurrent churn defeated both publishes: the two walks' root
    // snapshots were taken independently, which Appendix A shows is not
    // linearizable to compare — answer with Listing 1 instead.
  }
  return forest_->connected(u, v);
}

uint64_t LabelCache::component_size(Vertex u) {
  if (globally_enabled()) {
    auto& st = op_stats::local();
    const uint64_t wl = labels_[u].load(std::memory_order_seq_cst);
    if (is_era(word_ver(wl))) {
      const uint64_t wc =
          comp_[word_value(wl)].load(std::memory_order_seq_cst);
      if (word_ver(wc) == word_ver(wl)) {
        // Era still live at the comp_ load — the linearization point; the
        // count was published from a quiescent walk of that era.
        ++st.label_hits;
        ++st.reads;
        return word_value(wc);
      }
    }
    ++st.label_misses;
    return ett::Node::vstat_count(walk_and_publish(u));
  }
  return forest_->component_size_nonblocking(u);
}

Vertex LabelCache::representative(Vertex u) {
  if (globally_enabled()) {
    auto& st = op_stats::local();
    uint32_t ver, rep;
    if (load_label(u, &ver, &rep)) {
      ++st.label_hits;
      ++st.reads;
      return rep;
    }
    ++st.label_misses;
    return ett::Node::vstat_min(walk_and_publish(u));
  }
  return forest_->representative_nonblocking(u);
}

uint64_t LabelCache::exec_query(const Op& op) {
  switch (op.kind) {
    case OpKind::kConnected: return connected(op.u, op.v) ? 1 : 0;
    case OpKind::kComponentSize: return component_size(op.u);
    case OpKind::kRepresentative: return representative(op.u);
    default: return 0;  // updates never reach the query paths
  }
}

bool LabelCache::snapshot_labels(std::vector<Vertex>& out) {
  if (!globally_enabled()) return false;
  out.resize(n_);
  for (int attempt = 0; attempt < kSnapshotAttempts; ++attempt) {
    const uint64_t s = stamp_.load(std::memory_order_seq_cst);
    if (stamp_writers(s) != 0) continue;
    bool ok = true;
    for (Vertex v = 0; v < n_ && ok; ++v) {
      uint32_t ver, rep = 0;
      if (!load_label(v, &ver, &rep)) {
        walk_and_publish(v);
        ok = load_label(v, &ver, &rep);
      }
      out[v] = rep;
    }
    // An unchanged stamp means no bracket overlapped the scan (writer-free
    // at the start, monotone begins bits since): the forest was quiescent
    // throughout, so every per-vertex validation happened against one
    // unchanging membership — a consistent snapshot, linearized here.
    if (ok && stamp_.load(std::memory_order_seq_cst) == s) return true;
  }
  return false;
}

}  // namespace condyn
