#pragma once

#include <atomic>
#include <cstdint>

#include "graph/graph.hpp"
#include "util/ebr.hpp"
#include "util/node_pool.hpp"

namespace condyn {

/// Lock-free multiset of vertices — the per-(vertex, level) container of
/// adjacent non-spanning edges used by the full algorithm (Listing 5's
/// `ConcurrentMultiSet<Edge>`; we store the neighbor endpoint, the owning
/// vertex being implicit).
///
/// Why a *multiset*: the paper permits several copies of the same edge to
/// coexist transiently — an adder inserts its copy before the linearizing
/// status CAS, a helper that completes the same addition inserts another,
/// and each copy is removed by the operation that created it (Appendix C
/// "Edge Management"). The invariant consumers rely on is one-sided: a live
/// non-spanning edge of level r has *at least one* copy in the multisets of
/// both endpoints at level r, because info is inserted before and removed
/// only after the corresponding linearization point.
///
/// Implementation: a sorted-free singly-linked list with prepend-insert and
/// logical deletion marks (Harris), unlinked lazily by later traversals and
/// reclaimed through EBR. Scans (replacement searches) iterate unmarked
/// cells; they tolerate concurrent inserts (may or may not see them — the
/// protocol's ordering argument, Theorem 4.1, covers both) and concurrent
/// removals.
class VertexMultiset {
 public:
  VertexMultiset() noexcept = default;
  VertexMultiset(const VertexMultiset&) = delete;
  VertexMultiset& operator=(const VertexMultiset&) = delete;

  ~VertexMultiset() {
    // Teardown is single-threaded (owning map's destructor): recycle the
    // cells straight into the pool.
    Cell* c = head_.load(std::memory_order_relaxed);
    while (c != nullptr) {
      Cell* next = strip(c->next.load(std::memory_order_relaxed));
      pool().destroy(c);
      c = next;
    }
  }

  /// Insert one copy of `v`. Lock-free, O(1); the cell comes from the pool
  /// (non-spanning adds are the single hottest allocation site).
  void add(Vertex v) {
    auto guard = ebr::pin();
    Cell* cell = pool().create(v);
    Cell* h = head_.load(std::memory_order_seq_cst);
    for (;;) {
      cell->next.store(h, std::memory_order_relaxed);
      if (head_.compare_exchange_weak(h, cell, std::memory_order_seq_cst))
        break;
    }
    approx_size_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Remove one copy of `v`. Returns false if no live copy was found.
  /// Lock-free: marks the cell dead; unlinking happens opportunistically.
  bool remove_one(Vertex v) {
    auto guard = ebr::pin();
    for (Cell* c = first_live(); c != nullptr; c = next_live(c)) {
      if (c->value != v) continue;
      Cell* nx = c->next.load(std::memory_order_seq_cst);
      if (marked(nx)) continue;  // someone else claimed it; keep looking
      if (c->next.compare_exchange_strong(nx, mark(nx),
                                          std::memory_order_seq_cst)) {
        approx_size_.fetch_sub(1, std::memory_order_seq_cst);
        return true;
      }
    }
    return false;
  }

  /// Visit every live value; f returning false stops the scan early.
  /// Caller must hold an EBR guard if other threads may mutate concurrently.
  template <typename F>
  bool for_each(F&& f) const {
    for (Cell* c = first_live(); c != nullptr; c = next_live(c)) {
      if (!f(c->value)) return false;
    }
    return true;
  }

  /// Racy size estimate; used only as the "are there candidates?" hint that
  /// feeds subtree flags (Listing 6's `node.edges.size > 0`).
  uint64_t approx_size() const noexcept {
    const int64_t s =
        static_cast<int64_t>(approx_size_.load(std::memory_order_seq_cst));
    return s > 0 ? static_cast<uint64_t>(s) : 0;
  }

  bool empty_hint() const noexcept { return approx_size() == 0; }

 private:
  struct Cell {
    Vertex value;
    std::atomic<Cell*> next{nullptr};
  };

  static NodePool<Cell>& pool() { return NodePool<Cell>::instance(); }

  static bool marked(Cell* p) noexcept {
    return (reinterpret_cast<uintptr_t>(p) & 1) != 0;
  }
  static Cell* mark(Cell* p) noexcept {
    return reinterpret_cast<Cell*>(reinterpret_cast<uintptr_t>(p) | 1);
  }
  static Cell* strip(Cell* p) noexcept {
    return reinterpret_cast<Cell*>(reinterpret_cast<uintptr_t>(p) & ~uintptr_t{1});
  }

  bool cell_dead(Cell* c) const noexcept {
    return marked(c->next.load(std::memory_order_seq_cst));
  }

  /// First live cell, physically unlinking any dead prefix (only the head
  /// pointer is ever rewired — interior dead cells are skipped, not
  /// unlinked, which keeps remove_one O(live) and traversal wait-free
  /// against any finite number of removals).
  Cell* first_live() const {
    Cell* h = head_.load(std::memory_order_seq_cst);
    while (h != nullptr && cell_dead(h)) {
      Cell* next = strip(h->next.load(std::memory_order_seq_cst));
      if (head_.compare_exchange_weak(h, next, std::memory_order_seq_cst)) {
        pool().retire(h);  // recycles after the grace period
        h = next;
      }
      // CAS failure reloaded h; loop re-tests.
    }
    return h;
  }

  Cell* next_live(Cell* c) const {
    Cell* n = strip(c->next.load(std::memory_order_seq_cst));
    while (n != nullptr && cell_dead(n)) {
      n = strip(n->next.load(std::memory_order_seq_cst));
    }
    return n;
  }

  mutable std::atomic<Cell*> head_{nullptr};
  std::atomic<int64_t> approx_size_{0};
};

}  // namespace condyn
