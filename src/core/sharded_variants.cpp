// Registry entries for the sharded facade family, variants (15)-(16):
// sharded<inner> over two inner families chosen by capability profile.
#include <algorithm>
#include <string>

#include "api/registry.hpp"
#include "core/sharded_dc.hpp"

namespace condyn {

namespace {

/// First already-registered variant matching `pred`; `preferred` (the
/// paper's flagship of that profile) wins when it both exists and matches,
/// so the selection is caps-driven but stable under registry reordering.
template <typename Pred>
const VariantInfo* pick_inner(const VariantRegistry& r, Pred pred,
                              const char* preferred) {
  if (const VariantInfo* p = r.find(preferred); p != nullptr && pred(p->caps))
    return p;
  for (const VariantInfo& v : r.variants()) {
    if (pred(v.caps)) return &v;
  }
  return nullptr;
}

VariantCaps sharded_caps() {
  VariantCaps c;
  c.native_batch = true;  // apply_batch fans per-shard sub-batches out
  c.sized_components = true;       // boundary index aggregates inner sizes
  c.stable_representative = true;  // min over member shard reps, global ids
  // Cross-shard reads may take the index mutexes, so the facade does not
  // claim lock_free_reads or label_cache even when its inner variant does;
  // batches run concurrently with single ops (no atomic_batch).
  c.internal_parallel = true;  // the per-shard fan-out gang (like pbd)
  return c;
}

/// VariantInfo::name is a const char*; registrations are process-lifetime
/// singletons, so one intentional leak per sharded variant is fine (the
/// same lifetime the string literals of the other families have).
const char* strdup_name(const std::string& s) {
  char* p = new char[s.size() + 1];
  std::copy(s.begin(), s.end(), p);
  p[s.size()] = '\0';
  return p;
}

void add_sharded(VariantRegistry& r, const VariantInfo* inner,
                 const char* description) {
  if (inner == nullptr) return;
  const std::string name = std::string("sharded<") + inner->name + ">";
  // The inner builder is copied (not referenced): VariantInfo storage is
  // reserve()d to kReserved, but a by-value capture is immune to that
  // detail outliving this registration pass.
  auto make_inner = inner->make;
  r.add(strdup_name(name), description, sharded_caps(),
        [name, make_inner](Vertex n, bool sampling) {
          return std::make_unique<ShardedDc>(n, name, make_inner, sampling);
        });
}

}  // namespace

void register_sharded_variants(VariantRegistry& r) {
  // Inner A — the lock-free-read flagship: non-blocking queries, per-
  // component update synchronization, label-cache capable. Preferred name
  // "full" (the paper's algorithm); any variant with the same profile
  // qualifies if the registry ever changes shape.
  const VariantInfo* nb = pick_inner(
      r,
      [](const VariantCaps& c) {
        return c.lock_free_reads && c.label_cache && !c.atomic_batch &&
               !c.combining && !c.internal_parallel;
      },
      "full");
  add_sharded(r, nb,
              "S-way sharded facade over the lock-free-reads flagship: "
              "per-shard structures + boundary index over representatives "
              "(DC_SHARDS, DESIGN.md §10)");

  // Inner B — the simplest atomically-batched engine: one lock per shard
  // amortized over whole sub-batches. Preferred name "coarse".
  const VariantInfo* coarse = pick_inner(
      r,
      [](const VariantCaps& c) {
        return c.atomic_batch && !c.lock_free_reads && !c.combining &&
               !c.internal_parallel;
      },
      "coarse");
  add_sharded(r, coarse,
              "S-way sharded facade over the coarse-locked engine: shard "
              "parallelism from partitioning alone (DC_SHARDS)");
}

}  // namespace condyn
