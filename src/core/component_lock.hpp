#pragma once

#include <cassert>

#include "core/ett.hpp"
#include "util/ebr.hpp"

namespace condyn {

/// Per-component fine-grained locking (paper Listing 2).
///
/// Components are represented by their level-0 Cartesian tree roots. An
/// update finds the roots with the lock-free find_root, acquires their node
/// locks in a global (address) order, then validates that the locked nodes
/// are still the roots of u's and v's components; any mismatch releases and
/// retries. While the locks are held no other writer can modify the
/// component(s) — a concurrent spanning removal keeps everything chained to
/// the locked old root until it completes, so root discovery always funnels
/// competitors onto the same lock.
class ComponentGuard {
 public:
  /// Exclusive ownership of the component(s) of u and v.
  ComponentGuard(ett::Forest& f0, Vertex u, Vertex v) {
    auto guard = ebr::pin();
    ett::Node* nu = f0.vertex_node(u);
    ett::Node* nv = f0.vertex_node(v);
    for (;;) {
      ett::Node* ru = ett::find_root(nu);
      ett::Node* rv = ett::find_root(nv);
      ett::Node* lo = ru <= rv ? ru : rv;  // consistent lock ordering
      ett::Node* hi = ru <= rv ? rv : ru;
      lo->lock.lock();
      if (hi != lo) hi->lock.lock();
      // Listing 2's re-check: the locked nodes must still be roots and must
      // still be the representatives of u's and v's components. Acquire
      // suffices: any writer that demoted ru/rv did so while holding this
      // very lock, so the lock handoff already orders its parent store
      // before our load (DESIGN.md §7.3).
      if (ru->parent.load(std::memory_order_acquire) == nullptr &&
          rv->parent.load(std::memory_order_acquire) == nullptr &&
          ett::find_root(nu) == ru && ett::find_root(nv) == rv) {
        a_ = lo;
        b_ = hi;
        return;
      }
      if (hi != lo) hi->lock.unlock();
      lo->lock.unlock();
    }
  }

  ~ComponentGuard() {
    if (b_ != a_) b_->lock.unlock();
    a_->lock.unlock();
  }

  ComponentGuard(const ComponentGuard&) = delete;
  ComponentGuard& operator=(const ComponentGuard&) = delete;

  /// Both locked roots (equal when u and v share a component).
  ett::Node* first() const noexcept { return a_; }
  ett::Node* second() const noexcept { return b_; }
  bool same_component() const noexcept { return a_ == b_; }

 private:
  ett::Node* a_ = nullptr;
  ett::Node* b_ = nullptr;
};

/// Shared (read) ownership used by variant (7): take both root locks in
/// shared mode, validate, answer. Retries like the exclusive guard.
class SharedComponentGuard {
 public:
  SharedComponentGuard(ett::Forest& f0, Vertex u, Vertex v) {
    auto guard = ebr::pin();
    ett::Node* nu = f0.vertex_node(u);
    ett::Node* nv = f0.vertex_node(v);
    for (;;) {
      ett::Node* ru = ett::find_root(nu);
      ett::Node* rv = ett::find_root(nv);
      ett::Node* lo = ru <= rv ? ru : rv;
      ett::Node* hi = ru <= rv ? rv : ru;
      lo->lock.lock_shared();
      if (hi != lo) hi->lock.lock_shared();
      if (ru->parent.load(std::memory_order_acquire) == nullptr &&
          rv->parent.load(std::memory_order_acquire) == nullptr &&
          ett::find_root(nu) == ru && ett::find_root(nv) == rv) {
        a_ = lo;
        b_ = hi;
        connected_ = (ru == rv);
        return;
      }
      if (hi != lo) hi->lock.unlock_shared();
      lo->lock.unlock_shared();
    }
  }

  ~SharedComponentGuard() {
    if (b_ != a_) b_->lock.unlock_shared();
    a_->lock.unlock_shared();
  }

  SharedComponentGuard(const SharedComponentGuard&) = delete;
  SharedComponentGuard& operator=(const SharedComponentGuard&) = delete;

  bool connected() const noexcept { return connected_; }

  /// Both locked roots (equal when u and v share a component). With u == v
  /// this is *the* certified root of u's component — the value queries read
  /// its vcount/vmin augmentation under the shared lock.
  ett::Node* first() const noexcept { return a_; }
  ett::Node* second() const noexcept { return b_; }

 private:
  ett::Node* a_ = nullptr;
  ett::Node* b_ = nullptr;
  bool connected_ = false;
};

}  // namespace condyn
