#include "core/sharded_dc.hpp"

#include <algorithm>
#include <cstdlib>

#include "core/batch_runs.hpp"
#include "core/stats.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace condyn {

namespace {

/// Round the requested shard count down to a power of two in [1, 64] so the
/// router is a single mask; 0 defers to the DC_SHARDS environment default.
unsigned resolve_shards(unsigned shards) {
  unsigned s = shards == 0 ? ShardedDc::env_shards() : shards;
  if (s < 1) s = 1;
  if (s > 64) s = 64;
  while ((s & (s - 1)) != 0) s &= s - 1;
  return s;
}

}  // namespace

unsigned ShardedDc::env_shards() {
  if (const char* s = std::getenv("DC_SHARDS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1 && v <= 64) return static_cast<unsigned>(v);
  }
  return 4;
}

uint32_t ShardedDc::route(Vertex v, uint32_t pow2_mask) noexcept {
  // Same shape as edge_partition_hash: mix64 over a salted key, truncated
  // by the pow2 mask. Seed-free and machine-stable, so workload generators
  // (the work-imbalance scenario) and the structure agree on shard homes.
  return static_cast<uint32_t>(mix64(static_cast<uint64_t>(v) ^
                                     0x5eedc0de5ull) &
                               pow2_mask);
}

ShardedDc::ShardedDc(Vertex n, std::string name, InnerMake make_inner,
                     bool sampling, unsigned shards, unsigned workers)
    : n_(n),
      name_(std::move(name)),
      mask_(resolve_shards(shards) - 1),
      shard_of_(n),
      local_of_(n),
      global_of_(mask_ + 1),
      boundary_count_(mask_ + 1),
      endpoint_refs_(mask_ + 1),
      boundary_local_(mask_ + 1),
      shard_version_(mask_ + 1),
      pool_(workers != 0 ? workers
                         : std::min<unsigned>(
                               mask_ + 1,
                               TaskPool::env_workers("DC_SHARD_WORKERS"))) {
  // Local ids are handed out in ascending global order, so within one shard
  // "smallest local id" and "smallest global id" name the same vertex — the
  // translation that keeps representative() canonical across the facade.
  for (Vertex v = 0; v < n_; ++v) {
    const uint32_t s = route(v, mask_);
    shard_of_[v] = s;
    local_of_[v] = static_cast<Vertex>(global_of_[s].size());
    global_of_[s].push_back(v);
  }
  inner_.reserve(mask_ + 1);
  for (uint32_t s = 0; s <= mask_; ++s) {
    // Each shard's structure (and hence its pools, maps and forest) is
    // sized to its own vertex population, not the global universe (>= 1 so
    // empty shards still construct).
    const Vertex ns =
        std::max<Vertex>(static_cast<Vertex>(global_of_[s].size()), 1);
    inner_.push_back(make_inner(ns, sampling));
  }
}

std::size_t ShardedDc::boundary_edges() const {
  std::lock_guard<std::mutex> lk(boundary_mu_);
  return boundary_.size();
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

bool ShardedDc::add_edge(Vertex u, Vertex v) {
  if (u == v) return false;  // loops never change connectivity
  const uint32_t su = shard_of_[u], sv = shard_of_[v];
  if (su == sv) {
    const bool r = inner_[su]->add_edge(local_of_[u], local_of_[v]);
    if (r) bump_if_boundary_adjacent(su, u, v);
    return r;
  }
  return add_cross(u, v);
}

bool ShardedDc::remove_edge(Vertex u, Vertex v) {
  if (u == v) return false;
  const uint32_t su = shard_of_[u], sv = shard_of_[v];
  if (su == sv) {
    const bool r = inner_[su]->remove_edge(local_of_[u], local_of_[v]);
    if (r) bump_if_boundary_adjacent(su, u, v);
    return r;
  }
  return remove_cross(u, v);
}

void ShardedDc::bump_if_boundary_adjacent(uint32_t s, Vertex u, Vertex v) {
  // An intra-shard update invalidates the boundary index only if it touched
  // a component that a boundary edge can see. The probe runs *after* the
  // mutation, which makes the skip exact in sequential histories: for any
  // final-state path from an updated vertex to a boundary endpoint, the
  // chronologically last addition completing that path probes a component
  // that already contains the endpoint, and bumps. Updates racing the probe
  // can at worst delay invalidation until the next bumping update — the
  // same staleness window every boundary query already tolerates.
  if (boundary_count_[s].v.load(std::memory_order_acquire) == 0) return;
  if (shard_confined(s, local_of_[u]) && shard_confined(s, local_of_[v]))
    return;
  bump_shard(s);
}

void ShardedDc::republish_endpoints(uint32_t s) {
  auto list = std::make_shared<std::vector<Vertex>>();
  list->reserve(endpoint_refs_[s].size());
  for (const auto& [lv, cnt] : endpoint_refs_[s]) list->push_back(lv);
  std::lock_guard<std::mutex> lk(boundary_local_[s].mu);
  boundary_local_[s].list = std::move(list);
}

bool ShardedDc::add_cross(Vertex u, Vertex v) {
  ++op_stats::local().shard_cross_updates;
  const uint64_t key = Edge(u, v).key();
  std::lock_guard<std::mutex> lk(boundary_mu_);
  if (!boundary_.insert(key).second) return false;
  for (const Vertex x : {u, v}) {
    const uint32_t s = shard_of_[x];
    boundary_count_[s].v.fetch_add(1, std::memory_order_release);
    if (++endpoint_refs_[s][local_of_[x]] == 1) republish_endpoints(s);
  }
  bump_boundary();
  return true;
}

bool ShardedDc::remove_cross(Vertex u, Vertex v) {
  ++op_stats::local().shard_cross_updates;
  const uint64_t key = Edge(u, v).key();
  std::lock_guard<std::mutex> lk(boundary_mu_);
  if (boundary_.erase(key) == 0) return false;
  for (const Vertex x : {u, v}) {
    const uint32_t s = shard_of_[x];
    boundary_count_[s].v.fetch_sub(1, std::memory_order_release);
    const auto it = endpoint_refs_[s].find(local_of_[x]);
    if (it != endpoint_refs_[s].end() && --it->second == 0) {
      endpoint_refs_[s].erase(it);
      republish_endpoints(s);
    }
  }
  bump_boundary();
  return true;
}

bool ShardedDc::shard_confined(uint32_t s, Vertex local_v) {
  std::shared_ptr<const std::vector<Vertex>> eps;
  {
    std::lock_guard<std::mutex> lk(boundary_local_[s].mu);
    eps = boundary_local_[s].list;
  }
  if (eps == nullptr || eps->empty()) return true;
  if (eps->size() > kConfinedScanCap) return false;  // too big to probe
  for (const Vertex w : *eps) {
    if (inner_[s]->connected(local_v, w)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Boundary index
// ---------------------------------------------------------------------------

bool ShardedDc::versions_match(const BoundaryIndex& idx) const noexcept {
  const unsigned S = num_shards();
  for (unsigned s = 0; s < S; ++s) {
    if (idx.built[s] != shard_version_[s].v.load(std::memory_order_acquire))
      return false;
  }
  return idx.built[S] == boundary_version_.v.load(std::memory_order_acquire);
}

std::shared_ptr<const ShardedDc::BoundaryIndex> ShardedDc::valid_index() {
  std::shared_ptr<const BoundaryIndex> cur;
  {
    std::lock_guard<std::mutex> lk(index_ptr_mu_);
    cur = index_;
  }
  if (cur != nullptr && versions_match(*cur)) return cur;
  return nullptr;
}

std::shared_ptr<const ShardedDc::BoundaryIndex> ShardedDc::current_index() {
  std::shared_ptr<const BoundaryIndex> cur;
  {
    std::lock_guard<std::mutex> lk(index_ptr_mu_);
    cur = index_;
  }
  if (cur != nullptr && versions_match(*cur)) return cur;
  std::lock_guard<std::mutex> rebuild_lk(index_mu_);
  {
    std::lock_guard<std::mutex> lk(index_ptr_mu_);
    cur = index_;
  }
  if (cur != nullptr && versions_match(*cur)) return cur;
  cur = rebuild_index();
  {
    std::lock_guard<std::mutex> lk(index_ptr_mu_);
    index_ = cur;
  }
  return cur;
}

void ShardedDc::quiesce() { current_index(); }

std::shared_ptr<const ShardedDc::BoundaryIndex> ShardedDc::rebuild_index() {
  ++op_stats::local().shard_index_rebuilds;
  auto idx = std::make_shared<BoundaryIndex>();
  const unsigned S = num_shards();
  // Versions are captured *before* reading any inner state: an update that
  // races the build bumps a counter the snapshot doesn't carry, so the next
  // validity check distrusts (and rebuilds) it. At quiescence a matching
  // snapshot therefore saw every update — the exactness the oracle tests
  // rely on.
  idx->built.resize(S + 1);
  for (unsigned s = 0; s < S; ++s)
    idx->built[s] = shard_version_[s].v.load(std::memory_order_acquire);
  idx->built[S] = boundary_version_.v.load(std::memory_order_acquire);

  std::vector<uint64_t> edges;
  {
    std::lock_guard<std::mutex> lk(boundary_mu_);
    edges.assign(boundary_.begin(), boundary_.end());
  }

  // Memoize the shard-component representative per endpoint: one inner
  // query per distinct vertex, and a value that stays internally stable
  // for the whole build even if updates race it.
  std::unordered_map<Vertex, Vertex> rep_memo;
  auto rep_of = [&](Vertex g) {
    const auto [it, fresh] = rep_memo.try_emplace(g, 0);
    if (fresh) it->second = rep_global(g);
    return it->second;
  };

  // Union-find over (shard, representative) super-nodes; node ids are
  // handed out on first sight of a representative.
  std::unordered_map<Vertex, uint32_t> node_of;
  std::vector<uint32_t> parent;
  std::vector<Vertex> node_rep;
  auto node = [&](Vertex rep) {
    const auto [it, fresh] =
        node_of.try_emplace(rep, static_cast<uint32_t>(parent.size()));
    if (fresh) {
      parent.push_back(it->second);
      node_rep.push_back(rep);
    }
    return it->second;
  };
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const uint64_t key : edges) {
    const Edge e = Edge::from_key(key);
    const uint32_t ra = find(node(rep_of(e.u)));
    const uint32_t rb = find(node(rep_of(e.v)));
    if (ra != rb) parent[ra] = rb;
  }

  // Aggregate per super-component: total size is the sum of the member
  // shard-components' inner sizes (each distinct representative counted
  // once), the global representative their minimum.
  std::unordered_map<uint32_t, uint32_t> ord_of;
  for (uint32_t i = 0; i < parent.size(); ++i) {
    const uint32_t root = find(i);
    const auto [it, fresh] =
        ord_of.try_emplace(root, static_cast<uint32_t>(idx->size.size()));
    if (fresh) {
      idx->size.push_back(0);
      idx->rep.push_back(node_rep[i]);
    }
    const uint32_t o = it->second;
    idx->size[o] += inner_[shard_of_[node_rep[i]]]->component_size(
        local_of_[node_rep[i]]);
    if (node_rep[i] < idx->rep[o]) idx->rep[o] = node_rep[i];
    idx->super_of.emplace(node_rep[i], o);
  }
  return idx;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool ShardedDc::connected(Vertex u, Vertex v) {
  const uint32_t su = shard_of_[u], sv = shard_of_[v];
  if (su == sv) {
    // Intra-shard fast path: a positive inner answer is globally exact
    // (boundary edges only ever *add* connectivity); a negative one is
    // final when the shard touches no boundary edge.
    if (inner_[su]->connected(local_of_[u], local_of_[v])) return true;
    if (boundary_count_[su].v.load(std::memory_order_acquire) == 0)
      return false;
  } else {
    if (boundary_count_[su].v.load(std::memory_order_acquire) == 0 ||
        boundary_count_[sv].v.load(std::memory_order_acquire) == 0)
      return false;
  }
  // Cost ladder: a still-valid published index answers in O(1); otherwise a
  // component that touches no boundary endpoint cannot leave its shard, so
  // the probe (O(shard boundary), no rebuild) finalizes the negative inner
  // answer; only queries that survive both pay the rebuild.
  auto idx = valid_index();
  if (idx == nullptr) {
    if (su == sv) {
      if (shard_confined(su, local_of_[u]) ||
          shard_confined(su, local_of_[v]))
        return false;
    } else {
      if (shard_confined(su, local_of_[u]) ||
          shard_confined(sv, local_of_[v]))
        return false;
    }
  }
  ++op_stats::local().shard_boundary_queries;
  if (idx == nullptr) idx = current_index();
  const Vertex ru = rep_global(u);
  const Vertex rv = rep_global(v);
  if (ru == rv) return true;
  const auto iu = idx->super_of.find(ru);
  if (iu == idx->super_of.end()) return false;
  const auto iv = idx->super_of.find(rv);
  if (iv == idx->super_of.end()) return false;
  return iu->second == iv->second;
}

uint64_t ShardedDc::component_size(Vertex u) {
  const uint32_t s = shard_of_[u];
  if (boundary_count_[s].v.load(std::memory_order_acquire) == 0)
    return inner_[s]->component_size(local_of_[u]);
  auto idx = valid_index();
  if (idx == nullptr && shard_confined(s, local_of_[u]))
    return inner_[s]->component_size(local_of_[u]);
  ++op_stats::local().shard_boundary_queries;
  if (idx == nullptr) idx = current_index();
  const auto it = idx->super_of.find(rep_global(u));
  if (it == idx->super_of.end())
    return inner_[s]->component_size(local_of_[u]);
  return idx->size[it->second];
}

Vertex ShardedDc::representative(Vertex u) {
  const uint32_t s = shard_of_[u];
  if (boundary_count_[s].v.load(std::memory_order_acquire) == 0)
    return rep_global(u);
  auto idx = valid_index();
  if (idx == nullptr && shard_confined(s, local_of_[u]))
    return rep_global(u);
  ++op_stats::local().shard_boundary_queries;
  if (idx == nullptr) idx = current_index();
  const Vertex ru = rep_global(u);
  const auto it = idx->super_of.find(ru);
  return it == idx->super_of.end() ? ru : idx->rep[it->second];
}

ComponentsSnapshot ShardedDc::components() {
  ComponentsSnapshot out;
  out.labels.resize(n_);
  const unsigned S = num_shards();
  bool any_boundary = false;
  for (unsigned s = 0; s < S; ++s) {
    if (global_of_[s].empty()) continue;
    const ComponentsSnapshot snap = inner_[s]->components();
    for (std::size_t l = 0; l < global_of_[s].size(); ++l)
      out.labels[global_of_[s][l]] =
          global_of_[s][snap.labels[static_cast<Vertex>(l)]];
    if (boundary_count_[s].v.load(std::memory_order_acquire) != 0)
      any_boundary = true;
  }
  if (any_boundary) {
    const auto idx = current_index();
    for (Vertex g = 0; g < n_; ++g) {
      const auto it = idx->super_of.find(out.labels[g]);
      if (it != idx->super_of.end()) out.labels[g] = idx->rep[it->second];
    }
  }
  // Stitched from S inner snapshots plus the index: exact at quiescence,
  // but not one atomically published epoch.
  out.consistent = false;
  return out;
}

uint64_t ShardedDc::exec_query(const Op& op) {
  switch (op.kind) {
    case OpKind::kConnected:
      return connected(op.u, op.v) ? 1 : 0;
    case OpKind::kComponentSize:
      return component_size(op.u);
    case OpKind::kRepresentative:
      return representative(op.u);
    case OpKind::kAdd:
    case OpKind::kRemove:
      break;  // updates never reach the query dispatch
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------------

BatchResult ShardedDc::apply_batch(std::span<const Op> ops) {
  BatchResult r;
  r.values.resize(ops.size());
  if (ops.empty()) return r;
  if (all_reads(ops)) {
    // Pure-read batches never synchronize with the gang: they run as a
    // sequence of global queries on the read path.
    for (std::size_t i = 0; i < ops.size(); ++i)
      r.set_op(i, ops[i].kind, exec_query(ops[i]));
    return r;
  }
  // TaskPool::run is single-driver; a caller that cannot claim the gang
  // applies its per-shard sub-batches sequentially instead of waiting, so
  // concurrent batches still make progress (batches are NOT atomic with
  // respect to each other or to single ops — caps.atomic_batch stays off).
  std::unique_lock<std::mutex> gang(batch_mu_, std::try_to_lock);
  for_each_batch_segment(
      ops,
      [&](std::size_t i) { r.set_op(i, ops[i].kind, exec_query(ops[i])); },
      [&](std::size_t i, std::size_t j) {
        apply_run(ops, i, j, r, gang.owns_lock());
      });
  return r;
}

void ShardedDc::apply_run(std::span<const Op> ops, std::size_t i,
                          std::size_t j, BatchResult& r, bool own_gang) {
  const unsigned S = num_shards();
  std::vector<std::vector<Op>> sub(S);
  std::vector<std::vector<uint32_t>> pos(S);
  std::vector<uint32_t> cross;
  unsigned touched = 0;
  for (std::size_t k = i; k < j; ++k) {
    const Op& op = ops[k];
    if (op.u == op.v) continue;  // loop updates: no-op, value stays false
    const uint32_t su = shard_of_[op.u], sv = shard_of_[op.v];
    if (su == sv) {
      if (sub[su].empty()) ++touched;
      sub[su].push_back({op.kind, local_of_[op.u], local_of_[op.v]});
      pos[su].push_back(static_cast<uint32_t>(k));
    } else {
      cross.push_back(static_cast<uint32_t>(k));
    }
  }

  // Gang members write disjoint r.values slots and their own shard_res
  // entries; the summary counters are merged by the caller after the join.
  std::vector<BatchResult> shard_res(S);
  auto apply_shard = [&](uint32_t s) {
    if (sub[s].empty()) return;
    shard_res[s] = inner_[s]->apply_batch(sub[s]);
    for (std::size_t m = 0; m < pos[s].size(); ++m)
      r.values[pos[s][m]] = shard_res[s].values[m];
    if (shard_res[s].adds_performed + shard_res[s].removes_performed > 0)
      bump_shard(s);
  };
  const unsigned gang = pool_.workers();
  if (own_gang && gang > 1 && touched > 1) {
    pool_.run([&](unsigned w) {
      // Deterministic shard → worker assignment (shard s always runs on
      // gang member s % gang): each worker's thread-local NodePool arenas
      // end up populated by one fixed subset of shards, so allocation
      // locality follows the partition across batches.
      for (uint32_t s = w; s < S; s += gang) apply_shard(s);
    });
  } else {
    for (uint32_t s = 0; s < S; ++s) apply_shard(s);
  }
  for (uint32_t s = 0; s < S; ++s) {
    r.adds_performed += shard_res[s].adds_performed;
    r.removes_performed += shard_res[s].removes_performed;
  }

  // Cross-shard updates are applied by the caller, in batch order (updates
  // on distinct edges commute within a run; same-edge ops stay in this one
  // ordered stretch because the router is deterministic).
  for (const uint32_t k : cross) {
    const Op& op = ops[k];
    const bool done = op.kind == OpKind::kAdd ? add_cross(op.u, op.v)
                                              : remove_cross(op.u, op.v);
    r.set_op(k, op.kind, done ? 1 : 0);
  }
}

}  // namespace condyn
