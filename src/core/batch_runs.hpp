#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "util/random.hpp"

namespace condyn {

/// Canonical partition key for an undirected edge: order-insensitive
/// (hash(u,v) == hash(v,u)), seed-free and machine-stable. Introduced by the
/// PR 4 dependency-preserving replay as the thread-ownership key; hoisted
/// here from the harness so the core batch pipeline (PbdDc's parallel
/// preprocessing) can partition update runs by edge without a core→harness
/// dependency. harness::edge_partition_hash forwards to this.
inline uint64_t edge_partition_hash(Vertex u, Vertex v) noexcept {
  const Edge e(u, v);  // canonical orientation
  return mix64(e.key() ^ 0xdec0de5eedull);
}

/// Shared walk for batched application (DESIGN.md §5.1), used by the locked
/// engine (Hdt::apply_batch) and the fine-grained variant so the reorder
/// semantics live in exactly one place.
///
/// Queries (connectivity, component size, representative) are reorder
/// barriers — they observe the whole edge set — so the batch decomposes into
/// queries and maximal runs of updates between them. Within a run, updates
/// on distinct edges commute (their return values and the resulting edge set
/// depend only on per-edge history), which makes a *stable* sort by
/// canonical edge key semantics-preserving while grouping same-edge and
/// same-component work back-to-back.
///
/// Raw segment walk — the decomposition alone, no sorting. Calls, in batch
/// order:
///   on_query(i)     — for each query op, i its batch index;
///   on_run(i, j)    — for each maximal update run, the half-open batch
///                     index range [i, j).
/// for_each_batch_run layers the stable edge-key sort on top; PbdDc's batch
/// planner consumes the raw ranges instead and partitions each run by
/// edge_partition_hash across its worker gang (DESIGN.md §9).
template <typename QueryFn, typename RawRunFn>
void for_each_batch_segment(std::span<const Op> ops, QueryFn&& on_query,
                            RawRunFn&& on_run) {
  std::size_t i = 0;
  while (i < ops.size()) {
    if (is_query(ops[i].kind)) {
      on_query(i);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < ops.size() && !is_query(ops[j].kind)) ++j;
    on_run(i, j);
    i = j;
  }
}

/// Calls, in batch order:
///   on_query(i)    — for each query op (any is_query kind), i its batch
///                    index;
///   on_run(order)  — for each update run, `order` the run's batch indices
///                    stably sorted by edge key (valid only for the call).
template <typename QueryFn, typename RunFn>
void for_each_batch_run(std::span<const Op> ops, QueryFn&& on_query,
                        RunFn&& on_run) {
  std::vector<uint32_t> order;
  for_each_batch_segment(
      ops, std::forward<QueryFn>(on_query),
      [&ops, &order, &on_run](std::size_t i, std::size_t j) {
        order.clear();
        for (std::size_t k = i; k < j; ++k) {
          order.push_back(static_cast<uint32_t>(k));
        }
        std::stable_sort(order.begin(), order.end(),
                         [&ops](uint32_t a, uint32_t b) {
                           return Edge(ops[a].u, ops[a].v).key() <
                                  Edge(ops[b].u, ops[b].v).key();
                         });
        on_run(std::span<const uint32_t>(order));
      });
}

}  // namespace condyn
