#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "api/dynamic_connectivity.hpp"

namespace condyn {

/// Shared walk for batched application (DESIGN.md §5.1), used by the locked
/// engine (Hdt::apply_batch) and the fine-grained variant so the reorder
/// semantics live in exactly one place.
///
/// Queries (connectivity, component size, representative) are reorder
/// barriers — they observe the whole edge set — so the batch decomposes into
/// queries and maximal runs of updates between them. Within a run, updates
/// on distinct edges commute (their return values and the resulting edge set
/// depend only on per-edge history), which makes a *stable* sort by
/// canonical edge key semantics-preserving while grouping same-edge and
/// same-component work back-to-back.
///
/// Calls, in batch order:
///   on_query(i)    — for each query op (any is_query kind), i its batch
///                    index;
///   on_run(order)  — for each update run, `order` the run's batch indices
///                    stably sorted by edge key (valid only for the call).
template <typename QueryFn, typename RunFn>
void for_each_batch_run(std::span<const Op> ops, QueryFn&& on_query,
                        RunFn&& on_run) {
  std::vector<uint32_t> order;
  std::size_t i = 0;
  while (i < ops.size()) {
    if (is_query(ops[i].kind)) {
      on_query(i);
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < ops.size() && !is_query(ops[j].kind)) ++j;
    order.clear();
    for (std::size_t k = i; k < j; ++k) {
      order.push_back(static_cast<uint32_t>(k));
    }
    std::stable_sort(order.begin(), order.end(),
                     [&ops](uint32_t a, uint32_t b) {
                       return Edge(ops[a].u, ops[a].v).key() <
                              Edge(ops[b].u, ops[b].v).key();
                     });
    on_run(std::span<const uint32_t>(order));
    i = j;
  }
}

}  // namespace condyn
