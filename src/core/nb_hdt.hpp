#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "api/dynamic_connectivity.hpp"
#include "core/component_lock.hpp"
#include "core/edge_multiset.hpp"
#include "core/edge_state.hpp"
#include "core/ett.hpp"
#include "core/label_cache.hpp"
#include "core/sharded_map.hpp"
#include "graph/graph.hpp"
#include "util/elision_lock.hpp"
#include "util/spinlock.hpp"

namespace condyn {

/// Spanning-edge-removal descriptor — Listing 5's `RemovalOperation`.
///
/// Published on the level-0 root (every reader's find_root funnels to it
/// while the cut is pending), strictly for the duration of the *level-0*
/// phase of the replacement search. Concurrent non-blocking additions whose
/// edge would reconnect the two halves propose it through `slot`; the writer
/// routes its own level-0 candidates through the same slot, so finalization
/// (installing the kClosed sentinel) yields the unique winner.
struct RemovalOp {
  /// A proposed replacement: the edge, the exact state word the proposer
  /// observed (helpers CAS from it — the stamp defeats ABA, Appendix C),
  /// and the state record to CAS on.
  struct Cell {
    Edge edge;
    EdgeState state;
    EdgeStateCell* rec;
  };

  Vertex u = 0, v = 0;              ///< the spanning edge being removed
  ett::Node* old_root = nullptr;    ///< root all chains still terminate at
  ett::Node* detached_root = nullptr;  ///< piece root that is not old_root

  std::atomic<Cell*> slot{nullptr};

  static Cell* closed() noexcept {
    return reinterpret_cast<Cell*>(uintptr_t{1});
  }
};

/// Lock strategy for the blocking (spanning-forest) paths of the full
/// algorithm, selecting between the paper's variants:
///  kFine          → (9)  per-component root locks (Listing 2);
///  kCoarseSpin    → (10) one global spinlock;
///  kCoarseElision → (11) one global HTM-elided lock.
enum class NbLockMode { kFine, kCoarseSpin, kCoarseElision };

/// The paper's full algorithm (§4.4 + Appendix C): Holm et al. dynamic
/// connectivity where
///  * connectivity queries are lock-free (single-writer ETT, Listing 1);
///  * additions and removals of *non-spanning* edges are lock-free,
///    coordinated with concurrent spanning-edge removals through per-edge
///    status words (Fig. 13) and the replacement-proposal slot protocol
///    (Listings 7–10);
///  * only updates that change the spanning forest take locks, per
///    NbLockMode.
class NbHdt {
 public:
  explicit NbHdt(Vertex n, NbLockMode mode, bool sampling = true);
  ~NbHdt();
  NbHdt(const NbHdt&) = delete;
  NbHdt& operator=(const NbHdt&) = delete;

  Vertex num_vertices() const noexcept { return n_; }
  int max_level() const noexcept { return lmax_; }
  NbLockMode lock_mode() const noexcept { return mode_; }

  /// Lock-free linearizable connectivity query.
  bool connected(Vertex u, Vertex v) { return forest0_->connected(u, v); }

  /// Lock-free value queries (Query API v2): the F_0 root's vcount / vmin
  /// augmentation under the same versioned double-collect as connected().
  /// A pending spanning removal keeps both pieces chained to — and counted
  /// at — the old root until the cut commits, so the answer reflects the
  /// not-yet-linearized state, exactly like connected() does. Never takes
  /// the component lock (lock_stats stays flat on this path).
  uint64_t component_size(Vertex u) {
    return forest0_->component_size_nonblocking(u);
  }
  Vertex representative(Vertex u) {
    return forest0_->representative_nonblocking(u);
  }

  /// Insert (u,v); lock-free when the endpoints are already connected.
  /// Returns false if the edge was already present (or a concurrent addition
  /// of the same edge committed first).
  bool add_edge(Vertex u, Vertex v);

  /// Erase (u,v); lock-free when (u,v) is a non-spanning edge.
  /// Returns false if the edge was absent.
  bool remove_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;
  bool is_spanning(Vertex u, Vertex v) const;
  int edge_level(Vertex u, Vertex v) const;  ///< -1 when absent

  ett::Forest& level0() noexcept { return *forest0_; }

  /// Testing (quiescent only): forest nesting, status/forest agreement,
  /// component-size bound, multiset copy invariant.
  void check_invariants();

 private:
  // Where a vertex sits relative to a pending level-0 cut, determined by a
  // lock-free parent-pointer-only ascent (adders cannot inspect the writer's
  // left/right fields without racing, but parent chains alone identify the
  // piece: a vertex is on the detached side iff its chain passes through
  // detached_root before terminating, and in the component at all iff the
  // chain terminates at old_root).
  enum class CutSide { kRootSide, kDetachedSide, kElsewhere };
  CutSide cut_side(const RemovalOp* op, Vertex x);
  bool can_be_replacement(const RemovalOp* op, const Edge& e);

  enum class ProposeResult { kProposed, kOtherWon, kClosed };
  /// Listing 9's propose_replacement, with helping: try to install e as the
  /// replacement; help whatever currently occupies the slot to SPANNING, and
  /// clear defunct occupants. On kOtherWon, *winner is the occupant (already
  /// helped to SPANNING).
  ProposeResult propose_replacement(RemovalOp* op, const Edge& e,
                                    EdgeState state, EdgeStateCell* rec,
                                    RemovalOp::Cell* winner);

  /// Listing 10's finalize_replacement_search: close the slot; returns the
  /// winning cell (caller retires it) or nullptr if no replacement.
  RemovalOp::Cell* finalize_replacement_search(RemovalOp* op);

  /// Listing 9's try_add_non_spanning_edge. Returns true when the edge's
  /// fate was decided (non-spanning, or adopted as a replacement, or handed
  /// to the blocking path); false = restart the outer loop.
  bool try_add_non_spanning(const Edge& e, EdgeState init,
                            EdgeStateCell* rec);

  /// Listing 7's try_remove_non_spanning_edge.
  bool try_remove_non_spanning(const Edge& e, EdgeState st,
                               EdgeStateCell* rec);

  /// Blocking paths (Listing 8 / Listing 7), run under with_locked.
  void blocking_add_edge(const Edge& e, EdgeState init, EdgeStateCell* rec);
  bool blocking_remove_edge(const Edge& e, EdgeStateCell* rec);
  void remove_spanning_edge(const Edge& e, EdgeState st, EdgeStateCell* rec);

  // Replacement-search machinery (writer side, under locks).
  struct LevelSearch {
    int level;
    ett::Node* tv_root;     ///< smaller piece (scanned & promoted)
    ett::Node* other_root;  ///< the piece a replacement must reach
  };
  /// Search levels st.level()..1 (no descriptor; NB adds never target these
  /// levels). Returns true and sets *out (state already moved to
  /// kSpanning, info detached) when found.
  bool search_upper_levels(const Edge& removed, int top_level, Edge* out,
                           int* out_level);
  bool sample_level(const LevelSearch& ls, Edge* out);
  bool scan_level(const LevelSearch& ls, Edge* out);
  /// The slot-aware level-0 scan with INITIAL-edge helping (Listing 10).
  void level0_search(RemovalOp* op, const LevelSearch& ls);
  bool level0_visit_edge(RemovalOp* op, const LevelSearch& ls, Vertex a,
                         Vertex w, bool allow_promote);
  /// Promote every level-i spanning arc inside tv's subtree to level i+1.
  void promote_spanning(int i, ett::Node* tv_root);

  void add_info(int level, const Edge& e);
  void remove_info(int level, const Edge& e);

  ett::Forest& forest(int i);
  ett::Forest* forest_if(int i) const noexcept {
    return forests_[i].load(std::memory_order_acquire);
  }

  template <typename F>
  void with_locked(Vertex u, Vertex v, F&& f) {
    switch (mode_) {
      case NbLockMode::kFine: {
        ComponentGuard g(*forest0_, u, v);
        f();
        return;
      }
      case NbLockMode::kCoarseSpin: {
        std::lock_guard<SpinLock> lk(coarse_spin_);
        f();
        return;
      }
      case NbLockMode::kCoarseElision: {
        std::lock_guard<ElisionLock> lk(coarse_elision_);
        f();
        return;
      }
    }
  }

  static constexpr int kSampleBudget = 16;

  Vertex n_;
  int lmax_;
  NbLockMode mode_;
  bool sampling_;
  ett::Forest* forest0_;
  std::unique_ptr<std::atomic<ett::Forest*>[]> forests_;
  EdgeStateMap states_;
  /// adj_[i].find(v) = multiset of neighbors w with (v,w) non-spanning at
  /// level i (plus transient copies, see VertexMultiset docs).
  std::unique_ptr<ShardedU64Map<VertexMultiset>[]> adj_;

  SpinLock coarse_spin_;
  ElisionLock coarse_elision_;
};

/// DynamicConnectivity facade over NbHdt — variants (9), (10), (11).
class NbDc final : public DynamicConnectivity {
 public:
  NbDc(Vertex n, NbLockMode mode, std::string name, bool sampling = true)
      : hdt_(n, mode, sampling), name_(std::move(name)) {
    if (LabelCache::env_enabled())
      cache_ = std::make_unique<LabelCache>(&hdt_.level0());
  }

  bool add_edge(Vertex u, Vertex v) override { return hdt_.add_edge(u, v); }
  bool remove_edge(Vertex u, Vertex v) override {
    return hdt_.remove_edge(u, v);
  }
  bool connected(Vertex u, Vertex v) override {
    return cache_ ? cache_->connected(u, v) : hdt_.connected(u, v);
  }

  /// Value queries run on the lock-free read path — the NB family's whole
  /// point is that queries never block, and size/representative are
  /// queries. With the label cache built (DC_LABEL_CACHE, default on) they
  /// hit the O(1) published labels first and fall back to the same
  /// lock-free walk.
  uint64_t component_size(Vertex u) override {
    return cache_ ? cache_->component_size(u) : hdt_.component_size(u);
  }
  Vertex representative(Vertex u) override {
    return cache_ ? cache_->representative(u) : hdt_.representative(u);
  }

  /// Cache-backed consistent snapshot; base per-vertex scan when the cache
  /// is absent or concurrent churn defeats the epoch validation.
  ComponentsSnapshot components() override {
    if (cache_ != nullptr) {
      ComponentsSnapshot s;
      if (cache_->snapshot_labels(s.labels)) {
        s.consistent = true;
        return s;
      }
    }
    return DynamicConnectivity::components();
  }

  /// Batched path: every operation is already lock-free or fine-grained, so
  /// there is no lock to amortize — the batch runs straight against the
  /// engine (no per-op virtual dispatch) and stays fully concurrent with
  /// other threads' ops and batches (not atomic as a whole).
  BatchResult apply_batch(std::span<const Op> ops) override {
    BatchResult r;
    r.values.resize(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Op& op = ops[i];
      uint64_t value = 0;
      switch (op.kind) {
        case OpKind::kAdd:
          value = hdt_.add_edge(op.u, op.v) ? 1 : 0;
          break;
        case OpKind::kRemove:
          value = hdt_.remove_edge(op.u, op.v) ? 1 : 0;
          break;
        case OpKind::kConnected:
          value = cache_ ? (cache_->connected(op.u, op.v) ? 1 : 0)
                         : (hdt_.connected(op.u, op.v) ? 1 : 0);
          break;
        case OpKind::kComponentSize:
          value = cache_ ? cache_->component_size(op.u)
                         : hdt_.component_size(op.u);
          break;
        case OpKind::kRepresentative:
          value = cache_ ? cache_->representative(op.u)
                         : hdt_.representative(op.u);
          break;
      }
      r.set_op(i, op.kind, value);
    }
    return r;
  }

  Vertex num_vertices() const override { return hdt_.num_vertices(); }
  std::string name() const override { return name_; }

  NbHdt& engine() noexcept { return hdt_; }

 private:
  NbHdt hdt_;
  std::string name_;
  /// Declared after hdt_: destroyed first, detaching from the level-0
  /// forest before it dies.
  std::unique_ptr<LabelCache> cache_;
};

}  // namespace condyn
