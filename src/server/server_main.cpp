// condyn_server: the connectivity-as-a-service binary (DESIGN.md §12).
// Builds one variant, attaches the group-commit IngestService, and serves
// the wire:: protocol until SIGTERM/SIGINT, then drains gracefully: the
// listener closes, in-flight frames are answered through the ingest stop
// path, and the process exits 0 with a final status line.
//
// Configuration is environment-only (matching the bench harness):
//   DC_SERVER_VARIANT   variant name (default "full")
//   DC_SERVER_VERTICES  graph size n (default 1<<20)
//   DC_SERVER_BIND/PORT/THREADS/INFLIGHT/BYTES/DRAIN_MS   (see server.hpp)
//   DC_INGEST_*, DC_JOURNAL*   ingest/durability knobs (see ingest.hpp)

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/factory.hpp"
#include "ingest/ingest.hpp"
#include "server/server.hpp"

namespace {

// Self-pipe: the handler only writes a byte; main() blocks on the read end.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const char b = 1;
  (void)!write(g_signal_pipe[1], &b, 1);
}

}  // namespace

int main() {
  using namespace condyn;

  const char* variant_env = std::getenv("DC_SERVER_VARIANT");
  const std::string variant =
      variant_env != nullptr && *variant_env ? variant_env : "full";
  const char* n_env = std::getenv("DC_SERVER_VERTICES");
  const Vertex n = n_env != nullptr && *n_env
                       ? static_cast<Vertex>(std::strtoull(n_env, nullptr, 10))
                       : (1u << 20);

  if (pipe(g_signal_pipe) < 0) {
    std::perror("condyn_server: pipe");
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);  // a client vanishing mid-write is not fatal

  try {
    auto dc = make_variant(variant, n);
    ingest::IngestService svc(*dc, ingest::env_options());
    server::Server srv(*dc, svc, server::env_server_options());
    srv.start();

    // Readiness line — the smoke harness waits for it before launching load.
    std::printf("condyn_server listening port=%u variant=%s n=%u threads=%u\n",
                srv.port(), variant.c_str(), n,
                server::env_server_options().threads);
    std::fflush(stdout);

    // Park until a signal arrives.
    pollfd pfd = {g_signal_pipe[0], POLLIN, 0};
    while (poll(&pfd, 1, -1) < 0 && errno == EINTR) {
    }

    std::printf("condyn_server draining\n");
    std::fflush(stdout);
    srv.stop();  // before svc.stop(): the drain waits on applier tickets
    svc.stop();

    const server::ServerStats st = srv.stats();
    const wire::StatusReport rep = srv.status_report();
    std::printf(
        "condyn_server exit frames=%" PRIu64 " ops=%" PRIu64
        " inline_reads=%" PRIu64 " shed=%" PRIu64 " bad=%" PRIu64
        " acked=%" PRIu64 " failed=%" PRIu64 " journal_errors=%" PRIu64 "\n",
        st.frames, st.ops, st.inline_reads, st.shed_frames, st.bad_frames,
        rep.acked, rep.failed, rep.journal_errors);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "condyn_server: fatal: %s\n", e.what());
    return 1;
  }
}
