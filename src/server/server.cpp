#include "server/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace condyn::server {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("server: " + what + ": " + std::strerror(errno));
}

uint64_t env_u64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10) : fallback;
}

int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Compact a buffer whose consumed prefix has grown past the threshold —
/// erasing on every frame would be quadratic on pipelined streams.
constexpr std::size_t kCompactThreshold = 64 * 1024;
constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

ServerOptions env_server_options() {
  ServerOptions o;
  if (const char* s = std::getenv("DC_SERVER_BIND"); s != nullptr && *s) {
    o.bind_address = s;
  }
  o.port = static_cast<uint16_t>(env_u64("DC_SERVER_PORT", o.port));
  o.threads = static_cast<unsigned>(
      std::max<uint64_t>(1, env_u64("DC_SERVER_THREADS", o.threads)));
  o.max_inflight_frames = static_cast<uint32_t>(std::max<uint64_t>(
      1, env_u64("DC_SERVER_INFLIGHT", o.max_inflight_frames)));
  o.byte_budget = static_cast<std::size_t>(
      std::max<uint64_t>(1 << 16, env_u64("DC_SERVER_BYTES", o.byte_budget)));
  o.drain_timeout_ms = static_cast<unsigned>(
      env_u64("DC_SERVER_DRAIN_MS", o.drain_timeout_ms));
  return o;
}

/// One request frame awaiting its in-order response. Either pre-encoded
/// (`ready`: shed, status, bad-frame, shutting-down answers) or ticketed —
/// ops submitted to the ingest ring, the response assembled from ticket
/// values once the group commit acknowledges the last one.
struct PendingResponse {
  std::vector<uint8_t> ready;
  bool ticketed = false;
  /// Status probe queued behind in-flight frames: encoded at *flush* time,
  /// so the report reflects the state after everything ahead of it
  /// committed — what an in-order health probe should observe.
  bool status_probe = false;
  std::vector<Op> ops;
  std::unique_ptr<ingest::Ticket[]> tickets;
};

struct Server::Connection {
  int fd = -1;
  std::vector<uint8_t> rbuf;
  std::size_t rpos = 0;
  std::vector<uint8_t> wbuf;
  std::size_t wpos = 0;
  std::deque<PendingResponse> pending;
  bool read_eof = false;  ///< client half-closed; finish responses, then close
  bool closing = false;   ///< close once the write buffer drains (bad frame)
  bool want_write = false;
  std::size_t accounted = 0;  ///< bytes charged against the global budget
};

struct Server::Worker {
  int epfd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mu;
  std::vector<int> incoming;  ///< fds handed over by the acceptor
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
};

Server::Server(DynamicConnectivity& dc, ingest::IngestService& svc,
               ServerOptions opts)
    : dc_(dc), svc_(svc), opts_(std::move(opts)) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("server: bad bind address " + opts_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("bind/listen on port " + std::to_string(opts_.port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::pipe2(stop_pipe_, O_CLOEXEC | O_NONBLOCK) < 0) fail_errno("pipe2");

  for (unsigned i = 0; i < opts_.threads; ++i) {
    auto w = std::make_unique<Worker>();
    w->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    w->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (w->epfd < 0 || w->wake_fd < 0) fail_errno("epoll_create1/eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->wake_fd;
    ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, w->wake_fd, &ev);
    workers_.push_back(std::move(w));
  }
  draining_.store(false, std::memory_order_release);
  started_ = true;
  for (auto& w : workers_) {
    Worker* wp = w.get();
    wp->thread = std::thread([this, wp] { worker_main(*wp); });
  }
  acceptor_ = std::thread([this] { acceptor_main(); });
}

void Server::stop() {
  if (!started_) return;
  draining_.store(true, std::memory_order_release);
  // Wake the acceptor's poll() and every worker's epoll_wait().
  char b = 1;
  (void)!::write(stop_pipe_[1], &b, 1);
  for (auto& w : workers_) {
    const uint64_t v = 1;
    (void)!::write(w->wake_fd, &v, sizeof v);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
    ::close(w->wake_fd);
    ::close(w->epfd);
  }
  workers_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  started_ = false;
}

void Server::acceptor_main() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0 || draining_.load(std::memory_order_acquire))
      break;
    for (;;) {
      const int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        // EAGAIN: accepted everything pending; anything else (EMFILE,
        // ECONNABORTED) is per-connection — log-free skip, keep serving.
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      Worker& w = *workers_[next_worker_.fetch_add(
                               1, std::memory_order_relaxed) %
                           workers_.size()];
      {
        std::lock_guard lk(w.mu);
        w.incoming.push_back(fd);
      }
      const uint64_t v = 1;
      (void)!::write(w.wake_fd, &v, sizeof v);
    }
  }
}

void Server::adopt_incoming(Worker& w) {
  std::vector<int> fds;
  {
    std::lock_guard lk(w.mu);
    fds.swap(w.incoming);
  }
  for (const int fd : fds) {
    if (draining_.load(std::memory_order_acquire)) {
      // Handed over after the drain began: nothing of theirs is in flight.
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto c = std::make_unique<Connection>();
    c->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(w.epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      closed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    w.conns.emplace(fd, std::move(c));
  }
}

void Server::worker_main(Worker& w) {
  epoll_event events[64];
  int64_t drain_deadline = 0;
  for (;;) {
    adopt_incoming(w);

    const bool draining = draining_.load(std::memory_order_acquire);
    if (draining && drain_deadline == 0) {
      drain_deadline =
          now_ns() + static_cast<int64_t>(opts_.drain_timeout_ms) * 1'000'000;
    }

    bool any_pending = false;
    for (auto& [fd, c] : w.conns) {
      if (!c->pending.empty()) {
        any_pending = true;
        break;
      }
    }
    // Ticket completion is polled (the applier has no callback hook), so
    // sleep shortly while group commits are in flight; park longer when the
    // worker is idle — the eventfd wakes it for new connections and stop().
    const int timeout_ms = any_pending ? 1 : (draining ? 10 : 200);
    const int n = ::epoll_wait(w.epfd, events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < std::max(n, 0); ++i) {
      const int fd = events[i].data.fd;
      if (fd == w.wake_fd) {
        uint64_t v;
        (void)!::read(w.wake_fd, &v, sizeof v);
        continue;
      }
      const auto it = w.conns.find(fd);
      if (it == w.conns.end()) continue;  // closed earlier in this batch
      Connection& c = *it->second;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        close_conn(w, c);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) on_writable(w, c);
      if (w.conns.find(fd) == w.conns.end()) continue;
      if ((events[i].events & EPOLLIN) != 0) on_readable(w, c);
    }

    // Completion pass: answer every frame whose group commit finished, in
    // request order, and retire connections that are done.
    std::vector<int> finished;
    for (auto& [fd, c] : w.conns) {
      flush_completions(w, *c);
      if (c->fd < 0) {
        finished.push_back(fd);
        continue;
      }
      const bool drained = c->pending.empty() && c->wpos == c->wbuf.size();
      const bool force = draining && drain_deadline != 0 &&
                         now_ns() >= drain_deadline;
      if (((c->closing || c->read_eof || draining) && drained) || force) {
        close_conn(w, *c);
        finished.push_back(fd);
      }
    }
    for (const int fd : finished) w.conns.erase(fd);

    if (draining && w.conns.empty()) {
      std::lock_guard lk(w.mu);
      if (w.incoming.empty()) break;
    }
  }
  for (auto& [fd, c] : w.conns) {
    if (c->fd >= 0) close_conn(w, *c);
  }
  w.conns.clear();
}

void Server::on_readable(Worker& w, Connection& c) {
  uint8_t tmp[kReadChunk];
  for (;;) {
    const ssize_t n = ::read(c.fd, tmp, sizeof tmp);
    if (n > 0) {
      bytes_in_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
      if (!c.closing) {
        c.rbuf.insert(c.rbuf.end(), tmp, tmp + n);
      }
      if (n < static_cast<ssize_t>(sizeof tmp)) break;
      continue;
    }
    if (n == 0) {
      c.read_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(w, c);
    return;
  }
  parse_frames(w, c);
  update_accounting(c);
}

void Server::on_writable(Worker& w, Connection& c) {
  try_flush_writes(w, c);
}

void Server::parse_frames(Worker& w, Connection& c) {
  while (!c.closing) {
    const std::span<const uint8_t> rest(c.rbuf.data() + c.rpos,
                                        c.rbuf.size() - c.rpos);
    try {
      const std::optional<wire::FrameView> f = wire::try_frame(rest);
      if (!f) break;
      handle_frame(w, c, *f);
      c.rpos += f->frame_bytes;
    } catch (const std::exception&) {
      // Hopeless header or a payload that failed strict decode: answer
      // kBadFrame (in order, behind anything in flight) and close once the
      // response drains — after a framing error the byte stream can no
      // longer be trusted to re-synchronize.
      bad_frames_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> resp;
      wire::encode_results_frame(wire::Status::kBadFrame, {}, resp);
      enqueue_ready(c, resp);
      c.closing = true;
      c.rbuf.clear();
      c.rpos = 0;
      break;
    }
  }
  if (c.rpos == c.rbuf.size()) {
    c.rbuf.clear();
    c.rpos = 0;
  } else if (c.rpos > kCompactThreshold) {
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.rpos));
    c.rpos = 0;
  }
}

void Server::enqueue_ready(Connection& c, const std::vector<uint8_t>& frame) {
  if (c.pending.empty()) {
    // Nothing ahead of it: skip the queue and write directly.
    c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
    return;
  }
  PendingResponse p;
  p.ready = frame;
  c.pending.push_back(std::move(p));
}

void Server::shed(Connection& c, wire::Status status) {
  shed_frames_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> resp;
  wire::encode_results_frame(status, {}, resp);
  enqueue_ready(c, resp);
}

void Server::handle_frame(Worker& w, Connection& c,
                          const wire::FrameView& f) {
  switch (f.type) {
    case wire::FrameType::kStatusRequest: {
      wire::check_status_request(f.payload);  // throws -> bad-frame path
      status_frames_.fetch_add(1, std::memory_order_relaxed);
      if (c.pending.empty()) {
        std::vector<uint8_t> resp;
        wire::encode_status_response(status_report(), resp);
        c.wbuf.insert(c.wbuf.end(), resp.begin(), resp.end());
      } else {
        PendingResponse p;
        p.status_probe = true;
        c.pending.push_back(std::move(p));
      }
      return;
    }
    case wire::FrameType::kResults:
    case wire::FrameType::kStatusResponse:
      // Response types arriving at the server are a protocol violation.
      throw std::runtime_error("server: client sent a response frame");
    case wire::FrameType::kOps:
      break;
  }

  std::vector<Op> ops = wire::decode_ops(f.payload, dc_.num_vertices());
  frames_.fetch_add(1, std::memory_order_relaxed);
  ops_.fetch_add(ops.size(), std::memory_order_relaxed);

  if (draining_.load(std::memory_order_acquire)) {
    shed(c, wire::Status::kShuttingDown);
    return;
  }
  // Admission control (DESIGN.md §12.2), cheapest check first. A shed frame
  // is answered kOverloaded with nothing applied — the client retries or
  // backs off; the server never queues without bound.
  if (c.pending.size() >= opts_.max_inflight_frames) {
    shed(c, wire::Status::kOverloaded);
    return;
  }
  if (buffered_bytes_.load(std::memory_order_relaxed) > opts_.byte_budget) {
    shed(c, wire::Status::kOverloaded);
    return;
  }

  if (all_reads(ops) && c.pending.empty()) {
    // Pure-read frame with nothing in flight on this connection: serve it
    // inline on the worker via the variant's lock-free read paths — no ring
    // trip, no ticket, the common case for query-heavy clients.
    inline_reads_.fetch_add(1, std::memory_order_relaxed);
    const BatchResult res = dc_.apply_batch(ops);
    std::vector<uint8_t> resp;
    wire::encode_results_frame(wire::Status::kOk, res.values, resp);
    c.wbuf.insert(c.wbuf.end(), resp.begin(), resp.end());
    return;
  }

  // Frame-granular ring headroom: shedding *before* the first submit keeps
  // the frame atomic at admission (never half-enqueued), and keeps the
  // blocking backpressure path — sized for in-process producers, not a
  // worker that must return to its event loop — from stalling the server.
  const uint64_t depth = svc_.stats().queue_depth;
  if (depth + ops.size() > svc_.options().ring_capacity) {
    shed(c, wire::Status::kOverloaded);
    return;
  }

  // Update or mixed frame — and any read frame queued behind one (the FIFO
  // ring preserves per-connection program order: a client that adds an edge
  // and then asks connected() must see its own write).
  PendingResponse p;
  p.ticketed = true;
  p.ops = std::move(ops);
  p.tickets = std::make_unique<ingest::Ticket[]>(p.ops.size());
  c.pending.push_back(std::move(p));
  PendingResponse& back = c.pending.back();
  for (std::size_t i = 0; i < back.ops.size(); ++i) {
    if (!svc_.submit(back.ops[i], &back.tickets[i])) {
      // Refused (service stopping): submit() already marked this ticket
      // kDropped; mark the rest so the response assembles immediately.
      for (std::size_t j = i + 1; j < back.ops.size(); ++j) {
        back.tickets[j].state.store(ingest::Ticket::kDropped,
                                    std::memory_order_release);
      }
      break;
    }
  }
  (void)w;
}

void Server::flush_completions(Worker& w, Connection& c) {
  while (!c.pending.empty()) {
    PendingResponse& p = c.pending.front();
    if (p.status_probe) {
      std::vector<uint8_t> resp;
      wire::encode_status_response(status_report(), resp);
      c.wbuf.insert(c.wbuf.end(), resp.begin(), resp.end());
      c.pending.pop_front();
      continue;
    }
    if (!p.ticketed) {
      c.wbuf.insert(c.wbuf.end(), p.ready.begin(), p.ready.end());
      c.pending.pop_front();
      continue;
    }
    // The ring is FIFO and the applier acknowledges in drain order, so the
    // last ticket reaching a final state implies every earlier one has —
    // wait() below is a bounded formality, not a stall.
    const std::size_t count = p.ops.size();
    if (count > 0 && p.tickets[count - 1].state.load(
                         std::memory_order_acquire) == ingest::Ticket::kPending)
      break;
    std::vector<uint64_t> values;
    values.reserve(count);
    bool all_done = true;
    bool any_failed = false;
    for (std::size_t i = 0; i < count; ++i) {
      const uint32_t s = p.tickets[i].wait();
      if (s == ingest::Ticket::kDone) {
        values.push_back(p.tickets[i].value.load(std::memory_order_relaxed));
      } else {
        all_done = false;
        any_failed |= s == ingest::Ticket::kFailed;
      }
    }
    std::vector<uint8_t> resp;
    if (all_done) {
      wire::encode_results_frame(wire::Status::kOk, values, resp);
    } else {
      // Dropped tickets mean the service is stopping (or journal fail-stop
      // refused the batch); either way nothing past the failure applied.
      wire::encode_results_frame(
          any_failed ? wire::Status::kFailed : wire::Status::kShuttingDown, {},
          resp);
    }
    c.wbuf.insert(c.wbuf.end(), resp.begin(), resp.end());
    c.pending.pop_front();
  }
  try_flush_writes(w, c);
  update_accounting(c);
}

bool Server::try_flush_writes(Worker& w, Connection& c) {
  while (c.wpos < c.wbuf.size()) {
    const ssize_t n =
        ::write(c.fd, c.wbuf.data() + c.wpos, c.wbuf.size() - c.wpos);
    if (n > 0) {
      c.wpos += static_cast<std::size_t>(n);
      bytes_out_.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) {
        c.want_write = true;
        update_interest(w, c);
      }
      return false;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(w, c);
    return false;
  }
  if (c.wpos == c.wbuf.size()) {
    c.wbuf.clear();
    c.wpos = 0;
    if (c.want_write) {
      c.want_write = false;
      update_interest(w, c);
    }
  }
  return true;
}

void Server::update_interest(Worker& w, Connection& c) {
  epoll_event ev{};
  ev.events = EPOLLIN | (c.want_write ? EPOLLOUT : 0u);
  ev.data.fd = c.fd;
  ::epoll_ctl(w.epfd, EPOLL_CTL_MOD, c.fd, &ev);
}

void Server::update_accounting(Connection& c) {
  const std::size_t total = c.rbuf.size() + (c.wbuf.size() - c.wpos);
  if (total >= c.accounted) {
    buffered_bytes_.fetch_add(total - c.accounted, std::memory_order_relaxed);
  } else {
    buffered_bytes_.fetch_sub(c.accounted - total, std::memory_order_relaxed);
  }
  c.accounted = total;
}

void Server::close_conn(Worker& w, Connection& c) {
  if (c.fd < 0) return;
  // Frames still pending carry tickets the applier may touch; wait them out
  // (they are final or imminently final — see flush_completions) before the
  // ticket storage goes away with the connection.
  for (PendingResponse& p : c.pending) {
    if (!p.ticketed) continue;
    for (std::size_t i = 0; i < p.ops.size(); ++i) p.tickets[i].wait();
  }
  c.pending.clear();
  buffered_bytes_.fetch_sub(c.accounted, std::memory_order_relaxed);
  c.accounted = 0;
  ::epoll_ctl(w.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  c.fd = -1;
  closed_.fetch_add(1, std::memory_order_relaxed);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.closed = closed_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.ops = ops_.load(std::memory_order_relaxed);
  s.inline_reads = inline_reads_.load(std::memory_order_relaxed);
  s.shed_frames = shed_frames_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.status_frames = status_frames_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

wire::StatusReport Server::status_report() const {
  const ingest::IngestStats st = svc_.stats();
  wire::StatusReport r;
  r.num_vertices = dc_.num_vertices();
  r.queue_depth = st.queue_depth;
  r.submitted = st.submitted;
  r.acked = st.acked;
  r.dropped = st.dropped;
  r.shed_reads = st.shed_reads;
  r.failed = st.failed;
  r.journal_errors = st.journal_errors;
  r.batches = st.batches;
  return r;
}

}  // namespace condyn::server
