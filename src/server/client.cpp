#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace condyn::server {

namespace {
[[noreturn]] void fail_errno(const char* what) {
  throw std::runtime_error(std::string("client: ") + what + ": " +
                           std::strerror(errno));
}
}  // namespace

BlockingClient::~BlockingClient() { close(); }

void BlockingClient::connect(const std::string& host, uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("client: bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    close();
    errno = saved;
    fail_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  rbuf_.clear();
  rpos_ = 0;
}

void BlockingClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void BlockingClient::send_raw(std::span<const uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("write");
    }
    off += static_cast<std::size_t>(n);
  }
}

void BlockingClient::send_ops(std::span<const Op> ops) {
  scratch_.clear();
  wire::encode_ops_frame(ops, scratch_);
  send_raw(scratch_);
}

void BlockingClient::recv_frame(wire::FrameType& type,
                                std::vector<uint8_t>& payload) {
  for (;;) {
    const std::span<const uint8_t> rest(rbuf_.data() + rpos_,
                                        rbuf_.size() - rpos_);
    if (const auto f = wire::try_frame(rest)) {
      type = f->type;
      payload.assign(f->payload.begin(), f->payload.end());
      rpos_ += f->frame_bytes;
      if (rpos_ == rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
      }
      return;
    }
    uint8_t tmp[16 * 1024];
    const ssize_t n = ::read(fd_, tmp, sizeof tmp);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("read");
    }
    if (n == 0) throw std::runtime_error("client: connection closed by peer");
    rbuf_.insert(rbuf_.end(), tmp, tmp + n);
  }
}

wire::Results BlockingClient::recv_results() {
  wire::FrameType type;
  std::vector<uint8_t> payload;
  recv_frame(type, payload);
  if (type != wire::FrameType::kResults)
    throw std::runtime_error("client: expected a results frame");
  return wire::decode_results(payload);
}

wire::Results BlockingClient::call(std::span<const Op> ops) {
  send_ops(ops);
  return recv_results();
}

void BlockingClient::send_status_request() {
  scratch_.clear();
  wire::encode_status_request(scratch_);
  send_raw(scratch_);
}

wire::StatusReport BlockingClient::recv_status() {
  wire::FrameType type;
  std::vector<uint8_t> payload;
  recv_frame(type, payload);
  if (type != wire::FrameType::kStatusResponse)
    throw std::runtime_error("client: expected a status response");
  return wire::decode_status_response(payload);
}

wire::StatusReport BlockingClient::status() {
  send_status_request();
  return recv_status();
}

}  // namespace condyn::server
