#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/wire.hpp"
#include "ingest/ingest.hpp"

namespace condyn::server {

/// Connectivity-as-a-service front-end (DESIGN.md §12): a non-blocking
/// epoll event loop — one acceptor plus DC_SERVER_THREADS worker threads,
/// each owning a private epoll set of connections — speaking the wire::
/// framing of the Op/BatchResult vocabulary. Per-connection request frames
/// are funneled as whole batches into the IngestService group commit
/// (updates and mixed frames, preserving per-connection program order
/// through the FIFO ring) or executed inline on the worker via the
/// lock-free read paths (pure-read frames with nothing in flight).
///
/// Admission control sheds rather than queues without bound: a frame is
/// answered kOverloaded — nothing applied — when the connection already has
/// max_inflight_frames awaiting group commit, when the server-wide buffered
/// byte budget is exhausted, or when the ingest ring lacks headroom for the
/// whole frame. Responses are written strictly in request order, so a shed
/// decision is queued behind earlier in-flight frames' responses.
struct ServerOptions {
  std::string bind_address = "0.0.0.0";  ///< DC_SERVER_BIND
  uint16_t port = 7421;                  ///< DC_SERVER_PORT; 0 = ephemeral
  unsigned threads = 2;                  ///< DC_SERVER_THREADS (workers)
  /// Frames per connection decoded but not yet answered (beyond the one
  /// being considered) before new ops frames are shed (DC_SERVER_INFLIGHT).
  uint32_t max_inflight_frames = 8;
  /// Server-wide bound on buffered bytes (receive + send buffers across
  /// every connection); ops frames are shed above it (DC_SERVER_BYTES).
  std::size_t byte_budget = 64u << 20;
  /// Grace period for the stop() drain: connections whose clients never
  /// read their final responses are force-closed after this many ms
  /// (DC_SERVER_DRAIN_MS).
  unsigned drain_timeout_ms = 5000;
};

/// Options resolved from DC_SERVER_BIND/PORT/THREADS/INFLIGHT/BYTES/
/// DRAIN_MS, everything else default.
ServerOptions env_server_options();

/// Monotone service counters (approximate while running).
struct ServerStats {
  uint64_t accepted = 0;      ///< connections accepted
  uint64_t closed = 0;        ///< connections closed (either side)
  uint64_t frames = 0;        ///< request frames fully processed
  uint64_t ops = 0;           ///< ops decoded from accepted frames
  uint64_t inline_reads = 0;  ///< pure-read frames served on the worker
  uint64_t shed_frames = 0;   ///< frames answered kOverloaded
  uint64_t bad_frames = 0;    ///< frames answered kBadFrame (conn closed)
  uint64_t status_frames = 0; ///< status probes answered
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

class Server {
 public:
  /// `dc` serves the read paths, `svc` the update/mixed frames; both must
  /// outlive the server, and svc must be attached to dc. stop() the server
  /// BEFORE svc.stop(): the drain waits on tickets the applier completes.
  Server(DynamicConnectivity& dc, ingest::IngestService& svc,
         ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn acceptor + workers. Throws std::runtime_error on
  /// socket/bind failure (e.g. port in use).
  void start();

  /// Graceful drain (the SIGTERM path, DESIGN.md §12.4): stop accepting,
  /// answer frames already received (new ops frames get kShuttingDown),
  /// flush every pending group commit's response, then close all
  /// connections and join the threads. Idempotent; the destructor calls it.
  void stop();

  /// The bound port (after start(); resolves port 0 to the ephemeral pick).
  uint16_t port() const noexcept { return port_; }

  ServerStats stats() const;

  /// The status frame the server answers probes with — exposed for tests
  /// and for the binary's shutdown log line.
  wire::StatusReport status_report() const;

 private:
  struct Connection;
  struct Worker;

  void acceptor_main();
  void worker_main(Worker& w);
  void adopt_incoming(Worker& w);
  void on_readable(Worker& w, Connection& c);
  void on_writable(Worker& w, Connection& c);
  void parse_frames(Worker& w, Connection& c);
  void handle_frame(Worker& w, Connection& c, const wire::FrameView& f);
  void enqueue_ready(Connection& c, const std::vector<uint8_t>& frame);
  void shed(Connection& c, wire::Status status);
  void flush_completions(Worker& w, Connection& c);
  bool try_flush_writes(Worker& w, Connection& c);
  void update_accounting(Connection& c);
  void close_conn(Worker& w, Connection& c);
  void update_interest(Worker& w, Connection& c);

  DynamicConnectivity& dc_;
  ingest::IngestService& svc_;
  ServerOptions opts_;

  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};  ///< wakes the acceptor's poll()
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> draining_{false};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::atomic<std::size_t> next_worker_{0};

  std::atomic<std::size_t> buffered_bytes_{0};  ///< byte-budget accounting

  std::atomic<uint64_t> accepted_{0}, closed_{0}, frames_{0}, ops_{0},
      inline_reads_{0}, shed_frames_{0}, bad_frames_{0}, status_frames_{0},
      bytes_in_{0}, bytes_out_{0};
};

}  // namespace condyn::server
