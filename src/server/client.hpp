#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/wire.hpp"

namespace condyn::server {

/// Minimal blocking-socket client for the wire:: protocol — what the
/// loopback tests and the load generator speak. One connection, strict
/// in-order request/response (the protocol has no request IDs), so a
/// pipelined caller must recv exactly one response per request, in send
/// order. Not thread-safe per instance, but the split send_*/recv_results
/// halves may be driven by one sender and one receiver thread: the fd is
/// never mutated between connect() and close(), and kernel socket send/recv
/// are independently serialized.
class BlockingClient {
 public:
  BlockingClient() = default;
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Connect to host:port (numeric IPv4). Throws std::runtime_error.
  void connect(const std::string& host, uint16_t port);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// Synchronous round-trip: one ops frame out, its response in.
  wire::Results call(std::span<const Op> ops);

  /// Synchronous status probe.
  wire::StatusReport status();

  // -- Pipelined halves -----------------------------------------------------

  /// Send an ops frame without waiting for the response.
  void send_ops(std::span<const Op> ops);
  /// Send pre-encoded frame bytes verbatim (tests inject malformed frames).
  void send_raw(std::span<const uint8_t> bytes);

  /// Send a status request without waiting for the response.
  void send_status_request();

  /// Block until the next response frame arrives; must be a results frame.
  /// Throws std::runtime_error on EOF, socket error, or a non-results frame.
  wire::Results recv_results();

  /// Block until the next response frame arrives; must be a status response.
  wire::StatusReport recv_status();

 private:
  /// Block until one whole frame is buffered; returns its decoded view's
  /// byte extent consumed from the buffer via out params.
  void recv_frame(wire::FrameType& type, std::vector<uint8_t>& payload);

  int fd_ = -1;
  std::vector<uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  std::vector<uint8_t> scratch_;  ///< encode buffer, reused across sends
};

}  // namespace condyn::server
