#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace condyn {

/// Disjoint-set union with path halving + union by size.
///
/// Role in this repo: (a) the *incremental-only* connectivity baseline the
/// related-work section contrasts against, (b) the oracle used by tests to
/// validate every dynamic-connectivity variant after rebuilds.
class Dsu {
 public:
  explicit Dsu(Vertex n) : parent_(n), size_(n, 1), min_(n), components_(n) {
    for (Vertex i = 0; i < n; ++i) parent_[i] = min_[i] = i;
  }

  Vertex find(Vertex x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the union merged two distinct components.
  bool unite(Vertex a, Vertex b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    if (min_[b] < min_[a]) min_[a] = min_[b];
    --components_;
    return true;
  }

  bool connected(Vertex a, Vertex b) noexcept { return find(a) == find(b); }

  Vertex num_components() const noexcept { return components_; }
  Vertex component_size(Vertex x) noexcept { return size_[find(x)]; }
  /// Canonical representative: the smallest vertex id in x's component —
  /// the same definition as DynamicConnectivity::representative, which is
  /// what makes this class the oracle for the value-returning Query API.
  Vertex representative(Vertex x) noexcept { return min_[find(x)]; }
  Vertex num_vertices() const noexcept { return static_cast<Vertex>(parent_.size()); }

 private:
  std::vector<Vertex> parent_;
  std::vector<Vertex> size_;
  std::vector<Vertex> min_;  ///< per-root: smallest member id
  Vertex components_;
};

}  // namespace condyn
