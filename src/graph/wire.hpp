#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"

namespace condyn::wire {

/// Length-prefixed binary framing of the Op/BatchResult vocabulary — the
/// connectivity service's wire protocol (DESIGN.md §12.1). A TCP stream is a
/// sequence of frames, each:
///
///   u32  length   little-endian; byte count of everything after this field
///                 (the type byte plus the payload); 1 <= length <=
///                 kMaxFrameBytes, anything else is a hopeless header
///   u8   type     FrameType below
///   ...  payload  length - 1 bytes, type-specific
///
/// Payloads reuse the DCTR v3 delta+varint encoding (io.hpp) with the same
/// strictness rules: truncated varints, varints longer than 10 bytes,
/// kind > 4, vertex deltas outside [0, num_vertices), and payload bytes
/// disagreeing with the declared count (short *or* trailing) all throw
/// std::runtime_error — a malformed frame is rejected, never silently
/// misread. The per-frame delta base (prev_u) resets to 0 at every frame so
/// frames decode independently of each other.
///
/// The protocol is strict request/response in order: the server answers
/// every request frame with exactly one response frame on the same
/// connection, in arrival order (no request ids on the wire).

/// Upper bound on length (type byte + payload): oversized headers are
/// rejected before any allocation, so a hostile length field cannot OOM the
/// server (the same posture as the trace readers' corrupt-count guard).
inline constexpr uint32_t kMaxFrameBytes = 1u << 24;
/// Bytes before the payload: the u32 length plus the u8 type.
inline constexpr std::size_t kHeaderBytes = 5;

enum class FrameType : uint8_t {
  kOps = 1,             ///< request: a batch of ops (one program)
  kResults = 2,         ///< response: status + per-op values
  kStatusRequest = 3,   ///< request: health/saturation probe (empty payload)
  kStatusResponse = 4,  ///< response: StatusReport counters
};

/// Per-frame response status (the u8 leading a kResults payload).
enum class Status : uint8_t {
  kOk = 0,            ///< values[i] is op i's raw result
  kOverloaded = 1,    ///< admission control shed the frame; nothing applied
  kBadFrame = 2,      ///< request failed strict decode; connection closes
  kShuttingDown = 3,  ///< server is draining; nothing applied
  kFailed = 4,        ///< ingest refused the frame (journal fail-stop, stop)
};

const char* status_name(Status s) noexcept;

/// A complete frame located at the start of a receive buffer. `payload`
/// aliases the input span — consume `frame_bytes` from the buffer after use.
struct FrameView {
  FrameType type = FrameType::kOps;
  std::span<const uint8_t> payload;
  std::size_t frame_bytes = 0;  ///< header + payload, the bytes to consume
};

/// Frame extraction for a streaming receive buffer: nullopt when `buf` does
/// not yet hold a complete frame (read more bytes); a FrameView when it
/// does. Throws std::runtime_error on a header that can never become valid
/// (length 0, length > kMaxFrameBytes, unknown frame type) — the caller
/// should answer kBadFrame and close, since framing is lost for good.
std::optional<FrameView> try_frame(std::span<const uint8_t> buf);

// --- kOps ------------------------------------------------------------------

/// Append a request frame carrying `ops` to `out`. Encoding never inspects
/// vertex ranges (the server's universe is checked at decode time).
void encode_ops_frame(std::span<const Op> ops, std::vector<uint8_t>& out);

/// Strict decode of a kOps payload against an n-vertex universe (the
/// server's num_vertices). Mirrors the DCTR v3 rules exactly; see the file
/// comment for what throws.
std::vector<Op> decode_ops(std::span<const uint8_t> payload,
                           Vertex num_vertices);

// --- kResults --------------------------------------------------------------

struct Results {
  Status status = Status::kOk;
  std::vector<uint64_t> values;  ///< empty unless status == kOk

  friend bool operator==(const Results&, const Results&) = default;
};

/// Append a response frame: status byte, varint count, varint values.
/// Non-kOk statuses must carry zero values (enforced on decode).
void encode_results_frame(Status s, std::span<const uint64_t> values,
                          std::vector<uint8_t>& out);

Results decode_results(std::span<const uint8_t> payload);

// --- kStatusRequest / kStatusResponse --------------------------------------

/// Saturation/health counters the server answers a status probe with —
/// IngestService::stats() plus the serving universe (DESIGN.md §12.3): the
/// queue depth and drop/failure counters are what a load generator logs to
/// distinguish "server keeping up" from "ring saturated, shedding".
struct StatusReport {
  uint64_t num_vertices = 0;
  uint64_t queue_depth = 0;  ///< ops submitted but not yet acknowledged
  uint64_t submitted = 0;
  uint64_t acked = 0;        ///< applied + journaled (or failed terminally)
  uint64_t dropped = 0;
  uint64_t shed_reads = 0;
  uint64_t failed = 0;         ///< journal fail-stop refusals
  uint64_t journal_errors = 0;
  uint64_t batches = 0;        ///< group commits

  friend bool operator==(const StatusReport&, const StatusReport&) = default;
};

void encode_status_request(std::vector<uint8_t>& out);
void encode_status_response(const StatusReport& r, std::vector<uint8_t>& out);

/// Strict: exactly the nine varints above, no trailing bytes.
StatusReport decode_status_response(std::span<const uint8_t> payload);

/// A kStatusRequest payload must be empty; throws otherwise.
void check_status_request(std::span<const uint8_t> payload);

// --- fuzz entry ------------------------------------------------------------

/// Decode `buf` as a sequence of complete frames, running every payload
/// decoder (ops against an n-vertex universe) and the encode round-trip
/// checks. Returns the number of frames fully decoded; throws like the
/// individual decoders. The decode_fuzz harness drives this alongside the
/// trace/snapshot/journal decoders (DESIGN.md §12.1).
std::size_t decode_any(std::span<const uint8_t> buf, Vertex num_vertices);

}  // namespace condyn::wire
