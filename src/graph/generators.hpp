#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace condyn::gen {

/// Graph generators reproducing the paper's evaluation inputs (Tables 1–2).
/// Real-world datasets (USA roads, Twitter, Stanford web, LiveJournal, Kron)
/// are not redistributable offline, so each has a synthetic stand-in with
/// matching |V|/|E| ratio and degree structure; DESIGN.md §2 records the
/// substitutions and why they preserve the evaluation's shape.

/// Erdős–Rényi G(n, m): exactly m distinct uniform random edges (no loops).
/// Matches the paper's "Random" family.
Graph erdos_renyi(Vertex n, std::size_t m, uint64_t seed);

/// Erdős–Rényi split into k equally sized blocks with no cross-block edges —
/// the paper's "Random, 10 components" graph.
Graph random_components(Vertex n, std::size_t m, unsigned k, uint64_t seed);

/// RMAT / stochastic-Kronecker generator (Chakrabarti et al.); a,b,c are the
/// quadrant probabilities (d = 1-a-b-c). Produces the heavy-tailed degree
/// distributions of social/web graphs: stand-in for Twitter, Stanford web,
/// LiveJournal and the DIMACS Kron graph.
Graph rmat(Vertex n_pow2, std::size_t m, double a, double b, double c,
           uint64_t seed);

/// Road-network stand-in: a sqrt(n) x sqrt(n) grid (planar, degree <= 4) with
/// a fraction of edges randomly removed and a few random shortcuts added,
/// keeping |E| ~= 1.2 |V| like the Colorado/full USA road graphs.
Graph road_like(Vertex n, uint64_t seed);

/// Named presets matching the paper's tables. The scale factor multiplies
/// |V| and |E| (default benchmarks run scaled-down stand-ins; pass 1.0 for
/// paper-sized graphs on a big machine).
struct Preset {
  const char* name;
  Graph (*make)(double scale, uint64_t seed);
};

/// Table 1 (small graphs): usa-roads, twitter, stanford-web, random-|E|=|V|,
/// random-|E|=2|V|, random-|E|=|V|log|V|, random-|E|=|V|sqrt|V|,
/// random-10-components.
const std::vector<Preset>& small_graph_presets();

/// Table 2 (large graphs): full-usa-roads, livejournal, kron, random-large.
const std::vector<Preset>& large_graph_presets();

Graph make_preset(const char* name, double scale, uint64_t seed);

}  // namespace condyn::gen
