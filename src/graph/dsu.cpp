#include "graph/dsu.hpp"

// Header-only; this TU anchors the target in the build.
