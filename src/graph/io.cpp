#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace condyn::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph io: " + what);
}

std::ifstream open(const std::string& path) {
  std::ifstream f(path);
  if (!f) fail("cannot open " + path);
  return f;
}

}  // namespace

Graph load_snap(std::istream& in) {
  std::vector<Edge> edges;
  Vertex max_v = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a, b;
    if (!(ls >> a >> b)) continue;
    if (a == b) continue;
    max_v = std::max<Vertex>(max_v, static_cast<Vertex>(std::max(a, b)));
    edges.emplace_back(static_cast<Vertex>(a), static_cast<Vertex>(b));
  }
  return Graph(max_v + 1, std::move(edges));
}

Graph load_snap_file(const std::string& path) {
  auto f = open(path);
  Graph g = load_snap(f);
  g.name = path;
  return g;
}

Graph load_dimacs(std::istream& in) {
  std::vector<Edge> edges;
  Vertex n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag;
    ls >> tag;
    if (tag == 'c') continue;
    if (tag == 'p') {
      std::string kind;
      uint64_t nn, mm;
      if (!(ls >> kind >> nn >> mm)) fail("bad DIMACS problem line");
      n = static_cast<Vertex>(nn);
      edges.reserve(mm);
    } else if (tag == 'a' || tag == 'e') {
      uint64_t a, b;
      if (!(ls >> a >> b)) fail("bad DIMACS arc line");
      if (a == 0 || b == 0) fail("DIMACS vertices are 1-based");
      if (a == b) continue;
      edges.emplace_back(static_cast<Vertex>(a - 1), static_cast<Vertex>(b - 1));
    }
  }
  if (n == 0) fail("missing DIMACS problem line");
  return Graph(n, std::move(edges));
}

Graph load_dimacs_file(const std::string& path) {
  auto f = open(path);
  Graph g = load_dimacs(f);
  g.name = path;
  return g;
}

void save_snap(const Graph& g, std::ostream& out) {
  out << "# condyn graph: " << g.name << "\n# nodes: " << g.num_vertices()
      << " edges: " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) out << e.u << '\t' << e.v << '\n';
}

void save_snap_file(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) fail("cannot write " + path);
  save_snap(g, f);
}

Graph load_auto(const std::string& path) {
  if (path.size() >= 3 && path.substr(path.size() - 3) == ".gr")
    return load_dimacs_file(path);
  return load_snap_file(path);
}

namespace {

void write_u32(std::ostream& out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void write_u64(std::ostream& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

uint32_t read_u32(std::istream& in) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) fail("truncated trace");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

uint64_t read_u64(std::istream& in) {
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) fail("truncated trace");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

void save_trace(const Trace& t, std::ostream& out) {
  out.write(kTraceMagic, 4);
  write_u32(out, kTraceVersion);
  write_u32(out, t.num_vertices);
  write_u64(out, t.ops.size());
  for (const Op& op : t.ops) {
    const char kind = static_cast<char>(op.kind);
    out.write(&kind, 1);
    write_u32(out, op.u);
    write_u32(out, op.v);
  }
  if (!out) fail("trace write failed");
}

void save_trace_file(const Trace& t, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot write " + path);
  save_trace(t, f);
}

Trace load_trace(std::istream& in) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kTraceMagic, 4) != 0)
    fail("not a DCTR trace (bad magic)");
  const uint32_t version = read_u32(in);
  if (version != kTraceVersion)
    fail("unsupported trace version " + std::to_string(version));
  Trace t;
  t.num_vertices = read_u32(in);
  const uint64_t count = read_u64(in);
  // Reserve from the header count, but validate it against the bytes the
  // stream actually holds first (9 bytes per op): a corrupt count field
  // must produce the "truncated trace" error below, not a huge reserve
  // (std::length_error / OOM). Unseekable streams fall back to a clamp.
  uint64_t max_ops = 1 << 20;
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos)
      max_ops = static_cast<uint64_t>(end - pos) / 9;
  }
  t.ops.reserve(std::min(count, max_ops));
  for (uint64_t i = 0; i < count; ++i) {
    char kind;
    if (!in.read(&kind, 1)) fail("truncated trace");
    if (kind < 0 || kind > 2)
      fail("corrupt trace: bad op kind " + std::to_string(kind));
    Op op;
    op.kind = static_cast<OpKind>(kind);
    op.u = read_u32(in);
    op.v = read_u32(in);
    t.ops.push_back(op);
  }
  return t;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  return load_trace(f);
}

}  // namespace condyn::io
