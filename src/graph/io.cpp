#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "util/random.hpp"

namespace condyn::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph io: " + what);
}

std::ifstream open(const std::string& path) {
  std::ifstream f(path);
  if (!f) fail("cannot open " + path);
  return f;
}

}  // namespace

Graph load_snap(std::istream& in) {
  std::vector<Edge> edges;
  Vertex max_v = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a, b;
    if (!(ls >> a >> b)) continue;
    if (a == b) continue;
    max_v = std::max<Vertex>(max_v, static_cast<Vertex>(std::max(a, b)));
    edges.emplace_back(static_cast<Vertex>(a), static_cast<Vertex>(b));
  }
  return Graph(max_v + 1, std::move(edges));
}

Graph load_snap_file(const std::string& path) {
  auto f = open(path);
  Graph g = load_snap(f);
  g.name = path;
  return g;
}

Graph load_dimacs(std::istream& in) {
  std::vector<Edge> edges;
  Vertex n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag;
    ls >> tag;
    if (tag == 'c') continue;
    if (tag == 'p') {
      std::string kind;
      uint64_t nn, mm;
      if (!(ls >> kind >> nn >> mm)) fail("bad DIMACS problem line");
      n = static_cast<Vertex>(nn);
      edges.reserve(mm);
    } else if (tag == 'a' || tag == 'e') {
      uint64_t a, b;
      if (!(ls >> a >> b)) fail("bad DIMACS arc line");
      if (a == 0 || b == 0) fail("DIMACS vertices are 1-based");
      if (a == b) continue;
      edges.emplace_back(static_cast<Vertex>(a - 1), static_cast<Vertex>(b - 1));
    }
  }
  if (n == 0) fail("missing DIMACS problem line");
  return Graph(n, std::move(edges));
}

Graph load_dimacs_file(const std::string& path) {
  auto f = open(path);
  Graph g = load_dimacs(f);
  g.name = path;
  return g;
}

void save_snap(const Graph& g, std::ostream& out) {
  out << "# condyn graph: " << g.name << "\n# nodes: " << g.num_vertices()
      << " edges: " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) out << e.u << '\t' << e.v << '\n';
}

void save_snap_file(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) fail("cannot write " + path);
  save_snap(g, f);
}

Graph load_auto(const std::string& path) {
  if (path.size() >= 3 && path.substr(path.size() - 3) == ".gr")
    return load_dimacs_file(path);
  return load_snap_file(path);
}

namespace {

void write_u32(std::ostream& out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 4);
}

void write_u64(std::ostream& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b, 8);
}

uint32_t read_u32(std::istream& in) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) fail("truncated trace");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

uint64_t read_u64(std::istream& in) {
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) fail("truncated trace");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

// --- varint / zigzag primitives of the v2 payload ---------------------------

uint64_t zigzag_encode(int64_t v) noexcept {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);  // arithmetic shift: all-ones if <0
}

int64_t zigzag_decode(uint64_t z) noexcept {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

void write_varint(std::ostream& out, uint64_t v) {
  char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  out.write(buf, n);
}

/// Strict LEB128 read: EOF mid-varint and >10-byte runs both throw (a u64
/// needs at most 10 groups of 7 bits; an 11th continuation byte means the
/// payload is garbage, not a longer number).
uint64_t read_varint(std::istream& in) {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    char c;
    if (!in.read(&c, 1)) fail("truncated trace (varint cut mid-op)");
    const auto byte = static_cast<unsigned char>(c);
    if (shift == 63 && (byte & 0x7e) != 0)
      fail("corrupt trace: varint overflows 64 bits");
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  fail("corrupt trace: varint longer than 10 bytes");
}

/// Re-derive a vertex from the previous value plus a zigzag delta, checking
/// that the result is a valid vertex of the declared universe. The sum is
/// taken in uint64 — wraparound is defined there, and every out-of-range
/// true sum (negative, or past INT64_MAX from a crafted 10-byte varint)
/// wraps to a value >= 2^32 > num_vertices, so one range check rejects them
/// all without signed-overflow UB.
Vertex apply_delta(Vertex base, int64_t delta, Vertex num_vertices,
                   const char* which) {
  const uint64_t v = base + static_cast<uint64_t>(delta);
  if (v >= num_vertices)
    fail(std::string("corrupt trace: ") + which +
         " delta lands outside [0, " + std::to_string(num_vertices) + ")");
  return static_cast<Vertex>(v);
}

/// v1/v2 carry a <= 2 kind field; a trace holding the Query-API-v2 value
/// kinds must be written as v3 instead of silently corrupting the payload.
void reject_value_kinds(const Trace& t, const char* version) {
  for (const Op& op : t.ops) {
    if (static_cast<uint8_t>(op.kind) > 2)
      fail(std::string("trace contains value-query ops (kind ") +
           std::to_string(static_cast<int>(op.kind)) + "), which the " +
           version + " format cannot represent; write v3 "
           "(io::preferred_format)");
  }
}

void save_trace_v1(const Trace& t, std::ostream& out) {
  reject_value_kinds(t, "v1");
  out.write(kTraceMagic, 4);
  write_u32(out, kTraceVersionV1);
  write_u32(out, t.num_vertices);
  write_u64(out, t.ops.size());
  for (const Op& op : t.ops) {
    const char kind = static_cast<char>(op.kind);
    out.write(&kind, 1);
    write_u32(out, op.u);
    write_u32(out, op.v);
  }
}

/// Shared v2/v3 payload writer: the formats differ only in the width of the
/// kind field folded into varint A (2 vs 3 bits).
void save_trace_varint(const Trace& t, std::ostream& out, uint32_t version,
                       int kind_bits) {
  out.write(kTraceMagic, 4);
  write_u32(out, version);
  write_u32(out, kTraceFlagDeltaVarint);
  write_u32(out, t.num_vertices);
  write_u64(out, t.ops.size());
  Vertex prev_u = 0;
  for (const Op& op : t.ops) {
    if (op.u >= t.num_vertices || op.v >= t.num_vertices)
      fail("trace op addresses vertex >= num_vertices (" +
           std::to_string(op.u) + "," + std::to_string(op.v) + " vs " +
           std::to_string(t.num_vertices) + "); refusing to write an "
           "unloadable v" + std::to_string(version) + " trace");
    const uint64_t du = zigzag_encode(static_cast<int64_t>(op.u) -
                                      static_cast<int64_t>(prev_u));
    write_varint(out, (du << kind_bits) | static_cast<uint64_t>(op.kind));
    write_varint(out, zigzag_encode(static_cast<int64_t>(op.v) -
                                    static_cast<int64_t>(op.u)));
    prev_u = op.u;
  }
}

void save_trace_v2(const Trace& t, std::ostream& out) {
  reject_value_kinds(t, "v2");
  save_trace_varint(t, out, kTraceVersionV2, 2);
}

void save_trace_v3(const Trace& t, std::ostream& out) {
  save_trace_varint(t, out, kTraceVersionV3, 3);
}

Trace load_trace_v1(std::istream& in) {
  Trace t;
  t.num_vertices = read_u32(in);
  const uint64_t count = read_u64(in);
  // Reserve from the header count, but validate it against the bytes the
  // stream actually holds first (9 bytes per op): a corrupt count field
  // must produce the "truncated trace" error below, not a huge reserve
  // (std::length_error / OOM). Unseekable streams fall back to a clamp.
  uint64_t max_ops = 1 << 20;
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos)
      max_ops = static_cast<uint64_t>(end - pos) / 9;
  }
  t.ops.reserve(std::min(count, max_ops));
  for (uint64_t i = 0; i < count; ++i) {
    char kind;
    if (!in.read(&kind, 1)) fail("truncated trace");
    if (kind < 0 || kind > 2)
      fail("corrupt trace: bad op kind " + std::to_string(kind));
    Op op;
    op.kind = static_cast<OpKind>(kind);
    op.u = read_u32(in);
    op.v = read_u32(in);
    if (op.u >= t.num_vertices || op.v >= t.num_vertices)
      fail("corrupt trace: op addresses vertex >= num_vertices (" +
           std::to_string(op.u) + "," + std::to_string(op.v) + " vs " +
           std::to_string(t.num_vertices) + ")");
    t.ops.push_back(op);
  }
  return t;
}

/// Shared v2/v3 payload reader: v2 packs the kind into 2 bits (max kind 2),
/// v3 into 3 bits (max kind 4).
Trace load_trace_varint(std::istream& in, uint32_t version, int kind_bits,
                        unsigned max_kind) {
  const uint32_t flags = read_u32(in);
  const std::string vname = "v" + std::to_string(version);
  if ((flags & kTraceFlagDeltaVarint) == 0)
    fail(vname + " trace missing the delta-varint payload flag");
  if ((flags & ~kTraceFlagDeltaVarint) != 0)
    fail(vname + " trace declares unknown flags 0x" + [&] {
      std::ostringstream os;
      os << std::hex << (flags & ~kTraceFlagDeltaVarint);
      return os.str();
    }());
  Trace t;
  t.num_vertices = read_u32(in);
  const uint64_t count = read_u64(in);
  // Same corrupt-count guard as v1, with the varint floor of 2 bytes/op.
  uint64_t max_ops = 1 << 20;
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto end = in.tellg();
    in.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos)
      max_ops = static_cast<uint64_t>(end - pos) / 2;
  }
  t.ops.reserve(std::min(count, max_ops));
  const uint64_t kind_mask = (uint64_t{1} << kind_bits) - 1;
  Vertex prev_u = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t tag = read_varint(in);
    const auto kind = static_cast<unsigned>(tag & kind_mask);
    if (kind > max_kind)
      fail("corrupt trace: bad op kind " + std::to_string(kind));
    Op op;
    op.kind = static_cast<OpKind>(kind);
    op.u = apply_delta(prev_u, zigzag_decode(tag >> kind_bits),
                       t.num_vertices, "u");
    op.v = apply_delta(op.u, zigzag_decode(read_varint(in)), t.num_vertices,
                       "v");
    prev_u = op.u;
    t.ops.push_back(op);
  }
  // The declared count must consume the whole payload: trailing bytes mean
  // the header op count and the payload disagree (an op-count mismatch is
  // as corrupt as a truncation, just on the other side).
  if (in.peek() != std::istream::traits_type::eof())
    fail("corrupt trace: payload continues past the declared op count");
  return t;
}

}  // namespace

bool needs_v3(const Trace& t) noexcept {
  for (const Op& op : t.ops) {
    if (static_cast<uint8_t>(op.kind) > 2) return true;
  }
  return false;
}

TraceFormat preferred_format(const Trace& t) noexcept {
  return needs_v3(t) ? TraceFormat::kV3 : TraceFormat::kV2;
}

void save_trace(const Trace& t, std::ostream& out, TraceFormat format) {
  switch (format) {
    case TraceFormat::kV1:
      save_trace_v1(t, out);
      break;
    case TraceFormat::kV2:
      save_trace_v2(t, out);
      break;
    case TraceFormat::kV3:
      save_trace_v3(t, out);
      break;
  }
  if (!out) fail("trace write failed");
}

void save_trace_file(const Trace& t, const std::string& path,
                     TraceFormat format) {
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot write " + path);
  save_trace(t, f, format);
}

Trace load_trace(std::istream& in) {
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kTraceMagic, 4) != 0)
    fail("not a DCTR trace (bad magic)");
  const uint32_t version = read_u32(in);
  if (version == kTraceVersionV1) return load_trace_v1(in);
  if (version == kTraceVersionV2)
    return load_trace_varint(in, version, 2, 2);
  if (version == kTraceVersionV3)
    return load_trace_varint(in, version, 3, 4);
  fail("unsupported trace version " + std::to_string(version));
}

Trace load_trace_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  return load_trace(f);
}

TraceFileInfo trace_info_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  if (!f) fail("cannot open " + path);
  TraceFileInfo info;
  info.file_bytes = static_cast<uint64_t>(f.tellg());
  f.seekg(0);
  char magic[4];
  if (!f.read(magic, 4) || std::memcmp(magic, kTraceMagic, 4) != 0)
    fail("not a DCTR trace (bad magic)");
  info.version = read_u32(f);
  // The header layout differs per version; re-decode from the top through
  // the strict loader so --info doubles as a validity check.
  if (info.version == kTraceVersionV2 || info.version == kTraceVersionV3) {
    info.flags = read_u32(f);
    info.header_bytes = 4 + 4 + 4 + 4 + 8;
  } else if (info.version == kTraceVersionV1) {
    info.header_bytes = 4 + 4 + 4 + 8;
  } else {
    fail("unsupported trace version " + std::to_string(info.version));
  }
  // Rewind and decode through the strict loader on the already-open stream
  // (one open, one payload decode; --info doubles as a validity check).
  f.seekg(0);
  const Trace t = load_trace(f);
  info.num_vertices = t.num_vertices;
  info.ops = t.ops.size();
  for (const Op& op : t.ops) {
    switch (op.kind) {
      case OpKind::kAdd: ++info.adds; break;
      case OpKind::kRemove: ++info.removes; break;
      case OpKind::kConnected: ++info.queries; break;
      case OpKind::kComponentSize: ++info.size_queries; break;
      case OpKind::kRepresentative: ++info.rep_queries; break;
    }
  }
  info.payload_bytes = info.file_bytes - info.header_bytes;
  info.bytes_per_op =
      info.ops > 0
          ? static_cast<double>(info.payload_bytes) / static_cast<double>(info.ops)
          : 0.0;
  return info;
}

std::vector<TemporalEdge> load_temporal_snap(std::istream& in) {
  std::vector<TemporalEdge> events;
  std::string line;
  uint64_t index = 0;
  uint64_t timed = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a, b, ts;
    if (!(ls >> a >> b)) continue;
    if (a == b) continue;  // self-loops carry no connectivity information
    // Vertex is u32 and the universe is max_id + 1: an id that doesn't fit
    // would silently wrap to a wrong-but-valid trace. Reject it loudly.
    if (a >= 0xffffffffull || b >= 0xffffffffull)
      fail("temporal edge list id " + std::to_string(std::max(a, b)) +
           " does not fit a 32-bit vertex");
    if (ls >> ts) {
      ++timed;
    } else {
      ts = index;  // untimed lines keep file order
    }
    events.push_back({static_cast<Vertex>(a), static_cast<Vertex>(b), ts});
    ++index;
  }
  // All-timed and all-untimed files are both fine; a mix is not. An untimed
  // line's index-as-timestamp would stable_sort ahead of real (epoch-sized)
  // timestamps, silently replaying that event far out of order — a
  // truncated line in a timed file must be loud, like every other
  // malformation the trace pipeline rejects.
  if (timed != 0 && timed != events.size())
    fail("temporal edge list mixes timed and untimed lines (" +
         std::to_string(events.size() - timed) + " of " +
         std::to_string(events.size()) + " events lack a timestamp)");
  return events;
}

std::vector<TemporalEdge> load_temporal_snap_file(const std::string& path) {
  auto f = open(path);
  return load_temporal_snap(f);
}

Trace temporal_to_trace(std::vector<TemporalEdge> events,
                        const ConvertOptions& opts) {
  // Stable by timestamp: SNAP files are usually time-sorted already, but the
  // contract is "replay in temporal order" regardless of file order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TemporalEdge& a, const TemporalEdge& b) {
                     return a.t < b.t;
                   });
  Trace out;
  for (const TemporalEdge& e : events)
    out.num_vertices = std::max(out.num_vertices, std::max(e.u, e.v) + 1);

  std::set<Edge> live;
  std::deque<Edge> fifo;  // insertion order of the live set (window expiry)
  Xoshiro256 rng(opts.seed);
  uint64_t updates = 0;

  auto maybe_probe = [&] {
    if (opts.query_every == 0 || updates == 0 ||
        updates % opts.query_every != 0 || fifo.empty())
      return;
    // Connectivity probe between two random live edges' endpoints — the
    // cross-component question a monitoring client would ask.
    const Edge& a = fifo[rng.next_below(fifo.size())];
    const Edge& b = fifo[rng.next_below(fifo.size())];
    out.ops.push_back(Op::connected(a.u, b.v));
  };

  for (const TemporalEdge& ev : events) {
    const Edge e(std::min(ev.u, ev.v), std::max(ev.u, ev.v));
    if (live.count(e)) {
      // Multi-edge in the raw stream: liveness is unchanged either way, the
      // only question is whether the no-op add is kept in the trace.
      if (!opts.dedup) {
        out.ops.push_back(Op::add(ev.u, ev.v));
        ++updates;
        maybe_probe();
      }
      continue;
    }
    if (opts.window > 0 && live.size() >= opts.window) {
      const Edge oldest = fifo.front();
      fifo.pop_front();
      live.erase(oldest);
      out.ops.push_back(Op::remove(oldest.u, oldest.v));
      ++updates;
      maybe_probe();
    }
    live.insert(e);
    fifo.push_back(e);
    out.ops.push_back(Op::add(ev.u, ev.v));
    ++updates;
    maybe_probe();
  }
  return out;
}

Trace synthesize_reads(const Trace& in, int read_percent, bool size_queries,
                       uint64_t seed) {
  read_percent = std::clamp(read_percent, 0, 99);  // 100 would never emit an update
  Trace out;
  out.num_vertices = in.num_vertices;
  // Worst case the output interleaves ~P/(100-P) reads per input op.
  out.ops.reserve(read_percent > 0
                      ? in.ops.size() * 100 / (100 - read_percent) + 1
                      : in.ops.size());

  std::vector<Edge> live;  // indexable for uniform probe sampling
  std::unordered_map<Edge, std::size_t, EdgeHash> live_at;  // edge -> index
  Xoshiro256 rng(seed);
  uint64_t reads = 0;
  uint64_t total = 0;
  uint32_t rotate = 0;

  auto emit_probe = [&] {
    if (live.empty()) return false;
    const Edge& a = live[rng.next_below(live.size())];
    // Rotate probe kinds so a --size-queries mix exercises the whole value
    // vocabulary, not just connected().
    if (size_queries && rotate % 3 == 1) {
      out.ops.push_back(Op::component_size(a.u));
    } else if (size_queries && rotate % 3 == 2) {
      out.ops.push_back(Op::representative(a.v));
    } else {
      const Edge& b = live[rng.next_below(live.size())];
      out.ops.push_back(Op::connected(a.u, b.v));
    }
    ++rotate;
    ++reads;
    ++total;
    return true;
  };

  for (const Op& op : in.ops) {
    out.ops.push_back(op);
    ++total;
    if (is_query(op.kind)) {
      ++reads;  // pass-through reads count toward the target share
      continue;
    }
    const Edge e(op.u, op.v);
    if (op.kind == OpKind::kAdd) {
      if (live_at.emplace(e, live.size()).second) live.push_back(e);
    } else if (const auto it = live_at.find(e); it != live_at.end()) {
      // O(1) swap-erase: a linear scan here made read synthesis quadratic
      // on large fully dynamic traces.
      const std::size_t i = it->second;
      live_at.erase(it);
      live[i] = live.back();
      if (i != live.size() - 1) live_at[live[i]] = i;
      live.pop_back();
    }
    // Top the read share back up to the target after every update.
    while (reads * 100 < static_cast<uint64_t>(read_percent) * (total + 1)) {
      if (!emit_probe()) break;  // nothing live yet to probe
    }
  }
  return out;
}

}  // namespace condyn::io
