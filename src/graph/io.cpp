#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace condyn::io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("graph io: " + what);
}

std::ifstream open(const std::string& path) {
  std::ifstream f(path);
  if (!f) fail("cannot open " + path);
  return f;
}

}  // namespace

Graph load_snap(std::istream& in) {
  std::vector<Edge> edges;
  Vertex max_v = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    uint64_t a, b;
    if (!(ls >> a >> b)) continue;
    if (a == b) continue;
    max_v = std::max<Vertex>(max_v, static_cast<Vertex>(std::max(a, b)));
    edges.emplace_back(static_cast<Vertex>(a), static_cast<Vertex>(b));
  }
  return Graph(max_v + 1, std::move(edges));
}

Graph load_snap_file(const std::string& path) {
  auto f = open(path);
  Graph g = load_snap(f);
  g.name = path;
  return g;
}

Graph load_dimacs(std::istream& in) {
  std::vector<Edge> edges;
  Vertex n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag;
    ls >> tag;
    if (tag == 'c') continue;
    if (tag == 'p') {
      std::string kind;
      uint64_t nn, mm;
      if (!(ls >> kind >> nn >> mm)) fail("bad DIMACS problem line");
      n = static_cast<Vertex>(nn);
      edges.reserve(mm);
    } else if (tag == 'a' || tag == 'e') {
      uint64_t a, b;
      if (!(ls >> a >> b)) fail("bad DIMACS arc line");
      if (a == 0 || b == 0) fail("DIMACS vertices are 1-based");
      if (a == b) continue;
      edges.emplace_back(static_cast<Vertex>(a - 1), static_cast<Vertex>(b - 1));
    }
  }
  if (n == 0) fail("missing DIMACS problem line");
  return Graph(n, std::move(edges));
}

Graph load_dimacs_file(const std::string& path) {
  auto f = open(path);
  Graph g = load_dimacs(f);
  g.name = path;
  return g;
}

void save_snap(const Graph& g, std::ostream& out) {
  out << "# condyn graph: " << g.name << "\n# nodes: " << g.num_vertices()
      << " edges: " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) out << e.u << '\t' << e.v << '\n';
}

void save_snap_file(const Graph& g, const std::string& path) {
  std::ofstream f(path);
  if (!f) fail("cannot write " + path);
  save_snap(g, f);
}

Graph load_auto(const std::string& path) {
  if (path.size() >= 3 && path.substr(path.size() - 3) == ".gr")
    return load_dimacs_file(path);
  return load_snap_file(path);
}

}  // namespace condyn::io
