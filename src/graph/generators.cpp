#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "util/random.hpp"

namespace condyn::gen {

namespace {

/// Draw distinct edges until `m` survive dedup; standard rejection sampling,
/// efficient while m is well below n^2/2.
void sample_distinct_edges(std::unordered_set<uint64_t>& out, Vertex lo,
                           Vertex hi, std::size_t m, Xoshiro256& rng) {
  const uint64_t span = hi - lo;
  if (span < 2) return;
  const std::size_t max_edges = static_cast<std::size_t>(span) * (span - 1) / 2;
  m = std::min(m, max_edges);
  std::size_t added = 0;
  while (added < m) {
    Vertex a = lo + static_cast<Vertex>(rng.next_below(span));
    Vertex b = lo + static_cast<Vertex>(rng.next_below(span));
    if (a == b) continue;
    if (out.insert(Edge(a, b).key()).second) ++added;
  }
}

Graph from_keys(Vertex n, const std::unordered_set<uint64_t>& keys,
                std::string name) {
  std::vector<Edge> edges;
  edges.reserve(keys.size());
  for (uint64_t k : keys) edges.push_back(Edge::from_key(k));
  Graph g(n, std::move(edges));
  g.name = std::move(name);
  return g;
}

}  // namespace

Graph erdos_renyi(Vertex n, std::size_t m, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::unordered_set<uint64_t> keys;
  keys.reserve(m * 2);
  sample_distinct_edges(keys, 0, n, m, rng);
  return from_keys(n, keys, "random");
}

Graph random_components(Vertex n, std::size_t m, unsigned k, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::unordered_set<uint64_t> keys;
  keys.reserve(m * 2);
  const Vertex block = n / k;
  for (unsigned i = 0; i < k; ++i) {
    const Vertex lo = i * block;
    const Vertex hi = (i + 1 == k) ? n : lo + block;
    sample_distinct_edges(keys, lo, hi, m / k, rng);
  }
  return from_keys(n, keys, "random-" + std::to_string(k) + "-components");
}

Graph rmat(Vertex n_pow2, std::size_t m, double a, double b, double c,
           uint64_t seed) {
  Xoshiro256 rng(seed);
  unsigned levels = 0;
  while ((Vertex{1} << levels) < n_pow2) ++levels;
  const Vertex n = Vertex{1} << levels;

  std::unordered_set<uint64_t> keys;
  keys.reserve(m * 2);
  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = m * 64 + 1024;  // RMAT repeats edges a lot
  while (added < m && attempts++ < max_attempts) {
    Vertex u = 0, v = 0;
    for (unsigned bit = 0; bit < levels; ++bit) {
      // Slightly perturb quadrant probabilities per level (standard noise to
      // avoid exact-degree artifacts).
      const double p = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (p < a) {
        // quadrant (0,0)
      } else if (p < a + b) {
        v |= 1;
      } else if (p < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;
    if (keys.insert(Edge(u, v).key()).second) ++added;
  }
  return from_keys(n, keys, "rmat");
}

Graph road_like(Vertex n, uint64_t seed) {
  Xoshiro256 rng(seed);
  const Vertex side = std::max<Vertex>(2, static_cast<Vertex>(std::sqrt(double(n))));
  const Vertex nn = side * side;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(nn) * 2);
  auto id = [side](Vertex r, Vertex c) { return r * side + c; };
  for (Vertex r = 0; r < side; ++r) {
    for (Vertex c = 0; c < side; ++c) {
      // Keep ~60% of grid edges: the road graph is connected but sparse
      // (|E| ~= 1.2 |V|) and loses connectivity quickly under deletions,
      // which is the property the paper calls out for USA roads.
      if (c + 1 < side && rng.next_double() < 0.62)
        edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < side && rng.next_double() < 0.62)
        edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  Graph g(nn, std::move(edges));
  g.name = "road-like";
  return g;
}

namespace {

double logd(double x) { return std::log(std::max(2.0, x)); }

Graph p_usa_roads(double s, uint64_t seed) {
  auto g = road_like(static_cast<Vertex>(435666 * s), seed);
  g.name = "usa-roads";
  return g;
}
Graph p_twitter(double s, uint64_t seed) {
  // |V|=81306, |E|=1342296 -> density ~33; RMAT with strong skew.
  auto g = rmat(static_cast<Vertex>(81306 * s),
                static_cast<std::size_t>(1342296 * s), 0.57, 0.19, 0.19, seed);
  g.name = "twitter-like";
  return g;
}
Graph p_stanford(double s, uint64_t seed) {
  auto g = rmat(static_cast<Vertex>(281903 * s),
                static_cast<std::size_t>(1992636 * s), 0.45, 0.22, 0.22, seed);
  g.name = "stanford-web-like";
  return g;
}
Graph p_rand_e_v(double s, uint64_t seed) {
  const Vertex n = static_cast<Vertex>(400000 * s);
  auto g = erdos_renyi(n, n, seed);
  g.name = "random-|E|=|V|";
  return g;
}
Graph p_rand_2e(double s, uint64_t seed) {
  const Vertex n = static_cast<Vertex>(300000 * s);
  auto g = erdos_renyi(n, std::size_t{2} * n, seed);
  g.name = "random-|E|=2|V|";
  return g;
}
Graph p_rand_nlogn(double s, uint64_t seed) {
  const Vertex n = static_cast<Vertex>(100000 * s);
  auto g = erdos_renyi(n, static_cast<std::size_t>(n * logd(n) / std::log(2.0) * 0.96),
                       seed);
  g.name = "random-|E|=|V|log|V|";
  return g;
}
Graph p_rand_nsqrtn(double s, uint64_t seed) {
  const Vertex n = static_cast<Vertex>(20000 * s);
  auto g = erdos_renyi(n, static_cast<std::size_t>(double(n) * std::sqrt(double(n))),
                       seed);
  g.name = "random-|E|=|V|sqrt|V|";
  return g;
}
Graph p_rand_10comp(double s, uint64_t seed) {
  const Vertex n = static_cast<Vertex>(100000 * s);
  auto g = random_components(n, std::size_t{16} * n, 10, seed);
  g.name = "random-10-components";
  return g;
}

Graph p_full_usa(double s, uint64_t seed) {
  auto g = road_like(static_cast<Vertex>(23900000 * s), seed);
  g.name = "full-usa-roads";
  return g;
}
Graph p_livejournal(double s, uint64_t seed) {
  auto g = rmat(static_cast<Vertex>(4800000 * s),
                static_cast<std::size_t>(42900000 * s), 0.57, 0.19, 0.19, seed);
  g.name = "livejournal-like";
  return g;
}
Graph p_kron(double s, uint64_t seed) {
  auto g = rmat(static_cast<Vertex>(2100000 * s),
                static_cast<std::size_t>(91000000 * s), 0.57, 0.19, 0.19, seed);
  g.name = "kron";
  return g;
}
Graph p_rand_large(double s, uint64_t seed) {
  auto g = erdos_renyi(static_cast<Vertex>(4200000 * s),
                       static_cast<std::size_t>(48000000 * s), seed);
  g.name = "random-large";
  return g;
}

}  // namespace

const std::vector<Preset>& small_graph_presets() {
  static const std::vector<Preset> presets = {
      {"usa-roads", p_usa_roads},
      {"twitter-like", p_twitter},
      {"stanford-web-like", p_stanford},
      {"random-|E|=|V|", p_rand_e_v},
      {"random-|E|=2|V|", p_rand_2e},
      {"random-|E|=|V|log|V|", p_rand_nlogn},
      {"random-|E|=|V|sqrt|V|", p_rand_nsqrtn},
      {"random-10-components", p_rand_10comp},
  };
  return presets;
}

const std::vector<Preset>& large_graph_presets() {
  static const std::vector<Preset> presets = {
      {"full-usa-roads", p_full_usa},
      {"livejournal-like", p_livejournal},
      {"kron", p_kron},
      {"random-large", p_rand_large},
  };
  return presets;
}

Graph make_preset(const char* name, double scale, uint64_t seed) {
  for (const auto& p : small_graph_presets())
    if (std::string(p.name) == name) return p.make(scale, seed);
  for (const auto& p : large_graph_presets())
    if (std::string(p.name) == name) return p.make(scale, seed);
  throw std::invalid_argument("unknown graph preset: " + std::string(name));
}

}  // namespace condyn::gen
