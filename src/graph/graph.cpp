#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace condyn {

Graph::Graph(Vertex n, std::vector<Edge> edges) : n_(n) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges_.reserve(edges.size());
  for (const Edge& e : edges) {
    assert(e.u < n_ && e.v < n_ && "edge endpoint out of range");
    if (e.u != e.v) edges_.push_back(e);  // strip loops
  }
}

bool Graph::add_edge(Vertex a, Vertex b) {
  assert(a < n_ && b < n_);
  if (a == b) return false;
  Edge e(a, b);
  // Linear dedup would be O(m^2); callers that bulk-build use the
  // vector constructor. This path is for small incremental construction.
  if (std::find(edges_.begin(), edges_.end(), e) != edges_.end()) return false;
  edges_.push_back(e);
  adj_built_ = false;
  return true;
}

const std::vector<std::vector<Vertex>>& Graph::adjacency() const {
  if (!adj_built_) {
    adj_.assign(n_, {});
    for (const Edge& e : edges_) {
      adj_[e.u].push_back(e.v);
      adj_[e.v].push_back(e.u);
    }
    adj_built_ = true;
  }
  return adj_;
}

}  // namespace condyn
