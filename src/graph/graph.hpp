#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace condyn {

using Vertex = uint32_t;

/// Undirected edge with canonical orientation (u <= v). Loops are invalid for
/// dynamic connectivity (the paper strips them); the canonicalizer asserts.
struct Edge {
  Vertex u = 0;
  Vertex v = 0;

  Edge() = default;
  Edge(Vertex a, Vertex b) noexcept : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;

  /// Stable 64-bit key (canonical), used by hash maps and state tables.
  uint64_t key() const noexcept {
    return (static_cast<uint64_t>(u) << 32) | v;
  }
  static Edge from_key(uint64_t k) noexcept {
    return Edge(static_cast<Vertex>(k >> 32), static_cast<Vertex>(k & 0xffffffffu));
  }
};

struct EdgeHash {
  std::size_t operator()(const Edge& e) const noexcept {
    uint64_t z = e.key() * 0x9e3779b97f4a7c15ULL;
    z ^= z >> 29;
    z *= 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(z ^ (z >> 32));
  }
};

/// Simple undirected graph as a deduplicated edge list — the exchange format
/// between generators, workloads and connectivity structures. Mirrors the
/// paper's evaluation inputs (Tables 1–2): loops and multi-edges are removed
/// because they do not affect connectivity.
class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex n) : n_(n) {}
  Graph(Vertex n, std::vector<Edge> edges);

  Vertex num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Append an edge; ignores loops and duplicates. Returns true if added.
  bool add_edge(Vertex a, Vertex b);

  /// Adjacency lists (built on demand, cached).
  const std::vector<std::vector<Vertex>>& adjacency() const;

  /// Average degree 2|E|/|V|.
  double density() const noexcept {
    return n_ == 0 ? 0.0 : 2.0 * static_cast<double>(edges_.size()) / n_;
  }

  std::string name;  ///< display name used in benchmark tables

 private:
  Vertex n_ = 0;
  std::vector<Edge> edges_;
  mutable std::vector<std::vector<Vertex>> adj_;  // lazily built
  mutable bool adj_built_ = false;
};

}  // namespace condyn
