#include "graph/cc.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/dsu.hpp"

namespace condyn {

ComponentInfo connected_components(Vertex n, const std::vector<Edge>& edges) {
  Dsu dsu(n);
  for (const Edge& e : edges) dsu.unite(e.u, e.v);

  ComponentInfo info;
  info.label.resize(n);
  std::unordered_map<Vertex, std::size_t> sizes;
  for (Vertex v = 0; v < n; ++v) {
    info.label[v] = dsu.find(v);
    ++sizes[info.label[v]];
  }
  info.num_components = dsu.num_components();
  for (const auto& [root, sz] : sizes)
    info.largest_component = std::max(info.largest_component, sz);
  return info;
}

}  // namespace condyn
