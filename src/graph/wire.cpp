#include "graph/wire.hpp"

#include <stdexcept>

namespace condyn::wire {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("wire: " + what);
}

// Varint/zigzag primitives over byte buffers — the buffer-based twins of the
// iostream ones in io.cpp, with identical strictness (the codec is a
// serialization of the same vocabulary, so it inherits the same rules).

uint64_t zigzag_encode(int64_t v) noexcept {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t zigzag_decode(uint64_t z) noexcept {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

void append_varint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

/// Strict LEB128: EOF mid-varint and >10-byte runs both throw.
uint64_t read_varint(std::span<const uint8_t> buf, std::size_t& pos) {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (pos >= buf.size()) fail("truncated payload (varint cut short)");
    const uint8_t byte = buf[pos++];
    if (shift == 63 && (byte & 0x7e) != 0)
      fail("corrupt payload: varint overflows 64 bits");
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  fail("corrupt payload: varint longer than 10 bytes");
}

/// Same wraparound-checked delta application as the trace readers: the sum
/// is taken in uint64 so every out-of-range true sum wraps past num_vertices
/// and one range check rejects them all without signed-overflow UB.
Vertex apply_delta(Vertex base, int64_t delta, Vertex num_vertices,
                   const char* which) {
  const uint64_t v = base + static_cast<uint64_t>(delta);
  if (v >= num_vertices)
    fail(std::string("corrupt ops frame: ") + which +
         " delta lands outside [0, " + std::to_string(num_vertices) + ")");
  return static_cast<Vertex>(v);
}

void require_consumed(std::span<const uint8_t> payload, std::size_t pos,
                      const char* what) {
  if (pos != payload.size())
    fail(std::string("corrupt ") + what +
         ": payload continues past the declared content");
}

/// Reserve space for the u32 length prefix; patched by end_frame once the
/// body size is known.
std::size_t begin_frame(std::vector<uint8_t>& out, FrameType type) {
  const std::size_t at = out.size();
  out.insert(out.end(), {0, 0, 0, 0});
  out.push_back(static_cast<uint8_t>(type));
  return at;
}

void end_frame(std::vector<uint8_t>& out, std::size_t at) {
  const uint64_t body = out.size() - at - 4;  // type byte + payload
  if (body == 0 || body > kMaxFrameBytes) fail("frame body size out of range");
  for (int i = 0; i < 4; ++i)
    out[at + i] = static_cast<uint8_t>((body >> (8 * i)) & 0xff);
}

}  // namespace

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kOverloaded: return "overloaded";
    case Status::kBadFrame: return "bad-frame";
    case Status::kShuttingDown: return "shutting-down";
    case Status::kFailed: return "failed";
  }
  return "unknown";
}

std::optional<FrameView> try_frame(std::span<const uint8_t> buf) {
  if (buf.size() < 4) return std::nullopt;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(buf[i]) << (8 * i);
  // Hopeless headers are rejected before waiting for (or allocating) the
  // body: a corrupt length would otherwise stall the connection forever or
  // commit the server to buffering up to 4 GiB.
  if (len == 0) fail("frame length 0");
  if (len > kMaxFrameBytes)
    fail("frame length " + std::to_string(len) + " exceeds the " +
         std::to_string(kMaxFrameBytes) + "-byte bound");
  if (buf.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const uint8_t type = buf[4];
  if (type < static_cast<uint8_t>(FrameType::kOps) ||
      type > static_cast<uint8_t>(FrameType::kStatusResponse))
    fail("unknown frame type " + std::to_string(type));
  FrameView f;
  f.type = static_cast<FrameType>(type);
  f.payload = buf.subspan(kHeaderBytes, len - 1);
  f.frame_bytes = 4 + static_cast<std::size_t>(len);
  return f;
}

void encode_ops_frame(std::span<const Op> ops, std::vector<uint8_t>& out) {
  const std::size_t at = begin_frame(out, FrameType::kOps);
  append_varint(out, ops.size());
  Vertex prev_u = 0;
  for (const Op& op : ops) {
    const uint64_t du = zigzag_encode(static_cast<int64_t>(op.u) -
                                      static_cast<int64_t>(prev_u));
    append_varint(out, (du << 3) | static_cast<uint64_t>(op.kind));
    append_varint(out, zigzag_encode(static_cast<int64_t>(op.v) -
                                     static_cast<int64_t>(op.u)));
    prev_u = op.u;
  }
  end_frame(out, at);
}

std::vector<Op> decode_ops(std::span<const uint8_t> payload,
                           Vertex num_vertices) {
  std::size_t pos = 0;
  const uint64_t count = read_varint(payload, pos);
  // Corrupt-count guard: each op costs at least 2 payload bytes, so a count
  // past that bound can never be satisfied — reject before reserving.
  if (count > (payload.size() - pos) / 2)
    fail("corrupt ops frame: op count " + std::to_string(count) +
         " exceeds what the payload can hold");
  std::vector<Op> ops;
  ops.reserve(count);
  Vertex prev_u = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t tag = read_varint(payload, pos);
    const auto kind = static_cast<unsigned>(tag & 0x7);
    if (kind >= kNumOpKinds)
      fail("corrupt ops frame: bad op kind " + std::to_string(kind));
    Op op;
    op.kind = static_cast<OpKind>(kind);
    op.u = apply_delta(prev_u, zigzag_decode(tag >> 3), num_vertices, "u");
    op.v = apply_delta(op.u, zigzag_decode(read_varint(payload, pos)),
                       num_vertices, "v");
    prev_u = op.u;
    ops.push_back(op);
  }
  require_consumed(payload, pos, "ops frame");
  return ops;
}

void encode_results_frame(Status s, std::span<const uint64_t> values,
                          std::vector<uint8_t>& out) {
  if (s != Status::kOk && !values.empty())
    fail("non-ok results frame must carry zero values");
  const std::size_t at = begin_frame(out, FrameType::kResults);
  out.push_back(static_cast<uint8_t>(s));
  append_varint(out, values.size());
  for (const uint64_t v : values) append_varint(out, v);
  end_frame(out, at);
}

Results decode_results(std::span<const uint8_t> payload) {
  if (payload.empty()) fail("results frame missing status byte");
  if (payload[0] > static_cast<uint8_t>(Status::kFailed))
    fail("corrupt results frame: bad status " + std::to_string(payload[0]));
  Results r;
  r.status = static_cast<Status>(payload[0]);
  std::size_t pos = 1;
  const uint64_t count = read_varint(payload, pos);
  // Each value is at least one payload byte.
  if (count > payload.size() - pos)
    fail("corrupt results frame: value count " + std::to_string(count) +
         " exceeds what the payload can hold");
  if (r.status != Status::kOk && count != 0)
    fail("corrupt results frame: non-ok status with values");
  r.values.reserve(count);
  for (uint64_t i = 0; i < count; ++i)
    r.values.push_back(read_varint(payload, pos));
  require_consumed(payload, pos, "results frame");
  return r;
}

void encode_status_request(std::vector<uint8_t>& out) {
  const std::size_t at = begin_frame(out, FrameType::kStatusRequest);
  end_frame(out, at);
}

void check_status_request(std::span<const uint8_t> payload) {
  if (!payload.empty()) fail("status request payload must be empty");
}

void encode_status_response(const StatusReport& r, std::vector<uint8_t>& out) {
  const std::size_t at = begin_frame(out, FrameType::kStatusResponse);
  append_varint(out, r.num_vertices);
  append_varint(out, r.queue_depth);
  append_varint(out, r.submitted);
  append_varint(out, r.acked);
  append_varint(out, r.dropped);
  append_varint(out, r.shed_reads);
  append_varint(out, r.failed);
  append_varint(out, r.journal_errors);
  append_varint(out, r.batches);
  end_frame(out, at);
}

StatusReport decode_status_response(std::span<const uint8_t> payload) {
  std::size_t pos = 0;
  StatusReport r;
  r.num_vertices = read_varint(payload, pos);
  r.queue_depth = read_varint(payload, pos);
  r.submitted = read_varint(payload, pos);
  r.acked = read_varint(payload, pos);
  r.dropped = read_varint(payload, pos);
  r.shed_reads = read_varint(payload, pos);
  r.failed = read_varint(payload, pos);
  r.journal_errors = read_varint(payload, pos);
  r.batches = read_varint(payload, pos);
  require_consumed(payload, pos, "status response");
  return r;
}

namespace {

[[noreturn]] void roundtrip_fail(const char* what) {
  throw std::logic_error(std::string("wire round-trip mismatch: ") + what);
}

/// Decode one frame's payload and re-encode it; a successful decode that
/// does not round-trip bit-for-bit is a logic bug, reported distinctly from
/// the (expected) strict-decode rejections.
void decode_one(const FrameView& f, Vertex num_vertices) {
  std::vector<uint8_t> re;
  switch (f.type) {
    case FrameType::kOps: {
      const std::vector<Op> ops = decode_ops(f.payload, num_vertices);
      encode_ops_frame(ops, re);
      if (decode_ops(std::span(re).subspan(kHeaderBytes), num_vertices) != ops)
        roundtrip_fail("ops");
      break;
    }
    case FrameType::kResults: {
      const Results r = decode_results(f.payload);
      encode_results_frame(r.status, r.values, re);
      if (!(decode_results(std::span(re).subspan(kHeaderBytes)) == r))
        roundtrip_fail("results");
      break;
    }
    case FrameType::kStatusRequest:
      check_status_request(f.payload);
      break;
    case FrameType::kStatusResponse: {
      const StatusReport r = decode_status_response(f.payload);
      encode_status_response(r, re);
      if (!(decode_status_response(std::span(re).subspan(kHeaderBytes)) == r))
        roundtrip_fail("status response");
      break;
    }
  }
}

}  // namespace

std::size_t decode_any(std::span<const uint8_t> buf, Vertex num_vertices) {
  std::size_t frames = 0;
  while (!buf.empty()) {
    const std::optional<FrameView> f = try_frame(buf);
    if (!f) break;  // incomplete tail: fine for a stream, stop here
    decode_one(*f, num_vertices);
    buf = buf.subspan(f->frame_bytes);
    ++frames;
  }
  return frames;
}

}  // namespace condyn::wire
