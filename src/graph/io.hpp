#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"

namespace condyn::io {

/// Graph file IO. Two formats:
///  * SNAP edge list ("u v" per line, '#' comments) — the format of the
///    Twitter / Stanford web / LiveJournal datasets the paper uses;
///  * DIMACS ("p sp n m" header, "a u v w" arcs, 1-based) — the format of
///    the USA-roads shortest-path challenge graphs.
/// Loops and multi-edges are stripped on load (paper §5.1). With these
/// loaders a user who *does* have the original datasets can run every
/// benchmark on them unmodified.

Graph load_snap(std::istream& in);
Graph load_snap_file(const std::string& path);

Graph load_dimacs(std::istream& in);
Graph load_dimacs_file(const std::string& path);

void save_snap(const Graph& g, std::ostream& out);
void save_snap_file(const Graph& g, const std::string& path);

/// Load by extension: ".gr" => DIMACS, anything else => SNAP edge list.
Graph load_auto(const std::string& path);

/// Binary operation-trace format (DESIGN.md §6.2): a recorded op stream any
/// scenario can be frozen into (harness::record_trace) and replayed
/// deterministically across variants for apples-to-apples comparisons.
///
/// Three wire versions, all little-endian, shared magic "DCTR":
///
/// v1 (fixed 9 bytes/op, the original debug format — reader kept for
/// back-compat, writer kept for the v1<->v2 compat tests):
///   bytes 0..3   magic "DCTR"
///   u32          version (1)
///   u32          num_vertices of the graph the ops address
///   u64          op count
///   then per op: u8 kind (0 add, 1 remove, 2 connected), u32 u, u32 v
///
/// v2 (delta + varint/zigzag compressed, ~2-3 bytes/op on temporal streams):
///   bytes 0..3   magic "DCTR"
///   u32          version (2)
///   u32          flags (header-declared; kTraceFlagDeltaVarint must be set,
///                unknown bits are rejected)
///   u32          num_vertices
///   u64          op count
///   then per op, two LEB128 varints:
///     varint A = zigzag(u - prev_u) << 2 | kind    (prev_u starts at 0)
///     varint B = zigzag(v - u)
/// Decoding is strict: truncated varints, varints longer than 10 bytes,
/// kind == 3, vertices outside [0, num_vertices), and op-count mismatches
/// (payload ending early OR trailing bytes after the declared count) all
/// throw std::runtime_error instead of yielding a silently wrong trace.
///
/// v3 (Query API v2): identical layout to v2 except the kind field in
/// varint A widens to 3 bits so the value-returning query kinds fit:
///     varint A = zigzag(u - prev_u) << 3 | kind    (kind 0..4)
///   kind 3 = component_size(u), kind 4 = representative(u); both encode
///   v == u (a zero varint B). kind 5..7 are rejected. v1/v2 writers refuse
///   traces containing the new kinds (they cannot represent them);
///   preferred_format() picks v3 only when a trace needs it, so traces of
///   the boolean vocabulary keep the smaller v2 encoding.
struct Trace {
  Vertex num_vertices = 0;
  std::vector<Op> ops;

  friend bool operator==(const Trace&, const Trace&) = default;
};

inline constexpr char kTraceMagic[4] = {'D', 'C', 'T', 'R'};
inline constexpr uint32_t kTraceVersionV1 = 1;
inline constexpr uint32_t kTraceVersionV2 = 2;
inline constexpr uint32_t kTraceVersionV3 = 3;
/// The version save_trace writes by default (boolean-vocabulary traces; use
/// preferred_format() to auto-upgrade to v3 when value queries are present).
inline constexpr uint32_t kTraceVersion = kTraceVersionV2;
/// v2/v3 header flag: payload is the delta+varint encoding above. The only
/// flag defined so far; writers must set it, readers reject unknown bits.
inline constexpr uint32_t kTraceFlagDeltaVarint = 1u << 0;

enum class TraceFormat : uint32_t {
  kV1 = kTraceVersionV1,
  kV2 = kTraceVersionV2,
  kV3 = kTraceVersionV3,
};

/// True when the trace contains ops only v3 can encode (component-size /
/// representative queries).
bool needs_v3(const Trace& t) noexcept;

/// The most compatible format able to hold the trace: v2 for the boolean
/// vocabulary, v3 when value queries are present.
TraceFormat preferred_format(const Trace& t) noexcept;

/// Writing v2/v3 validates that every op addresses a vertex < num_vertices
/// (a file that would fail its own strict reload is a bug at write time);
/// v1/v2 additionally refuse ops of the value-query kinds they cannot
/// represent.
void save_trace(const Trace& t, std::ostream& out,
                TraceFormat format = TraceFormat::kV2);
void save_trace_file(const Trace& t, const std::string& path,
                     TraceFormat format = TraceFormat::kV2);

/// Version-dispatching reader (v1, v2 and v3). Throws std::runtime_error on
/// bad magic, unknown version or flags, truncation, bad op codes, vertex
/// overflow, or op-count mismatch (see the format comment above).
Trace load_trace(std::istream& in);
Trace load_trace_file(const std::string& path);

/// Header + payload statistics of a trace file (the `trace_convert --info`
/// report): fully decodes the file, so a corrupt trace throws here too.
struct TraceFileInfo {
  uint32_t version = 0;
  uint32_t flags = 0;
  Vertex num_vertices = 0;
  uint64_t ops = 0;
  uint64_t adds = 0;
  uint64_t removes = 0;
  uint64_t queries = 0;        ///< connected(u, v) probes
  uint64_t size_queries = 0;   ///< component_size(u) probes (v3 only)
  uint64_t rep_queries = 0;    ///< representative(u) probes (v3 only)
  uint64_t file_bytes = 0;
  uint64_t header_bytes = 0;
  uint64_t payload_bytes = 0;
  /// payload_bytes / ops (0 when the trace is empty). 9.0 for v1 by
  /// construction; the v2 target on temporal streams is <= 3.
  double bytes_per_op = 0;
};

TraceFileInfo trace_info_file(const std::string& path);

/// SNAP-style temporal edge list: one event per line, "u v [timestamp]",
/// '#'/'%' comments, self-loops dropped, malformed lines skipped (the same
/// tolerant parse as load_snap). Events without a timestamp keep file order
/// (their index becomes the timestamp).
struct TemporalEdge {
  Vertex u = 0;
  Vertex v = 0;
  uint64_t t = 0;

  friend bool operator==(const TemporalEdge&, const TemporalEdge&) = default;
};

std::vector<TemporalEdge> load_temporal_snap(std::istream& in);
std::vector<TemporalEdge> load_temporal_snap_file(const std::string& path);

/// SNAP temporal stream -> DCTR conversion knobs (tools/trace_convert).
struct ConvertOptions {
  /// Drop an add whose edge is currently live (multi-edges in the raw
  /// stream otherwise replay as no-op adds returning false).
  bool dedup = false;
  /// Live-edge cap: 0 = none (the trace is insert-only); N > 0 expires the
  /// oldest live edge with an explicit remove before each add that would
  /// exceed N — this is what turns a grow-only SNAP stream into a fully
  /// dynamic workload.
  std::size_t window = 0;
  /// Emit a connected(u, v) probe between the endpoints of two random live
  /// edges every N update ops (0 = no queries).
  uint32_t query_every = 0;
  uint64_t seed = 42;  ///< probe endpoint choice
};

/// Convert a temporal event stream into a replayable trace: events are
/// stably sorted by timestamp, each becomes an add (subject to dedup /
/// window expiry above), and num_vertices is sized from the largest
/// endpoint seen.
Trace temporal_to_trace(std::vector<TemporalEdge> events,
                        const ConvertOptions& opts = {});

/// Synthesize the paper's read-heavy mixes from an update stream
/// (trace_convert --reads P): walk the input ops maintaining the live edge
/// set, and interleave query probes after updates until reads make up
/// `read_percent` of the output. Probes target endpoints of random live
/// edges (seeded); with `size_queries`, probes rotate through
/// connected / component_size / representative — the resulting trace then
/// needs the v3 wire format (preferred_format). Existing queries in the
/// input are passed through and counted toward the read share.
Trace synthesize_reads(const Trace& in, int read_percent, bool size_queries,
                       uint64_t seed);

}  // namespace condyn::io
