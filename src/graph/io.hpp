#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"

namespace condyn::io {

/// Graph file IO. Two formats:
///  * SNAP edge list ("u v" per line, '#' comments) — the format of the
///    Twitter / Stanford web / LiveJournal datasets the paper uses;
///  * DIMACS ("p sp n m" header, "a u v w" arcs, 1-based) — the format of
///    the USA-roads shortest-path challenge graphs.
/// Loops and multi-edges are stripped on load (paper §5.1). With these
/// loaders a user who *does* have the original datasets can run every
/// benchmark on them unmodified.

Graph load_snap(std::istream& in);
Graph load_snap_file(const std::string& path);

Graph load_dimacs(std::istream& in);
Graph load_dimacs_file(const std::string& path);

void save_snap(const Graph& g, std::ostream& out);
void save_snap_file(const Graph& g, const std::string& path);

/// Load by extension: ".gr" => DIMACS, anything else => SNAP edge list.
Graph load_auto(const std::string& path);

/// Binary operation-trace format (DESIGN.md §6.2): a recorded op stream any
/// scenario can be frozen into (harness::record_trace) and replayed
/// deterministically across variants for apples-to-apples comparisons.
/// Layout, all little-endian:
///   bytes 0..3   magic "DCTR"
///   u32          version (currently 1)
///   u32          num_vertices of the graph the ops address
///   u64          op count
///   then per op: u8 kind (0 add, 1 remove, 2 connected), u32 u, u32 v
struct Trace {
  Vertex num_vertices = 0;
  std::vector<Op> ops;

  friend bool operator==(const Trace&, const Trace&) = default;
};

inline constexpr char kTraceMagic[4] = {'D', 'C', 'T', 'R'};
inline constexpr uint32_t kTraceVersion = 1;

void save_trace(const Trace& t, std::ostream& out);
void save_trace_file(const Trace& t, const std::string& path);

/// Throws std::runtime_error on bad magic, unknown version, or truncation.
Trace load_trace(std::istream& in);
Trace load_trace_file(const std::string& path);

}  // namespace condyn::io
