#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace condyn::io {

/// Graph file IO. Two formats:
///  * SNAP edge list ("u v" per line, '#' comments) — the format of the
///    Twitter / Stanford web / LiveJournal datasets the paper uses;
///  * DIMACS ("p sp n m" header, "a u v w" arcs, 1-based) — the format of
///    the USA-roads shortest-path challenge graphs.
/// Loops and multi-edges are stripped on load (paper §5.1). With these
/// loaders a user who *does* have the original datasets can run every
/// benchmark on them unmodified.

Graph load_snap(std::istream& in);
Graph load_snap_file(const std::string& path);

Graph load_dimacs(std::istream& in);
Graph load_dimacs_file(const std::string& path);

void save_snap(const Graph& g, std::ostream& out);
void save_snap_file(const Graph& g, const std::string& path);

/// Load by extension: ".gr" => DIMACS, anything else => SNAP edge list.
Graph load_auto(const std::string& path);

}  // namespace condyn::io
