#include "graph/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace condyn::io {

namespace {

void put_u32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

void put_u64(char* out, uint64_t v) {
  put_u32(out, static_cast<uint32_t>(v & 0xffffffffu));
  put_u32(out + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t get_u32(const char* in) {
  const auto* b = reinterpret_cast<const unsigned char*>(in);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t get_u64(const char* in) {
  return static_cast<uint64_t>(get_u32(in)) |
         (static_cast<uint64_t>(get_u32(in + 4)) << 32);
}

/// FNV-1a over the record prefix — cheap, dependency-free, and plenty to
/// tell a torn tail from a good record (this is corruption *detection* at
/// the single-record scale, not cryptographic integrity).
uint32_t fnv1a32(const char* data, std::size_t n) {
  uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("snapshot/journal: " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// DCSN snapshot

void save_snapshot(const Snapshot& s, std::ostream& out) {
  for (const Op& op : s.edges.ops) {
    if (op.kind != OpKind::kAdd) {
      fail("snapshot trace must contain only add ops");
    }
  }
  char header[16];
  std::memcpy(header, kSnapshotMagic, 4);
  put_u32(header + 4, kSnapshotVersion);
  put_u64(header + 8, s.applied_seq);
  out.write(header, sizeof header);
  // One wire generation for the embedded trace (v3) keeps snapshots of the
  // same edge set byte-identical across writer versions — the property the
  // golden-file tests pin.
  save_trace(s.edges, out, TraceFormat::kV3);
  if (!out) fail("write failed");
}

void save_snapshot_file(const Snapshot& s, const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) fail("cannot open " + path + " for writing");
  save_snapshot(s, f);
  f.flush();
  if (!f) fail("write failed: " + path);
}

namespace {

/// fsync a path's bytes down to disk. The stream writer above only flushes
/// to the page cache; without this the rename below can publish a name
/// whose *data* is lost in a power cut.
void sync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("cannot reopen " + path + " for fsync");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("fsync " + path + " failed");
}

/// fsync the directory entry after a rename so the new name itself survives
/// a crash. Best-effort: some filesystems refuse directory fsync, and the
/// file's data is already durable by this point.
void sync_dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

void save_snapshot_file_atomic(const Snapshot& s, const std::string& path) {
  const std::string tmp = path + ".tmp";
  save_snapshot_file(s, tmp);
  sync_file(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("rename " + tmp + " -> " + path + " failed");
  }
  sync_dir_of(path);
}

Snapshot load_snapshot(std::istream& in) {
  char header[16];
  in.read(header, sizeof header);
  if (in.gcount() != sizeof header) fail("short snapshot header");
  if (std::memcmp(header, kSnapshotMagic, 4) != 0) {
    fail("bad snapshot magic");
  }
  const uint32_t version = get_u32(header + 4);
  if (version != kSnapshotVersion) {
    fail("unknown snapshot version " + std::to_string(version));
  }
  Snapshot s;
  s.applied_seq = get_u64(header + 8);
  s.edges = load_trace(in);  // strict: truncation / overflow throws
  for (const Op& op : s.edges.ops) {
    if (op.kind != OpKind::kAdd) {
      fail("snapshot trace contains a non-add op");
    }
  }
  return s;
}

Snapshot load_snapshot_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  return load_snapshot(f);
}

Snapshot make_snapshot(uint64_t applied_seq, Vertex num_vertices,
                       std::vector<Edge> live_edges) {
  std::sort(live_edges.begin(), live_edges.end());
  Snapshot s;
  s.applied_seq = applied_seq;
  s.edges.num_vertices = num_vertices;
  s.edges.ops.reserve(live_edges.size());
  for (const Edge& e : live_edges) s.edges.ops.push_back(Op::add(e.u, e.v));
  return s;
}

// ---------------------------------------------------------------------------
// DCJL journal

void encode_journal_header(char out[kJournalHeaderBytes], Vertex num_vertices) {
  std::memcpy(out, kJournalMagic, 4);
  put_u32(out + 4, kJournalVersion);
  put_u32(out + 8, num_vertices);
  put_u32(out + 12, 0);  // reserved
}

void encode_journal_record(char out[kJournalRecordBytes], uint64_t seq,
                           const Op& op) {
  put_u64(out, seq);
  out[8] = static_cast<char>(op.kind);
  put_u32(out + 9, op.u);
  put_u32(out + 13, op.v);
  put_u32(out + 17, fnv1a32(out, 17));
}

void write_journal_header(std::ostream& out, Vertex num_vertices) {
  char buf[kJournalHeaderBytes];
  encode_journal_header(buf, num_vertices);
  out.write(buf, sizeof buf);
}

void write_journal_record(std::ostream& out, uint64_t seq, const Op& op) {
  char buf[kJournalRecordBytes];
  encode_journal_record(buf, seq, op);
  out.write(buf, sizeof buf);
}

JournalData load_journal(std::istream& in) {
  char header[kJournalHeaderBytes];
  in.read(header, sizeof header);
  if (in.gcount() != static_cast<std::streamsize>(sizeof header)) {
    fail("short journal header");
  }
  if (std::memcmp(header, kJournalMagic, 4) != 0) fail("bad journal magic");
  const uint32_t version = get_u32(header + 4);
  if (version != kJournalVersion) {
    fail("unknown journal version " + std::to_string(version));
  }
  JournalData j;
  j.num_vertices = get_u32(header + 8);
  char rec[kJournalRecordBytes];
  uint64_t prev_seq = 0;
  for (;;) {
    in.read(rec, sizeof rec);
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;  // clean end-of-file
    if (got < sizeof rec) {
      // Torn tail: the process died mid-append. Drop it and report.
      j.truncated_tail = true;
      j.tail_bytes = got;
      break;
    }
    const uint32_t crc = get_u32(rec + 17);
    const uint64_t seq = get_u64(rec);
    const auto kind = static_cast<uint8_t>(rec[8]);
    const Vertex u = get_u32(rec + 9);
    const Vertex v = get_u32(rec + 13);
    const bool good = crc == fnv1a32(rec, 17) && kind <= 1 && seq > prev_seq &&
                      u < j.num_vertices && v < j.num_vertices;
    if (!good) {
      // Corrupt record: everything from here on is untrusted — same WAL
      // stance as a torn tail. Count the rest of the file as dropped.
      j.truncated_tail = true;
      j.tail_bytes = got;
      while (in.read(rec, sizeof rec) || in.gcount() > 0) {
        j.tail_bytes += static_cast<std::size_t>(in.gcount());
        if (in.gcount() == 0) break;
      }
      break;
    }
    prev_seq = seq;
    j.records.push_back(
        {seq, Op{kind == 0 ? OpKind::kAdd : OpKind::kRemove, u, v}});
  }
  return j;
}

JournalData load_journal_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};  // no journal yet: empty history, not an error
  return load_journal(f);
}

}  // namespace condyn::io
