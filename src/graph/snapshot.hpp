#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace condyn::io {

/// Durability formats of the streaming ingest pipeline (DESIGN.md §11.3):
/// a point-in-time *snapshot* of the live edge set plus an append-only op
/// *journal*, together reconstructing the exact graph after a crash
/// (load snapshot, replay journal records with seq > snapshot.applied_seq).
///
/// DCSN snapshot (magic "DCSN", little-endian):
///   bytes 0..3   magic "DCSN"
///   u32          version (1)
///   u64          applied_seq — journal sequence number of the last update
///                folded into this snapshot (0 = empty history)
///   then an embedded DCTR v3 trace whose ops are exclusively kAdd: the
///   live edge set frozen as explicit adds, exactly like trace prefill
///   freezing (harness::record_trace). Replaying the trace into an empty
///   structure reproduces the snapshotted graph; the strict DCTR decoder
///   (truncation, vertex overflow, op-count mismatch) is inherited whole.
///
/// DCJL journal (magic "DCJL", little-endian):
///   bytes 0..3   magic "DCJL"
///   u32          version (1)
///   u32          num_vertices of the structure being journaled
///   u32          reserved (0)
///   then fixed 21-byte records, one per acknowledged update op:
///     u64  seq   — 1-based, strictly increasing
///     u8   kind  — 0 add, 1 remove (queries are never journaled)
///     u32  u, v  — edge endpoints
///     u32  crc   — FNV-1a-32 over the preceding 17 bytes
///   The header is strict (bad magic/version/truncation throws); the record
///   stream is *tolerant*: a torn or corrupt tail — truncated record, bad
///   CRC, kind > 1, vertex >= num_vertices, non-increasing seq — ends the
///   journal at the last good record (WAL semantics: a crash mid-append
///   must lose at most the unacknowledged tail, never the file).

inline constexpr char kSnapshotMagic[4] = {'D', 'C', 'S', 'N'};
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr char kJournalMagic[4] = {'D', 'C', 'J', 'L'};
inline constexpr uint32_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 16;
inline constexpr std::size_t kJournalRecordBytes = 21;

struct Snapshot {
  uint64_t applied_seq = 0;  ///< journal seq folded into `edges`
  Trace edges;               ///< live edge set as explicit kAdd ops

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// One journaled update (kind is OpKind::kAdd or kRemove).
struct JournalRecord {
  uint64_t seq = 0;
  Op op;

  friend bool operator==(const JournalRecord&, const JournalRecord&) = default;
};

/// A decoded journal: the records up to the first torn/corrupt one.
struct JournalData {
  Vertex num_vertices = 0;
  std::vector<JournalRecord> records;
  /// True when decoding stopped before end-of-file (torn tail dropped).
  bool truncated_tail = false;
  /// Bytes of the dropped tail (0 when the file decoded cleanly).
  uint64_t tail_bytes = 0;
};

/// Strict writer/reader for the snapshot envelope. save_snapshot validates
/// the embedded trace the way save_trace does (every op must be a kAdd
/// addressing a vertex < num_vertices) and always embeds DCTR v3 — one
/// byte-stable wire generation for golden pinning, with headroom if
/// snapshots ever carry value-op state.
void save_snapshot(const Snapshot& s, std::ostream& out);
void save_snapshot_file(const Snapshot& s, const std::string& path);
/// Atomic variant: write to `path + ".tmp"`, then rename over `path`, so a
/// crash mid-snapshot leaves the previous snapshot intact (or none at all),
/// never a half-written file.
void save_snapshot_file_atomic(const Snapshot& s, const std::string& path);

Snapshot load_snapshot(std::istream& in);
Snapshot load_snapshot_file(const std::string& path);

/// Journal header / record codec, exposed at byte level so the ingest
/// applier can append records through its own buffered fd (group-commit
/// fsync) while tests and fuzzers drive the stream versions.
void encode_journal_header(char out[kJournalHeaderBytes], Vertex num_vertices);
void encode_journal_record(char out[kJournalRecordBytes], uint64_t seq,
                           const Op& op);
void write_journal_header(std::ostream& out, Vertex num_vertices);
void write_journal_record(std::ostream& out, uint64_t seq, const Op& op);

/// Tolerant reader (see format comment). Throws std::runtime_error only on
/// header problems: short header, bad magic, unknown version.
JournalData load_journal(std::istream& in);
/// File variant; a *missing* file is not an error — it decodes as an empty
/// journal (a fresh service that never journaled anything).
JournalData load_journal_file(const std::string& path);

/// Freeze a structure's live edge set into a snapshot by walking an
/// explicitly tracked edge set (the ingest applier owns one); edges are
/// emitted in sorted canonical order so equal edge sets produce
/// byte-identical snapshots regardless of tracking-container iteration
/// order.
Snapshot make_snapshot(uint64_t applied_seq, Vertex num_vertices,
                       std::vector<Edge> live_edges);

}  // namespace condyn::io
