#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace condyn {

/// Static connected components over an edge list (DSU-based).
/// Test oracle: after any sequence of dynamic operations, the dynamic
/// structure's connected() must agree with labels computed here from the
/// current edge set.
struct ComponentInfo {
  std::vector<Vertex> label;      ///< label[v] = component id (root vertex)
  Vertex num_components = 0;
  std::size_t largest_component = 0;
};

ComponentInfo connected_components(Vertex n, const std::vector<Edge>& edges);

inline ComponentInfo connected_components(const Graph& g) {
  return connected_components(g.num_vertices(), g.edges());
}

}  // namespace condyn
