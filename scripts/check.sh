#!/usr/bin/env bash
# Local mirror of CI: configure, build, run the tier-1 test suite
# (ROADMAP.md), then smoke-run the examples, the trace_convert pipeline on
# the checked-in SNAP sample, and the unified bench suite across every
# scenario. CHECK_TSAN=1 additionally mirrors the CI ThreadSanitizer job
# (concurrency suites + dependency-preserving replay under -fsanitize=thread).
# CHECK_RECOVERY=1 mirrors the CI crash-recovery job: SIGKILL the ingest
# service mid-stream at a randomized point, restart, recover, and verify the
# recovered graph against the DSU oracle. CHECK_SERVE=1 mirrors the CI
# serve-smoke job: condyn_server + open-loop loadgen trace replay, asserting
# a healthy serve JSON record, overload shedding, and a clean SIGTERM drain.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

./build/example_batch_processor
./build/example_trace_replay
# End-to-end ingest pass: group commit, mid-stream snapshot, ticketed
# submit, recovery, oracle verification (DESIGN.md §11).
./build/example_ingest_service demo

# trace_convert on the checked-in sample: <= 3 bytes/op in v2, byte-stable
# v1<->v2 recompress round trip, strict --info decode of the golden traces.
sample_trace="$(mktemp /tmp/check-sample.XXXXXX.dctr)"
sample_v1="$(mktemp /tmp/check-sample-v1.XXXXXX.dctr)"
sample_rt="$(mktemp /tmp/check-sample-rt.XXXXXX.dctr)"
trace="$(mktemp /tmp/check-trace.XXXXXX.bin)"
json="$(mktemp /tmp/check-bench.XXXXXX.json)"
trap 'rm -f "$sample_trace" "$sample_v1" "$sample_rt" "$trace" "$json"' EXIT
./build/trace_convert convert data/sample_temporal.txt "$sample_trace" \
  --dedup --window 150 --queries 5 | tee /dev/stderr |
  awk '/bytes\/op/ { seen = 1; if ($2 + 0 > 3.0) { print "bytes/op " $2 " > 3"; exit 1 } }
       END { if (!seen) { print "no bytes/op line in trace_convert output"; exit 1 } }'
./build/trace_convert recompress "$sample_trace" "$sample_v1" --v1 > /dev/null
./build/trace_convert recompress "$sample_v1" "$sample_rt" > /dev/null
cmp "$sample_trace" "$sample_rt"
./build/trace_convert info tests/data/golden_v1.dctr > /dev/null
./build/trace_convert info tests/data/golden_v2.dctr > /dev/null
./build/trace_convert info tests/data/golden_v3.dctr | grep -q "version:      3"
# --reads synthesis with size queries must emit a valid v3 trace.
sample_reads="$(mktemp /tmp/check-sample-reads.XXXXXX.dctr)"
snap_trace="$(mktemp /tmp/check-snap.XXXXXX.dctr)"
trap 'rm -f "$sample_trace" "$sample_v1" "$sample_rt" "$sample_reads" "$snap_trace" "$trace" "$json"' EXIT
./build/trace_convert recompress "$sample_trace" "$sample_reads" \
  --reads 80 --size-queries | grep -q "version:      3"
./build/trace_convert info "$sample_reads" > /dev/null
# snapshot subcommand: decode the golden DCSN, extract its live-edge set as
# a standalone trace, and decode that trace strictly.
./build/trace_convert snapshot tests/data/golden.dcsn "$snap_trace" |
  grep -q "applied_seq:  77"
./build/trace_convert info "$snap_trace" > /dev/null

./build/bench_suite --list | grep -q "Variants (16 registered)"
DC_BENCH_SCALE=0.01 ./build/bench_suite --record random "$trace" 2000
DC_BENCH_MILLIS=20 DC_BENCH_WARMUP=5 DC_BENCH_THREADS=1,2 \
  DC_BENCH_SCALE=0.01 DC_BENCH_READS=80 DC_BENCH_BATCH_SIZES=16,1024 \
  DC_BENCH_VARIANTS=coarse,full DC_BENCH_TRACE="$trace" \
  DC_BENCH_JSON="$json" ./build/bench_suite > /dev/null
python3 -c "
import json, sys
d = json.load(open('$json'))
n = len({r['scenario'] for r in d['results'] if r['section'] == 'sweep'})
assert n >= 13, f'expected >= 13 scenarios, got {n}'
assert [r for r in d['results'] if r['section'] == 'memory'], 'no memory records'
assert [r for r in d['results'] if r['section'] == 'calibration'], 'no calibration record'
dep = [r for r in d['results'] if r['section'] == 'sweep' and r['scenario'] == 'trace-replay-dep']
assert dep and all(r['latency_us_p99'] > 0 for r in dep), 'dep-replay latency percentiles missing'
sq = [r for r in d['results'] if r['section'] == 'sweep' and r['scenario'] == 'size-query']
assert sq and all(r['ops_component_size'] > 0 and r['component_size_per_ms'] > 0 for r in sq), \
    'size-query per-kind throughput missing'
bulk = [r for r in d['results'] if r['section'] == 'sweep' and r['scenario'] == 'bulk-connected']
assert bulk and all(r['batches'] > 0 for r in bulk), 'bulk-connected batched records missing'
fire = [r for r in d['results'] if r['section'] == 'sweep' and r['scenario'] == 'firehose']
assert fire and all(r['ops_per_ms'] > 0 for r in fire), 'firehose scenario produced no throughput'
lab = [r for r in d['results'] if r['section'] == 'labels']
assert {r['label_cache'] for r in lab} == {0, 1}, 'labels section must record cache-on and cache-off rows'
assert any(r['label_cache'] == 1 and r['label_hits'] > 0 for r in lab), 'label cache never hit in the labels smoke'
bp = [r for r in d['results'] if r['section'] == 'batchpar']
assert {r['variant'] for r in bp} == {'pbd', 'parallel-combining'}, 'batchpar head-to-head incomplete'
sh = [r for r in d['results'] if r['section'] == 'sharded']
assert {1, 4} <= {r['shards'] for r in sh}, 'sharded section missing S in {1,4}'
assert any(r['variant'].startswith('sharded<') and r['shard_cross_updates'] > 0 for r in sh), \
    'sharded section recorded no cross-shard updates'
acc = [r for r in bp if r['variant'] == 'pbd' and r['batch_size'] >= 1024 and r['threads'] == 8]
assert {r['scenario'] for r in acc} == {'batch-zipfian', 'batch-window'} and \
    all(r['ops_per_ms'] > 0 for r in acc), 'pbd acceptance records (batch >= 1024, 8 threads) missing'
ing = [r for r in d['results'] if r['section'] == 'ingest']
assert {r['mode'] for r in ing} == {'closed-loop', 'group-commit', 'firehose', 'recovery'}, \
    'ingest section must record all four modes'
f = next(r for r in ing if r['mode'] == 'firehose')
assert f['sojourn_us_p99'] > 0 and f['sojourn_us_p999'] >= f['sojourn_us_p99'], \
    'firehose sojourn percentiles missing or non-monotone'
rec = next(r for r in ing if r['mode'] == 'recovery')
assert rec['verified'] == 1 and rec['recovery_ms'] > 0 and rec['journal_records'] > 0, \
    'ingest recovery record incomplete'
ing_modes = {r['mode']: r for r in ing}
cl, gc = ing_modes['closed-loop'], ing_modes['group-commit']
assert gc['ops_per_ms'] >= 0.95 * cl['ops_per_ms'], \
    f'group commit {gc[\"ops_per_ms\"]:.1f} < closed loop {cl[\"ops_per_ms\"]:.1f} ops/ms'
print(f'ingest: group-commit/closed-loop = {gc[\"ops_per_ms\"]/cl[\"ops_per_ms\"]:.2f}x')
print(f'bench_suite smoke: {len(d[\"results\"])} JSON records, {n} scenarios')
"

# Regression diff against the checked-in baseline: coverage loss fails,
# throughput deltas are calibration-normalized but warn-only (still noisy —
# gate throughput by diffing two runs of bench_suite on one machine instead).
python3 scripts/bench_diff.py bench/baseline.json "$json" --warn-only

# Optional mirror of the CI tsan job (slow; needs a second build tree).
if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
  cmake -B build-tsan -S . -DCONDYN_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" \
    --target test_concurrent test_nb_hdt test_scenarios test_replay_dep \
             test_query_api test_label_cache test_batch test_pbd test_sharded \
             test_ingest test_server
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir build-tsan \
    --output-on-failure -j 2 \
    -R 'test_concurrent|test_nb_hdt|test_scenarios|test_replay_dep|test_query_api|test_label_cache|test_batch|test_pbd|test_sharded|test_ingest|test_server'
fi

# Optional mirror of the CI crash-recovery job: kill -9 the serving process
# at a randomized point mid-ingest, then recover from snapshot + journal
# tail and require DSU-oracle equality. Two rounds on one directory so the
# second pass also exercises journal reattach over a truncated torn tail.
if [[ "${CHECK_RECOVERY:-0}" == "1" ]]; then
  recovery_dir="$(mktemp -d /tmp/check-recovery.XXXXXX)"
  recover_out="$(mktemp /tmp/check-recover.XXXXXX.out)"
  for round in 1 2; do
    delay="$(python3 -c "import random; random.seed(${CHECK_RECOVERY_SEED:-$$} + $round); print(round(random.uniform(0.4, 2.0), 2))")"
    echo "crash-recovery round $round: killing after ${delay}s"
    ./build/example_ingest_service serve "$recovery_dir" 4096 20000 &
    serve_pid=$!
    sleep "$delay"
    kill -9 "$serve_pid"
    wait "$serve_pid" || true
    test -s "$recovery_dir/journal.dcjl"
    ./build/example_ingest_service recover "$recovery_dir" | tee "$recover_out"
    grep -q "verified: recovered graph matches DSU oracle" "$recover_out"
  done
  rm -rf "$recovery_dir" "$recover_out"
fi

# Optional mirror of the CI serve-smoke job: replay a frozen DCTR trace
# open-loop against condyn_server, assert the serve JSON record, then drive
# an fsync-throttled server past capacity and require shedding (ops_shed >
# 0, ops_failed == 0) instead of collapse. SIGTERM must drain to exit 0.
if [[ "${CHECK_SERVE:-0}" == "1" ]]; then
  serve_dir="$(mktemp -d /tmp/check-serve.XXXXXX)"
  ./build/loadgen --make-trace "$serve_dir/serve.dctr" --vertices 4096 \
    --ops 200000 --seed "${CHECK_SERVE_SEED:-$$}"
  DC_SERVER_PORT=18431 DC_SERVER_VERTICES=4096 \
    ./build/condyn_server > "$serve_dir/server.log" &
  server_pid=$!
  for _ in $(seq 50); do
    grep -q "listening" "$serve_dir/server.log" && break; sleep 0.2
  done
  ./build/loadgen --port 18431 --trace "$serve_dir/serve.dctr" \
    --rate 5000 --connections 8 --duration 5 --batch 8 --processes 2 \
    --json "$serve_dir/serve.json"
  python3 -c "
import json
rec = json.load(open('$serve_dir/serve.json'))['results'][0]
assert rec['section'] == 'serve' and rec['achieved_rate'] > 0, rec
assert rec['ops_failed'] == 0 and 0 < rec['latency_us_p999'] < 60e6, rec
print('serve ok:', rec['achieved_rate'], 'ops/s; p999', rec['latency_us_p999'], 'us')
"
  kill -TERM "$server_pid"
  wait "$server_pid"
  grep -q "condyn_server exit" "$serve_dir/server.log"
  DC_SERVER_PORT=18432 DC_SERVER_VERTICES=4096 DC_SERVER_INFLIGHT=4 \
    DC_INGEST_BATCH=4 DC_JOURNAL="$serve_dir/journal.dcjl" \
    ./build/condyn_server > "$serve_dir/overload.log" &
  server_pid=$!
  for _ in $(seq 50); do
    grep -q "listening" "$serve_dir/overload.log" && break; sleep 0.2
  done
  ./build/loadgen --port 18432 --trace "$serve_dir/serve.dctr" \
    --rate 40000 --connections 8 --duration 5 --batch 8 \
    --json "$serve_dir/overload.json"
  python3 -c "
import json
rec = json.load(open('$serve_dir/overload.json'))['results'][0]
assert rec['ops_shed'] > 0 and rec['ops_failed'] == 0 and rec['ops_acked'] > 0, rec
print('overload ok: shed', rec['ops_shed'], 'acked', rec['ops_acked'])
"
  kill -TERM "$server_pid"
  wait "$server_pid"
  grep -q "condyn_server exit" "$serve_dir/overload.log"
  rm -rf "$serve_dir"
fi

echo "check.sh: all green"
