#!/usr/bin/env bash
# Local mirror of CI: configure, build, run the tier-1 test suite
# (ROADMAP.md), then smoke-run the examples and the unified bench suite
# across every scenario. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

./build/example_batch_processor
./build/example_trace_replay

./build/bench_suite --list > /dev/null
trace="$(mktemp /tmp/check-trace.XXXXXX.bin)"
json="$(mktemp /tmp/check-bench.XXXXXX.json)"
trap 'rm -f "$trace" "$json"' EXIT
DC_BENCH_SCALE=0.01 ./build/bench_suite --record random "$trace" 2000
DC_BENCH_MILLIS=20 DC_BENCH_WARMUP=5 DC_BENCH_THREADS=1,2 \
  DC_BENCH_SCALE=0.01 DC_BENCH_READS=80 DC_BENCH_BATCH=16 \
  DC_BENCH_VARIANTS=coarse,full DC_BENCH_TRACE="$trace" \
  DC_BENCH_JSON="$json" ./build/bench_suite > /dev/null
python3 -c "
import json, sys
d = json.load(open('$json'))
n = len({r['scenario'] for r in d['results'] if r['section'] == 'sweep'})
assert n >= 9, f'expected >= 9 scenarios, got {n}'
assert [r for r in d['results'] if r['section'] == 'memory'], 'no memory records'
print(f'bench_suite smoke: {len(d[\"results\"])} JSON records, {n} scenarios')
"

# Regression diff against the checked-in baseline: coverage loss fails,
# throughput deltas are warn-only (machine-dependent — gate throughput by
# diffing two runs of bench_suite on one machine instead).
python3 scripts/bench_diff.py bench/baseline.json "$json" --warn-only

echo "check.sh: all green"
