#!/usr/bin/env bash
# Local mirror of CI: configure, build, run the tier-1 test suite
# (ROADMAP.md), then smoke-run the batch pipeline. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

./build/example_batch_processor
DC_BENCH_MILLIS=30 DC_BENCH_WARMUP=10 DC_BENCH_THREADS=1 \
  DC_BENCH_SCALE=0.01 DC_BENCH_VARIANTS=coarse ./build/bench_batch

echo "check.sh: all green"
