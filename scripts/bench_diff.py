#!/usr/bin/env python3
"""Compare two bench_suite.json artifacts and flag throughput regressions.

Usage:
    scripts/bench_diff.py BASELINE.json CURRENT.json [options]
    scripts/bench_diff.py "b1.json,b2.json,b3.json" \
        "c1.json,c2.json,c3.json" --repeat 3

Sweep records are matched on (scenario, graph, variant, threads,
read_percent, batch_size); a data point whose ops_per_ms dropped by more
than --threshold percent (default 10) is a regression. Memory-section
records are matched the same way on allocs_per_op (an *increase* beyond the
threshold is the regression there). Sharded-section records are matched on
(scenario, graph, variant, threads, shards, cross_pct) with the synthetic
graph's "@<n>" size suffix stripped, so baselines recorded at one
DC_BENCH_SCALE still diff against runs at another.

Either side may be a comma-separated list of artifacts from repeated
bench_suite runs: each data point is then the per-key *median* across the
runs, which removes most scheduler noise — the first step toward
hard-gating throughput in CI. --repeat N asserts both sides carry exactly
N artifacts (catches a forgotten run in scripted sweeps). Calibration
records are median-combined the same way.

Exit status: 0 = clean, 1 = regressions (or coverage loss), 2 = bad input.

Two classes of finding:
  * coverage loss — a (scenario x variant x ...) key present in the
    baseline but absent from the current run. Machine-independent, always
    an error unless --allow-missing.
  * throughput drop — ops_per_ms fell beyond the threshold. Throughput is
    machine-dependent, so CI compares a fresh run against a checked-in
    baseline with --warn-only (drops are reported, not fatal) while local
    before/after runs on one machine use the default hard mode (medians
    over --repeat runs recommended).
"""

import argparse
import json
import statistics
import sys

SWEEP_KEY = ("scenario", "graph", "variant", "threads", "read_percent",
             "batch_size")
MEMORY_KEY = ("scenario", "graph", "variant", "threads")
SHARDED_KEY = ("scenario", "graph", "variant", "threads", "shards",
               "cross_pct")


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if "results" not in data:
        sys.exit(f"bench_diff: {path} has no 'results' array "
                 "(not a bench_suite artifact?)")
    return data


def load_side(spec, repeat, side):
    """One side of the diff: a path or a comma-separated list of paths from
    repeated runs. Returns the list of loaded artifacts."""
    paths = [p for p in spec.split(",") if p.strip()]
    if repeat and len(paths) != repeat:
        sys.exit(f"bench_diff: --repeat {repeat} but the {side} side lists "
                 f"{len(paths)} artifact(s): {spec}")
    return [load(p) for p in paths]


def index_one(results, section, key_fields, value_field):
    out = {}
    for r in results:
        if r.get("section") != section or r.get(value_field) is None:
            continue
        r = dict(r)
        if str(r.get("scenario", "")).startswith("trace-replay"):
            # The trace-replay family's "graph" is the trace file *path*,
            # which varies between runs/machines; normalize so the data
            # points match (covers trace-replay and trace-replay-dep).
            r["graph"] = "<trace>"
        if section == "sharded":
            # The cross-shard graph's name carries its vertex count
            # ("xshard-s4-c10@1638"), which scales with DC_BENCH_SCALE;
            # strip it so differently-scaled runs still line up.
            r["graph"] = str(r.get("graph", "")).split("@", 1)[0]
        key = tuple(r.get(k) for k in key_fields)
        out[key] = r[value_field]
    return out


def index(datas, section, key_fields, value_field, scale=1.0):
    """Index every artifact of one side and median-combine per key. A key
    only counts as covered if *some* run produced it (runs that missed a
    point — e.g. a crashed rerun — don't erase the side's coverage)."""
    runs = [index_one(d["results"], section, key_fields, value_field)
            for d in datas]
    keys = set().union(*runs) if runs else set()
    out = {}
    for key in keys:
        values = [r[key] for r in runs if key in r]
        out[key] = statistics.median(values) * scale
    return out


def calibration_ops_per_ms(datas):
    """The fixed single-thread coarse run bench_suite stamps into every
    artifact (section == "calibration"), median-combined across repeated
    runs; None for pre-calibration files."""
    values = []
    for data in datas:
        for r in data.get("results", []):
            if r.get("section") == "calibration" and r.get("ops_per_ms"):
                values.append(r["ops_per_ms"])
    return statistics.median(values) if values else None


def fmt_key(key_fields, key):
    return " ".join(f"{f}={v}" for f, v in zip(key_fields, key)
                    if v not in (None, "", 0) or f in ("scenario", "variant"))


def compare(name, key_fields, base, cur, threshold, higher_is_better):
    """Returns (regressions, missing, improvements) message lists."""
    regressions, missing, improvements = [], [], []
    for key, b in sorted(base.items(), key=str):
        if key not in cur:
            missing.append(f"  [{name}] missing: {fmt_key(key_fields, key)}")
            continue
        c = cur[key]
        if b <= 0:
            continue
        delta_pct = 100.0 * (c - b) / b
        drop = -delta_pct if higher_is_better else delta_pct
        fmt = ".1f" if min(b, c) >= 10 else ".4g"
        line = (f"  [{name}] {fmt_key(key_fields, key)}: "
                f"{b:{fmt}} -> {c:{fmt}} ({delta_pct:+.1f}%)")
        if drop > threshold:
            regressions.append(line)
        elif drop < -threshold:
            improvements.append(line)
    return regressions, missing, improvements


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report throughput drops without failing "
                         "(for cross-machine comparisons in CI)")
    ap.add_argument("--allow-missing", action="store_true",
                    help="do not fail on scenario x variant coverage loss")
    ap.add_argument("--no-calibration", action="store_true",
                    help="compare raw throughput without scaling by the "
                         "calibration records (single-machine diffs)")
    ap.add_argument("--repeat", type=int, default=0,
                    help="expect N comma-separated artifacts per side and "
                         "compare per-key medians over them (noise "
                         "suppression for throughput gating)")
    args = ap.parse_args()

    base = load_side(args.baseline, args.repeat, "baseline")
    cur = load_side(args.current, args.repeat, "current")

    # Cross-machine normalization: both artifacts carry a fixed
    # single-thread coarse calibration run; scaling the current run's
    # throughput by base_cal/cur_cal removes the machine-speed component,
    # so the residual deltas are (mostly) code, not hardware.
    cal_scale = 1.0
    b_cal, c_cal = calibration_ops_per_ms(base), calibration_ops_per_ms(cur)
    if args.no_calibration:
        pass
    elif b_cal and c_cal:
        cal_scale = b_cal / c_cal
        print(f"calibration: baseline {b_cal:.1f} ops/ms, current "
              f"{c_cal:.1f} ops/ms -> throughput scale {cal_scale:.3f}")
    else:
        print("calibration: record missing from "
              + ("both artifacts" if not b_cal and not c_cal else
                 args.baseline if not b_cal else args.current)
              + "; comparing raw throughput")

    # allocs_per_op is machine-independent; only throughput is scaled.
    checks = [
        ("sweep", SWEEP_KEY, "ops_per_ms", True, cal_scale),
        ("sharded", SHARDED_KEY, "ops_per_ms", True, cal_scale),
        ("memory", MEMORY_KEY, "allocs_per_op", False, 1.0),
    ]
    all_regressions, all_missing, all_improvements = [], [], []
    compared = 0
    for section, key_fields, value_field, higher, scale in checks:
        b = index(base, section, key_fields, value_field)
        c = index(cur, section, key_fields, value_field, scale)
        compared += len(b)
        r, m, i = compare(section, key_fields, b, c, args.threshold, higher)
        all_regressions += r
        all_missing += m
        all_improvements += i

    if compared == 0:
        sys.exit(f"bench_diff: no comparable records in {args.baseline}")

    print(f"bench_diff: {compared} baseline data points, "
          f"threshold {args.threshold:.0f}%")
    for title, lines in (("coverage loss", all_missing),
                         ("regressions", all_regressions),
                         ("improvements", all_improvements)):
        if lines:
            print(f"{title} ({len(lines)}):")
            for line in lines:
                print(line)
    if not (all_missing or all_regressions):
        print("no regressions")

    if all_missing and not args.allow_missing:
        return 1
    if all_regressions and not args.warn_only:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
