// Sharded flat map tests: record stability (the property every lock-free
// CAS in the repo depends on — now across growth segments), tombstone
// reuse, concurrent get_or_create races, iteration.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/sharded_map.hpp"

namespace condyn {
namespace {

TEST(ShardedU64Map, FindVsCreate) {
  ShardedU64Map<int> m;
  EXPECT_EQ(m.find(1), nullptr);
  int* p = m.get_or_create(1);
  *p = 42;
  EXPECT_EQ(m.find(1), p);
  EXPECT_EQ(*m.find(1), 42);
  EXPECT_EQ(m.get_or_create(1), p) << "records must be stable";
}

TEST(ShardedU64Map, EraseAndClear) {
  ShardedU64Map<int> m;
  m.get_or_create(1);
  m.get_or_create(2);
  m.erase(1);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_NE(m.find(2), nullptr);
  m.clear();
  EXPECT_EQ(m.find(2), nullptr);
}

TEST(ShardedU64Map, ForEachVisitsAll) {
  ShardedU64Map<uint64_t> m;
  for (uint64_t k = 0; k < 300; ++k) *m.get_or_create(k) = k * 2;
  std::set<uint64_t> keys;
  m.for_each([&](uint64_t k, uint64_t& v) {
    EXPECT_EQ(v, k * 2);
    keys.insert(k);
  });
  EXPECT_EQ(keys.size(), 300u);
}

TEST(ShardedEdgeMap, CanonicalKeys) {
  ShardedEdgeMap<int> m;
  *m.get_or_create(Edge(3, 9)) = 5;
  EXPECT_EQ(*m.find(Edge(9, 3)), 5);
}

TEST(ShardedU64Map, GrowthNeverMovesRecords) {
  // Start tiny (expected 0 keys, 1 shard) and insert far past the initial
  // segment: every growth appends a segment instead of rehashing, so
  // pointers handed out before any growth stay valid and findable.
  ShardedU64Map<uint64_t> m(0, 1);
  constexpr uint64_t kKeys = 5000;
  std::vector<uint64_t*> recs(kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    recs[k] = m.get_or_create(k);
    *recs[k] = k ^ 0xabcdull;
  }
  EXPECT_GT(m.segments(), 1u) << "test must actually exercise growth";
  EXPECT_EQ(m.size(), kKeys);
  for (uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(m.find(k), recs[k]) << "record moved for key " << k;
    EXPECT_EQ(*recs[k], k ^ 0xabcdull);
    EXPECT_EQ(m.get_or_create(k), recs[k]);
  }
}

TEST(ShardedU64Map, TombstoneReuseBoundsCapacity) {
  // The arc maps churn like this: the same edge keys get erased on cut and
  // re-created on link, over and over. A re-created key's probe chain runs
  // through its own tombstone, so the slot is reused in place and the table
  // must not grow at all across rounds.
  ShardedU64Map<int> m(256, 4);
  for (uint64_t k = 0; k < 200; ++k) *m.get_or_create(k) = 1;
  const std::size_t cap0 = m.capacity();
  const std::size_t segs0 = m.segments();
  for (int round = 0; round < 500; ++round) {
    for (uint64_t k = 0; k < 200; ++k) m.erase(k);
    for (uint64_t k = 0; k < 200; ++k) *m.get_or_create(k) = round;
  }
  EXPECT_EQ(m.size(), 200u);
  // Chain overlap between keys can displace a handful of slots per round,
  // but reuse must keep the table from scaling with round count (the seed's
  // unordered_map freed and reallocated a node per cycle instead).
  EXPECT_LE(m.capacity(), cap0 * 2)
      << "tombstone reuse failed: same-key churn grew the table without bound";
  EXPECT_LE(m.segments(), segs0 + 1);
}

TEST(ShardedU64Map, EraseThenRecreateIsFresh) {
  ShardedU64Map<int> m;
  int* a = m.get_or_create(7);
  *a = 123;
  m.erase(7);
  EXPECT_EQ(m.find(7), nullptr);
  int* b = m.get_or_create(7);
  EXPECT_EQ(*b, 0) << "reused slot must hold a freshly-constructed record";
}

TEST(ShardedU64Map, SizedConstructionAvoidsGrowth) {
  ShardedU64Map<uint64_t> m(10000);
  for (uint64_t k = 0; k < 10000; ++k) *m.get_or_create(k) = k;
  // Segments materialize lazily (at most one per touched shard); a map
  // sized from expected_keys must never need a *growth* segment on top.
  EXPECT_LE(m.segments(), 64u)
      << "a map sized from expected_keys should never grow";
  EXPECT_EQ(m.size(), 10000u);
}

TEST(ShardedU64MapStress, ConcurrentChurnAgainstStableReaders) {
  // Writers churn disjoint key ranges through insert/erase cycles while
  // other threads hammer a stable shared range through pointers captured
  // once — shard locking plus stable addresses must keep both safe.
  ShardedU64Map<std::atomic<int>> m(64, 8);
  constexpr uint64_t kStable = 64;
  std::vector<std::atomic<int>*> stable;
  for (uint64_t k = 0; k < kStable; ++k)
    stable.push_back(m.get_or_create(1000000 + k));
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4000; ++i) {
        const uint64_t k = static_cast<uint64_t>(t) * 100000 + i % 512;
        m.get_or_create(k)->fetch_add(1, std::memory_order_relaxed);
        if (i % 3 == 0) m.erase(k);
        stable[i % kStable]->fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (uint64_t k = 0; k < kStable; ++k) {
    EXPECT_EQ(m.find(1000000 + k), stable[k]);
  }
  int total = 0;
  for (auto* rec : stable) total += rec->load();
  EXPECT_EQ(total, kThreads * 4000);
}

TEST(ShardedU64MapStress, ConcurrentGetOrCreateConverges) {
  // All threads race to create the same keys; every thread must end up with
  // the same record pointer per key, and the record must survive the race.
  ShardedU64Map<std::atomic<int>> m;
  constexpr int kThreads = 6;
  constexpr uint64_t kKeys = 500;
  std::vector<std::vector<std::atomic<int>*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].resize(kKeys);
      for (uint64_t k = 0; k < kKeys; ++k) {
        std::atomic<int>* rec = m.get_or_create(k);
        rec->fetch_add(1, std::memory_order_relaxed);
        seen[t][k] = rec;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (uint64_t k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t][k], seen[0][k]);
    EXPECT_EQ(seen[0][k]->load(), kThreads);
  }
}

}  // namespace
}  // namespace condyn
