// Sharded map tests: record stability (the property every lock-free CAS in
// the repo depends on), concurrent get_or_create races, iteration.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/sharded_map.hpp"

namespace condyn {
namespace {

TEST(ShardedU64Map, FindVsCreate) {
  ShardedU64Map<int> m;
  EXPECT_EQ(m.find(1), nullptr);
  int* p = m.get_or_create(1);
  *p = 42;
  EXPECT_EQ(m.find(1), p);
  EXPECT_EQ(*m.find(1), 42);
  EXPECT_EQ(m.get_or_create(1), p) << "records must be stable";
}

TEST(ShardedU64Map, EraseAndClear) {
  ShardedU64Map<int> m;
  m.get_or_create(1);
  m.get_or_create(2);
  m.erase(1);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_NE(m.find(2), nullptr);
  m.clear();
  EXPECT_EQ(m.find(2), nullptr);
}

TEST(ShardedU64Map, ForEachVisitsAll) {
  ShardedU64Map<uint64_t> m;
  for (uint64_t k = 0; k < 300; ++k) *m.get_or_create(k) = k * 2;
  std::set<uint64_t> keys;
  m.for_each([&](uint64_t k, uint64_t& v) {
    EXPECT_EQ(v, k * 2);
    keys.insert(k);
  });
  EXPECT_EQ(keys.size(), 300u);
}

TEST(ShardedEdgeMap, CanonicalKeys) {
  ShardedEdgeMap<int> m;
  *m.get_or_create(Edge(3, 9)) = 5;
  EXPECT_EQ(*m.find(Edge(9, 3)), 5);
}

TEST(ShardedU64MapStress, ConcurrentGetOrCreateConverges) {
  // All threads race to create the same keys; every thread must end up with
  // the same record pointer per key, and the record must survive the race.
  ShardedU64Map<std::atomic<int>> m;
  constexpr int kThreads = 6;
  constexpr uint64_t kKeys = 500;
  std::vector<std::vector<std::atomic<int>*>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t].resize(kKeys);
      for (uint64_t k = 0; k < kKeys; ++k) {
        std::atomic<int>* rec = m.get_or_create(k);
        rec->fetch_add(1, std::memory_order_relaxed);
        seen[t][k] = rec;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (uint64_t k = 0; k < kKeys; ++k) {
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t][k], seen[0][k]);
    EXPECT_EQ(seen[0][k]->load(), kThreads);
  }
}

}  // namespace
}  // namespace condyn
