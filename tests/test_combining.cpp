// Combining baselines (variants 12, 13): sequential semantics, combiner
// batching under concurrency, and the parallel read phase of parallel
// combining all answering consistently.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "combining/flat_combining.hpp"
#include "combining/parallel_combining.hpp"
#include "graph/dsu.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

template <typename Dc>
void sequential_oracle(Dc& dc, uint64_t seed) {
  const Vertex n = dc.num_vertices();
  Xoshiro256 rng(seed);
  std::set<Edge> present;
  for (int op = 0; op < 1200; ++op) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    const Edge e(a, b);
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(dc.add_edge(a, b), present.insert(e).second);
        break;
      case 1:
        EXPECT_EQ(dc.remove_edge(a, b), present.erase(e) != 0);
        break;
      default: {
        Dsu oracle(n);
        for (const Edge& pe : present) oracle.unite(pe.u, pe.v);
        EXPECT_EQ(dc.connected(a, b), oracle.connected(a, b));
      }
    }
  }
}

TEST(FlatCombining, SequentialOracle) {
  FlatCombiningDc dc(32);
  sequential_oracle(dc, 5);
}

TEST(ParallelCombining, SequentialOracle) {
  ParallelCombiningDc dc(32);
  sequential_oracle(dc, 6);
}

template <typename Dc>
void concurrent_invariant_pairs() {
  // Two rings churned on chord edges only: within-ring queries always true,
  // cross-ring always false — submitted from many threads so operations
  // actually batch through the combiner.
  const Vertex kRing = 10;
  Dc dc(2 * kRing);
  for (Vertex c = 0; c < 2; ++c)
    for (Vertex i = 0; i < kRing; ++i)
      dc.add_edge(c * kRing + i, c * kRing + (i + 1) % kRing);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(50 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex c = static_cast<Vertex>(rng.next_below(2));
        const Vertex base = c * kRing;
        const Vertex a = base + static_cast<Vertex>(rng.next_below(kRing));
        const Vertex b = base + static_cast<Vertex>(rng.next_below(kRing));
        if (a == b) continue;
        const Vertex lo = std::min(a, b) - base, hi = std::max(a, b) - base;
        const bool ring_edge = hi - lo == 1 || (lo == 0 && hi == kRing - 1);
        switch (rng.next_below(3)) {
          case 0:
            if (!ring_edge) dc.add_edge(a, b);
            break;
          case 1:
            if (!ring_edge) dc.remove_edge(a, b);
            break;
          default:
            ASSERT_TRUE(dc.connected(a, b));
            ASSERT_FALSE(dc.connected(a, (b + kRing) % (2 * kRing)));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

TEST(FlatCombining, ConcurrentInvariantPairs) {
  concurrent_invariant_pairs<FlatCombiningDc>();
}

TEST(ParallelCombining, ConcurrentInvariantPairs) {
  concurrent_invariant_pairs<ParallelCombiningDc>();
}

TEST(FlatCombining, NonBlockingReadsBypassCombiner) {
  // Variant 13's queries never enter the combiner: a query must complete
  // even while another thread is parked mid-update... simplest observable
  // contract: queries from this thread succeed while a slot of a peer
  // remains pending because no combiner ran (we never call updates here).
  FlatCombiningDc dc(8);
  dc.add_edge(0, 1);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(dc.connected(0, 1));
    ASSERT_FALSE(dc.connected(0, 7));
  }
}

}  // namespace
}  // namespace condyn
