// Property-based sweeps (TEST_P over seeds / sizes / shapes): structural
// invariants that must hold for *every* randomized run, not just example
// cases — treap shape validity after arbitrary forest histories, spanning
// forest minimality/maximality in the HDT engine, level monotonicity, and
// cross-variant result equality on identical histories.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "api/factory.hpp"
#include "core/hdt.hpp"
#include "core/nb_hdt.hpp"
#include "graph/cc.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

// --------------------------------------------------------------------------
// ETT shape properties over random histories
// --------------------------------------------------------------------------

class EttShapeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EttShapeSweep, TreapValidAfterRandomForestHistory) {
  const Vertex n = 64;
  ett::Forest f(n);
  Xoshiro256 rng(GetParam());
  std::set<Edge> forest_edges;
  Dsu components(n);  // forest constraint oracle

  for (int op = 0; op < 800; ++op) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    if (rng.next_below(2) == 0) {
      if (!components.connected(a, b)) {
        f.link(a, b);
        forest_edges.insert(Edge(a, b));
        components.unite(a, b);
      }
    } else if (!forest_edges.empty()) {
      // Remove a random present forest edge.
      auto it = forest_edges.lower_bound(
          Edge(static_cast<Vertex>(rng.next_below(n)), 0));
      if (it == forest_edges.end()) it = forest_edges.begin();
      const Edge e = *it;
      forest_edges.erase(it);
      f.cut(e.u, e.v);
      // Rebuild the DSU oracle (forests have no decremental DSU).
      components = Dsu(n);
      for (const Edge& fe : forest_edges) components.unite(fe.u, fe.v);
    }
    if (op % 100 == 99) {
      // Every component's tree satisfies heap order, parent/child and
      // subtree-counter consistency; tour length is 1 vertex + 2 arcs/edge.
      for (Vertex v = 0; v < n; ++v) {
        const std::size_t nodes = f.validate(v);
        EXPECT_GE(nodes, 1u);
      }
    }
  }
  // Final full check: tour node count = |V_comp| + 2 |E_comp|.
  std::map<Vertex, std::size_t> comp_edges;
  for (const Edge& e : forest_edges) ++comp_edges[components.find(e.u)];
  for (Vertex v = 0; v < n; ++v) {
    const std::size_t nodes = f.validate(v);
    const Vertex root = components.find(v);
    EXPECT_EQ(nodes, components.component_size(v) + 2 * comp_edges[root]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EttShapeSweep,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// --------------------------------------------------------------------------
// HDT level-structure properties
// --------------------------------------------------------------------------

struct HdtSweepParam {
  uint64_t seed;
  Vertex n;
  std::size_t m;
};

class HdtPropertySweep : public ::testing::TestWithParam<HdtSweepParam> {};

TEST_P(HdtPropertySweep, SpanningForestIsMinimalAndLevelsMonotone) {
  const auto [seed, n, m] = GetParam();
  Graph g = gen::erdos_renyi(n, m, seed);
  Hdt dc(n);
  std::size_t spanning = 0;
  std::map<Edge, int> last_level;
  for (const Edge& e : g.edges()) {
    dc.add_edge(e.u, e.v);
    if (dc.is_spanning(e.u, e.v)) ++spanning;
  }
  // Property 1: spanning edge count = n - #components (forest minimality).
  const ComponentInfo cc = connected_components(g);
  EXPECT_EQ(spanning, static_cast<std::size_t>(n - cc.num_components));

  // Property 2: under removal churn, a non-spanning edge's level never
  // decreases while it stays in the graph (levels only rise, the
  // amortization argument of §4.1).
  Xoshiro256 rng(seed ^ 0xabcd);
  std::set<Edge> present(g.edges().begin(), g.edges().end());
  for (int round = 0; round < 300; ++round) {
    const Edge& e = g.edges()[rng.next_below(g.edges().size())];
    if (present.count(e) != 0u) {
      dc.remove_edge(e.u, e.v);
      present.erase(e);
      last_level.erase(e);
    } else {
      dc.add_edge(e.u, e.v);
      present.insert(e);
    }
    for (const Edge& pe : present) {
      const int lvl = dc.edge_level(pe.u, pe.v);
      ASSERT_GE(lvl, 0);
      ASSERT_LE(lvl, dc.max_level());
      auto it = last_level.find(pe);
      if (it != last_level.end()) {
        ASSERT_GE(lvl, it->second) << "level decreased for a live edge";
        it->second = lvl;
      } else {
        last_level.emplace(pe, lvl);
      }
    }
  }
  dc.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HdtPropertySweep,
    ::testing::Values(HdtSweepParam{1, 32, 64}, HdtSweepParam{2, 32, 160},
                      HdtSweepParam{3, 64, 96}, HdtSweepParam{4, 64, 512},
                      HdtSweepParam{5, 128, 256},
                      HdtSweepParam{6, 128, 1024}),
    [](const ::testing::TestParamInfo<HdtSweepParam>& info) {
      return "s" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n) + "_m" +
             std::to_string(info.param.m);
    });

// --------------------------------------------------------------------------
// Cross-variant equivalence: identical histories → identical answers
// --------------------------------------------------------------------------

class VariantPairSweep
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(VariantPairSweep, AgreesWithReferenceVariantOnSameHistory) {
  const auto [id, seed] = GetParam();
  const Vertex n = 40;
  auto ref = make_variant(1, n);  // coarse = reference implementation
  auto dut = make_variant(id, n);
  Xoshiro256 rng(seed);
  for (int op = 0; op < 1000; ++op) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(dut->add_edge(a, b), ref->add_edge(a, b)) << "op " << op;
        break;
      case 1:
        ASSERT_EQ(dut->remove_edge(a, b), ref->remove_edge(a, b))
            << "op " << op;
        break;
      default:
        ASSERT_EQ(dut->connected(a, b), ref->connected(a, b)) << "op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, VariantPairSweep,
    ::testing::Combine(::testing::Values(3, 6, 8, 9, 10, 12, 13, 14),
                       ::testing::Values(uint64_t{7}, uint64_t{8})),
    [](const ::testing::TestParamInfo<std::tuple<int, uint64_t>>& info) {
      std::string n = all_variants()[std::get<0>(info.param) - 1].name;
      for (char& c : n)
        if (c == '-') c = '_';
      return n + "_seed" + std::to_string(std::get<1>(info.param));
    });

// --------------------------------------------------------------------------
// NbHdt-specific: stamp monotonicity across incarnations
// --------------------------------------------------------------------------

TEST(NbHdtProperties, StampsGrowAcrossIncarnations) {
  // The ABA defense requires every re-insertion of an edge to observe a
  // fresh stamp; edge_level staying valid across 100 incarnations implies
  // the state machine never confused two lives of the edge.
  NbHdt dc(8, NbLockMode::kCoarseSpin);
  dc.add_edge(0, 1);
  dc.add_edge(1, 2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(dc.add_edge(0, 2));
    ASSERT_EQ(dc.edge_level(0, 2), 0);
    ASSERT_FALSE(dc.is_spanning(0, 2));  // always closes the same triangle
    ASSERT_TRUE(dc.remove_edge(0, 2));
    ASSERT_EQ(dc.edge_level(0, 2), -1);
  }
  dc.check_invariants();
}

TEST(NbHdtProperties, QuiescentSpanningCountIsMinimal) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    Graph g = gen::erdos_renyi(64, 200, seed);
    NbHdt dc(64, NbLockMode::kFine);
    for (const Edge& e : g.edges()) dc.add_edge(e.u, e.v);
    std::size_t spanning = 0;
    for (const Edge& e : g.edges())
      if (dc.is_spanning(e.u, e.v)) ++spanning;
    const ComponentInfo cc = connected_components(g);
    EXPECT_EQ(spanning, static_cast<std::size_t>(64 - cc.num_components));
  }
}

}  // namespace
}  // namespace condyn
