// Utility substrate tests: PRNG determinism and bounds, spin/RW/elision
// locks (mutual exclusion, shared readers, try_lock), lock-wait accounting,
// backoff, thread indexing.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/elision_lock.hpp"
#include "util/lock_stats.hpp"
#include "util/random.hpp"
#include "util/rw_lock.hpp"
#include "util/small_flat_set.hpp"
#include "util/spinlock.hpp"
#include "util/thread_index.hpp"

namespace condyn {
namespace {

// --------------------------------------------------------------------------
// SmallFlatSet (the AdjSet representation of the locked engine)
// --------------------------------------------------------------------------

TEST(SmallFlatSet, InsertEraseContains) {
  SmallFlatSet<uint32_t> s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.insert(5));
  EXPECT_FALSE(s.insert(5)) << "duplicate insert must be rejected";
  EXPECT_TRUE(s.insert(9));
  EXPECT_TRUE(s.contains(5));
  EXPECT_FALSE(s.contains(7));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.erase(5));
  EXPECT_FALSE(s.erase(5));
  EXPECT_FALSE(s.contains(5));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.front(), 9u);
}

TEST(SmallFlatSet, GrowsPastInlineCapacity) {
  SmallFlatSet<uint32_t, 4> s;
  for (uint32_t v = 0; v < 100; ++v) EXPECT_TRUE(s.insert(v));
  EXPECT_EQ(s.size(), 100u);
  for (uint32_t v = 0; v < 100; ++v) EXPECT_TRUE(s.contains(v));
  std::set<uint32_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 100u);
  for (uint32_t v = 0; v < 100; v += 2) EXPECT_TRUE(s.erase(v));
  EXPECT_EQ(s.size(), 50u);
  for (uint32_t v = 1; v < 100; v += 2) EXPECT_TRUE(s.contains(v));
}

TEST(SmallFlatSet, FrontAndDrainLikeTheEngine) {
  // The replacement search drains a set via front()+erase() — the loop must
  // terminate and visit every element exactly once.
  SmallFlatSet<uint32_t> s;
  for (uint32_t v = 10; v < 30; ++v) s.insert(v);
  std::set<uint32_t> drained;
  while (!s.empty()) {
    const uint32_t v = s.front();
    EXPECT_TRUE(drained.insert(v).second);
    EXPECT_TRUE(s.erase(v));
  }
  EXPECT_EQ(drained.size(), 20u);
}

// --------------------------------------------------------------------------
// Random
// --------------------------------------------------------------------------

TEST(Random, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Random, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Random, NextBelowRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(Random, Mix64IsAPermutationSample) {
  std::set<uint64_t> outs;
  for (uint64_t i = 0; i < 1000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 1000u) << "mix64 must not collide on small inputs";
}

// --------------------------------------------------------------------------
// Locks — shared mutual-exclusion harness
// --------------------------------------------------------------------------

template <typename Lock>
void mutual_exclusion_torture(Lock& mu) {
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  int64_t counter = 0;  // deliberately non-atomic: the lock must protect it
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<Lock> lk(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock mu;
  mutual_exclusion_torture(mu);
}

TEST(SpinLock, TryLock) {
  SpinLock mu;
  EXPECT_TRUE(mu.try_lock());
  EXPECT_TRUE(mu.is_locked());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RwSpinLock, MutualExclusion) {
  RwSpinLock mu;
  mutual_exclusion_torture(mu);
}

TEST(RwSpinLock, ReadersShareDeterministically) {
  // Two readers hold the lock simultaneously: the second acquisition must
  // succeed while the first is still held (would deadlock on an exclusive
  // lock), and a writer's try_lock must fail during that window.
  RwSpinLock mu;
  mu.lock_shared();
  std::atomic<bool> second_reader_in{false};
  std::thread reader([&] {
    mu.lock_shared();  // must not block on the first shared holder
    second_reader_in.store(true, std::memory_order_release);
    mu.unlock_shared();
  });
  reader.join();
  EXPECT_TRUE(second_reader_in.load());
  EXPECT_FALSE(mu.try_lock()) << "writer entered past an active reader";
  mu.unlock_shared();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(RwSpinLock, NoReaderWriterOverlapUnderChurn) {
  RwSpinLock mu;
  std::atomic<int> readers_inside{0};
  std::atomic<bool> overlap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        mu.lock_shared();
        readers_inside.fetch_add(1);
        readers_inside.fetch_sub(1);
        mu.unlock_shared();
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 2000; ++i) {
      mu.lock();
      if (readers_inside.load() != 0) overlap.store(true);
      mu.unlock();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(overlap.load()) << "reader/writer overlap detected";
}

TEST(ElisionLock, MutualExclusionWithOrWithoutRtm) {
  ElisionLock mu;
  mutual_exclusion_torture(mu);
  // On this host elision may or may not be available; either way the lock
  // must have behaved as a lock (asserted above) and report a stable answer.
  EXPECT_EQ(ElisionLock::htm_available(), ElisionLock::htm_available());
}

TEST(LockStats, ContendedWaitIsRecorded) {
  SpinLock mu;
  lock_stats::reset_local();
  mu.lock();
  std::atomic<bool> about_to_lock{false};
  std::thread waiter([&] {
    lock_stats::reset_local();
    about_to_lock.store(true, std::memory_order_release);
    mu.lock();  // must spin until the main thread releases
    mu.unlock();
    EXPECT_GT(lock_stats::local().wait_ns, 0u);
    EXPECT_EQ(lock_stats::local().contended, 1u);
  });
  // Release only once the waiter is provably inside its lock() spin (the
  // flag plus a sleep removes the thread-startup race that made a fixed
  // sleep flaky under load).
  while (!about_to_lock.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mu.unlock();
  waiter.join();
  // The uncontended acquisition on this thread recorded no wait.
  EXPECT_EQ(lock_stats::local().wait_ns, 0u);
}

// --------------------------------------------------------------------------
// Backoff / thread index
// --------------------------------------------------------------------------

TEST(Backoff, PauseProgressesAndResets) {
  Backoff b(16);
  for (int i = 0; i < 20; ++i) b.pause();  // must not hang past the cap
  b.reset();
  b.pause();
  SUCCEED();
}

TEST(ThreadIndex, StablePerThreadUniqueAcrossThreads) {
  const unsigned mine = thread_index();
  EXPECT_EQ(thread_index(), mine);
  std::set<unsigned> seen;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const unsigned idx = thread_index();
      EXPECT_EQ(thread_index(), idx);
      std::lock_guard<std::mutex> lk(mu);
      seen.insert(idx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen.count(mine), 0u);
}

}  // namespace
}  // namespace condyn
