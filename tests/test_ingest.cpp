// The streaming ingest subsystem (DESIGN.md §11): the MPSC ring's
// producer/consumer contracts, group-commit equivalence against direct
// apply_batch, the three backpressure policies, the DCSN/DCJL durability
// formats (round trips, checked-in goldens pinning the wire bytes, torn-tail
// tolerance) and the crash-recovery path (snapshot + journal tail replay
// verified against the sequential oracle). The ring and group-commit tests
// run multi-threaded so the CI TSan job checks the ordering claims, not just
// the results.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "graph/snapshot.hpp"
#include "ingest/ingest.hpp"
#include "query_oracle.hpp"
#include "util/random.hpp"
#include "util/ring_buffer.hpp"

namespace condyn {
namespace {

std::string source_path(const std::string& rel) {
  return std::string(CONDYN_SOURCE_DIR) + "/" + rel;
}

std::string file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Unique scratch path under gtest's per-run temp dir.
std::string temp_path(const std::string& name) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + info->test_suite_name() + "_" +
         info->name() + "_" + name;
}

/// Deterministic update-heavy program (adds/removes/queries).
std::vector<Op> random_program(Vertex n, std::size_t count, uint64_t seed,
                               int read_percent = 20) {
  std::vector<Op> ops;
  ops.reserve(count);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    auto v = static_cast<Vertex>(rng.next_below(n - 1));
    if (v >= u) ++v;
    const auto roll = static_cast<int>(rng.next_below(100));
    ops.push_back(roll < read_percent        ? Op::connected(u, v)
                  : roll < read_percent + 45 ? Op::add(u, v)
                                             : Op::remove(u, v));
  }
  return ops;
}

/// Full-state equality against the sequential oracle: representative per
/// vertex (canonical smallest-id contract makes it variant-independent).
void expect_matches_oracle(DynamicConnectivity& dc,
                           testutil::QueryOracle& oracle, Vertex n) {
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_EQ(dc.representative(v), oracle.apply(Op::representative(v)))
        << "representative mismatch at vertex " << v;
  }
}

// --- MpscRingBuffer ---------------------------------------------------------

TEST(RingBuffer, RoundsCapacityUpToAPowerOfTwo) {
  MpscRingBuffer<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
  MpscRingBuffer<int> one(1);
  EXPECT_EQ(one.capacity(), 2u) << "the ring floors at two slots";
}

TEST(RingBuffer, SpscIsFifoAndBoundsAtCapacity) {
  MpscRingBuffer<int> r(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99)) << "push into a full ring must refuse";
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, i) << "single-producer order must be preserved";
  }
  EXPECT_FALSE(r.try_pop(out)) << "pop from an empty ring must refuse";
  // The freed slots are reusable (wraparound).
  EXPECT_TRUE(r.try_push(42));
  ASSERT_TRUE(r.try_pop(out));
  EXPECT_EQ(out, 42);
}

TEST(RingBuffer, PopBatchAppendsUpToMax) {
  MpscRingBuffer<int> r(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(r.try_push(i));
  std::vector<int> out{-1};  // pop_batch appends, never clears
  EXPECT_EQ(r.pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2, 3}));
  out.clear();
  EXPECT_EQ(r.pop_batch(out, 100), 6u);
  EXPECT_EQ(out.front(), 4);
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(r.pop_batch(out, 100), 0u);
}

TEST(RingBuffer, MpscDeliversEveryItemExactlyOncePerProducerInOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscRingBuffer<uint64_t> r(256);
  std::vector<uint64_t> got;
  got.reserve(kProducers * kPerProducer);

  std::thread consumer([&] {
    std::vector<uint64_t> batch;
    while (got.size() < kProducers * kPerProducer) {
      batch.clear();
      if (r.pop_batch(batch, 64) == 0) {
        std::this_thread::yield();
        continue;
      }
      got.insert(got.end(), batch.begin(), batch.end());
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t item = (static_cast<uint64_t>(p) << 32) | i;
        while (!r.try_push(item)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProducers) * kPerProducer);
  // Exactly once, and per-producer FIFO: within each producer's items the
  // sequence numbers must appear in submission order.
  std::vector<int> next(kProducers, 0);
  for (const uint64_t item : got) {
    const auto p = static_cast<int>(item >> 32);
    const auto i = static_cast<int>(item & 0xffffffff);
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(i, next[p]) << "producer " << p << " reordered or dropped";
    ++next[p];
  }
}

// --- group commit vs direct apply -------------------------------------------

TEST(Ingest, GroupCommitMatchesDirectApplicationOnEveryVariantFamily) {
  constexpr Vertex kN = 300;
  const std::vector<Op> program = random_program(kN, 6000, /*seed=*/7);
  for (const char* variant : {"coarse", "full"}) {
    auto dc = make_variant(variant, kN);
    {
      ingest::IngestOptions opts;
      opts.max_batch = 64;
      ingest::IngestService svc(*dc, opts);
      std::vector<std::thread> producers;
      for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&, p] {
          // Disjoint slices: cross-thread interleaving is arbitrary, but
          // updates commute to the same final edge set only if each op is
          // applied exactly once — which is what this asserts.
          for (std::size_t i = p; i < program.size(); i += 3)
            svc.submit(program[i]);
        });
      }
      for (auto& t : producers) t.join();
      svc.drain();
      const ingest::IngestStats st = svc.stats();
      EXPECT_EQ(st.submitted, program.size());
      EXPECT_EQ(st.acked, program.size());
      EXPECT_GT(st.batches, 0u);
      EXPECT_LE(st.max_batch_fill, 64u);
    }
    // Oracle equality needs a deterministic order, so it is asserted on a
    // second, single-producer run of the same program.
    auto dc2 = make_variant(variant, kN);
    {
      ingest::IngestService svc2(*dc2, {});
      for (const Op& op : program) svc2.submit(op);
      svc2.drain();
    }
    testutil::QueryOracle oracle(kN);
    for (const Op& op : program) oracle.apply(op);
    expect_matches_oracle(*dc2, oracle, kN);
    // The multi-producer run interleaves its slices arbitrarily, so its
    // final state legitimately differs; what must hold is internal
    // consistency: representative() is idempotent for every vertex.
    for (Vertex v = 0; v < kN; ++v) {
      const auto rep = static_cast<Vertex>(dc->representative(v));
      EXPECT_EQ(dc->representative(rep), rep);
    }
  }
}

TEST(Ingest, TicketsCarryTheSingleOpReturnValues) {
  auto dc = make_variant("full", 16);
  ingest::IngestService svc(*dc, {});
  ingest::Ticket t;
  ASSERT_TRUE(svc.submit(Op::add(1, 2), &t));
  EXPECT_EQ(t.wait(), ingest::Ticket::kDone);
  EXPECT_EQ(t.value.load(), 1u) << "first add of an edge is effective";
  t.reset();
  ASSERT_TRUE(svc.submit(Op::add(1, 2), &t));
  EXPECT_EQ(t.wait(), ingest::Ticket::kDone);
  EXPECT_EQ(t.value.load(), 0u) << "duplicate add is a no-op";
  t.reset();
  ASSERT_TRUE(svc.submit(Op::connected(1, 2), &t));
  EXPECT_EQ(t.wait(), ingest::Ticket::kDone);
  EXPECT_EQ(t.value.load(), 1u);
  t.reset();
  ASSERT_TRUE(svc.submit(Op::component_size(1), &t));
  EXPECT_EQ(t.wait(), ingest::Ticket::kDone);
  EXPECT_EQ(t.value.load(), 2u);
}

// --- backpressure policies --------------------------------------------------

TEST(Ingest, DropPolicyRefusesWhenTheRingIsFull) {
  auto dc = make_variant("coarse", 16);
  ingest::IngestOptions opts;
  opts.ring_capacity = 4;
  opts.policy = ingest::Backpressure::kDrop;
  ingest::IngestService svc(*dc, opts);
  svc.pause();  // park the applier so the ring actually fills
  int accepted = 0, refused = 0;
  ingest::Ticket dropped_ticket;
  for (int i = 0; i < 16; ++i) {
    ingest::Ticket* t = (i == 15) ? &dropped_ticket : nullptr;
    if (svc.submit(Op::add(0, static_cast<Vertex>(1 + i % 8)), t))
      ++accepted;
    else
      ++refused;
  }
  EXPECT_EQ(accepted, 4) << "exactly ring_capacity ops fit while parked";
  EXPECT_EQ(refused, 12);
  EXPECT_EQ(dropped_ticket.state.load(), ingest::Ticket::kDropped);
  svc.resume();
  svc.drain();
  const ingest::IngestStats st = svc.stats();
  EXPECT_EQ(st.submitted, 4u);
  EXPECT_EQ(st.dropped, 12u);
  EXPECT_EQ(st.acked, 4u);
}

TEST(Ingest, ShedReadsRefusesQueriesButCountsThemSeparately) {
  auto dc = make_variant("coarse", 16);
  ingest::IngestOptions opts;
  opts.ring_capacity = 4;
  opts.policy = ingest::Backpressure::kShedReads;
  ingest::IngestService svc(*dc, opts);
  svc.pause();
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(svc.submit(Op::add(0, static_cast<Vertex>(i + 1))));
  // Ring full: reads are shed (refused, counted), never enqueued.
  ingest::Ticket t;
  EXPECT_FALSE(svc.submit(Op::connected(0, 1), &t));
  EXPECT_EQ(t.state.load(), ingest::Ticket::kDropped);
  EXPECT_FALSE(svc.submit(Op::component_size(2)));
  svc.resume();
  svc.drain();
  const ingest::IngestStats st = svc.stats();
  EXPECT_EQ(st.shed_reads, 2u);
  EXPECT_EQ(st.dropped, 0u) << "shed reads are not kDrop drops";
  EXPECT_EQ(st.acked, 4u);
  // With space available again, reads pass.
  ASSERT_TRUE(svc.submit(Op::connected(0, 1)));
  svc.drain();
}

// --- shutdown and pause contracts -------------------------------------------

TEST(Ingest, StopUnblocksABlockedProducerAndDropsUnappliedOps) {
  auto dc = make_variant("coarse", 16);
  ingest::IngestOptions opts;
  opts.ring_capacity = 2;
  ingest::IngestService svc(*dc, opts);
  svc.pause();  // park the applier so the ring stays full
  ASSERT_TRUE(svc.submit(Op::add(0, 1)));
  ASSERT_TRUE(svc.submit(Op::add(0, 2)));
  // kBlock + full ring: this producer spins in submit until stop() tells
  // it the applier is gone (previously it would spin forever).
  ingest::Ticket blocked;
  std::thread producer([&] { svc.submit(Op::add(0, 3), &blocked); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  svc.stop();
  producer.join();
  EXPECT_EQ(blocked.wait(), ingest::Ticket::kDropped);
  const ingest::IngestStats st = svc.stats();
  EXPECT_EQ(st.acked, st.submitted) << "drain()'s invariant holds after stop";
  EXPECT_EQ(st.acked + st.dropped, 3u)
      << "every op terminated: applied or dropped, none lost in the ring";
}

TEST(Ingest, ConcurrentSnapshotCallersSerializeAndBothSucceed) {
  constexpr Vertex kN = 32;
  auto dc = make_variant("full", kN);
  ingest::IngestService svc(*dc, {});
  for (Vertex v = 1; v < kN; ++v) svc.submit(Op::add(0, v));
  svc.drain();
  const std::string p1 = temp_path("a.dcsn");
  const std::string p2 = temp_path("b.dcsn");
  std::thread t1([&] { svc.snapshot_to(p1); });
  std::thread t2([&] { svc.snapshot_to(p2); });
  t1.join();
  t2.join();
  // Both callers saw the same parked state: equal edge sets, byte-identical
  // files (make_snapshot sorts). The service keeps working afterwards.
  EXPECT_EQ(file_bytes(p1), file_bytes(p2));
  EXPECT_EQ(io::load_snapshot_file(p1).edges.ops.size(),
            static_cast<std::size_t>(kN - 1));
  ASSERT_TRUE(svc.submit(Op::add(1, 2)));
  svc.drain();
  EXPECT_EQ(svc.stats().snapshots, 2u);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(Ingest, PauseIsRefcountedAcrossOverlappingCallers) {
  auto dc = make_variant("coarse", 8);
  ingest::IngestService svc(*dc, {});
  svc.pause();
  svc.pause();
  svc.resume();  // one of two pausers released: still parked
  ASSERT_TRUE(svc.submit(Op::add(0, 1)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(svc.stats().acked, 0u)
      << "a single resume must not unpark while another pause is live";
  svc.resume();
  svc.drain();
  EXPECT_EQ(svc.stats().acked, 1u);
}

// --- durability formats -----------------------------------------------------

TEST(Snapshot, RoundTripsThroughStreams) {
  std::vector<Edge> live = {{3, 7}, {0, 1}, {5, 2}, {0, 9}};
  const io::Snapshot s = io::make_snapshot(123, 12, live);
  EXPECT_EQ(s.edges.ops.size(), live.size());
  // make_snapshot sorts: equal edge sets -> byte-identical snapshots.
  EXPECT_TRUE(std::is_sorted(
      s.edges.ops.begin(), s.edges.ops.end(), [](const Op& a, const Op& b) {
        return std::pair(a.u, a.v) < std::pair(b.u, b.v);
      }));
  std::stringstream ss;
  io::save_snapshot(s, ss);
  EXPECT_EQ(io::load_snapshot(ss), s);
}

TEST(Snapshot, RejectsNonAddOpsAtWriteTimeAndBadHeadersAtReadTime) {
  io::Snapshot s;
  s.edges.num_vertices = 4;
  s.edges.ops.push_back(Op::remove(0, 1));
  std::stringstream out;
  EXPECT_THROW(io::save_snapshot(s, out), std::runtime_error);

  const io::Snapshot good = io::make_snapshot(1, 4, {{0, 1}});
  std::stringstream ok;
  io::save_snapshot(good, ok);
  std::string bytes = ok.str();
  {
    std::string bad = bytes;
    bad[0] = 'X';  // magic
    std::istringstream in(bad);
    EXPECT_THROW(io::load_snapshot(in), std::runtime_error);
  }
  {
    std::string bad = bytes;
    bad[4] = 99;  // version
    std::istringstream in(bad);
    EXPECT_THROW(io::load_snapshot(in), std::runtime_error);
  }
  {
    std::istringstream in(bytes.substr(0, 10));  // short header
    EXPECT_THROW(io::load_snapshot(in), std::runtime_error);
  }
}

std::string journal_bytes(Vertex n,
                          const std::vector<io::JournalRecord>& records) {
  std::ostringstream out;
  io::write_journal_header(out, n);
  for (const auto& r : records) io::write_journal_record(out, r.seq, r.op);
  return out.str();
}

std::vector<io::JournalRecord> sample_records() {
  return {{1, Op::add(0, 1)},  {2, Op::add(1, 2)}, {3, Op::add(2, 3)},
          {4, Op::remove(1, 2)}, {5, Op::add(3, 4)}};
}

TEST(Journal, RoundTripsAndIsTolerantOfEveryTornTailShape) {
  const auto records = sample_records();
  const std::string bytes = journal_bytes(8, records);
  ASSERT_EQ(bytes.size(),
            io::kJournalHeaderBytes + records.size() * io::kJournalRecordBytes);
  {
    std::istringstream in(bytes);
    const io::JournalData j = io::load_journal(in);
    EXPECT_EQ(j.num_vertices, 8u);
    EXPECT_EQ(j.records, records);
    EXPECT_FALSE(j.truncated_tail);
    EXPECT_EQ(j.tail_bytes, 0u);
  }
  // Truncation mid-record: keep the good prefix, report the torn bytes.
  {
    std::istringstream in(bytes.substr(0, bytes.size() - 7));
    const io::JournalData j = io::load_journal(in);
    EXPECT_EQ(j.records.size(), records.size() - 1);
    EXPECT_TRUE(j.truncated_tail);
    EXPECT_EQ(j.tail_bytes, io::kJournalRecordBytes - 7);
  }
  // Bad CRC in the middle: the stream ends at the last good record — WAL
  // semantics never resynchronize past corruption.
  {
    std::string bad = bytes;
    bad[io::kJournalHeaderBytes + 2 * io::kJournalRecordBytes + 3] ^= 0x40;
    std::istringstream in(bad);
    const io::JournalData j = io::load_journal(in);
    EXPECT_EQ(j.records.size(), 2u);
    EXPECT_TRUE(j.truncated_tail);
  }
  // Non-increasing seq ends the stream (a record from a previous
  // generation of the file, e.g. after a partial overwrite).
  {
    auto dup = records;
    dup.push_back({5, Op::add(4, 5)});  // same seq as the previous record
    std::istringstream in(journal_bytes(8, dup));
    const io::JournalData j = io::load_journal(in);
    EXPECT_EQ(j.records.size(), records.size());
    EXPECT_TRUE(j.truncated_tail);
  }
  // Vertex outside the declared universe fails the record, not the file.
  {
    auto bad = records;
    bad.push_back({6, Op::add(3, 250)});
    std::istringstream in(journal_bytes(8, bad));
    const io::JournalData j = io::load_journal(in);
    EXPECT_EQ(j.records.size(), records.size());
    EXPECT_TRUE(j.truncated_tail);
  }
}

TEST(Journal, HeaderIsStrict) {
  const std::string bytes = journal_bytes(8, sample_records());
  {
    std::string bad = bytes;
    bad[1] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW(io::load_journal(in), std::runtime_error);
  }
  {
    std::string bad = bytes;
    bad[4] = 9;  // version
    std::istringstream in(bad);
    EXPECT_THROW(io::load_journal(in), std::runtime_error);
  }
  {
    std::istringstream in(bytes.substr(0, io::kJournalHeaderBytes - 1));
    EXPECT_THROW(io::load_journal(in), std::runtime_error);
  }
  // A missing *file* is an empty journal, not an error (fresh service).
  const io::JournalData j = io::load_journal_file(temp_path("absent.dcjl"));
  EXPECT_TRUE(j.records.empty());
  EXPECT_FALSE(j.truncated_tail);
}

// --- golden fixtures: the durability wire formats are pinned ----------------
//
// Regenerating either file is a format break: recovery of pre-change
// snapshots/journals must keep working, so changes belong in a new version,
// not a silent rewrite (same rule as the golden traces in test_trace_v2).

io::Snapshot golden_snapshot() {
  return io::make_snapshot(
      77, 24, {{0, 1}, {0, 2}, {1, 3}, {4, 5}, {6, 7}, {2, 9}, {10, 11}});
}

std::vector<io::JournalRecord> golden_journal_records() {
  return {{1, Op::add(0, 1)},    {2, Op::add(1, 2)},  {3, Op::add(2, 3)},
          {4, Op::remove(1, 2)}, {5, Op::add(4, 5)},  {6, Op::add(5, 6)},
          {7, Op::remove(0, 1)}, {8, Op::add(7, 8)},  {9, Op::add(0, 3)},
          {10, Op::remove(4, 5)}};
}

TEST(GoldenIngest, SnapshotDecodesToThePinnedStateAndBytes) {
  const std::string path = source_path("tests/data/golden.dcsn");
  const io::Snapshot s = io::load_snapshot_file(path);
  EXPECT_EQ(s, golden_snapshot());
  std::ostringstream out;
  io::save_snapshot(golden_snapshot(), out);
  EXPECT_EQ(out.str(), file_bytes(path))
      << "snapshot writer no longer reproduces the checked-in bytes";
}

TEST(GoldenIngest, JournalDecodesToThePinnedRecordsAndBytes) {
  const std::string path = source_path("tests/data/golden.dcjl");
  const std::string pinned = file_bytes(path);
  std::istringstream in(pinned);
  const io::JournalData j = io::load_journal(in);
  EXPECT_EQ(j.num_vertices, 24u);
  EXPECT_EQ(j.records, golden_journal_records());
  EXPECT_FALSE(j.truncated_tail);
  EXPECT_EQ(journal_bytes(24, golden_journal_records()), pinned)
      << "journal writer no longer reproduces the checked-in bytes";
}

// --- recovery ---------------------------------------------------------------

TEST(Ingest, JournalOnlyRecoveryMatchesTheOracle) {
  constexpr Vertex kN = 64;
  const std::string journal = temp_path("journal.dcjl");
  const std::vector<Op> program = random_program(kN, 2000, /*seed=*/11);
  testutil::QueryOracle oracle(kN);
  {
    auto dc = make_variant("full", kN);
    ingest::IngestOptions opts;
    opts.journal_path = journal;
    opts.journal_fsync = false;  // keep the test fast; ordering is the same
    ingest::IngestService svc(*dc, opts);
    for (const Op& op : program) svc.submit(op);
    svc.stop();
    const ingest::IngestStats st = svc.stats();
    const auto updates = static_cast<uint64_t>(std::count_if(
        program.begin(), program.end(),
        [](const Op& op) { return is_update(op.kind); }));
    EXPECT_EQ(st.journal_records, updates)
        << "every update (effective or not) gets a journal record";
    EXPECT_EQ(st.applied_seq, updates);
  }
  for (const Op& op : program) oracle.apply(op);

  auto recovered = make_variant("full", kN);
  const ingest::RecoveryResult r =
      ingest::recover_files(*recovered, /*snapshot_path=*/"", journal);
  EXPECT_EQ(r.snapshot_edges, 0u);
  EXPECT_EQ(r.journal_records, r.replayed);
  EXPECT_FALSE(r.truncated_tail);
  expect_matches_oracle(*recovered, oracle, kN);
  // The recovered live set is exactly the oracle's present set.
  std::vector<Edge> expect_live(oracle.present().begin(),
                                oracle.present().end());
  EXPECT_EQ(r.live_edges, expect_live);
  std::remove(journal.c_str());
}

TEST(Ingest, SnapshotPlusJournalTailRecoversAndReattachContinuesSeq) {
  constexpr Vertex kN = 64;
  const std::string journal = temp_path("journal.dcjl");
  const std::string snapshot = temp_path("snapshot.dcsn");
  const std::vector<Op> first = random_program(kN, 1500, /*seed=*/21);
  const std::vector<Op> second = random_program(kN, 500, /*seed=*/22);
  testutil::QueryOracle oracle(kN);

  uint64_t snap_seq = 0;
  {
    auto dc = make_variant("full", kN);
    ingest::IngestOptions opts;
    opts.journal_path = journal;
    opts.journal_fsync = false;
    ingest::IngestService svc(*dc, opts);
    for (const Op& op : first) svc.submit(op);
    svc.drain();
    snap_seq = svc.snapshot_to(snapshot);
    for (const Op& op : second) svc.submit(op);
    svc.stop();
    EXPECT_EQ(svc.stats().snapshots, 1u);
  }
  for (const Op& op : first) oracle.apply(op);
  for (const Op& op : second) oracle.apply(op);

  // Recover: snapshot state + only the journal records past applied_seq.
  auto recovered = make_variant("full", kN);
  const ingest::RecoveryResult r =
      ingest::recover_files(*recovered, snapshot, journal);
  EXPECT_EQ(r.applied_seq >= snap_seq, true);
  EXPECT_LT(r.replayed, r.journal_records)
      << "the snapshot must subsume the journal prefix";
  expect_matches_oracle(*recovered, oracle, kN);

  // Reattach a service to the recovered structure + the same journal: seq
  // continues (no reuse), and the combined history still recovers.
  const std::vector<Op> third = random_program(kN, 300, /*seed=*/23);
  {
    ingest::IngestOptions opts;
    opts.journal_path = journal;
    opts.journal_fsync = false;
    opts.initial_edges = r.live_edges;
    ingest::IngestService svc(*recovered, opts);
    for (const Op& op : third) svc.submit(op);
    svc.stop();
    EXPECT_GT(svc.stats().applied_seq, r.applied_seq);
  }
  for (const Op& op : third) oracle.apply(op);
  auto recovered2 = make_variant("full", kN);
  ingest::recover_files(*recovered2, snapshot, journal);
  expect_matches_oracle(*recovered2, oracle, kN);
  std::remove(journal.c_str());
  std::remove(snapshot.c_str());
}

TEST(Ingest, RecoveryToleratesATornJournalTailOnDisk) {
  constexpr Vertex kN = 32;
  const std::string journal = temp_path("torn.dcjl");
  {
    std::ofstream out(journal, std::ios::binary);
    const std::string bytes = journal_bytes(kN, sample_records());
    // Crash mid-append: the last record is half-written.
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 9));
  }
  auto dc = make_variant("full", kN);
  const ingest::RecoveryResult r = ingest::recover_files(*dc, "", journal);
  EXPECT_TRUE(r.truncated_tail);
  EXPECT_EQ(r.journal_records, sample_records().size() - 1);
  testutil::QueryOracle oracle(kN);
  for (std::size_t i = 0; i + 1 < sample_records().size(); ++i)
    oracle.apply(sample_records()[i].op);
  expect_matches_oracle(*dc, oracle, kN);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace condyn
