// Label-cache coverage (DESIGN.md §8): cached reads must be
// oracle-identical to the tree-walk reads they shortcut — sequentially,
// under concurrent churn racing the epoch invalidation, across a mid-run
// force-disable/re-enable of the whole cache — and components() snapshots
// must equal the DSU oracle on every variant, cache-backed or fallback.
// This file is part of the TSan CI set: the label walk is the first
// lock-free reader of the tour nodes' plain is_vertex/tail fields, and the
// hit path races begin/end brackets by design.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/label_cache.hpp"
#include "graph/dsu.hpp"
#include "query_oracle.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

using condyn::testutil::QueryOracle;

std::vector<Op> churn_program(Vertex n, int len, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(len);
  for (int i = 0; i < len; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    const Vertex b = static_cast<Vertex>(rng.next_below(n));
    switch (rng.next_below(8)) {
      case 0:
      case 1:
      case 2:
        ops.push_back(Op::add(a, b));
        break;
      case 3:
        ops.push_back(Op::remove(a, b));
        break;
      case 4:
        ops.push_back(Op::connected(a, b));
        break;
      case 5:
      case 6:
        ops.push_back(Op::component_size(a));
        break;
      default:
        ops.push_back(Op::representative(a));
    }
  }
  return ops;
}

std::vector<int> cache_variant_ids() {
  std::vector<int> ids;
  for (const VariantInfo& v : all_variants()) {
    if (v.caps.label_cache) ids.push_back(v.id);
  }
  return ids;
}

TEST(LabelCacheCaps, TheLockFreeReadFamiliesDeclareIt) {
  // (3) coarse-nbreads, (5) coarse-htm-nbreads, (8) fine-nbreads and the
  // whole NB family (9)-(11): exactly the variants whose read discipline the
  // cache's hit/fallback paths match.
  std::vector<std::string> names;
  for (const VariantInfo& v : all_variants()) {
    if (v.caps.label_cache) {
      EXPECT_TRUE(v.caps.lock_free_reads) << v.name;
      names.push_back(v.name);
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "coarse-nbreads", "coarse-htm-nbreads", "fine-nbreads",
                       "full", "full-coarse", "full-coarse-htm"}));
}

// ---------------------------------------------------------------------------
// components() snapshots: every variant against the DSU oracle
// ---------------------------------------------------------------------------

TEST(ComponentsSnapshot, MatchesTheDsuOracleOnEveryVariant) {
  const Vertex n = 48;
  const std::vector<Op> program = churn_program(n, 600, 77);
  for (const VariantInfo& v : all_variants()) {
    auto dc = make_variant(v.id, n);
    QueryOracle oracle(n);
    for (const Op& op : program) {
      exec_single(*dc, op);
      oracle.apply(op);
    }
    Dsu dsu(n);
    for (const Edge& e : oracle.present()) dsu.unite(e.u, e.v);
    const ComponentsSnapshot snap = dc->components();
    ASSERT_EQ(snap.labels.size(), n) << v.name;
    for (Vertex x = 0; x < n; ++x) {
      EXPECT_EQ(snap.labels[x], dsu.representative(x))
          << v.name << " vertex " << x;
    }
    EXPECT_EQ(snap.num_components(), dsu.num_components()) << v.name;
    if (v.caps.label_cache && LabelCache::env_enabled()) {
      // At quiescence the cache path repairs every miss in place and the
      // final stamp check passes: the snapshot is the published epoch.
      EXPECT_TRUE(snap.consistent) << v.name;
    }
  }
}

TEST(ComponentsSnapshot, ConsistentUnderConcurrentChurn) {
  // A quiet path 0..9 beside churn on [10, n): every snapshot — consistent
  // (one published epoch) or fallback — must label the quiet component
  // exactly; consistent snapshots must additionally be internally coherent
  // for the churned half (same-label iff the snapshot says so, via the
  // label array being one epoch — spot-checked through the quiet set).
  const Vertex n = 64;
  for (int id : cache_variant_ids()) {
    auto dc = make_variant(id, n);
    for (Vertex x = 0; x + 1 < 10; ++x) dc->add_edge(x, x + 1);

    std::atomic<bool> stop{false};
    std::vector<std::thread> churn;
    for (unsigned w = 0; w < 2; ++w) {
      churn.emplace_back([&, w] {
        Xoshiro256 rng(1300 + w);
        while (!stop.load(std::memory_order_acquire)) {
          const Vertex a = 10 + static_cast<Vertex>(rng.next_below(n - 10));
          const Vertex b = 10 + static_cast<Vertex>(rng.next_below(n - 10));
          if (rng.next_below(2) == 0) {
            dc->add_edge(a, b);
          } else {
            dc->remove_edge(a, b);
          }
        }
      });
    }
    int consistent_seen = 0;
    for (int i = 0; i < 300; ++i) {
      const ComponentsSnapshot snap = dc->components();
      ASSERT_EQ(snap.labels.size(), n);
      consistent_seen += snap.consistent ? 1 : 0;
      if (snap.consistent) {
        for (Vertex x = 0; x < 10; ++x) {
          ASSERT_EQ(snap.labels[x], 0u)
              << "variant " << id << " snapshot " << i << " vertex " << x;
          ASSERT_TRUE(snap.same_component(0, x));
        }
      }
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : churn) t.join();
    (void)consistent_seen;  // under heavy churn every snapshot may fall back
  }
}

// ---------------------------------------------------------------------------
// Cached reads racing invalidation: per-region oracle exactness
// ---------------------------------------------------------------------------

TEST(LabelCacheConcurrent, CachedReadsMatchTheOracleUnderRacingInvalidation) {
  // Each worker owns a disjoint vertex region and interleaves updates with
  // queries, checking every query against its own sequential oracle. The
  // updates continually invalidate (or, via relinks, deliberately preserve)
  // the published epochs while the other workers' queries race the bracket
  // transitions: a hit that survives a stale epoch — or a publish that
  // captures a mid-restructure chain — returns a wrong value here.
  const Vertex kRegion = 20;
  const unsigned kWorkers = 4;
  for (int id : cache_variant_ids()) {
    auto dc = make_variant(id, kRegion * kWorkers);
    std::vector<std::vector<std::string>> errors(kWorkers);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        QueryOracle oracle(kRegion * kWorkers);
        std::vector<Op> program = churn_program(kRegion, 1200, 2600 + w);
        for (Op& op : program) {
          op.u += w * kRegion;
          op.v += w * kRegion;
        }
        for (std::size_t i = 0; i < program.size(); ++i) {
          const uint64_t expected = oracle.apply(program[i]);
          const uint64_t got = exec_single(*dc, program[i]);
          if (got != expected) {
            errors[w].push_back(
                "op " + std::to_string(i) + " kind " +
                std::to_string(static_cast<int>(program[i].kind)) + ": got " +
                std::to_string(got) + " want " + std::to_string(expected));
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    for (unsigned w = 0; w < kWorkers; ++w) {
      EXPECT_TRUE(errors[w].empty()) << "variant " << id << " worker " << w
                                     << ": " << errors[w].front();
    }
  }
}

TEST(LabelCacheConcurrent, BatchedReadsThroughTheCacheStayExact) {
  // The pure-read batch exemption routes query batches through
  // LabelCache::exec_query — same oracle discipline, batched submission.
  const Vertex kRegion = 16;
  const unsigned kWorkers = 3;
  for (int id : cache_variant_ids()) {
    auto dc = make_variant(id, kRegion * kWorkers);
    std::vector<std::vector<std::string>> errors(kWorkers);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        QueryOracle oracle(kRegion * kWorkers);
        Xoshiro256 rng(4400 + w);
        for (int round = 0; round < 120; ++round) {
          // A few updates through the single-op API...
          for (int j = 0; j < 4; ++j) {
            const Vertex a =
                w * kRegion + static_cast<Vertex>(rng.next_below(kRegion));
            const Vertex b =
                w * kRegion + static_cast<Vertex>(rng.next_below(kRegion));
            const Op op =
                rng.next_below(3) != 0 ? Op::add(a, b) : Op::remove(a, b);
            oracle.apply(op);
            exec_single(*dc, op);
          }
          // ...then a pure-read batch over this region.
          std::vector<Op> batch;
          for (int j = 0; j < 12; ++j) {
            const Vertex a =
                w * kRegion + static_cast<Vertex>(rng.next_below(kRegion));
            const Vertex b =
                w * kRegion + static_cast<Vertex>(rng.next_below(kRegion));
            switch (rng.next_below(3)) {
              case 0: batch.push_back(Op::connected(a, b)); break;
              case 1: batch.push_back(Op::component_size(a)); break;
              default: batch.push_back(Op::representative(a));
            }
          }
          const BatchResult r = dc->apply_batch(batch);
          for (std::size_t j = 0; j < batch.size(); ++j) {
            const uint64_t expected = oracle.apply(batch[j]);
            if (r.value(j) != expected) {
              errors[w].push_back("round " + std::to_string(round) + " op " +
                                  std::to_string(j) + ": got " +
                                  std::to_string(r.value(j)) + " want " +
                                  std::to_string(expected));
            }
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    for (unsigned w = 0; w < kWorkers; ++w) {
      EXPECT_TRUE(errors[w].empty()) << "variant " << id << " worker " << w
                                     << ": " << errors[w].front();
    }
  }
}

// ---------------------------------------------------------------------------
// Runtime kill switch: force-disable mid-run, fall back, re-enable
// ---------------------------------------------------------------------------

class LabelCacheSwitch : public ::testing::Test {
 protected:
  // Every test leaves the process-wide switch on for its successors.
  void TearDown() override { LabelCache::set_globally_enabled(true); }
};

TEST_F(LabelCacheSwitch, ForceDisableMidRunFallsBackCorrectly) {
  if (!LabelCache::env_enabled()) GTEST_SKIP() << "DC_LABEL_CACHE=0";
  const Vertex kRegion = 20;
  const unsigned kWorkers = 3;
  for (int id : cache_variant_ids()) {
    auto dc = make_variant(id, kRegion * kWorkers);
    std::atomic<bool> stop{false};
    // The toggler flips the global switch the whole run: queries migrate
    // between the cache hit path and the fallback walk mid-stream, and
    // every re-enable must not resurrect labels published before a
    // disabled-window membership change.
    std::thread toggler([&] {
      bool on = false;
      while (!stop.load(std::memory_order_acquire)) {
        LabelCache::set_globally_enabled(on);
        on = !on;
        std::this_thread::yield();
      }
      LabelCache::set_globally_enabled(true);
    });
    std::vector<std::vector<std::string>> errors(kWorkers);
    std::vector<std::thread> workers;
    for (unsigned w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        QueryOracle oracle(kRegion * kWorkers);
        std::vector<Op> program = churn_program(kRegion, 1500, 6100 + w);
        for (Op& op : program) {
          op.u += w * kRegion;
          op.v += w * kRegion;
        }
        for (std::size_t i = 0; i < program.size(); ++i) {
          const uint64_t expected = oracle.apply(program[i]);
          const uint64_t got = exec_single(*dc, program[i]);
          if (got != expected) {
            errors[w].push_back("op " + std::to_string(i) + ": got " +
                                std::to_string(got) + " want " +
                                std::to_string(expected));
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    stop.store(true, std::memory_order_release);
    toggler.join();
    for (unsigned w = 0; w < kWorkers; ++w) {
      EXPECT_TRUE(errors[w].empty()) << "variant " << id << " worker " << w
                                     << ": " << errors[w].front();
    }
  }
}

TEST_F(LabelCacheSwitch, DisabledCacheAnswersLikeTheTreeWalk) {
  if (!LabelCache::env_enabled()) GTEST_SKIP() << "DC_LABEL_CACHE=0";
  // Warm the cache, disable it, and replay value queries sequentially: the
  // fallback must agree with the oracle (and components() must degrade to
  // the base scan, still exact at quiescence).
  const Vertex n = 40;
  for (int id : cache_variant_ids()) {
    auto dc = make_variant(id, n);
    Dsu oracle(n);
    Xoshiro256 rng(710);
    for (int i = 0; i < 200; ++i) {
      const Vertex a = static_cast<Vertex>(rng.next_below(n));
      const Vertex b = static_cast<Vertex>(rng.next_below(n));
      if (a != b) {
        dc->add_edge(a, b);
        oracle.unite(a, b);
      }
      dc->representative(a);  // publish some labels
    }
    LabelCache::set_globally_enabled(false);
    for (Vertex x = 0; x < n; ++x) {
      EXPECT_EQ(dc->representative(x), oracle.representative(x))
          << "variant " << id;
      EXPECT_EQ(dc->component_size(x), oracle.component_size(x))
          << "variant " << id;
    }
    const ComponentsSnapshot snap = dc->components();
    EXPECT_FALSE(snap.consistent) << "variant " << id;
    for (Vertex x = 0; x < n; ++x) {
      EXPECT_EQ(snap.labels[x], oracle.representative(x)) << "variant " << id;
    }
    LabelCache::set_globally_enabled(true);
  }
}

}  // namespace
}  // namespace condyn
