// DCTR v2 format coverage: varint/zigzag round trips, strict decode
// validation (truncated varints, corrupted headers, bad op codes, vertex
// overflow, op-count mismatches), v1<->v2 recompression identity, the
// checked-in golden traces that pin both wire formats against drift, and
// the SNAP temporal importer behind tools/trace_convert.
#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "graph/io.hpp"
#include "harness/scenario.hpp"
#include "query_oracle.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

std::string source_path(const std::string& rel) {
  return std::string(CONDYN_SOURCE_DIR) + "/" + rel;
}

std::string bytes_of(const io::Trace& t, io::TraceFormat f) {
  std::stringstream ss;
  io::save_trace(t, ss, f);
  return ss.str();
}

std::string file_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

io::Trace random_trace(Vertex n, std::size_t ops, uint64_t seed) {
  io::Trace t;
  t.num_vertices = n;
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    auto v = static_cast<Vertex>(rng.next_below(n - 1));
    if (v >= u) ++v;
    const uint64_t roll = rng.next_below(100);
    t.ops.push_back(roll < 40   ? Op::add(u, v)
                    : roll < 65 ? Op::remove(u, v)
                                : Op::connected(u, v));
  }
  return t;
}

/// FNV-1a over (num_vertices, then each op's kind/u/v, little-endian) — the
/// drift detector the golden tests pin. Changing the decoder in any way
/// that alters a decoded op changes this value.
uint64_t trace_fnv(const io::Trace& t) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&](uint64_t x, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(t.num_vertices, 4);
  for (const Op& op : t.ops) {
    mix(static_cast<uint64_t>(op.kind), 1);
    mix(op.u, 4);
    mix(op.v, 4);
  }
  return h;
}

/// Sequential single-op reference over the full value vocabulary.
using Oracle = condyn::testutil::QueryOracle;

/// A program exercising all five op kinds (the v3 vocabulary).
io::Trace random_value_trace(Vertex n, std::size_t ops, uint64_t seed) {
  io::Trace t;
  t.num_vertices = n;
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    auto v = static_cast<Vertex>(rng.next_below(n - 1));
    if (v >= u) ++v;
    const uint64_t roll = rng.next_below(100);
    t.ops.push_back(roll < 35   ? Op::add(u, v)
                    : roll < 55 ? Op::remove(u, v)
                    : roll < 75 ? Op::connected(u, v)
                    : roll < 88 ? Op::component_size(u)
                                : Op::representative(u));
  }
  return t;
}

TEST(TraceV2, RoundTripsArbitraryOpMixes) {
  for (const uint64_t seed : {1ull, 99ull}) {
    const io::Trace t = random_trace(5000, 700, seed);
    std::stringstream ss;
    io::save_trace(t, ss, io::TraceFormat::kV2);
    EXPECT_EQ(io::load_trace(ss), t);
  }
  // Degenerate shapes: empty trace, single op, zero-delta runs.
  io::Trace empty;
  empty.num_vertices = 3;
  std::stringstream es;
  io::save_trace(empty, es, io::TraceFormat::kV2);
  EXPECT_EQ(io::load_trace(es), empty);

  io::Trace runs;
  runs.num_vertices = 10;
  for (int i = 0; i < 50; ++i) runs.ops.push_back(Op::add(4, 7));
  std::stringstream rs;
  io::save_trace(runs, rs, io::TraceFormat::kV2);
  EXPECT_EQ(io::load_trace(rs), runs);
  // Zero-delta encoding: repeated identical ops cost 2 bytes each.
  EXPECT_EQ(rs.str().size(), 24u + 2u * 50u);
}

TEST(TraceV2, CompressesBelowV1) {
  const io::Trace t = random_trace(2000, 1000, 5);
  const std::string v1 = bytes_of(t, io::TraceFormat::kV1);
  const std::string v2 = bytes_of(t, io::TraceFormat::kV2);
  EXPECT_EQ(v1.size(), 20u + 9u * t.ops.size());
  EXPECT_LT(v2.size(), v1.size() / 2);  // even uniform-random ops halve
}

TEST(TraceV2, RecompressRoundTripIsIdentity) {
  const io::Trace t = random_trace(300, 500, 17);
  // v2 -> v1 -> v2: ops survive exactly and the final v2 bytes match the
  // first encoding (the writer is deterministic, so recompression of an
  // unchanged trace is byte-stable).
  const std::string v2a = bytes_of(t, io::TraceFormat::kV2);
  std::stringstream s1(v2a);
  const io::Trace via_v2 = io::load_trace(s1);
  EXPECT_EQ(via_v2, t);
  const std::string v1 = bytes_of(via_v2, io::TraceFormat::kV1);
  std::stringstream s2(v1);
  const io::Trace via_v1 = io::load_trace(s2);
  EXPECT_EQ(via_v1, t);
  EXPECT_EQ(bytes_of(via_v1, io::TraceFormat::kV2), v2a);
}

TEST(TraceV2, RejectsTruncatedVarints) {
  const io::Trace t = random_trace(2000, 40, 3);
  const std::string bytes = bytes_of(t, io::TraceFormat::kV2);
  // Every cut inside the payload must throw, never mis-decode: varints cut
  // mid-byte-sequence, ops cut between their two varints, all of it.
  for (std::size_t cut = 24; cut < bytes.size(); cut += 3) {
    std::stringstream ss(bytes.substr(0, cut));
    EXPECT_THROW(io::load_trace(ss), std::runtime_error) << "cut at " << cut;
  }
}

TEST(TraceV2, RejectsCorruptedHeaders) {
  const io::Trace t = random_trace(100, 10, 4);
  const std::string good = bytes_of(t, io::TraceFormat::kV2);

  {  // bad magic
    std::string b = good;
    b[0] = 'X';
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // unknown version (3 is v3 now — 9 stays unassigned)
    std::string b = good;
    b[4] = 9;
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // unknown flag bit declared
    std::string b = good;
    b[8] = static_cast<char>(b[8] | 0x40);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // delta-varint flag missing
    std::string b = good;
    b[8] = 0;
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
}

TEST(TraceV2, RejectsOpCountMismatches) {
  const io::Trace t = random_trace(100, 10, 4);
  const std::string good = bytes_of(t, io::TraceFormat::kV2);
  {  // declared count larger than the payload holds -> truncation
    std::string b = good;
    b[16] = static_cast<char>(static_cast<unsigned char>(b[16]) + 1);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // declared count smaller -> trailing payload bytes
    std::string b = good;
    b[16] = static_cast<char>(static_cast<unsigned char>(b[16]) - 1);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
}

TEST(TraceV2, RejectsBadOpCodesAndVertexOverflow) {
  // Hand-built v2 payloads: header (|V|=4, 1 op) + crafted varints.
  auto header = [](uint64_t count) {
    std::string h = "DCTR";
    const auto u32 = [&](uint32_t v) {
      for (int i = 0; i < 4; ++i) h += static_cast<char>((v >> (8 * i)) & 0xff);
    };
    u32(2);  // version
    u32(1);  // flags: delta-varint
    u32(4);  // num_vertices
    for (int i = 0; i < 8; ++i)
      h += static_cast<char>((count >> (8 * i)) & 0xff);
    return h;
  };
  {  // kind bits == 3
    std::string b = header(1);
    b += static_cast<char>((0 << 2) | 3);  // du=0, kind=3
    b += static_cast<char>(2);             // dv=+1
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // u lands outside [0, 4): du = +5 (zigzag 10)
    std::string b = header(1);
    b += static_cast<char>((10 << 2) | 0);
    b += static_cast<char>(2);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // v lands negative: u=1, dv = -3 (zigzag 5)
    std::string b = header(1);
    b += static_cast<char>((2 << 2) | 0);  // du=+1
    b += static_cast<char>(5);             // dv=-3 -> v=-2
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // varint longer than 10 bytes
    std::string b = header(1);
    for (int i = 0; i < 11; ++i) b += static_cast<char>(0x80);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // dv = INT64_MAX via a legal 10-byte varint: must reject cleanly, not
     // overflow the delta addition (UB under -fsanitize=undefined)
    std::string b = header(1);
    b += static_cast<char>((2 << 2) | 0);  // du=+1 -> u=1
    for (int i = 0; i < 9; ++i) b += static_cast<char>(0xfe | (i ? 1 : 0));
    b += static_cast<char>(0x01);  // LEB128 of zigzag(INT64_MAX)
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
}

TEST(TraceV2, SaveRefusesOpsOutsideTheVertexUniverse) {
  io::Trace t;
  t.num_vertices = 4;
  t.ops = {Op::add(1, 9)};
  std::stringstream ss;
  EXPECT_THROW(io::save_trace(t, ss, io::TraceFormat::kV2),
               std::runtime_error);
}

// --- golden traces: the on-disk formats are pinned against drift -----------

struct GoldenExpectation {
  const char* path;
  uint32_t version;
  std::size_t file_size;
};

constexpr Vertex kGoldenVertices = 64;
constexpr std::size_t kGoldenOps = 400;
constexpr uint64_t kGoldenFnv = 0xe578f352b82923c6ULL;

const GoldenExpectation kGolden[] = {
    {"tests/data/golden_v1.dctr", 1, 20 + 9 * kGoldenOps},
    {"tests/data/golden_v2.dctr", 2, 1053},
};

TEST(GoldenTrace, BothVersionsDecodeToThePinnedOps) {
  io::Trace first;
  for (const GoldenExpectation& g : kGolden) {
    const io::Trace t = io::load_trace_file(source_path(g.path));
    EXPECT_EQ(t.num_vertices, kGoldenVertices) << g.path;
    ASSERT_EQ(t.ops.size(), kGoldenOps) << g.path;
    // The FNV pin: any decoder change that alters one decoded op fails
    // here instead of silently invalidating recorded traces.
    EXPECT_EQ(trace_fnv(t), kGoldenFnv) << g.path;
    if (first.ops.empty()) {
      first = t;
    } else {
      EXPECT_EQ(t, first) << "v1 and v2 decode differently";
    }
    const io::TraceFileInfo info = io::trace_info_file(source_path(g.path));
    EXPECT_EQ(info.version, g.version);
    EXPECT_EQ(info.file_bytes, g.file_size) << g.path;
    EXPECT_EQ(info.ops, kGoldenOps);
  }
}

// The v3 golden trace pins the widened-kind wire format the same way:
// generated once from random_value_trace(64, 400, 2026), checked in, and
// guarded by an FNV pin + byte-exact re-encode + oracle replay.
constexpr const char* kGoldenV3Path = "tests/data/golden_v3.dctr";
constexpr uint64_t kGoldenV3Fnv = 0xee58f71dbb7d7c72ULL;

TEST(GoldenTrace, V3DecodesToThePinnedOps) {
  const io::Trace t = io::load_trace_file(source_path(kGoldenV3Path));
  EXPECT_EQ(t.num_vertices, kGoldenVertices);
  ASSERT_EQ(t.ops.size(), kGoldenOps);
  EXPECT_EQ(trace_fnv(t), kGoldenV3Fnv);
  EXPECT_TRUE(io::needs_v3(t));
  // Byte-exact re-encode: encoder drift fails here.
  EXPECT_EQ(bytes_of(t, io::TraceFormat::kV3),
            file_bytes(source_path(kGoldenV3Path)));
  const io::TraceFileInfo info = io::trace_info_file(source_path(kGoldenV3Path));
  EXPECT_EQ(info.version, io::kTraceVersionV3);
  EXPECT_EQ(info.ops, kGoldenOps);
  EXPECT_GT(info.size_queries, 0u);
  EXPECT_GT(info.rep_queries, 0u);
}

TEST(GoldenTrace, V3ReplaysAgainstTheDsuOracleOnEveryVariant) {
  const io::Trace t = io::load_trace_file(source_path(kGoldenV3Path));
  Oracle oracle(t.num_vertices);
  const std::vector<uint64_t> expected = oracle.replay(t.ops);
  for (const VariantInfo& v : all_variants()) {
    auto dc = v.make(t.num_vertices, true);
    EXPECT_EQ(harness::replay_trace(*dc, t.ops), expected) << v.name;
  }
}

TEST(GoldenTrace, WritersReproduceTheCheckedInBytes) {
  // Encoder drift detector: saving the golden ops must reproduce the
  // checked-in files byte for byte, in both formats.
  const io::Trace t = io::load_trace_file(source_path(kGolden[0].path));
  EXPECT_EQ(bytes_of(t, io::TraceFormat::kV1),
            file_bytes(source_path(kGolden[0].path)));
  EXPECT_EQ(bytes_of(t, io::TraceFormat::kV2),
            file_bytes(source_path(kGolden[1].path)));
}

TEST(GoldenTrace, ReplaysAgainstTheDsuOracleOnEveryVariant) {
  const io::Trace t = io::load_trace_file(source_path(kGolden[1].path));
  Oracle oracle(t.num_vertices);
  const std::vector<uint64_t> expected = oracle.replay(t.ops);
  for (const VariantInfo& v : all_variants()) {
    auto dc = v.make(t.num_vertices, true);
    EXPECT_EQ(harness::replay_trace(*dc, t.ops), expected) << v.name;
  }
}

// --- DCTR v3: the value-query vocabulary on the wire ------------------------

TEST(TraceV3, RoundTripsTheValueVocabulary) {
  for (const uint64_t seed : {2ull, 77ull}) {
    const io::Trace t = random_value_trace(5000, 700, seed);
    EXPECT_TRUE(io::needs_v3(t));
    EXPECT_EQ(io::preferred_format(t), io::TraceFormat::kV3);
    std::stringstream ss;
    io::save_trace(t, ss, io::TraceFormat::kV3);
    EXPECT_EQ(io::load_trace(ss), t);
  }
  // Boolean-vocabulary traces stay on v2 but still round-trip through v3.
  const io::Trace plain = random_trace(300, 200, 5);
  EXPECT_FALSE(io::needs_v3(plain));
  EXPECT_EQ(io::preferred_format(plain), io::TraceFormat::kV2);
  std::stringstream ss;
  io::save_trace(plain, ss, io::TraceFormat::kV3);
  EXPECT_EQ(io::load_trace(ss), plain);
}

TEST(TraceV3, OlderWritersRefuseValueKinds) {
  io::Trace t;
  t.num_vertices = 8;
  t.ops = {Op::add(0, 1), Op::component_size(1)};
  for (const io::TraceFormat f :
       {io::TraceFormat::kV1, io::TraceFormat::kV2}) {
    std::stringstream ss;
    EXPECT_THROW(io::save_trace(t, ss, f), std::runtime_error)
        << "format v" << static_cast<uint32_t>(f);
  }
  std::stringstream ok;
  io::save_trace(t, ok, io::preferred_format(t));  // v3 accepts
  EXPECT_EQ(io::load_trace(ok), t);
}

TEST(TraceV3, RejectsBadKindBits) {
  // Hand-built v3 payload: header (|V|=4, 1 op) + a tag whose 3 kind bits
  // decode to 5 (> kRepresentative) must throw.
  auto header = [](uint64_t count) {
    std::string h = "DCTR";
    const auto u32 = [&](uint32_t v) {
      for (int i = 0; i < 4; ++i) h += static_cast<char>((v >> (8 * i)) & 0xff);
    };
    u32(3);  // version
    u32(1);  // flags: delta-varint
    u32(4);  // num_vertices
    for (int i = 0; i < 8; ++i)
      h += static_cast<char>((count >> (8 * i)) & 0xff);
    return h;
  };
  for (const unsigned kind : {5u, 6u, 7u}) {
    std::string b = header(1);
    b += static_cast<char>((0 << 3) | kind);  // du=0, bad kind
    b += static_cast<char>(0);                // dv=0
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error) << "kind " << kind;
  }
  {  // the same payload with kind 4 (representative) is valid
    std::string b = header(1);
    b += static_cast<char>((0 << 3) | 4);
    b += static_cast<char>(0);
    std::stringstream ss(b);
    const io::Trace t = io::load_trace(ss);
    ASSERT_EQ(t.ops.size(), 1u);
    EXPECT_EQ(t.ops[0], Op::representative(0));
  }
}

TEST(TraceV3, TruncationAndCountMismatchStayStrict) {
  const io::Trace t = random_value_trace(2000, 40, 3);
  const std::string bytes = bytes_of(t, io::TraceFormat::kV3);
  for (std::size_t cut = 24; cut < bytes.size(); cut += 3) {
    std::stringstream ss(bytes.substr(0, cut));
    EXPECT_THROW(io::load_trace(ss), std::runtime_error) << "cut at " << cut;
  }
  {  // declared count larger than the payload holds
    std::string b = bytes;
    b[16] = static_cast<char>(static_cast<unsigned char>(b[16]) + 1);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
  {  // declared count smaller -> trailing payload bytes
    std::string b = bytes;
    b[16] = static_cast<char>(static_cast<unsigned char>(b[16]) - 1);
    std::stringstream ss(b);
    EXPECT_THROW(io::load_trace(ss), std::runtime_error);
  }
}

TEST(TraceV3, ReadSynthesisHitsTheTargetShare) {
  // A pure update stream: synthesize the paper's 80%-read mix from it.
  io::Trace updates;
  updates.num_vertices = 50;
  Xoshiro256 rng(13);
  for (int i = 0; i < 400; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(50));
    auto v = static_cast<Vertex>(rng.next_below(49));
    if (v >= u) ++v;
    updates.ops.push_back(rng.next_below(4) == 0 ? Op::remove(u, v)
                                                 : Op::add(u, v));
  }
  const io::Trace mixed = io::synthesize_reads(updates, 80, false, 7);
  uint64_t reads = 0, value_reads = 0;
  for (const Op& op : mixed.ops) {
    reads += is_query(op.kind) ? 1 : 0;
    value_reads += static_cast<uint8_t>(op.kind) > 2 ? 1 : 0;
  }
  EXPECT_NEAR(100.0 * reads / mixed.ops.size(), 80.0, 2.0);
  EXPECT_EQ(value_reads, 0u);  // without --size-queries: connected only
  EXPECT_EQ(io::preferred_format(mixed), io::TraceFormat::kV2);
  // Updates survive in order.
  std::vector<Op> kept;
  for (const Op& op : mixed.ops)
    if (is_update(op.kind)) kept.push_back(op);
  EXPECT_EQ(kept, updates.ops);

  // With size queries the probe rotation emits all three query kinds and
  // the trace needs v3.
  const io::Trace sized = io::synthesize_reads(updates, 80, true, 7);
  uint64_t size_q = 0, rep_q = 0, conn_q = 0;
  for (const Op& op : sized.ops) {
    size_q += op.kind == OpKind::kComponentSize;
    rep_q += op.kind == OpKind::kRepresentative;
    conn_q += op.kind == OpKind::kConnected;
  }
  EXPECT_GT(size_q, 0u);
  EXPECT_GT(rep_q, 0u);
  EXPECT_GT(conn_q, 0u);
  EXPECT_EQ(io::preferred_format(sized), io::TraceFormat::kV3);
  // Deterministic per seed; replays against the oracle on two variants.
  EXPECT_EQ(io::synthesize_reads(updates, 80, true, 7), sized);
  Oracle oracle(sized.num_vertices);
  const std::vector<uint64_t> expected = oracle.replay(sized.ops);
  for (const char* variant : {"coarse", "full"}) {
    auto dc = make_variant(variant, sized.num_vertices);
    EXPECT_EQ(harness::replay_trace(*dc, sized.ops), expected) << variant;
  }
}

// --- SNAP temporal importer -------------------------------------------------

TEST(TemporalSnap, ParsesCommentsTimestampsAndSkipsLoops) {
  std::stringstream in(
      "# comment\n"
      "% another\n"
      "3 5 100\n"
      "5 3 90\n"       // reversed pair, earlier timestamp
      "7 7 80\n"       // self-loop: dropped
      "bogus line\n"   // malformed: skipped
      "8 9 100\n");
  const auto events = io::load_temporal_snap(in);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], (io::TemporalEdge{3, 5, 100}));
  EXPECT_EQ(events[1], (io::TemporalEdge{5, 3, 90}));
  EXPECT_EQ(events[2], (io::TemporalEdge{8, 9, 100}));
}

TEST(TemporalSnap, UntimedFilesKeepOrderButMixingIsRejected) {
  // A plain (untimed) edge list is a valid temporal stream in file order...
  std::stringstream untimed("1 2\n3 4\n5 6\n");
  const auto events = io::load_temporal_snap(untimed);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t, 0u);
  EXPECT_EQ(events[2].t, 2u);
  // ...but one untimed line inside a timed file would sort its event far
  // out of order (index vs epoch timestamps): reject loudly instead.
  std::stringstream mixed("3 5 1200000000\n1 2\n8 9 1200000100\n");
  EXPECT_THROW(io::load_temporal_snap(mixed), std::runtime_error);
}

TEST(TemporalSnap, RejectsIdsThatDoNotFitAVertex) {
  // u32 truncation would produce a wrong-but-valid trace; and an id of
  // exactly 2^32-1 would wrap the max_id+1 universe computation to 0.
  std::stringstream big("4294967297 5 100\n");
  EXPECT_THROW(io::load_temporal_snap(big), std::runtime_error);
  std::stringstream edge("4294967295 5 100\n");
  EXPECT_THROW(io::load_temporal_snap(edge), std::runtime_error);
  std::stringstream ok("4294967294 5 100\n");
  EXPECT_EQ(io::load_temporal_snap(ok).size(), 1u);
}

TEST(TemporalSnap, ConversionSortsByTimeAndSizesTheUniverse) {
  std::vector<io::TemporalEdge> events = {
      {3, 5, 100}, {5, 3, 90}, {8, 9, 95}};
  const io::Trace t = io::temporal_to_trace(events);
  EXPECT_EQ(t.num_vertices, 10u);
  ASSERT_EQ(t.ops.size(), 3u);
  EXPECT_EQ(t.ops[0], Op::add(5, 3));  // t=90 first despite file order
  EXPECT_EQ(t.ops[1], Op::add(8, 9));
  EXPECT_EQ(t.ops[2], Op::add(3, 5));
}

TEST(TemporalSnap, DedupDropsLiveReAdds) {
  std::vector<io::TemporalEdge> events = {
      {1, 2, 10}, {2, 1, 20}, {1, 2, 30}, {3, 4, 40}};
  io::ConvertOptions raw;
  EXPECT_EQ(io::temporal_to_trace(events, raw).ops.size(), 4u);
  io::ConvertOptions dedup;
  dedup.dedup = true;
  const io::Trace t = io::temporal_to_trace(events, dedup);
  ASSERT_EQ(t.ops.size(), 2u);
  EXPECT_EQ(t.ops[0], Op::add(1, 2));
  EXPECT_EQ(t.ops[1], Op::add(3, 4));
}

TEST(TemporalSnap, WindowExpiresOldestAndBoundsTheLiveSet) {
  std::vector<io::TemporalEdge> events;
  for (Vertex i = 0; i < 40; ++i)
    events.push_back({i, static_cast<Vertex>(i + 100), i});
  io::ConvertOptions opts;
  opts.dedup = true;
  opts.window = 8;
  const io::Trace t = io::temporal_to_trace(events, opts);
  std::set<Edge> live;
  std::deque<Edge> fifo;
  for (const Op& op : t.ops) {
    const Edge e(op.u, op.v);
    if (op.kind == OpKind::kAdd) {
      EXPECT_TRUE(live.insert(e).second);
      fifo.push_back(e);
    } else if (op.kind == OpKind::kRemove) {
      // FIFO contract: every remove targets the oldest live edge.
      ASSERT_FALSE(fifo.empty());
      EXPECT_EQ(e, fifo.front());
      fifo.pop_front();
      EXPECT_EQ(live.erase(e), 1u);
    }
    EXPECT_LE(live.size(), opts.window);
  }
  EXPECT_EQ(live.size(), opts.window);  // the stream churned through the cap
  EXPECT_EQ(t.ops.size(), 40u + (40u - opts.window));
}

TEST(TemporalSnap, QueryProbesAreSeededAndLiveOnly) {
  std::vector<io::TemporalEdge> events;
  for (Vertex i = 0; i < 60; ++i)
    events.push_back({i, static_cast<Vertex>(i + 1), i});
  io::ConvertOptions opts;
  opts.query_every = 4;
  opts.seed = 7;
  const io::Trace a = io::temporal_to_trace(events, opts);
  EXPECT_EQ(a, io::temporal_to_trace(events, opts));  // deterministic
  opts.seed = 8;
  const io::Trace b = io::temporal_to_trace(events, opts);
  uint64_t queries = 0;
  for (const Op& op : a.ops) queries += op.kind == OpKind::kConnected;
  EXPECT_EQ(queries, 60u / 4u);
  EXPECT_NE(a, b);  // probe endpoints follow the seed
}

TEST(TemporalSnap, CheckedInSampleConvertsBelowThreeBytesPerOp) {
  // The acceptance bar the CI job also enforces through trace_convert: the
  // shipped SNAP sample compresses to <= 3 bytes/op in DCTR v2, and its
  // replay agrees with the sequential oracle on every variant.
  const auto events =
      io::load_temporal_snap_file(source_path("data/sample_temporal.txt"));
  EXPECT_GE(events.size(), 500u);
  io::ConvertOptions opts;
  opts.dedup = true;
  opts.window = 150;
  opts.query_every = 5;
  const io::Trace t = io::temporal_to_trace(events, opts);
  EXPECT_GE(t.ops.size(), 900u);

  const std::string path = ::testing::TempDir() + "sample_converted.dctr";
  io::save_trace_file(t, path);
  const io::TraceFileInfo info = io::trace_info_file(path);
  EXPECT_EQ(info.version, io::kTraceVersionV2);
  EXPECT_GT(info.removes, 0u);
  EXPECT_GT(info.queries, 0u);
  EXPECT_LE(info.bytes_per_op, 3.0);
  EXPECT_EQ(io::load_trace_file(path), t);
  std::remove(path.c_str());

  Oracle oracle(t.num_vertices);
  const std::vector<uint64_t> expected = oracle.replay(t.ops);
  for (const char* variant : {"coarse", "full"}) {
    auto dc = make_variant(variant, t.num_vertices);
    EXPECT_EQ(harness::replay_trace(*dc, t.ops), expected) << variant;
  }
}

}  // namespace
}  // namespace condyn
