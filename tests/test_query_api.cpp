// Query API v2 coverage: component_size / representative on every
// registered variant against the extended DSU oracle
// (tests/query_oracle.hpp, graph/dsu.hpp min-id tracking) — sequentially,
// under 4-thread concurrent churn (disjoint regions: values stay exact;
// quiet component beside churn: values stay exact AND stable), through the
// base-class fallback, and with the NB-family guarantee that the value read
// path never touches a lock (lock_stats counters stay flat).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "query_oracle.hpp"
#include "util/lock_stats.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

using condyn::testutil::QueryOracle;

std::vector<Op> churn_program(Vertex n, int len, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(len);
  for (int i = 0; i < len; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    const Vertex b = static_cast<Vertex>(rng.next_below(n));
    switch (rng.next_below(6)) {
      case 0:
      case 1:
        ops.push_back(Op::add(a, b));
        break;
      case 2:
        ops.push_back(Op::remove(a, b));
        break;
      case 3:
        ops.push_back(Op::connected(a, b));
        break;
      case 4:
        ops.push_back(Op::component_size(a));
        break;
      default:
        ops.push_back(Op::representative(a));
    }
  }
  return ops;
}

class QueryVariants : public ::testing::TestWithParam<int> {};

TEST_P(QueryVariants, SequentialValuesMatchTheDsuOracle) {
  const Vertex n = 48;
  auto dc = make_variant(GetParam(), n);
  QueryOracle oracle(n);
  for (const Op& op : churn_program(n, 1500, 77)) {
    const uint64_t expected = oracle.apply(op);
    ASSERT_EQ(exec_single(*dc, op), expected)
        << "kind " << static_cast<int>(op.kind) << " (" << op.u << ","
        << op.v << ")";
  }
}

TEST_P(QueryVariants, RepresentativeIsCanonicalAndStableBetweenUpdates) {
  const Vertex n = 32;
  auto dc = make_variant(GetParam(), n);
  // Build two components and an isolated vertex.
  for (const Edge& e :
       {Edge(3, 7), Edge(7, 12), Edge(12, 5), Edge(20, 25), Edge(25, 21)}) {
    dc->add_edge(e.u, e.v);
  }
  // Canonical: the smallest member id, identical for every member.
  for (const Vertex v : {3u, 7u, 12u, 5u}) {
    EXPECT_EQ(dc->representative(v), 3u) << v;
  }
  for (const Vertex v : {20u, 25u, 21u}) {
    EXPECT_EQ(dc->representative(v), 20u) << v;
  }
  EXPECT_EQ(dc->representative(30), 30u);
  // Stable between updates: any number of repeated queries agree.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(dc->representative(12), 3u);
    ASSERT_EQ(dc->component_size(12), 4u);
  }
  // Equivalence contract: rep(u) == rep(v) iff connected(u, v).
  EXPECT_NE(dc->representative(5), dc->representative(21));
  dc->add_edge(5, 21);  // merge: canonical min of the union wins
  EXPECT_EQ(dc->representative(21), 3u);
  EXPECT_EQ(dc->component_size(20), 7u);
  dc->remove_edge(5, 21);
  EXPECT_EQ(dc->representative(21), 20u);
  EXPECT_EQ(dc->component_size(21), 3u);
}

TEST_P(QueryVariants, ConcurrentDisjointRegionChurnStaysExact) {
  // Workers churn disjoint vertex regions through the single-op API; every
  // value query must match the worker's own sequential oracle regardless of
  // cross-region interleaving (each region's component state is untouched
  // by the other workers, so the oracle value is THE linearizable answer).
  const Vertex kRegion = 20;
  const unsigned kWorkers = 4;
  auto dc = make_variant(GetParam(), kRegion * kWorkers);
  std::vector<std::vector<std::string>> errors(kWorkers);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      QueryOracle oracle(kRegion * kWorkers);
      std::vector<Op> program = churn_program(kRegion, 800, 500 + w);
      for (Op& op : program) {  // shift into this worker's region
        op.u += w * kRegion;
        op.v += w * kRegion;
      }
      for (std::size_t i = 0; i < program.size(); ++i) {
        const uint64_t expected = oracle.apply(program[i]);
        const uint64_t got = exec_single(*dc, program[i]);
        if (got != expected) {
          errors[w].push_back(
              "op " + std::to_string(i) + " kind " +
              std::to_string(static_cast<int>(program[i].kind)) + ": got " +
              std::to_string(got) + " want " + std::to_string(expected));
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (unsigned w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(errors[w].empty())
        << "worker " << w << ": " << errors[w].front();
  }
}

TEST_P(QueryVariants, QuietComponentStaysStableUnderForeignChurn) {
  // Vertices 0..9 form a fixed path no worker ever updates; three churn
  // workers hammer the rest of the graph. Size and representative of the
  // quiet component must stay exact AND stable for the whole run — the
  // "stable representative between updates" contract under real
  // concurrency.
  const Vertex n = 64;
  auto dc = make_variant(GetParam(), n);
  for (Vertex v = 0; v + 1 < 10; ++v) dc->add_edge(v, v + 1);

  std::vector<std::string> errors;
  std::vector<std::thread> workers;
  std::atomic<bool> stop{false};
  for (unsigned w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      Xoshiro256 rng(900 + w);
      while (!stop.load(std::memory_order_acquire)) {
        // Churn strictly inside [10, n): never touches the quiet component.
        const Vertex a = 10 + static_cast<Vertex>(rng.next_below(n - 10));
        const Vertex b = 10 + static_cast<Vertex>(rng.next_below(n - 10));
        if (rng.next_below(2) == 0) {
          dc->add_edge(a, b);
        } else {
          dc->remove_edge(a, b);
        }
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const Vertex probe = static_cast<Vertex>(i % 10);
    const uint64_t size = dc->component_size(probe);
    const Vertex rep = dc->representative(probe);
    if (size != 10) {
      errors.push_back("size(" + std::to_string(probe) + ") = " +
                       std::to_string(size));
      break;
    }
    if (rep != 0) {
      errors.push_back("rep(" + std::to_string(probe) + ") = " +
                       std::to_string(rep));
      break;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  EXPECT_TRUE(errors.empty()) << errors.front();
}

INSTANTIATE_TEST_SUITE_P(AllVariants, QueryVariants,
                         ::testing::Range(1, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string n = all_variants()[info.param - 1].name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

/// Forwards the pure virtuals to a real variant but deliberately does NOT
/// override the value queries: exercises the base-class fallback scan.
class FallbackDc final : public DynamicConnectivity {
 public:
  explicit FallbackDc(Vertex n) : inner_(make_variant("coarse", n)) {}

  bool add_edge(Vertex u, Vertex v) override {
    return inner_->add_edge(u, v);
  }
  bool remove_edge(Vertex u, Vertex v) override {
    return inner_->remove_edge(u, v);
  }
  bool connected(Vertex u, Vertex v) override {
    return inner_->connected(u, v);
  }
  Vertex num_vertices() const override { return inner_->num_vertices(); }
  std::string name() const override { return "fallback"; }

 private:
  std::unique_ptr<DynamicConnectivity> inner_;
};

TEST(QueryFallback, BaseClassScanMatchesTheOracle) {
  const Vertex n = 24;
  FallbackDc dc(n);
  QueryOracle oracle(n);
  for (const Op& op : churn_program(n, 400, 31)) {
    ASSERT_EQ(exec_single(dc, op), oracle.apply(op))
        << "kind " << static_cast<int>(op.kind);
  }
  // The fallback apply_batch routes value kinds through the scan too.
  const std::vector<Op> batch = {Op::add(1, 2), Op::component_size(2),
                                 Op::representative(2)};
  QueryOracle fresh(n);
  FallbackDc dc2(n);
  const BatchResult r = dc2.apply_batch(batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(r.value(i), fresh.apply(batch[i])) << i;
  }
}

TEST(QueryLockFree, ValueReadsNeverAcquireLocksOnNbFamilies) {
  // The acceptance bar: on variants with lock-free reads whose value
  // queries ride the non-blocking path (the NB family and coarse/fine
  // nbreads), component_size/representative/connected must not perform a
  // single lock acquisition — lock_stats::local() stays flat across the
  // read loop. (parallel-combining publishes reads through the combiner by
  // design, so it is exempt; fc-nbreads reads lock-free.)
  for (const char* name :
       {"full", "full-coarse", "full-coarse-htm", "coarse-nbreads",
        "fine-nbreads", "fc-nbreads"}) {
    const VariantInfo* v = find_variant(name);
    ASSERT_NE(v, nullptr) << name;
    ASSERT_TRUE(v->caps.lock_free_reads) << name;
    auto dc = v->make(64, true);
    for (Vertex i = 0; i + 1 < 32; ++i) dc->add_edge(i, i + 1);
    // Touch every vertex once: the first query of a never-seen vertex
    // lazily creates its tour node, which can allocate a pool slab under
    // the pool's (stat-counted) spinlock. That is one-time lazy init, not
    // the steady-state read path this test pins down.
    for (Vertex i = 0; i < 64; ++i) dc->connected(i, i);

    lock_stats::reset_local();
    const lock_stats::Counters before = lock_stats::local();
    uint64_t sink = 0;
    for (int i = 0; i < 500; ++i) {
      const Vertex u = static_cast<Vertex>(i % 64);
      sink += dc->component_size(u);
      sink += dc->representative(u);
      sink += dc->connected(u, (u + 7) % 64) ? 1 : 0;
    }
    const lock_stats::Counters after = lock_stats::local();
    EXPECT_EQ(after.acquisitions, before.acquisitions) << name;
    EXPECT_EQ(after.wait_ns, before.wait_ns) << name;
    EXPECT_GT(sink, 0u);
  }
}

}  // namespace
}  // namespace condyn
