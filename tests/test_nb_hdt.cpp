// Tests for the full non-blocking algorithm (paper §4.4 + Appendix C) in all
// three lock modes: sequential semantics + oracle comparison, edge-status
// introspection, invariant preservation under churn.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/nb_hdt.hpp"
#include "graph/cc.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

struct ModeParam {
  NbLockMode mode;
  const char* name;
};

class NbHdtModes : public ::testing::TestWithParam<ModeParam> {};

TEST_P(NbHdtModes, EmptyGraphDisconnected) {
  NbHdt dc(8, GetParam().mode);
  EXPECT_FALSE(dc.connected(0, 7));
  EXPECT_TRUE(dc.connected(3, 3));
  EXPECT_FALSE(dc.has_edge(0, 1));
  EXPECT_EQ(dc.edge_level(0, 1), -1);
}

TEST_P(NbHdtModes, AddRemoveSingleEdge) {
  NbHdt dc(4, GetParam().mode);
  EXPECT_TRUE(dc.add_edge(0, 1));
  EXPECT_TRUE(dc.connected(0, 1));
  EXPECT_TRUE(dc.is_spanning(0, 1));
  EXPECT_FALSE(dc.add_edge(1, 0));  // duplicate
  EXPECT_TRUE(dc.remove_edge(0, 1));
  EXPECT_FALSE(dc.connected(0, 1));
  EXPECT_FALSE(dc.remove_edge(0, 1));
  dc.check_invariants();
}

TEST_P(NbHdtModes, SelfLoopRejected) {
  NbHdt dc(4, GetParam().mode);
  EXPECT_FALSE(dc.add_edge(2, 2));
  EXPECT_FALSE(dc.remove_edge(2, 2));
}

TEST_P(NbHdtModes, NonSpanningAddAndRemove) {
  NbHdt dc(4, GetParam().mode);
  dc.add_edge(0, 1);
  dc.add_edge(1, 2);
  EXPECT_TRUE(dc.add_edge(0, 2));  // closes a triangle -> non-spanning
  EXPECT_FALSE(dc.is_spanning(0, 2));
  EXPECT_EQ(dc.edge_level(0, 2), 0);
  dc.check_invariants();
  EXPECT_TRUE(dc.remove_edge(0, 2));
  EXPECT_TRUE(dc.connected(0, 2));
  dc.check_invariants();
}

TEST_P(NbHdtModes, ReplacementOnSpanningRemoval) {
  NbHdt dc(4, GetParam().mode);
  dc.add_edge(0, 1);
  dc.add_edge(1, 2);
  dc.add_edge(0, 2);
  EXPECT_TRUE(dc.remove_edge(0, 1));
  EXPECT_TRUE(dc.connected(0, 1));  // reconnected through 0-2-1
  EXPECT_TRUE(dc.is_spanning(0, 2));
  EXPECT_FALSE(dc.has_edge(0, 1));
  dc.check_invariants();
}

TEST_P(NbHdtModes, ReAddAfterRemoveGetsFreshLife) {
  NbHdt dc(4, GetParam().mode);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(dc.add_edge(0, 1)) << round;
    EXPECT_TRUE(dc.remove_edge(0, 1)) << round;
  }
  EXPECT_FALSE(dc.connected(0, 1));
  dc.check_invariants();
}

TEST_P(NbHdtModes, RingTeardownKeepsFarSideConnected) {
  const Vertex n = 16;
  NbHdt dc(n, GetParam().mode);
  for (Vertex i = 0; i < n; ++i) dc.add_edge(i, (i + 1) % n);
  for (Vertex i = 0; i + 1 < n / 2; ++i) {
    EXPECT_TRUE(dc.remove_edge(i, i + 1));
    EXPECT_TRUE(dc.connected(0, n / 2)) << "after removing edge " << i;
    dc.check_invariants();
  }
}

TEST_P(NbHdtModes, LevelsRiseUnderChurnWithinBounds) {
  const Vertex n = 32;
  NbHdt dc(n, GetParam().mode);
  std::set<Edge> present;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; b += 1 + a % 3) {
      dc.add_edge(a, b);
      present.insert(Edge(a, b));
    }
  Xoshiro256 rng(7);
  std::vector<Edge> edges(present.begin(), present.end());
  for (int round = 0; round < 200; ++round) {
    const Edge& e = edges[rng.next_below(edges.size())];
    if (present.count(e) != 0u) {
      dc.remove_edge(e.u, e.v);
      present.erase(e);
    } else {
      dc.add_edge(e.u, e.v);
      present.insert(e);
    }
    const int lvl = dc.edge_level(e.u, e.v);
    EXPECT_LE(lvl, dc.max_level());
  }
  dc.check_invariants();
  // Cross-check final connectivity against a static oracle.
  const ComponentInfo cc = connected_components(
      n, std::vector<Edge>(present.begin(), present.end()));
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; b += 3)
      EXPECT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b]);
}

TEST_P(NbHdtModes, RandomizedOracleAgreement) {
  const Vertex n = 64;
  NbHdt dc(n, GetParam().mode);
  Xoshiro256 rng(GetParam().mode == NbLockMode::kFine ? 11 : 13);
  std::set<Edge> present;
  for (int op = 0; op < 3000; ++op) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    const Edge e(a, b);
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(dc.add_edge(a, b), present.insert(e).second);
        break;
      case 1:
        EXPECT_EQ(dc.remove_edge(a, b), present.erase(e) != 0);
        break;
      default: {
        Dsu oracle(n);
        for (const Edge& pe : present) oracle.unite(pe.u, pe.v);
        EXPECT_EQ(dc.connected(a, b), oracle.connected(a, b)) << "op " << op;
      }
    }
    if (op % 500 == 0) dc.check_invariants();
  }
  dc.check_invariants();
}

TEST_P(NbHdtModes, DecrementalTeardownAgreesWithOracle) {
  Graph g = gen::erdos_renyi(48, 120, 99);
  NbHdt dc(48, GetParam().mode);
  for (const Edge& e : g.edges()) dc.add_edge(e.u, e.v);
  std::vector<Edge> remaining = g.edges();
  Xoshiro256 rng(3);
  while (!remaining.empty()) {
    const std::size_t i = rng.next_below(remaining.size());
    const Edge e = remaining[i];
    remaining[i] = remaining.back();
    remaining.pop_back();
    EXPECT_TRUE(dc.remove_edge(e.u, e.v));
    if (remaining.size() % 16 == 0) {
      dc.check_invariants();
      const ComponentInfo cc = connected_components(48, remaining);
      for (Vertex a = 0; a < 48; a += 5)
        for (Vertex b = a + 1; b < 48; b += 7)
          ASSERT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b])
              << remaining.size() << " edges left";
    }
  }
  for (Vertex v = 1; v < 48; ++v) EXPECT_FALSE(dc.connected(0, v));
}

TEST_P(NbHdtModes, DenseGraphMostlyNonSpanning) {
  // On a dense graph the structure must classify ~|E|-(n-1) edges as
  // non-spanning (the premise of the paper's §4.4 optimization).
  Graph g = gen::erdos_renyi(64, 512, 17);
  NbHdt dc(64, GetParam().mode);
  std::size_t spanning = 0;
  for (const Edge& e : g.edges()) {
    dc.add_edge(e.u, e.v);
    if (dc.is_spanning(e.u, e.v)) ++spanning;
  }
  EXPECT_LE(spanning, std::size_t{63});
  dc.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, NbHdtModes,
    ::testing::Values(ModeParam{NbLockMode::kFine, "fine"},
                      ModeParam{NbLockMode::kCoarseSpin, "coarse"},
                      ModeParam{NbLockMode::kCoarseElision, "elision"}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return info.param.name;
    });

TEST(NbDc, FacadeReportsNameAndSize) {
  NbDc dc(10, NbLockMode::kFine, "full");
  EXPECT_EQ(dc.name(), "full");
  EXPECT_EQ(dc.num_vertices(), 10u);
  EXPECT_TRUE(dc.add_edge(1, 2));
  EXPECT_TRUE(dc.connected(1, 2));
}

}  // namespace
}  // namespace condyn
