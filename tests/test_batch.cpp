// Batch-pipeline coverage: apply_batch on every registered variant must be
// equivalent to applying the ops in index order, cross-checked against the
// sequential DSU oracle (tests/query_oracle.hpp) — including mixed batches
// over the full value-returning vocabulary, duplicate edges inside one
// batch, self-loops, and pure-read batches — and the registry's capability
// flags must match observable behavior.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "query_oracle.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

using testing_oracle = condyn::testutil::QueryOracle;

std::vector<Op> random_program(Vertex n, int len, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(len);
  for (int i = 0; i < len; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    const Vertex b = static_cast<Vertex>(rng.next_below(n));  // loops allowed
    switch (rng.next_below(5)) {
      case 0:
        ops.push_back(Op::add(a, b));
        break;
      case 1:
        ops.push_back(Op::remove(a, b));
        break;
      case 2:
        ops.push_back(Op::component_size(a));
        break;
      case 3:
        ops.push_back(Op::representative(a));
        break;
      default:
        ops.push_back(Op::connected(a, b));
    }
  }
  return ops;
}

class BatchVariants : public ::testing::TestWithParam<int> {};

TEST_P(BatchVariants, MixedBatchesMatchDsuOracle) {
  const Vertex n = 40;
  auto dc = make_variant(GetParam(), n);
  testing_oracle oracle(n);
  const std::vector<Op> program = random_program(n, 1200, 29);
  // Sweep batch sizes, including 1 (degenerate) and a size that does not
  // divide the program length (remainder batch).
  std::size_t pos = 0;
  const std::size_t sizes[] = {1, 3, 17, 64, 256};
  std::size_t si = 0;
  while (pos < program.size()) {
    const std::size_t bs = std::min(sizes[si % std::size(sizes)],
                                    program.size() - pos);
    si++;
    const std::span<const Op> batch(&program[pos], bs);
    const BatchResult r = dc->apply_batch(batch);
    ASSERT_EQ(r.size(), bs);
    uint64_t adds = 0, removes = 0, queries = 0;
    for (std::size_t i = 0; i < bs; ++i) {
      const uint64_t expected = oracle.apply(batch[i]);
      EXPECT_EQ(r.value(i), expected)
          << "op " << pos + i << " kind " << static_cast<int>(batch[i].kind)
          << " (" << batch[i].u << "," << batch[i].v << ")";
      if (r.value(i) != 0) {
        switch (batch[i].kind) {
          case OpKind::kAdd: ++adds; break;
          case OpKind::kRemove: ++removes; break;
          case OpKind::kConnected: ++queries; break;
          default: break;  // value kinds carry no summary counter
        }
      }
    }
    EXPECT_EQ(r.adds_performed, adds);
    EXPECT_EQ(r.removes_performed, removes);
    EXPECT_EQ(r.queries_true, queries);
    pos += bs;
  }
}

TEST_P(BatchVariants, DuplicateEdgesWithinOneBatch) {
  auto dc = make_variant(GetParam(), 8);
  const std::vector<Op> batch = {
      Op::add(1, 2),            // performed
      Op::add(2, 1),            // canonical duplicate -> false
      Op::connected(1, 2),      // true
      Op::component_size(2),    // {1, 2} -> 2
      Op::representative(2),    // min member -> 1
      Op::remove(1, 2),         // performed
      Op::remove(1, 2),         // already gone -> false
      Op::add(1, 2),            // re-add -> performed
      Op::add(3, 3),            // self-loop -> false
      Op::connected(1, 2),      // true again
      Op::connected(1, 3),      // false
      Op::component_size(3),    // isolated -> 1
      Op::representative(3),    // itself
  };
  const BatchResult r = dc->apply_batch(batch);
  const std::vector<uint64_t> expected = {1, 0, 1, 2, 1, 1, 0, 1, 0, 1, 0,
                                          1, 3};
  EXPECT_EQ(r.values, expected);
  EXPECT_EQ(r.adds_performed, 2u);
  EXPECT_EQ(r.removes_performed, 1u);
  EXPECT_EQ(r.queries_true, 2u);
}

TEST_P(BatchVariants, AdversarialSameEdgeChurnMatchesSequentialFallback) {
  // The pbd preprocessing pin (ISSUE 7): duplicate same-edge add/remove
  // pairs inside one batch — with queries interleaved as reorder barriers —
  // must produce exactly the BatchResult of the sequential fallback loop.
  // A tiny edge universe makes every batch repeat the same few edges many
  // times, so cancellation, re-toggling across query barriers, self-loops
  // and duplicate adds all occur constantly; checked against a twin
  // instance driven through the single-op API and against the DSU oracle.
  const Vertex n = 8;
  auto dc = make_variant(GetParam(), n);
  auto seq = make_variant(GetParam(), n);
  testing_oracle oracle(n);
  Xoshiro256 rng(233);
  const std::pair<Vertex, Vertex> universe[] = {
      {0, 1}, {1, 2}, {0, 2}, {2, 3}, {4, 5}, {3, 3}};
  for (int round = 0; round < 24; ++round) {
    std::vector<Op> batch;
    const std::size_t len = 48 + rng.next_below(160);
    for (std::size_t i = 0; i < len; ++i) {
      const auto [a, b] = universe[rng.next_below(std::size(universe))];
      switch (rng.next_below(10)) {
        case 0: batch.push_back(Op::connected(a, b)); break;
        case 1: batch.push_back(Op::component_size(a)); break;
        case 2: batch.push_back(Op::representative(b)); break;
        default:
          batch.push_back(rng.next_below(2) ? Op::add(a, b)
                                            : Op::remove(a, b));
      }
    }
    const BatchResult r = dc->apply_batch(batch);
    ASSERT_EQ(r.size(), batch.size());
    uint64_t adds = 0, removes = 0, queries = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const uint64_t fallback = exec_single(*seq, batch[i]);
      ASSERT_EQ(r.value(i), fallback)
          << "round " << round << " op " << i << " kind "
          << static_cast<int>(batch[i].kind) << " (" << batch[i].u << ","
          << batch[i].v << ")";
      ASSERT_EQ(fallback, oracle.apply(batch[i]));
      if (fallback != 0) {
        switch (batch[i].kind) {
          case OpKind::kAdd: ++adds; break;
          case OpKind::kRemove: ++removes; break;
          case OpKind::kConnected: ++queries; break;
          default: break;
        }
      }
    }
    EXPECT_EQ(r.adds_performed, adds);
    EXPECT_EQ(r.removes_performed, removes);
    EXPECT_EQ(r.queries_true, queries);
  }
}

TEST_P(BatchVariants, EmptyAndPureReadBatches) {
  auto dc = make_variant(GetParam(), 8);
  EXPECT_EQ(dc->apply_batch({}).size(), 0u);
  dc->add_edge(0, 1);
  dc->add_edge(1, 2);
  // Pure-read batches now mix the whole query vocabulary and must still hit
  // the variants' pure-read exemption (no update synchronization).
  const std::vector<Op> reads = {Op::connected(0, 2), Op::connected(0, 3),
                                 Op::connected(4, 4), Op::component_size(1),
                                 Op::representative(2)};
  const BatchResult r = dc->apply_batch(reads);
  const std::vector<uint64_t> expected = {1, 0, 1, 3, 0};
  EXPECT_EQ(r.values, expected);
  EXPECT_EQ(r.queries_true, 2u);
}

TEST_P(BatchVariants, ConcurrentDisjointRegionBatches) {
  // Workers submit batches over disjoint vertex regions; per-op results must
  // match a per-region sequential oracle regardless of interleaving, for
  // every variant (batched paths must not break cross-thread safety).
  const Vertex kRegion = 24;
  const unsigned kWorkers = 3;
  auto dc = make_variant(GetParam(), kRegion * kWorkers);
  std::vector<std::vector<std::string>> errors(kWorkers);
  std::vector<std::thread> workers;
  for (unsigned w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      testing_oracle oracle(kRegion * kWorkers);
      std::vector<Op> program = random_program(kRegion, 600, 101 + w);
      for (Op& op : program) {  // shift into this worker's region
        op.u += w * kRegion;
        op.v += w * kRegion;
      }
      // Shift the oracle too: component sizes / representatives are
      // region-absolute (representatives name real vertex ids).
      for (std::size_t pos = 0; pos < program.size(); pos += 50) {
        const std::span<const Op> batch(&program[pos], 50);
        const BatchResult r = dc->apply_batch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (r.value(i) != oracle.apply(batch[i])) {
            errors[w].push_back("mismatch at op " + std::to_string(pos + i));
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  for (unsigned w = 0; w < kWorkers; ++w) {
    EXPECT_TRUE(errors[w].empty())
        << "worker " << w << ": " << errors[w].front();
  }
}

TEST(BatchRegistry, CapsAreDeclaredForBuiltins) {
  // Every built-in variant overrides apply_batch (or knowingly relies on the
  // fallback); all fourteen currently declare a native batched path.
  for (const VariantInfo& v : all_variants()) {
    EXPECT_TRUE(v.caps.native_batch) << v.name;
    EXPECT_TRUE(static_cast<bool>(v.make)) << v.name;
    // Query API v2: every built-in answers value queries natively.
    EXPECT_TRUE(v.caps.sized_components) << v.name;
    EXPECT_TRUE(v.caps.stable_representative) << v.name;
  }
  // Spot-check flags the harness branches on.
  EXPECT_TRUE(find_variant("coarse")->caps.atomic_batch);
  EXPECT_FALSE(find_variant("coarse")->caps.lock_free_reads);
  EXPECT_TRUE(find_variant("full")->caps.lock_free_reads);
  EXPECT_FALSE(find_variant("full")->caps.atomic_batch);
  EXPECT_TRUE(find_variant("fc-nbreads")->caps.combining);
  EXPECT_TRUE(find_variant("parallel-combining")->caps.atomic_batch);
  EXPECT_TRUE(find_variant("pbd")->caps.internal_parallel);
  EXPECT_TRUE(find_variant("pbd")->caps.atomic_batch);
  EXPECT_FALSE(find_variant("parallel-combining")->caps.internal_parallel);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, BatchVariants,
                         ::testing::Range(1, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string n = all_variants()[info.param - 1].name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace condyn
