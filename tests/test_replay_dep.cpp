// Dependency-preserving trace replay: the edge-hash partition keeps every
// edge's op history ordered on one thread, so a concurrent replay reaches
// the same final edge set — and hence the same final connectivity — as the
// sequential oracle on every variant. Also covers the per-op latency
// percentiles RunResult carries for tracks_latency scenarios. This test
// runs under the CI ThreadSanitizer job.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/driver.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

using harness::RunConfig;
using harness::ScenarioInfo;

std::string source_path(const std::string& rel) {
  return std::string(CONDYN_SOURCE_DIR) + "/" + rel;
}

/// The converted SNAP sample (adds, window removes, probes), written once.
const io::Trace& sample_trace() {
  static const io::Trace t = [] {
    io::ConvertOptions opts;
    opts.dedup = true;
    opts.window = 120;
    opts.query_every = 6;
    return io::temporal_to_trace(
        io::load_temporal_snap_file(source_path("data/sample_temporal.txt")),
        opts);
  }();
  return t;
}

const std::string& sample_trace_path() {
  static const std::string path = [] {
    const std::string p = ::testing::TempDir() + "replay_dep_sample.dctr";
    io::save_trace_file(sample_trace(), p);
    return p;
  }();
  return path;
}

/// Final live edge set of a sequential replay — the ground truth any
/// dependency-preserving concurrent replay must reproduce.
std::set<Edge> final_edges(const io::Trace& t) {
  std::set<Edge> live;
  for (const Op& op : t.ops) {
    if (op.u == op.v) continue;
    const Edge e(op.u, op.v);
    if (op.kind == OpKind::kAdd) live.insert(e);
    if (op.kind == OpKind::kRemove) live.erase(e);
  }
  return live;
}

TEST(EdgePartition, HashIsOrderInsensitive) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(1 << 20));
    const auto v = static_cast<Vertex>(rng.next_below(1 << 20));
    EXPECT_EQ(harness::edge_partition_hash(u, v),
              harness::edge_partition_hash(v, u));
  }
}

TEST(EdgePartition, SpreadsEdgesAcrossThreads) {
  // Not a cryptographic bar — just "no thread starves" on a real op mix.
  const io::Trace& t = sample_trace();
  for (unsigned threads : {2u, 4u, 7u}) {
    std::size_t total = 0;
    for (unsigned w = 0; w < threads; ++w) {
      const auto mine = harness::edge_partition(t.ops, w, threads);
      EXPECT_GT(mine.size(), t.ops.size() / threads / 4) << threads << "/" << w;
      total += mine.size();
    }
    EXPECT_EQ(total, t.ops.size()) << threads;
  }
}

TEST(EdgePartition, KeepsEveryEdgeOrderedOnOneThread) {
  const io::Trace& t = sample_trace();
  constexpr unsigned kThreads = 5;
  std::map<Edge, unsigned> owner;
  std::map<Edge, std::vector<Op>> recorded;  // per-edge history, trace order
  for (const Op& op : t.ops) recorded[Edge(op.u, op.v)].push_back(op);

  std::map<Edge, std::vector<Op>> replayed;
  for (unsigned w = 0; w < kThreads; ++w) {
    for (const Op& op : harness::edge_partition(t.ops, w, kThreads)) {
      const Edge e(op.u, op.v);
      const auto [it, fresh] = owner.emplace(e, w);
      EXPECT_EQ(it->second, w) << "edge " << e.u << "," << e.v
                               << " split across threads";
      (void)fresh;
      replayed[e].push_back(op);
    }
  }
  // Each edge's subsequence is exactly its recorded history, in order.
  EXPECT_EQ(replayed, recorded);
}

TEST(ReplayDep, SequentialPartitionIsTheWholeTrace) {
  const io::Trace& t = sample_trace();
  EXPECT_EQ(harness::edge_partition(t.ops, 0, 1), t.ops);
}

TEST(ReplayDep, ScenarioIsRegisteredWithLatencyTracking) {
  const ScenarioInfo* s = harness::find_scenario("trace-replay-dep");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->caps.finite);
  EXPECT_TRUE(s->caps.needs_trace);
  EXPECT_TRUE(s->caps.tracks_latency);
  EXPECT_EQ(s->caps.prefill, harness::Prefill::kNone);
}

TEST(ReplayDep, ConcurrentReplayMatchesOracleConnectivityOnEveryVariant) {
  // The acceptance bar: the dependency-preserving replay of the converted
  // SNAP sample ends in the oracle's connectivity on every variant, at
  // a thread count that actually interleaves.
  const io::Trace& t = sample_trace();
  const std::set<Edge> live = final_edges(t);
  Dsu oracle(t.num_vertices);
  for (const Edge& e : live) oracle.unite(e.u, e.v);

  const ScenarioInfo* s = harness::find_scenario("trace-replay-dep");
  ASSERT_NE(s, nullptr);
  const Graph g(t.num_vertices);  // needs_trace scenarios size from the trace
  RunConfig cfg;
  cfg.threads = 4;
  cfg.trace_path = sample_trace_path();

  Xoshiro256 rng(99);
  for (const VariantInfo& v : all_variants()) {
    auto dc = v.make(t.num_vertices, true);
    const harness::RunResult r = harness::run_scenario(*s, *dc, g, cfg);
    EXPECT_EQ(r.total_ops, t.ops.size()) << v.name;
    // Compare connectivity on every touched vertex against a fixed anchor
    // plus random pairs — equality on all of them pins the partition.
    for (Vertex u = 1; u < t.num_vertices; ++u) {
      ASSERT_EQ(dc->connected(0, u), oracle.connected(0, u))
          << v.name << " vertex " << u;
    }
    for (int i = 0; i < 500; ++i) {
      const auto a = static_cast<Vertex>(rng.next_below(t.num_vertices));
      const auto b = static_cast<Vertex>(rng.next_below(t.num_vertices));
      ASSERT_EQ(dc->connected(a, b), oracle.connected(a, b))
          << v.name << " pair " << a << "," << b;
    }
  }
}

TEST(ReplayDep, RunResultCarriesLatencyPercentiles) {
  const io::Trace& t = sample_trace();
  const ScenarioInfo* s = harness::find_scenario("trace-replay-dep");
  ASSERT_NE(s, nullptr);
  const Graph g(t.num_vertices);
  RunConfig cfg;
  cfg.threads = 2;
  cfg.trace_path = sample_trace_path();
  auto dc = make_variant("full", t.num_vertices);
  const harness::RunResult r = harness::run_scenario(*s, *dc, g, cfg);

  EXPECT_EQ(r.latency_samples, t.ops.size());
  EXPECT_GT(r.latency_us_p50, 0.0);
  EXPECT_LE(r.latency_us_p50, r.latency_us_p90);
  EXPECT_LE(r.latency_us_p90, r.latency_us_p99);
  EXPECT_LE(r.latency_us_p99, r.latency_us_max);
  EXPECT_GT(r.latency_us_avg, 0.0);
  EXPECT_LE(r.latency_us_avg, r.latency_us_max);

  // The plain striped replay does not pay the timing cost.
  const ScenarioInfo* striped = harness::find_scenario("trace-replay");
  ASSERT_NE(striped, nullptr);
  auto dc2 = make_variant("full", t.num_vertices);
  const harness::RunResult r2 = harness::run_scenario(*striped, *dc2, g, cfg);
  EXPECT_EQ(r2.latency_samples, 0u);
  EXPECT_EQ(r2.latency_us_max, 0.0);
}

}  // namespace
}  // namespace condyn
