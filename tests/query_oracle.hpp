#pragma once

// Shared sequential reference for the full Query API v2 vocabulary, used by
// test_batch, test_scenarios, test_trace_v2 and test_query_api: a
// present-edge set mirrors the single-op update return values, and queries
// rebuild a DSU (graph/dsu.hpp — extended with size and min-id
// representative tracking) over the live edges. apply() returns the same
// raw values the API returns: 0/1 for the boolean kinds, the component size
// for kComponentSize, and the canonical (smallest-id) representative for
// kRepresentative — which is exactly the API's contract, so oracle values
// are directly comparable across every variant.

#include <set>
#include <vector>

#include "api/dynamic_connectivity.hpp"
#include "graph/dsu.hpp"

namespace condyn::testutil {

class QueryOracle {
 public:
  explicit QueryOracle(Vertex n) : n_(n) {}

  uint64_t apply(const Op& op) {
    switch (op.kind) {
      case OpKind::kAdd:
        return (op.u != op.v && present_.insert(Edge(op.u, op.v)).second) ? 1
                                                                          : 0;
      case OpKind::kRemove:
        return (op.u != op.v && present_.erase(Edge(op.u, op.v)) != 0) ? 1
                                                                       : 0;
      case OpKind::kConnected:
        return (op.u == op.v || rebuild().connected(op.u, op.v)) ? 1 : 0;
      case OpKind::kComponentSize:
        return rebuild().component_size(op.u);
      case OpKind::kRepresentative:
        return rebuild().representative(op.u);
    }
    return 0;
  }

  /// The oracle's answer vector for a whole program (replay_trace shape).
  std::vector<uint64_t> replay(std::span<const Op> ops) {
    std::vector<uint64_t> out;
    out.reserve(ops.size());
    for (const Op& op : ops) out.push_back(apply(op));
    return out;
  }

  const std::set<Edge>& present() const noexcept { return present_; }

 private:
  Dsu rebuild() const {
    Dsu dsu(n_);
    for (const Edge& e : present_) dsu.unite(e.u, e.v);
    return dsu;
  }

  Vertex n_;
  std::set<Edge> present_;
};

}  // namespace condyn::testutil
