// The epoll TCP server (DESIGN.md §12): loopback round trips of every op
// kind against the sequential oracle, per-connection program order through
// the ingest ring, the inline pure-read fast path, strict rejection of
// malformed byte streams, deterministic overload shedding (applier parked
// via pause(), so admission control — not timing — decides), status probes,
// the graceful stop() drain (no acknowledged op is lost, in-flight frames
// are answered), and concurrent multi-client churn — the last runs under the
// CI TSan job to check the cross-thread handoffs, not just the answers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "ingest/ingest.hpp"
#include "query_oracle.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace condyn {
namespace {

using server::BlockingClient;
using wire::Status;

constexpr const char* kHost = "127.0.0.1";

/// One variant + service + server on an ephemeral loopback port.
struct Stack {
  std::unique_ptr<DynamicConnectivity> dc;
  std::unique_ptr<ingest::IngestService> svc;
  std::unique_ptr<server::Server> srv;

  explicit Stack(Vertex n, server::ServerOptions sopts = {},
                 ingest::IngestOptions iopts = {}) {
    dc = make_variant("full", n);
    svc = std::make_unique<ingest::IngestService>(*dc, iopts);
    sopts.bind_address = kHost;
    sopts.port = 0;  // ephemeral
    srv = std::make_unique<server::Server>(*dc, *svc, sopts);
    srv->start();
  }
  ~Stack() {
    srv->stop();  // before svc->stop(): the drain waits on applier tickets
    svc->stop();
  }
  uint16_t port() const { return srv->port(); }
};

TEST(Server, LoopbackAllOpKindsMatchOracle) {
  constexpr Vertex kN = 256;
  Stack stack(kN);
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  testutil::QueryOracle oracle(kN);

  std::mt19937_64 rng(11);
  for (int frame = 0; frame < 40; ++frame) {
    std::vector<Op> ops;
    const int len = 1 + static_cast<int>(rng() % 30);
    for (int i = 0; i < len; ++i) {
      const auto u = static_cast<Vertex>(rng() % kN);
      const auto v = static_cast<Vertex>(rng() % kN);
      switch (rng() % 5) {
        case 0: ops.push_back(Op::add(u, v)); break;
        case 1: ops.push_back(Op::remove(u, v)); break;
        case 2: ops.push_back(Op::connected(u, v)); break;
        case 3: ops.push_back(Op::component_size(u)); break;
        default: ops.push_back(Op::representative(u)); break;
      }
    }
    const wire::Results r = cli.call(ops);
    ASSERT_EQ(r.status, Status::kOk) << "frame " << frame;
    EXPECT_EQ(r.values, oracle.replay(ops)) << "frame " << frame;
  }
}

TEST(Server, PerConnectionProgramOrder) {
  // A client that adds an edge and then asks connected() in the *next* frame
  // must observe its own write: read frames queued behind an in-flight
  // update route through the same FIFO ring.
  constexpr Vertex kN = 64;
  Stack stack(kN);
  BlockingClient cli;
  cli.connect(kHost, stack.port());

  const std::vector<Op> write = {Op::add(1, 2), Op::add(2, 3)};
  const std::vector<Op> read = {Op::connected(1, 3)};
  cli.send_ops(write);
  cli.send_ops(read);  // pipelined: lands while the update may be in flight
  const wire::Results w = cli.recv_results();
  const wire::Results r = cli.recv_results();
  ASSERT_EQ(w.status, Status::kOk);
  EXPECT_EQ(w.values, (std::vector<uint64_t>{1, 1}));
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, (std::vector<uint64_t>{1}));
}

TEST(Server, PureReadFramesServeInline) {
  constexpr Vertex kN = 64;
  Stack stack(kN);
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  ASSERT_EQ(cli.call({{Op::add(4, 5)}}).status, Status::kOk);

  const uint64_t before = stack.srv->stats().inline_reads;
  const wire::Results r = cli.call({{Op::connected(4, 5), Op::connected(4, 6)}});
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, (std::vector<uint64_t>{1, 0}));
  EXPECT_GT(stack.srv->stats().inline_reads, before);
}

TEST(Server, MalformedFramesAnsweredAndClosed) {
  constexpr Vertex kN = 64;
  // Each case gets a fresh connection: kBadFrame is terminal for the stream.
  const auto expect_bad = [&](const std::vector<uint8_t>& bytes) {
    Stack stack(kN);
    BlockingClient cli;
    cli.connect(kHost, stack.port());
    cli.send_raw(bytes);
    const wire::Results r = cli.recv_results();
    EXPECT_EQ(r.status, Status::kBadFrame);
    // The server closes after flushing the response.
    EXPECT_THROW(cli.recv_results(), std::runtime_error);
    EXPECT_EQ(stack.srv->stats().bad_frames, 1u);
  };

  expect_bad({0, 0, 0, 0});           // length 0
  expect_bad({0xff, 0xff, 0xff, 0xff});  // length past the 2^24 bound
  expect_bad({1, 0, 0, 0, 99});       // unknown frame type
  // Ops payload with a bad kind (count 1, tag kind=7).
  expect_bad({3, 0, 0, 0, 1, 1, 0x07});
  // Ops frame whose vertex lands outside the server's universe.
  std::vector<uint8_t> out_of_range;
  wire::encode_ops_frame({{Op::add(kN + 5, 0)}}, out_of_range);
  expect_bad(out_of_range);
  // A client must not send response-type frames.
  std::vector<uint8_t> results_frame;
  wire::encode_results_frame(Status::kOk, {{1}}, results_frame);
  expect_bad(results_frame);
}

TEST(Server, TruncatedFrameGetsNoAnswer) {
  constexpr Vertex kN = 64;
  Stack stack(kN);
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  std::vector<uint8_t> frame;
  wire::encode_ops_frame({{Op::connected(1, 2)}}, frame);
  frame.pop_back();  // incomplete: the server waits for the rest, forever
  cli.send_raw(frame);
  // A later complete exchange on a *second* connection proves the server is
  // not stuck on the half frame.
  BlockingClient cli2;
  cli2.connect(kHost, stack.port());
  EXPECT_EQ(cli2.call({{Op::connected(1, 2)}}).status, Status::kOk);
  EXPECT_EQ(stack.srv->stats().bad_frames, 0u);
}

TEST(Server, OverloadShedsWithExplicitStatus) {
  constexpr Vertex kN = 64;
  server::ServerOptions sopts;
  sopts.max_inflight_frames = 1;
  Stack stack(kN, sopts);

  // Park the applier: the first update frame's ticket cannot complete, so
  // the second frame deterministically exceeds the in-flight cap. Responses
  // stay strictly in request order — the shed answer queues behind the
  // parked frame's.
  stack.svc->pause();
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  cli.send_ops({{Op::add(1, 2)}});
  cli.send_ops({{Op::add(3, 4)}});
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stack.svc->resume();

  const wire::Results first = cli.recv_results();
  const wire::Results second = cli.recv_results();
  EXPECT_EQ(first.status, Status::kOk);
  EXPECT_EQ(first.values, (std::vector<uint64_t>{1}));
  EXPECT_EQ(second.status, Status::kOverloaded);
  EXPECT_TRUE(second.values.empty());
  EXPECT_EQ(stack.srv->stats().shed_frames, 1u);

  // Shedding is not collapse: the connection keeps working afterwards.
  EXPECT_EQ(cli.call({{Op::connected(1, 2)}}).values,
            (std::vector<uint64_t>{1}));
}

TEST(Server, StatusProbeReportsIngestCounters) {
  constexpr Vertex kN = 128;
  Stack stack(kN);
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  ASSERT_EQ(cli.call({{Op::add(1, 2), Op::add(2, 3)}}).status, Status::kOk);

  const wire::StatusReport rep = cli.status();
  EXPECT_EQ(rep.num_vertices, kN);
  EXPECT_EQ(rep.submitted, 2u);
  EXPECT_EQ(rep.acked, 2u);  // call() returned, so the commit acknowledged
  EXPECT_EQ(rep.queue_depth, 0u);
  EXPECT_EQ(rep.journal_errors, 0u);
  EXPECT_GE(rep.batches, 1u);
  EXPECT_EQ(stack.srv->stats().status_frames, 1u);
}

TEST(Server, StatusProbeQueuesBehindInflightFrames) {
  // In-order protocol: a probe sent after an un-acknowledged update frame
  // must be answered after it, and must see its effects.
  constexpr Vertex kN = 64;
  Stack stack(kN);
  stack.svc->pause();
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  cli.send_ops({{Op::add(1, 2)}});
  cli.send_status_request();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stack.svc->resume();

  EXPECT_EQ(cli.recv_results().status, Status::kOk);
  // The probe is answered second (strict request order), and by then the
  // update was submitted. (acked lags the ticket flip by nanoseconds, so a
  // fresh probe — nothing in flight — is what asserts it exactly.)
  const wire::StatusReport rep = cli.recv_status();
  EXPECT_EQ(rep.submitted, 1u);
  const wire::StatusReport settled = cli.status();
  EXPECT_EQ(settled.acked, 1u);
  EXPECT_EQ(settled.queue_depth, 0u);
}

TEST(Server, ServiceStoppedAnswersShuttingDownReadsStillServed) {
  constexpr Vertex kN = 64;
  Stack stack(kN);
  BlockingClient cli;
  cli.connect(kHost, stack.port());
  ASSERT_EQ(cli.call({{Op::add(1, 2)}}).status, Status::kOk);

  // Stop the ingest service out from under the server: updates are refused
  // (tickets kDropped -> kShuttingDown), pure reads keep working inline.
  stack.svc->stop();
  EXPECT_EQ(cli.call({{Op::add(3, 4)}}).status, Status::kShuttingDown);
  EXPECT_EQ(cli.call({{Op::connected(1, 2)}}).values,
            (std::vector<uint64_t>{1}));
}

TEST(Server, GracefulStopFlushesInflightAndLosesNoAck) {
  constexpr Vertex kN = 256;
  server::ServerOptions sopts;
  sopts.max_inflight_frames = 32;  // all 8 frames may be in flight at once
  auto stack = std::make_unique<Stack>(kN, sopts);
  BlockingClient cli;
  cli.connect(kHost, stack->port());

  // Park the applier, pipeline update frames, and wait until every op sits
  // ticketed in the ring — *then* stop the server. The drain must flush all
  // of them through the group commit, not abandon them.
  stack->svc->pause();
  testutil::QueryOracle oracle(kN);
  std::mt19937_64 rng(23);
  std::vector<std::vector<Op>> frames;
  for (int f = 0; f < 8; ++f) {
    std::vector<Op> ops;
    for (int i = 0; i < 16; ++i) {
      const auto u = static_cast<Vertex>(rng() % kN);
      const auto v = static_cast<Vertex>(rng() % kN);
      ops.push_back(rng() % 3 == 0 ? Op::remove(u, v) : Op::add(u, v));
    }
    frames.push_back(std::move(ops));
    cli.send_ops(frames.back());
  }
  while (stack->svc->stats().submitted < 8 * 16) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread stopper([&] { stack->srv->stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stack->svc->resume();

  // Every pipelined frame is answered kOk before the connection closes: the
  // drain flushes in-flight batches, it does not abandon them.
  for (const auto& frame : frames) {
    const wire::Results r = cli.recv_results();
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.values, oracle.replay(frame));
  }
  EXPECT_THROW(cli.recv_results(), std::runtime_error);  // then EOF
  stopper.join();
  stack->svc->stop();

  // The structure holds exactly the acknowledged state.
  for (Vertex u = 0; u < 16; ++u) {
    for (Vertex v = u + 1; v < 16; ++v) {
      EXPECT_EQ(stack->dc->connected(u, v),
                oracle.apply(Op::connected(u, v)) != 0)
          << u << "-" << v;
    }
  }
}

TEST(Server, ConcurrentMultiClientChurn) {
  // Several clients over several worker threads, each confined to a private
  // vertex range so a per-client sequential oracle stays exact while the
  // shared structure takes everyone's interleaved batches.
  constexpr Vertex kRange = 64;
  constexpr int kClients = 4;
  constexpr int kFrames = 60;
  server::ServerOptions sopts;
  sopts.threads = 3;
  Stack stack(kRange * kClients, sopts);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        const Vertex base = static_cast<Vertex>(t) * kRange;
        testutil::QueryOracle oracle(kRange);
        BlockingClient cli;
        cli.connect(kHost, stack.port());
        std::mt19937_64 rng(1000 + t);
        for (int f = 0; f < kFrames; ++f) {
          std::vector<Op> local;  // oracle coordinates (0..kRange)
          std::vector<Op> ops;    // wire coordinates (base-shifted)
          const int len = 1 + static_cast<int>(rng() % 12);
          for (int i = 0; i < len; ++i) {
            const auto u = static_cast<Vertex>(rng() % kRange);
            const auto v = static_cast<Vertex>(rng() % kRange);
            Op op;
            switch (rng() % 5) {
              case 0: op = Op::add(u, v); break;
              case 1: op = Op::remove(u, v); break;
              case 2: op = Op::connected(u, v); break;
              case 3: op = Op::component_size(u); break;
              default: op = Op::representative(u); break;
            }
            local.push_back(op);
            Op shifted = op;
            shifted.u += base;
            shifted.v += base;
            ops.push_back(shifted);
          }
          const wire::Results r = cli.call(ops);
          if (r.status != Status::kOk) throw std::runtime_error("not ok");
          std::vector<uint64_t> expect = oracle.replay(local);
          // Size/representative answers come back in wire coordinates.
          for (std::size_t i = 0; i < local.size(); ++i) {
            if (local[i].kind == OpKind::kRepresentative) expect[i] += base;
          }
          if (r.values != expect) throw std::runtime_error("mismatch");
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const server::ServerStats st = stack.srv->stats();
  EXPECT_EQ(st.accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(st.bad_frames, 0u);
}

}  // namespace
}  // namespace condyn
