// Scenario-engine coverage: the scenario registry mirrors VariantRegistry,
// every generator is deterministic per seed, the binary trace format
// round-trips, record->replay reproduces the exact stream, and every
// registered scenario x every registered variant agrees with the sequential
// DSU oracle on a tiny graph.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/factory.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/driver.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"
#include "query_oracle.hpp"

namespace condyn {
namespace {

using harness::RunConfig;
using harness::ScenarioInfo;
using Oracle = condyn::testutil::QueryOracle;

RunConfig tiny_config() {
  RunConfig cfg;
  cfg.threads = 1;
  cfg.read_percent = 50;
  cfg.seed = 11;
  cfg.warmup_ms = 0;
  cfg.measure_ms = 5;
  cfg.batch_size = 7;
  return cfg;
}

/// A trace file for the trace-replay scenario, recorded once per process.
const std::string& shared_trace_path(const Graph& g) {
  static std::string path;
  if (path.empty()) {
    path = ::testing::TempDir() + "test_scenarios_trace.bin";
    const ScenarioInfo* random = harness::find_scenario("random");
    EXPECT_NE(random, nullptr);
    harness::record_trace_file(*random, g, tiny_config(), 300, path);
  }
  return path;
}

Graph tiny_graph() { return gen::erdos_renyi(24, 60, 3); }

TEST(ScenarioRegistry, EnumeratesTheBuiltins) {
  const auto& scenarios = harness::all_scenarios();
  EXPECT_GE(scenarios.size(), 16u);
  // Ids are sequential in registration order, names unique.
  std::set<std::string> names;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].id, static_cast<int>(i) + 1);
    EXPECT_TRUE(names.insert(scenarios[i].name).second);
  }
  for (const char* name :
       {"random", "incremental", "decremental", "batch-random",
        "batch-incremental", "zipfian", "sliding-window", "component-local",
        "trace-replay", "trace-replay-dep", "size-query", "bulk-connected",
        "batch-zipfian", "batch-window", "batch-component-local"}) {
    const ScenarioInfo* s = harness::find_scenario(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_STREQ(s->name, name);
    EXPECT_EQ(harness::find_scenario(s->id), s);
  }
  EXPECT_EQ(harness::find_scenario("no-such-scenario"), nullptr);
  EXPECT_EQ(harness::find_scenario(0), nullptr);
  EXPECT_EQ(harness::find_scenario(1000), nullptr);
  // Caps match the scenario contracts the driver branches on.
  EXPECT_TRUE(harness::find_scenario("incremental")->caps.finite);
  EXPECT_TRUE(harness::find_scenario("batch-random")->caps.batched);
  EXPECT_TRUE(harness::find_scenario("trace-replay")->caps.needs_trace);
  EXPECT_TRUE(harness::find_scenario("trace-replay-dep")->caps.needs_trace);
  EXPECT_TRUE(harness::find_scenario("trace-replay-dep")->caps.tracks_latency);
  EXPECT_FALSE(harness::find_scenario("trace-replay")->caps.tracks_latency);
  EXPECT_EQ(harness::find_scenario("decremental")->caps.prefill,
            harness::Prefill::kFull);
  // Query API v2 scenarios.
  EXPECT_TRUE(harness::find_scenario("size-query")->caps.uses_read_percent);
  EXPECT_FALSE(harness::find_scenario("size-query")->caps.batched);
  EXPECT_TRUE(harness::find_scenario("bulk-connected")->caps.batched);
  EXPECT_FALSE(harness::find_scenario("bulk-connected")->caps.uses_read_percent);
  EXPECT_TRUE(harness::find_scenario("batch-zipfian")->caps.batched);
  EXPECT_TRUE(harness::find_scenario("batch-window")->caps.batched);
  // The batched community-locality mix keeps the unbatched scenario's knobs.
  EXPECT_TRUE(harness::find_scenario("batch-component-local")->caps.batched);
  EXPECT_TRUE(
      harness::find_scenario("batch-component-local")->caps.uses_read_percent);
  EXPECT_EQ(harness::find_scenario("batch-component-local")->caps.prefill,
            harness::Prefill::kHalf);
  EXPECT_FALSE(harness::find_scenario("batch-component-local")->caps.finite);
  EXPECT_EQ(harness::find_scenario("bulk-connected")->caps.prefill,
            harness::Prefill::kHalf);
}

TEST(ScenarioStreams, SizeQueryMixRotatesTheQueryVocabulary) {
  const Graph g = tiny_graph();
  harness::SizeQueryStream stream(g, 60, 21);
  uint64_t counts[kNumOpKinds] = {};
  Op op;
  constexpr int kDraws = 30000;
  for (int i = 0; i < kDraws; ++i) {
    ASSERT_TRUE(stream.next(op));
    ++counts[static_cast<std::size_t>(op.kind)];
    EXPECT_LT(op.u, g.num_vertices());
    EXPECT_LT(op.v, g.num_vertices());
    if (op.kind == OpKind::kComponentSize ||
        op.kind == OpKind::kRepresentative) {
      EXPECT_EQ(op.u, op.v);  // single-vertex ops keep v == u
    }
  }
  const auto reads = counts[2] + counts[3] + counts[4];
  EXPECT_NEAR(reads * 100.0 / kDraws, 60.0, 1.5);
  // The rotation splits reads roughly in thirds across the vocabulary.
  for (std::size_t k = 2; k < kNumOpKinds; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]), reads / 3.0, reads * 0.05)
        << "kind " << k;
  }
  EXPECT_GT(counts[0], 0u);  // adds
  EXPECT_GT(counts[1], 0u);  // removes
}

TEST(ScenarioStreams, BulkConnectedIsPureQueries) {
  const Graph g = tiny_graph();
  const ScenarioInfo* s = harness::find_scenario("bulk-connected");
  ASSERT_NE(s, nullptr);
  RunConfig cfg = tiny_config();
  cfg.read_percent = 0;  // must be ignored: the scenario is queries-only
  auto stream = s->make_stream(g, cfg, 0);
  Op op;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(stream->next(op));
    EXPECT_EQ(op.kind, OpKind::kConnected) << "op " << i;
  }
}

TEST(ScenarioRegistry, RejectsDuplicateNames) {
  EXPECT_THROW(harness::ScenarioRegistry::instance().add(
                   "random", "dup", {},
                   [](const Graph& g, const RunConfig& cfg, unsigned) {
                     return std::make_unique<harness::RandomOpStream>(
                         g, cfg.read_percent, 0);
                   }),
               std::invalid_argument);
}

TEST(ScenarioStreams, SameSeedSameStream) {
  const Graph g = tiny_graph();
  RunConfig cfg = tiny_config();
  cfg.threads = 2;
  cfg.trace_path = shared_trace_path(g);
  for (const ScenarioInfo& s : harness::all_scenarios()) {
    for (unsigned t = 0; t < cfg.threads; ++t) {
      auto a = s.make_stream(g, cfg, t);
      auto b = s.make_stream(g, cfg, t);
      Op oa, ob;
      for (int i = 0; i < 400; ++i) {
        const bool ha = a->next(oa);
        const bool hb = b->next(ob);
        ASSERT_EQ(ha, hb) << s.name << " thread " << t << " op " << i;
        if (!ha) break;
        ASSERT_EQ(oa, ob) << s.name << " thread " << t << " op " << i;
      }
    }
  }
}

TEST(ScenarioStreams, DifferentSeedsDiverge) {
  const Graph g = tiny_graph();
  RunConfig a = tiny_config(), b = tiny_config();
  b.seed = a.seed + 1;
  for (const char* name : {"random", "zipfian", "component-local"}) {
    const ScenarioInfo* s = harness::find_scenario(name);
    ASSERT_NE(s, nullptr);
    auto sa = s->make_stream(g, a, 0);
    auto sb = s->make_stream(g, b, 0);
    int diffs = 0;
    Op oa, ob;
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(sa->next(oa) && sb->next(ob));
      diffs += oa != ob;
    }
    EXPECT_GT(diffs, 0) << name;
  }
}

TEST(ScenarioStreams, ZipfianIsSkewedAndInBounds) {
  const Graph g = tiny_graph();
  harness::ZipfianOpStream stream(g, 0, 9, 0);
  std::map<Edge, int> hits;
  Op op;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    ASSERT_TRUE(stream.next(op));
    const Edge e(op.u, op.v);
    EXPECT_LT(op.u, g.num_vertices());
    EXPECT_LT(op.v, g.num_vertices());
    ++hits[e];
  }
  // Every emitted edge is a graph edge.
  const std::set<Edge> all(g.edges().begin(), g.edges().end());
  int hottest = 0;
  for (const auto& [e, n] : hits) {
    EXPECT_TRUE(all.count(e)) << e.u << "," << e.v;
    hottest = std::max(hottest, n);
  }
  // Zipf(0.99) over 60 edges puts ~20% of draws on the hottest edge; a
  // uniform mix would put ~1.7% there. 8% splits the two regimes safely.
  EXPECT_GT(hottest, kDraws * 8 / 100);
  // The popularity permutation is a bijection over the edge list.
  std::set<std::size_t> indices;
  for (uint64_t r = 0; r < g.num_edges(); ++r) {
    const std::size_t idx = stream.index_of_rank(r);
    EXPECT_LT(idx, g.num_edges());
    EXPECT_TRUE(indices.insert(idx).second) << "rank " << r;
  }
}

TEST(ScenarioStreams, ZipfThetaControlsSkew) {
  // The DC_BENCH_ZIPF_THETA knob: higher theta concentrates more draws on
  // the hottest edge. Compare the hottest-edge share at two thetas.
  const Graph g = tiny_graph();
  auto hottest_share = [&](double theta) {
    harness::ZipfianOpStream stream(g, 0, 9, 0, theta);
    std::map<Edge, int> hits;
    Op op;
    for (int i = 0; i < 20000; ++i) {
      EXPECT_TRUE(stream.next(op));
      ++hits[Edge(op.u, op.v)];
    }
    int hottest = 0;
    for (const auto& [e, n] : hits) hottest = std::max(hottest, n);
    return hottest;
  };
  EXPECT_GT(hottest_share(0.99), hottest_share(0.5) * 3 / 2);
}

TEST(ScenarioStreams, KnobsFlowThroughRunConfig) {
  // The registry factories must pass RunConfig's generator knobs to the
  // streams: changed knobs produce visibly different op sequences.
  const Graph g = tiny_graph();
  for (const char* name : {"zipfian", "component-local"}) {
    const ScenarioInfo* s = harness::find_scenario(name);
    ASSERT_NE(s, nullptr);
    RunConfig base;
    RunConfig tweaked = base;
    tweaked.zipf_theta = 0.2;
    tweaked.communities = 3;
    tweaked.run_length = 5;
    auto sa = s->make_stream(g, base, 0);
    auto sb = s->make_stream(g, tweaked, 0);
    int diffs = 0;
    Op oa, ob;
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(sa->next(oa) && sb->next(ob));
      diffs += oa != ob;
    }
    EXPECT_GT(diffs, 0) << name << ": knob change had no effect";
  }
  const ScenarioInfo* s = harness::find_scenario("sliding-window");
  ASSERT_NE(s, nullptr);
  RunConfig half;
  half.window_fraction = 0.5;
  auto stream = s->make_stream(g, half, 0);
  (void)stream;  // construction applies the fraction; window size below
  harness::SlidingWindowStream direct(g.edges(), 40, 7, 0.5);
  EXPECT_EQ(direct.window(), g.edges().size() / 2);
}

TEST(ScenarioStreams, RunLengthKnobControlsHopCadence) {
  const Graph g = tiny_graph();
  constexpr unsigned kRun = 8;
  harness::ComponentLocalStream stream(g, 50, 4, 13, 0, kRun);
  const Vertex block = (g.num_vertices() + 3) / 4;
  Op op;
  for (int run = 0; run < 30; ++run) {
    Vertex community = 0;
    for (unsigned i = 0; i < kRun; ++i) {
      ASSERT_TRUE(stream.next(op));
      const Vertex c = std::min(op.u, op.v) / block;
      if (i == 0) {
        community = c;
      } else {
        EXPECT_EQ(c, community) << "run " << run << " op " << i;
      }
    }
  }
}

TEST(ScenarioStreams, SlidingWindowKeepsLiveCountBounded) {
  const Graph g = tiny_graph();
  harness::SlidingWindowStream stream(g.edges(), 40, 7);
  std::multiset<Edge> live;
  Op op;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(stream.next(op));
    const Edge e(op.u, op.v);
    if (op.kind == OpKind::kAdd) {
      live.insert(e);
    } else if (op.kind == OpKind::kRemove) {
      // The trailing remove always targets a previously added edge.
      ASSERT_TRUE(live.count(e)) << "remove of never-added edge at op " << i;
      live.erase(live.find(e));
    } else {
      ASSERT_TRUE(live.count(e)) << "read outside the live window at op " << i;
    }
    EXPECT_LE(live.size(), stream.window());
  }
  // The window actually marched: more ops than the window size were added.
  EXPECT_EQ(live.size(), stream.window());

  // Degenerate stripe (more threads than edges): stream reports exhaustion
  // instead of dereferencing an empty edge list.
  harness::SlidingWindowStream empty({}, 40, 7);
  EXPECT_FALSE(empty.next(op));
}

TEST(ScenarioStreams, ComponentLocalOpsStayInOneCommunityPerRun) {
  const Graph g = tiny_graph();
  harness::ComponentLocalStream stream(
      g, 50, harness::ComponentLocalStream::kDefaultCommunities, 13, 0);
  EXPECT_GE(stream.num_communities(), 2u);
  const Vertex block =
      (g.num_vertices() + harness::ComponentLocalStream::kDefaultCommunities -
       1) /
      harness::ComponentLocalStream::kDefaultCommunities;
  Op op;
  for (int run = 0; run < 20; ++run) {
    Vertex community = 0;
    for (unsigned i = 0; i < harness::ComponentLocalStream::kRunLength; ++i) {
      ASSERT_TRUE(stream.next(op));
      const Vertex c = std::min(op.u, op.v) / block;
      if (i == 0) {
        community = c;
      } else {
        EXPECT_EQ(c, community) << "run " << run << " op " << i;
      }
    }
  }
}

TEST(TraceIo, RoundTripsThroughTheBinaryFormat) {
  io::Trace t;
  t.num_vertices = 0x80000000u;  // v2 validates ops against the universe
  t.ops = {Op::add(1, 2), Op::remove(999, 0), Op::connected(5, 5),
           Op::add(0xffffffffu >> 1, 3)};
  for (const io::TraceFormat f : {io::TraceFormat::kV1, io::TraceFormat::kV2}) {
    std::stringstream ss;
    io::save_trace(t, ss, f);
    const io::Trace back = io::load_trace(ss);
    EXPECT_EQ(back, t) << "format v" << static_cast<uint32_t>(f);
  }
}

TEST(TraceIo, RejectsCorruptInput) {
  std::stringstream bad_magic("NOPE....");
  EXPECT_THROW(io::load_trace(bad_magic), std::runtime_error);

  io::Trace t;
  t.num_vertices = 4;
  t.ops = {Op::add(0, 1), Op::connected(2, 3)};
  std::stringstream ss;
  io::save_trace(t, ss, io::TraceFormat::kV1);  // v1 byte offsets below
  const std::string bytes = ss.str();
  // Truncation mid-op.
  std::stringstream truncated(bytes.substr(0, bytes.size() - 3));
  EXPECT_THROW(io::load_trace(truncated), std::runtime_error);
  // Corrupt op kind.
  std::string corrupt = bytes;
  corrupt[4 + 4 + 4 + 8] = 7;  // first op's kind byte
  std::stringstream ck(corrupt);
  EXPECT_THROW(io::load_trace(ck), std::runtime_error);

  EXPECT_THROW(io::load_trace_file("/no/such/trace.bin"), std::runtime_error);
}

TEST(TraceRecord, IsDeterministicAndSelfContained) {
  const Graph g = tiny_graph();
  const ScenarioInfo* s = harness::find_scenario("random");
  ASSERT_NE(s, nullptr);
  const io::Trace a = harness::record_trace(*s, g, tiny_config(), 250);
  const io::Trace b = harness::record_trace(*s, g, tiny_config(), 250);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.num_vertices, g.num_vertices());
  // Prefill (half the graph) is frozen into the trace, then 250 stream ops.
  EXPECT_EQ(a.ops.size(), g.num_edges() / 2 + 250);
  for (std::size_t i = 0; i < g.num_edges() / 2; ++i)
    EXPECT_EQ(a.ops[i].kind, OpKind::kAdd);

  RunConfig other = tiny_config();
  other.seed = 12345;
  EXPECT_NE(harness::record_trace(*s, g, other, 250), a);

  // File round trip reproduces the exact stream.
  const std::string path = ::testing::TempDir() + "record_roundtrip.bin";
  harness::record_trace_file(*s, g, tiny_config(), 250, path);
  EXPECT_EQ(io::load_trace_file(path), a);
  std::remove(path.c_str());
}

TEST(TraceRecord, FiniteScenarioRecordsToCompletion) {
  const Graph g = tiny_graph();
  const ScenarioInfo* s = harness::find_scenario("decremental");
  ASSERT_NE(s, nullptr);
  const io::Trace t = harness::record_trace(*s, g, tiny_config(), 100000);
  // Full prefill plus one removal per edge; the stream ends on its own.
  EXPECT_EQ(t.ops.size(), 2 * g.num_edges());
  auto dc = make_variant(9, g.num_vertices());
  harness::replay_trace(*dc, t.ops);
  for (Vertex v = 1; v < g.num_vertices(); ++v)
    EXPECT_FALSE(dc->connected(0, v));
}

TEST(TraceReplay, IdenticalResultsAcrossVariants) {
  const Graph g = tiny_graph();
  const ScenarioInfo* s = harness::find_scenario("zipfian");
  ASSERT_NE(s, nullptr);
  const io::Trace t = harness::record_trace(*s, g, tiny_config(), 400);
  // The acceptance bar: one recorded trace, replayed on different variants,
  // yields identical per-op results — the registry's apples-to-apples tool.
  auto coarse = make_variant("coarse", g.num_vertices());
  const auto baseline = harness::replay_trace(*coarse, t.ops);
  ASSERT_EQ(baseline.size(), t.ops.size());
  for (const VariantInfo& v : all_variants()) {
    auto dc = v.make(g.num_vertices(), true);
    EXPECT_EQ(harness::replay_trace(*dc, t.ops), baseline) << v.name;
  }
}

TEST(ScenarioOracle, EveryScenarioEveryVariantMatchesDsuOracle) {
  const Graph g = tiny_graph();
  RunConfig cfg = tiny_config();
  cfg.trace_path = shared_trace_path(g);
  for (const ScenarioInfo& s : harness::all_scenarios()) {
    // Linearize the scenario into a trace, then check every variant's
    // replay against the sequential oracle op by op.
    const io::Trace t = harness::record_trace(s, g, cfg, 250);
    ASSERT_FALSE(t.ops.empty()) << s.name;
    Oracle oracle(g.num_vertices());
    const std::vector<uint64_t> expected = oracle.replay(t.ops);
    for (const VariantInfo& v : all_variants()) {
      auto dc = v.make(g.num_vertices(), true);
      const auto got = harness::replay_trace(*dc, t.ops);
      ASSERT_EQ(got.size(), expected.size()) << s.name << " on " << v.name;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], expected[i])
            << s.name << " on " << v.name << " op " << i << " kind "
            << static_cast<int>(t.ops[i].kind) << " (" << t.ops[i].u << ","
            << t.ops[i].v << ")";
      }
    }
  }
}

TEST(ScenarioDriver, EveryScenarioRunsConcurrently) {
  const Graph g = gen::erdos_renyi(80, 240, 5);
  RunConfig cfg = tiny_config();
  cfg.threads = 2;
  // Wide enough that even under TSan's ~10x slowdown plus a parallel test
  // binary, every timed scenario completes at least one batch/op in the
  // window (a 10 ms window flaked there).
  cfg.measure_ms = 50;
  cfg.trace_path = shared_trace_path(tiny_graph());
  for (const ScenarioInfo& s : harness::all_scenarios()) {
    auto dc = make_variant(9, s.caps.needs_trace ? tiny_graph().num_vertices()
                                                 : g.num_vertices());
    const harness::RunResult r = harness::run_scenario(s, *dc, g, cfg);
    EXPECT_GT(r.total_ops, 0u) << s.name;
    EXPECT_GT(r.ops_per_ms, 0.0) << s.name;
    if (s.caps.batched) {
      EXPECT_GT(r.batches, 0u) << s.name;
    }
    if (std::string(s.name) == "incremental" ||
        std::string(s.name) == "batch-incremental") {
      EXPECT_EQ(r.total_ops, g.num_edges()) << s.name;
    }
  }
}

TEST(ScenarioDriver, TraceReplayGuardsMismatchedStructure) {
  const Graph g = tiny_graph();
  const ScenarioInfo* s = harness::find_scenario("trace-replay");
  ASSERT_NE(s, nullptr);
  RunConfig cfg = tiny_config();
  // No trace path configured.
  auto dc = make_variant(1, g.num_vertices());
  EXPECT_THROW(harness::run_scenario(*s, *dc, g, cfg), std::invalid_argument);
  // Structure too small for the trace's vertex universe.
  cfg.trace_path = shared_trace_path(g);
  auto small = make_variant(1, 2);
  EXPECT_THROW(harness::run_scenario(*s, *small, g, cfg),
               std::invalid_argument);
}

TEST(ScenarioDriver, PrefillMatchesCaps) {
  const Graph g = tiny_graph();
  EXPECT_TRUE(harness::prefill_ops(harness::Prefill::kNone, g, 1).empty());
  const auto half = harness::prefill_ops(harness::Prefill::kHalf, g, 1);
  EXPECT_EQ(half.size(), g.num_edges() / 2);
  const auto full = harness::prefill_ops(harness::Prefill::kFull, g, 1);
  EXPECT_EQ(full.size(), g.num_edges());
  for (const Op& op : full) EXPECT_EQ(op.kind, OpKind::kAdd);
}

TEST(ScenarioDriver, EnvConfigResolvesScenarioNamesAndIds) {
  ::setenv("DC_BENCH_SCENARIOS", "zipfian, 1 ,no-such, trace-replay", 1);
  ::setenv("DC_BENCH_READS", "70,101,30", 1);
  const harness::EnvConfig env = harness::env_config();
  ::unsetenv("DC_BENCH_SCENARIOS");
  ::unsetenv("DC_BENCH_READS");
  ASSERT_EQ(env.scenarios.size(), 3u);
  EXPECT_EQ(env.scenarios[0], "zipfian");
  EXPECT_EQ(env.scenarios[1], "random");  // id 1 resolved through the registry
  EXPECT_EQ(env.scenarios[2], "trace-replay");
  ASSERT_EQ(env.read_percents.size(), 2u);  // 101 rejected
  EXPECT_EQ(env.read_percents[0], 70);
  EXPECT_EQ(env.read_percents[1], 30);
}

}  // namespace
}  // namespace condyn
