// Factory coverage: all 16 variants (13 paper combinations + the pbd family
// + the two sharded facades) are constructible by id and name,
// expose consistent metadata, and agree with a DSU oracle on a randomized
// sequential workload — the cross-variant semantic equivalence check.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "api/factory.hpp"
#include "graph/dsu.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

TEST(Factory, SixteenVariantsEnumerated) {
  const auto& vs = all_variants();
  ASSERT_EQ(vs.size(), 16u);
  for (std::size_t i = 0; i < vs.size(); ++i) {
    EXPECT_EQ(vs[i].id, static_cast<int>(i) + 1);
    EXPECT_NE(vs[i].name, nullptr);
    EXPECT_NE(vs[i].description, nullptr);
  }
  std::set<std::string> names;
  for (const auto& v : vs) names.insert(v.name);
  EXPECT_EQ(names.size(), 16u) << "variant names must be unique";
}

TEST(Factory, ConstructByIdMatchesName) {
  for (const auto& v : all_variants()) {
    auto by_id = make_variant(v.id, 16);
    auto by_name = make_variant(std::string(v.name), 16);
    EXPECT_EQ(by_id->name(), v.name);
    EXPECT_EQ(by_name->name(), v.name);
    EXPECT_EQ(by_id->num_vertices(), 16u);
  }
}

TEST(Factory, UnknownVariantThrows) {
  EXPECT_THROW(make_variant(0, 8), std::invalid_argument);
  EXPECT_THROW(make_variant(17, 8), std::invalid_argument);
  EXPECT_THROW(make_variant("no-such-algo", 8), std::invalid_argument);
}

TEST(Factory, RegistryLookupsAgreeWithEnumeration) {
  for (const auto& v : all_variants()) {
    EXPECT_EQ(find_variant(v.id), &v);
    EXPECT_EQ(find_variant(std::string(v.name)), &v);
  }
  EXPECT_EQ(find_variant("no-such-algo"), nullptr);
  EXPECT_EQ(find_variant(0), nullptr);
  EXPECT_EQ(find_variant(17), nullptr);
}

class FactoryVariants : public ::testing::TestWithParam<int> {};

TEST_P(FactoryVariants, SequentialOracleAgreement) {
  const Vertex n = 48;
  auto dc = make_variant(GetParam(), n);
  Xoshiro256 rng(17);
  std::set<Edge> present;
  for (int op = 0; op < 1500; ++op) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    const Edge e(a, b);
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(dc->add_edge(a, b), present.insert(e).second) << "op " << op;
        break;
      case 1:
        EXPECT_EQ(dc->remove_edge(a, b), present.erase(e) != 0) << "op " << op;
        break;
      default: {
        Dsu oracle(n);
        for (const Edge& pe : present) oracle.unite(pe.u, pe.v);
        EXPECT_EQ(dc->connected(a, b), oracle.connected(a, b)) << "op " << op;
      }
    }
  }
}

TEST_P(FactoryVariants, SelfLoopAndDuplicateSemantics) {
  auto dc = make_variant(GetParam(), 8);
  EXPECT_FALSE(dc->add_edge(3, 3));
  EXPECT_TRUE(dc->add_edge(1, 2));
  EXPECT_FALSE(dc->add_edge(2, 1));  // canonical duplicate
  EXPECT_TRUE(dc->remove_edge(1, 2));
  EXPECT_FALSE(dc->remove_edge(1, 2));
  EXPECT_TRUE(dc->connected(5, 5));
  EXPECT_FALSE(dc->connected(5, 6));
}

TEST_P(FactoryVariants, SamplingOffStillCorrect) {
  // The Iyer-et-al. sampling heuristic is a performance feature; with it
  // disabled (the ablation configuration) semantics must be unchanged.
  const Vertex n = 24;
  auto dc = make_variant(GetParam(), n, /*sampling=*/false);
  for (Vertex i = 0; i < n; ++i) dc->add_edge(i, (i + 1) % n);  // ring
  for (Vertex i = 0; i + 2 < n; i += 2) dc->add_edge(i, i + 2);  // chords
  for (Vertex i = 0; i + 1 < n / 2; ++i) {
    EXPECT_TRUE(dc->remove_edge(i, i + 1));
    EXPECT_TRUE(dc->connected(0, n - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, FactoryVariants, ::testing::Range(1, 17),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string n = all_variants()[info.param - 1].name;
                           for (char& c : n)
                             if (c == '-' || c == '<' || c == '>') c = '_';
                           return n;
                         });

}  // namespace
}  // namespace condyn
