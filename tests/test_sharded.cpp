// Sharded facade (DESIGN.md §10): router/shard-count contracts, boundary
// accounting, DSU-oracle equality on every query kind — including
// cross-shard connected()/component_size() through the boundary index —
// components() snapshot equality, caps honesty, and a 4-thread churn run
// with cross-shard edges checked for quiesced exactness.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/sharded_dc.hpp"
#include "graph/dsu.hpp"
#include "util/random.hpp"
#include "query_oracle.hpp"

namespace condyn {
namespace {

std::unique_ptr<ShardedDc> make_sharded(Vertex n, unsigned shards) {
  return std::make_unique<ShardedDc>(
      n, "sharded-test",
      [](Vertex ns, bool sampling) {
        return make_variant("full", ns, sampling);
      },
      /*sampling=*/true, shards);
}

TEST(Sharded, RouterIsDeterministicAndMasked) {
  for (Vertex v = 0; v < 256; ++v) {
    EXPECT_EQ(ShardedDc::route(v, 0), 0u);
    EXPECT_EQ(ShardedDc::route(v, 7), ShardedDc::route(v, 7));
    EXPECT_LE(ShardedDc::route(v, 7), 7u);
    // The 16-shard home refines the 8-shard one (pow2 mask nesting).
    EXPECT_EQ(ShardedDc::route(v, 15) & 7u, ShardedDc::route(v, 7));
  }
}

TEST(Sharded, ShardCountResolution) {
  EXPECT_EQ(make_sharded(32, 16)->num_shards(), 16u);
  EXPECT_EQ(make_sharded(32, 5)->num_shards(), 4u);  // round down to pow2
  EXPECT_EQ(make_sharded(32, 1)->num_shards(), 1u);

  ::setenv("DC_SHARDS", "8", 1);
  EXPECT_EQ(ShardedDc::env_shards(), 8u);
  EXPECT_EQ(make_sharded(32, 0)->num_shards(), 8u);
  ::unsetenv("DC_SHARDS");
  EXPECT_EQ(ShardedDc::env_shards(), 4u);  // documented default
}

TEST(Sharded, BoundaryEdgeAccounting) {
  auto dc = make_sharded(64, 8);
  // Find one intra-shard and one cross-shard pair.
  Vertex cu = 0, cv = 0, iu = 0, iv = 0;
  for (Vertex a = 0; a < 64 && (cu == cv || iu == iv); ++a) {
    for (Vertex b = a + 1; b < 64; ++b) {
      if (dc->shard_of(a) != dc->shard_of(b) && cu == cv) cu = a, cv = b;
      if (dc->shard_of(a) == dc->shard_of(b) && iu == iv) iu = a, iv = b;
    }
  }
  ASSERT_NE(cu, cv);
  ASSERT_NE(iu, iv);
  EXPECT_TRUE(dc->add_edge(cu, cv));
  EXPECT_EQ(dc->boundary_edges(), 1u);
  EXPECT_FALSE(dc->add_edge(cv, cu));  // canonical duplicate
  EXPECT_EQ(dc->boundary_edges(), 1u);
  EXPECT_TRUE(dc->add_edge(iu, iv));  // intra-shard: not a boundary edge
  EXPECT_EQ(dc->boundary_edges(), 1u);
  EXPECT_TRUE(dc->connected(cu, cv));
  EXPECT_TRUE(dc->remove_edge(cu, cv));
  EXPECT_EQ(dc->boundary_edges(), 0u);
  EXPECT_FALSE(dc->connected(cu, cv));
}

TEST(Sharded, CrossShardPathExactOnAllQueryKinds) {
  const Vertex n = 48;
  auto dc = make_sharded(n, 8);
  // A global path 0-1-2-...-n-1 crosses shard boundaries many times: every
  // global query must see one component of size n represented by vertex 0.
  for (Vertex v = 0; v + 1 < n; ++v) ASSERT_TRUE(dc->add_edge(v, v + 1));
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_TRUE(dc->connected(0, v));
    EXPECT_EQ(dc->component_size(v), n);
    EXPECT_EQ(dc->representative(v), 0u);
  }
  // Split in the middle: both halves must report exact sizes and canonical
  // representatives through the (now stale, lazily rebuilt) index.
  const Vertex cut = n / 2;
  ASSERT_TRUE(dc->remove_edge(cut - 1, cut));
  EXPECT_FALSE(dc->connected(0, n - 1));
  EXPECT_EQ(dc->component_size(0), cut);
  EXPECT_EQ(dc->component_size(n - 1), n - cut);
  EXPECT_EQ(dc->representative(n - 1), cut);
  EXPECT_EQ(dc->representative(cut - 1), 0u);
}

TEST(Sharded, SequentialOracleAgreementAllKinds) {
  const Vertex n = 64;
  for (const char* name : {"sharded<full>", "sharded<coarse>"}) {
    ::setenv("DC_SHARDS", "8", 1);
    auto dc = make_variant(name, n);
    ::unsetenv("DC_SHARDS");
    testutil::QueryOracle oracle(n);
    Xoshiro256 rng(2026);
    for (int i = 0; i < 3000; ++i) {
      const Vertex a = static_cast<Vertex>(rng.next_below(n));
      Vertex b = static_cast<Vertex>(rng.next_below(n));
      if (a == b) b = (b + 1) % n;
      Op op;
      switch (rng.next_below(5)) {
        case 0: op = Op::add(a, b); break;
        case 1: op = Op::remove(a, b); break;
        case 2: op = Op::connected(a, b); break;
        case 3: op = Op::component_size(a); break;
        default: op = Op::representative(a); break;
      }
      EXPECT_EQ(exec_single(*dc, op), oracle.apply(op))
          << name << " op " << i;
    }
  }
}

TEST(Sharded, BatchMatchesOracleReplay) {
  const Vertex n = 64;
  ::setenv("DC_SHARDS", "4", 1);
  auto dc = make_variant("sharded<full>", n);
  ::unsetenv("DC_SHARDS");
  testutil::QueryOracle oracle(n);
  Xoshiro256 rng(77);
  std::vector<Op> batch;
  for (int i = 0; i < 600; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    switch (rng.next_below(5)) {
      case 0: batch.push_back(Op::add(a, b)); break;
      case 1: batch.push_back(Op::remove(a, b)); break;
      case 2: batch.push_back(Op::connected(a, b)); break;
      case 3: batch.push_back(Op::component_size(a)); break;
      default: batch.push_back(Op::representative(b)); break;
    }
  }
  // Queries are reorder barriers inside apply_batch, so a single-caller
  // batch must reproduce the sequential program exactly.
  const BatchResult r = dc->apply_batch(batch);
  const std::vector<uint64_t> expect = oracle.replay(batch);
  ASSERT_EQ(r.values.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(r.values[i], expect[i]) << "op " << i;
}

TEST(Sharded, ComponentsSnapshotMatchesOracle) {
  const Vertex n = 72;
  auto dc = make_sharded(n, 8);
  testutil::QueryOracle oracle(n);
  Xoshiro256 rng(404);
  for (int i = 0; i < 500; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) b = (b + 1) % n;
    const Op op = rng.next_below(3) != 0 ? Op::add(a, b) : Op::remove(a, b);
    EXPECT_EQ(exec_single(*dc, op), oracle.apply(op));
  }
  const ComponentsSnapshot snap = dc->components();
  ASSERT_EQ(snap.labels.size(), n);
  for (Vertex v = 0; v < n; ++v) {
    // Labels are the canonical (smallest-id) member, matching
    // representative() — including across boundary stitches.
    EXPECT_EQ(snap.labels[v], oracle.apply(Op::representative(v))) << v;
  }
}

TEST(Sharded, FourThreadChurnQuiescedEquality) {
  const Vertex n = 96;
  const unsigned kThreads = 4;
  ::setenv("DC_SHARDS", "8", 1);
  auto dc = make_variant("sharded<full>", n);
  ::unsetenv("DC_SHARDS");

  // Disjoint per-thread edge universes keep the final state deterministic:
  // each edge's presence is decided solely by its own thread's sequence.
  // The stripes deliberately contain cross-shard edges (u, u+stride).
  std::vector<std::vector<Edge>> mine(kThreads);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex d = 1; d <= 5; ++d) {
      const Vertex v = u + d;
      if (v >= n) continue;
      const Edge e(u, v);
      mine[Edge(u, v).key() % kThreads].push_back(e);
    }
  }
  std::vector<std::set<Edge>> fin(kThreads);
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(900 + t);
      for (int round = 0; round < 400; ++round) {
        const Edge& e = mine[t][rng.next_below(mine[t].size())];
        switch (rng.next_below(4)) {
          case 0:
            if (dc->add_edge(e.u, e.v)) fin[t].insert(e);
            break;
          case 1:
            if (dc->remove_edge(e.u, e.v)) fin[t].erase(e);
            break;
          case 2:
            dc->connected(e.u, e.v);  // exercise reads under churn
            break;
          default:
            dc->component_size(e.u);
            break;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  Dsu oracle(n);
  std::size_t live = 0;
  for (const auto& s : fin)
    for (const Edge& e : s) oracle.unite(e.u, e.v), ++live;
  ASSERT_GT(live, 0u);
  for (Vertex u = 0; u < n; ++u) {
    EXPECT_EQ(dc->component_size(u), oracle.component_size(u)) << u;
    EXPECT_EQ(dc->representative(u), oracle.representative(u)) << u;
    for (Vertex v = u + 1; v < n; ++v)
      EXPECT_EQ(dc->connected(u, v), oracle.connected(u, v))
          << u << "," << v;
  }
}

TEST(Sharded, CapsAreHonest) {
  for (const char* name : {"sharded<full>", "sharded<coarse>"}) {
    const VariantInfo* v = find_variant(name);
    ASSERT_NE(v, nullptr) << name;
    EXPECT_TRUE(v->caps.native_batch) << name;
    EXPECT_TRUE(v->caps.sized_components) << name;
    EXPECT_TRUE(v->caps.stable_representative) << name;
    EXPECT_TRUE(v->caps.internal_parallel) << name;
    // The facade's global answers route through the boundary index, which
    // is neither lock-free nor an atomic batch target nor a label cache.
    EXPECT_FALSE(v->caps.lock_free_reads) << name;
    EXPECT_FALSE(v->caps.atomic_batch) << name;
    EXPECT_FALSE(v->caps.combining) << name;
    EXPECT_FALSE(v->caps.label_cache) << name;
  }
}

}  // namespace
}  // namespace condyn
