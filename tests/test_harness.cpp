// Benchmark-harness tests: workload generators produce the distributions
// the scenarios specify, the driver measures and aggregates correctly, and
// the reports render every collected point.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "api/factory.hpp"
#include "graph/cc.hpp"
#include "graph/generators.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace condyn {
namespace {

TEST(Workload, RandomHalfIsAHalfSubset) {
  Graph g = gen::erdos_renyi(100, 400, 3);
  const std::vector<Edge> half = harness::random_half(g, 9);
  EXPECT_EQ(half.size(), 200u);
  std::set<Edge> all(g.edges().begin(), g.edges().end());
  std::set<Edge> chosen(half.begin(), half.end());
  EXPECT_EQ(chosen.size(), half.size()) << "duplicates in the half";
  for (const Edge& e : half) EXPECT_TRUE(all.count(e));
  // Deterministic per seed, different across seeds.
  EXPECT_EQ(harness::random_half(g, 9), half);
  EXPECT_NE(harness::random_half(g, 10), half);
}

TEST(Workload, StripesPartitionTheEdgeList) {
  Graph g = gen::erdos_renyi(60, 150, 4);
  const unsigned kThreads = 4;
  std::vector<Edge> merged;
  for (unsigned t = 0; t < kThreads; ++t) {
    const auto s = harness::stripe(g.edges(), t, kThreads);
    merged.insert(merged.end(), s.begin(), s.end());
  }
  EXPECT_EQ(merged.size(), g.num_edges());
  std::set<Edge> uniq(merged.begin(), merged.end());
  EXPECT_EQ(uniq.size(), g.num_edges());
}

TEST(Workload, RandomOpStreamHonorsReadPercent) {
  Graph g = gen::erdos_renyi(50, 120, 5);
  // 99 and 85 give *odd* update shares: the old parity-based add/remove coin
  // made removals impossible there (1% adds / 0% removes at 99% reads).
  for (int read_pct : {0, 80, 85, 99}) {
    harness::RandomOpStream stream(g, read_pct, 77);
    int reads = 0, adds = 0, removes = 0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) {
      const Op op = stream.next();
      switch (op.kind) {
        case OpKind::kConnected:
          ++reads;
          break;
        case OpKind::kAdd:
          ++adds;
          break;
        case OpKind::kRemove:
          ++removes;
          break;
      }
      EXPECT_NE(op.u, op.v);
    }
    EXPECT_NEAR(reads * 100.0 / kDraws, read_pct, 0.5);
    // Additions and removals must balance (keeps |E| steady, §5.1): each is
    // half the update share, within ~5 standard deviations.
    const double update_share = (100.0 - read_pct) / 100.0;
    const double expect_each = kDraws * update_share / 2;
    const double slack = 5 * std::sqrt(expect_each) + 1;
    EXPECT_NEAR(adds, expect_each, slack) << "read_pct=" << read_pct;
    EXPECT_NEAR(removes, expect_each, slack) << "read_pct=" << read_pct;
    if (read_pct < 100) {
      EXPECT_GT(adds, 0) << "read_pct=" << read_pct;
      EXPECT_GT(removes, 0) << "read_pct=" << read_pct;
    }
  }
}

TEST(Workload, RunConfigValidation) {
  harness::RunConfig cfg;
  cfg.read_percent = 150;
  cfg.batch_size = 0;
  const harness::RunConfig ok = harness::validated(cfg);
  EXPECT_EQ(ok.read_percent, 100);
  EXPECT_EQ(ok.batch_size, 1u);
  cfg.read_percent = -3;
  EXPECT_EQ(harness::validated(cfg).read_percent, 0);

  harness::RunConfig bad_threads;
  bad_threads.threads = 0;
  EXPECT_THROW(harness::validated(bad_threads), std::invalid_argument);

  harness::RunConfig bad_measure;
  bad_measure.measure_ms = 0;
  EXPECT_THROW(harness::validated(bad_measure), std::invalid_argument);
  bad_measure.measure_ms = -5;
  EXPECT_THROW(harness::validated(bad_measure), std::invalid_argument);

  harness::RunConfig bad_warmup;
  bad_warmup.warmup_ms = -1;
  EXPECT_THROW(harness::validated(bad_warmup), std::invalid_argument);

  // The drivers validate on entry: an unusable config is rejected before
  // any thread spawns instead of producing undefined downstream behavior.
  Graph g = gen::erdos_renyi(20, 40, 2);
  auto dc = make_variant(1, g.num_vertices());
  EXPECT_THROW(harness::run_random(*dc, g, bad_threads),
               std::invalid_argument);
}

TEST(Workload, ValidationRejectsArrivalRateOnClosedLoopBatchScenarios) {
  harness::RunConfig cfg;
  cfg.arrival_rate = 50000;

  // A batched closed-loop scenario cannot honor an open-loop rate: pacing
  // the batch filler measures neither regime, so it must throw loudly
  // (a global DC_BENCH_RATE silently distorting batch numbers would be
  // worse than an error).
  harness::ScenarioCaps batched;
  batched.batched = true;
  EXPECT_THROW(harness::validated(cfg, batched), std::invalid_argument);

  // Non-paced per-op scenarios have no pacing hook: the rate is cleared,
  // not an error, so one exported DC_BENCH_RATE doesn't break a sweep.
  harness::ScenarioCaps plain;
  EXPECT_EQ(harness::validated(cfg, plain).arrival_rate, 0.0);

  // Paced scenarios (firehose) keep the rate.
  harness::ScenarioCaps paced;
  paced.paced = true;
  EXPECT_EQ(harness::validated(cfg, paced).arrival_rate, 50000.0);

  // A negative rate is clamped to "unpaced" everywhere.
  cfg.arrival_rate = -1;
  EXPECT_EQ(harness::validated(cfg, paced).arrival_rate, 0.0);

  // End to end: the batch driver rejects the env knob combination.
  cfg = harness::RunConfig{};
  cfg.arrival_rate = 1000;
  cfg.measure_ms = 5;
  cfg.warmup_ms = 0;
  Graph g = gen::erdos_renyi(20, 40, 2);
  auto dc = make_variant(1, g.num_vertices());
  EXPECT_THROW(harness::run_batch(*dc, g, cfg), std::invalid_argument);
}

TEST(Workload, BatchStreamMatchesPerOpStream) {
  Graph g = gen::erdos_renyi(40, 100, 5);
  harness::RandomOpStream ops(g, 80, 123);
  harness::RandomBatchStream batches(g, 80, 32, 123);
  // Same seed: the batch stream is just the per-op stream, chunked.
  for (int round = 0; round < 5; ++round) {
    const std::span<const Op> batch = batches.next();
    ASSERT_EQ(batch.size(), 32u);
    for (const Op& op : batch) EXPECT_EQ(op, ops.next());
  }
}

TEST(Workload, UpdateBatchesCoverTheEdgeList) {
  Graph g = gen::erdos_renyi(60, 150, 4);
  const auto batches = harness::update_batches(g.edges(), 64, OpKind::kAdd);
  ASSERT_EQ(batches.size(), (g.num_edges() + 63) / 64);
  std::size_t total = 0;
  for (const auto& b : batches) {
    EXPECT_LE(b.size(), 64u);
    for (const Op& op : b) EXPECT_EQ(op.kind, OpKind::kAdd);
    total += b.size();
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(Driver, RandomScenarioProducesThroughput) {
  Graph g = gen::erdos_renyi(200, 600, 6);
  auto dc = make_variant(3, g.num_vertices());
  harness::RunConfig cfg;
  cfg.threads = 2;
  cfg.read_percent = 80;
  cfg.warmup_ms = 10;
  cfg.measure_ms = 40;
  const harness::RunResult r = harness::run_random(*dc, g, cfg);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.ops_per_ms, 0.0);
  EXPECT_GE(r.elapsed_ms, cfg.measure_ms * 0.9);
  EXPECT_GE(r.active_time_percent, 0.0);
  EXPECT_LE(r.active_time_percent, 100.0);
  EXPECT_GT(r.op_counters.reads, 0u);
}

TEST(Driver, BatchScenarioProducesThroughputAndLatency) {
  Graph g = gen::erdos_renyi(200, 600, 6);
  auto dc = make_variant("coarse", g.num_vertices());
  harness::RunConfig cfg;
  cfg.threads = 2;
  cfg.read_percent = 80;
  cfg.warmup_ms = 10;
  cfg.measure_ms = 40;
  cfg.batch_size = 32;
  const harness::RunResult r = harness::run_batch(*dc, g, cfg);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GT(r.ops_per_ms, 0.0);
  EXPECT_GT(r.batches, 0u);
  EXPECT_EQ(r.total_ops, r.batches * cfg.batch_size);
  EXPECT_GT(r.batch_latency_us_avg, 0.0);
  EXPECT_GE(r.batch_latency_us_max, r.batch_latency_us_avg);
}

TEST(Driver, EnvConfigBatchSizesDefaulted) {
  const harness::EnvConfig env = harness::env_config();
  ASSERT_FALSE(env.batch_sizes.empty());
  for (std::size_t b : env.batch_sizes) EXPECT_GE(b, 1u);
}

TEST(Driver, IncrementalInsertsWholeGraph) {
  Graph g = gen::erdos_renyi(150, 500, 7);
  auto dc = make_variant(9, g.num_vertices());
  harness::RunConfig cfg;
  cfg.threads = 3;
  const harness::RunResult r = harness::run_incremental(*dc, g, cfg);
  EXPECT_EQ(r.total_ops, g.num_edges());
  // Everything inserted: structure must agree with the full graph.
  const ComponentInfo cc = connected_components(g);
  for (Vertex a = 0; a < 150; a += 11)
    for (Vertex b = a + 1; b < 150; b += 13)
      EXPECT_EQ(dc->connected(a, b), cc.label[a] == cc.label[b]);
}

TEST(Driver, DecrementalEmptiesTheStructure) {
  Graph g = gen::erdos_renyi(120, 360, 8);
  auto dc = make_variant(9, g.num_vertices());
  harness::RunConfig cfg;
  cfg.threads = 3;
  const harness::RunResult r = harness::run_decremental(*dc, g, cfg);
  EXPECT_EQ(r.total_ops, g.num_edges());
  for (Vertex v = 1; v < 120; v += 7) EXPECT_FALSE(dc->connected(0, v));
}

TEST(Driver, EnvConfigDefaultsAreSane) {
  const harness::EnvConfig env = harness::env_config();
  EXPECT_FALSE(env.thread_counts.empty());
  for (unsigned t : env.thread_counts) EXPECT_GE(t, 1u);
  EXPECT_GT(env.measure_ms, 0);
  EXPECT_GT(env.scale, 0.0);
}

TEST(Report, SeriesRendersAllPoints) {
  harness::SeriesReport rep("t", "ops/ms", {1, 2, 4});
  rep.begin_graph("g1");
  rep.add_point("coarse", 1, 10);
  rep.add_point("coarse", 2, 20);
  rep.add_point("coarse", 4, 40);
  rep.add_point("full", 1, 15);
  ::testing::internal::CaptureStdout();
  rep.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("g1"), std::string::npos);
  EXPECT_NE(out.find("coarse"), std::string::npos);
  EXPECT_NE(out.find("40.0"), std::string::npos);
  EXPECT_NE(out.find("full"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);  // missing point placeholder
}

TEST(Report, JsonReportIsWellFormed) {
  harness::JsonReport json("suite-\"quoted\"");
  json.meta("seed", uint64_t{42});
  json.meta("scale", 0.05);
  json.add_record()
      .field("scenario", "random")
      .field("variant", std::string("co\narse"))
      .field("threads", 4)
      .field("ops_per_ms", 123.5)
      .field("total_ops", uint64_t{99});
  json.add_record().field("scenario", "zipfian").field("nan_guard",
                                                       std::nan(""));
  const std::string out = harness::json_report(json);
  // Structure and escaping (newline in a value, quotes in the suite name).
  EXPECT_NE(out.find("\"suite\": \"suite-\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(out.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"variant\": \"co\\narse\""), std::string::npos);
  EXPECT_NE(out.find("\"ops_per_ms\": 123.5"), std::string::npos);
  EXPECT_NE(out.find("\"nan_guard\": null"), std::string::npos);
  // Balanced braces/brackets: a cheap well-formedness proxy without a
  // JSON parser in the test toolchain.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['),
            std::count(out.begin(), out.end(), ']'));
}

TEST(Report, TableAlignsColumns) {
  harness::TableReport t("title", {"a", "long-column"});
  t.add_row({"x", harness::TableReport::pct(12.34)});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("long-column"), std::string::npos);
  EXPECT_NE(out.find("12.3"), std::string::npos);
}

}  // namespace
}  // namespace condyn
