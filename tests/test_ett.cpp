// Unit + property tests for the single-writer Euler Tour Tree (paper §3).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/ett.hpp"
#include "graph/dsu.hpp"
#include "util/random.hpp"

namespace condyn::ett {
namespace {

// --------------------------------------------------------------------------
// Basic single-threaded behaviour
// --------------------------------------------------------------------------

TEST(Ett, SingletonVerticesAreTheirOwnComponents) {
  Forest f(4);
  EXPECT_FALSE(f.connected(0, 1));
  EXPECT_TRUE(f.connected(2, 2));
  f.validate(0);
}

TEST(Ett, LinkConnectsAndCutDisconnects) {
  Forest f(4);
  f.link(0, 1);
  EXPECT_TRUE(f.connected(0, 1));
  EXPECT_TRUE(f.has_edge(0, 1));
  EXPECT_TRUE(f.has_edge(1, 0));  // canonical
  EXPECT_FALSE(f.connected(0, 2));
  f.cut(0, 1);
  EXPECT_FALSE(f.connected(0, 1));
  EXPECT_FALSE(f.has_edge(0, 1));
}

TEST(Ett, PathAndStarShapes) {
  Forest f(8);
  // path 0-1-2-3
  f.link(0, 1);
  f.link(1, 2);
  f.link(2, 3);
  // star centered at 5
  f.link(5, 4);
  f.link(5, 6);
  f.link(5, 7);
  EXPECT_TRUE(f.connected(0, 3));
  EXPECT_TRUE(f.connected(4, 7));
  EXPECT_FALSE(f.connected(0, 4));
  f.validate(0);
  f.validate(5);

  f.cut(1, 2);  // middle of the path
  EXPECT_TRUE(f.connected(0, 1));
  EXPECT_TRUE(f.connected(2, 3));
  EXPECT_FALSE(f.connected(0, 3));

  f.cut(5, 6);  // star leaf
  EXPECT_FALSE(f.connected(6, 4));
  EXPECT_TRUE(f.connected(4, 7));
  f.validate(0);
  f.validate(2);
  f.validate(5);
  f.validate(6);
}

TEST(Ett, TourIsAValidEulerTour) {
  Forest f(6);
  f.link(0, 1);
  f.link(1, 2);
  f.link(1, 3);
  f.link(3, 4);
  auto tour = f.tour(0);
  // Single-occurrence representation: |tour| = vertices + 2 * edges.
  EXPECT_EQ(tour.size(), 5u + 2u * 4u);
  // Each vertex node exactly once, each arc exactly once per direction.
  std::multiset<std::pair<Vertex, Vertex>> seen;
  for (const Node* n : tour) seen.insert({n->tail, n->head});
  for (Vertex v : {0, 1, 2, 3, 4})
    EXPECT_EQ(seen.count({v, v}), 1u) << "vertex " << v;
  for (auto [a, b] : std::vector<std::pair<Vertex, Vertex>>{
           {0, 1}, {1, 2}, {1, 3}, {3, 4}}) {
    EXPECT_EQ(seen.count({a, b}), 1u);
    EXPECT_EQ(seen.count({b, a}), 1u);
  }
  // Adjacency: consecutive tour elements share the walk structure: the walk
  // enters a vertex and leaves it. Verify the tour is a closed walk.
  // Reconstruct the walk: vertex node = first visit; arcs move the cursor.
  Vertex cursor = tour.front()->tail;
  for (const Node* n : tour) {
    if (n->is_vertex) {
      EXPECT_EQ(n->tail, cursor);
    } else {
      EXPECT_EQ(n->tail, cursor);
      cursor = n->head;
    }
  }
  EXPECT_EQ(cursor, tour.front()->tail);  // closed
}

TEST(Ett, VersionBumpsOnEveryModification) {
  Forest f(4);
  Node* n0 = f.vertex_node(0);
  Node* n1 = f.vertex_node(1);
  const uint64_t v0 = n0->version.load();
  const uint64_t v1 = n1->version.load();
  f.link(0, 1);
  EXPECT_GT(n0->version.load() + n1->version.load(), v0 + v1);
  Node* root = find_root(n0);
  const uint64_t vr = root->version.load();
  f.cut(0, 1);
  EXPECT_GT(n0->version.load() + n1->version.load(), vr);
}

// --------------------------------------------------------------------------
// Randomized oracle test: ETT vs incremental DSU rebuilt after each removal
// --------------------------------------------------------------------------

class EttRandomOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EttRandomOracle, MatchesOracleOnRandomForestOps) {
  const uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  const Vertex n = 64;
  Forest f(n);
  std::set<Edge> forest_edges;

  auto oracle_connected = [&](Vertex a, Vertex b) {
    Dsu d(n);
    for (const Edge& e : forest_edges) d.unite(e.u, e.v);
    return d.connected(a, b);
  };

  for (int step = 0; step < 2000; ++step) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    const Vertex b = static_cast<Vertex>(rng.next_below(n));
    if (a == b) continue;
    const int action = static_cast<int>(rng.next_below(3));
    if (action == 0) {
      // try to link if in different components
      if (!oracle_connected(a, b)) {
        f.link(a, b);
        forest_edges.insert(Edge(a, b));
      }
    } else if (action == 1 && !forest_edges.empty()) {
      // cut a random existing forest edge
      auto it = forest_edges.begin();
      std::advance(it, rng.next_below(forest_edges.size()));
      f.cut(it->u, it->v);
      forest_edges.erase(it);
    } else {
      EXPECT_EQ(f.connected(a, b), oracle_connected(a, b))
          << "step " << step << " query " << a << "," << b;
    }
    if (step % 251 == 0) {
      for (Vertex v = 0; v < n; v += 7) f.validate(v);
    }
  }
  // Final: full pairwise agreement on a sample.
  for (Vertex a = 0; a < n; a += 3)
    for (Vertex b = a + 1; b < n; b += 5)
      EXPECT_EQ(f.connected(a, b), oracle_connected(a, b));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EttRandomOracle,
                         ::testing::Values(1, 2, 3, 42, 1234, 987654321));

// --------------------------------------------------------------------------
// Concurrent: single writer + readers, invariant-based checks
// --------------------------------------------------------------------------

// Two halves of the vertex set are never connected across; readers must
// never observe cross-half connectivity, while intra-half pairs that are
// permanently linked must always read connected.
TEST(EttConcurrent, ReadersNeverSeeOutOfThinAirComponents) {
  const Vertex n = 32;
  const Vertex half = n / 2;
  Forest f(n);
  // Permanent backbone in each half: 0-1 and half-(half+1).
  f.link(0, 1);
  f.link(half, half + 1);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    Xoshiro256 rng(7);
    std::set<Edge> edges;  // churning edges within each half, never across
    for (int i = 0; i < 60000 && !stop.load(std::memory_order_relaxed); ++i) {
      const bool left = rng.next_bool(0.5);
      const Vertex lo = left ? 2 : half + 2;  // avoid touching the backbone
      const Vertex hi = left ? half : n;
      const Vertex a = lo + static_cast<Vertex>(rng.next_below(hi - lo));
      const Vertex b = lo + static_cast<Vertex>(rng.next_below(hi - lo));
      if (a == b) continue;
      if (!f.connected_writer(a, b)) {
        f.link(a, b);
        edges.insert(Edge(a, b));
      } else if (!edges.empty()) {
        auto it = edges.begin();
        std::advance(it, rng.next_below(edges.size()));
        f.cut(it->u, it->v);
        edges.erase(it);
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        // Invariant 1: never connected across halves.
        const Vertex a = static_cast<Vertex>(rng.next_below(half));
        const Vertex b =
            half + static_cast<Vertex>(rng.next_below(half));
        if (f.connected(a, b)) failures.fetch_add(1);
        // Invariant 2: the permanent backbone edges always connected.
        if (!f.connected(0, 1)) failures.fetch_add(1);
        if (!f.connected(half, half + 1)) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace condyn::ett
