// Tests for the HDT dynamic-connectivity engine (paper §4.1): randomized
// oracle comparison, level-structure invariants, replacement-search paths.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/hdt.hpp"
#include "graph/cc.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

TEST(Hdt, EmptyGraphDisconnected) {
  Hdt dc(8);
  EXPECT_FALSE(dc.connected(0, 7));
  EXPECT_TRUE(dc.connected(3, 3));
  EXPECT_FALSE(dc.has_edge(0, 1));
}

TEST(Hdt, AddRemoveSingleEdge) {
  Hdt dc(4);
  auto out = dc.add_edge(0, 1);
  EXPECT_TRUE(out.performed);
  EXPECT_TRUE(out.spanning);
  EXPECT_TRUE(dc.connected(0, 1));
  EXPECT_TRUE(dc.is_spanning(0, 1));
  // Duplicate insert is a no-op.
  EXPECT_FALSE(dc.add_edge(1, 0).performed);
  out = dc.remove_edge(0, 1);
  EXPECT_TRUE(out.performed);
  EXPECT_FALSE(dc.connected(0, 1));
  EXPECT_FALSE(dc.remove_edge(0, 1).performed);
}

TEST(Hdt, NonSpanningEdgeDoesNotTouchForest) {
  Hdt dc(4);
  dc.add_edge(0, 1);
  dc.add_edge(1, 2);
  auto out = dc.add_edge(0, 2);  // closes a triangle
  EXPECT_TRUE(out.performed);
  EXPECT_FALSE(out.spanning);
  EXPECT_FALSE(dc.is_spanning(0, 2));
  EXPECT_EQ(dc.edge_level(0, 2), 0);
  // Removing the non-spanning edge keeps connectivity.
  dc.remove_edge(0, 2);
  EXPECT_TRUE(dc.connected(0, 2));
}

TEST(Hdt, ReplacementFoundOnSpanningRemoval) {
  Hdt dc(4);
  dc.add_edge(0, 1);
  dc.add_edge(1, 2);
  dc.add_edge(0, 2);  // non-spanning
  dc.remove_edge(0, 1);  // spanning, but 0-2-1 remains
  EXPECT_TRUE(dc.connected(0, 1));
  EXPECT_TRUE(dc.is_spanning(0, 2));  // the replacement became spanning
  dc.check_invariants();
}

TEST(Hdt, CascadingReplacementsOnCycleTeardown) {
  // Ring of 16: removing spanning edges one by one must keep the ring
  // connected until fewer than n edges remain.
  const Vertex n = 16;
  Hdt dc(n);
  for (Vertex i = 0; i < n; ++i) dc.add_edge(i, (i + 1) % n);
  for (Vertex i = 0; i < n - 1; ++i) {
    dc.remove_edge(i, (i + 1) % n);
    // 0 and n/2 stay connected through the back arc i+1..15..0 as long as
    // every edge (j, j+1) with j >= n/2 is still present, i.e. i < n/2.
    EXPECT_EQ(dc.connected(0, n / 2), i + 1 < n / 2 + 1)
        << "after removing edge " << i;
    dc.check_invariants();
  }
}

TEST(Hdt, LevelsRiseUnderChurn) {
  // Dense small graph: repeated spanning removals must push edges to
  // higher levels without violating the size invariant.
  const Vertex n = 32;
  Hdt dc(n);
  Xoshiro256 rng(5);
  std::set<Edge> present;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; b += 1 + a % 3) {
      dc.add_edge(a, b);
      present.insert(Edge(a, b));
    }
  int max_seen_level = 0;
  for (int round = 0; round < 500 && !present.empty(); ++round) {
    auto it = present.begin();
    std::advance(it, rng.next_below(present.size()));
    Edge e = *it;
    present.erase(it);
    dc.remove_edge(e.u, e.v);
    if (round % 100 == 0) dc.check_invariants();
    for (const Edge& f : present)
      max_seen_level = std::max(max_seen_level, dc.edge_level(f.u, f.v));
  }
  EXPECT_GT(max_seen_level, 0) << "churn never promoted any edge";
  EXPECT_LE(max_seen_level, dc.max_level());
}

// ---------------------------------------------------------------------------
// Randomized oracle comparison (the workhorse correctness test)
// ---------------------------------------------------------------------------

struct OracleParam {
  uint64_t seed;
  bool sampling;
};

class HdtOracle : public ::testing::TestWithParam<OracleParam> {};

TEST_P(HdtOracle, MatchesStaticRecomputation) {
  const auto [seed, sampling] = GetParam();
  Xoshiro256 rng(seed);
  const Vertex n = 48;
  Hdt dc(n, sampling);
  std::set<Edge> edges;

  auto oracle = [&] {
    return connected_components(n, {edges.begin(), edges.end()});
  };

  ComponentInfo cc = oracle();
  for (int step = 0; step < 3000; ++step) {
    const int action = static_cast<int>(rng.next_below(10));
    if (action < 4) {  // add
      const Vertex a = static_cast<Vertex>(rng.next_below(n));
      const Vertex b = static_cast<Vertex>(rng.next_below(n));
      if (a == b) continue;
      const bool did = dc.add_edge(a, b).performed;
      EXPECT_EQ(did, edges.insert(Edge(a, b)).second);
      cc = oracle();
    } else if (action < 7 && !edges.empty()) {  // remove
      auto it = edges.begin();
      std::advance(it, rng.next_below(edges.size()));
      EXPECT_TRUE(dc.remove_edge(it->u, it->v).performed);
      edges.erase(it);
      cc = oracle();
    } else {  // query
      const Vertex a = static_cast<Vertex>(rng.next_below(n));
      const Vertex b = static_cast<Vertex>(rng.next_below(n));
      EXPECT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b])
          << "step " << step << " (" << a << "," << b << ")";
    }
    if (step % 500 == 0) dc.check_invariants();
  }
  // Exhaustive final agreement.
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; b += 3)
      EXPECT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b]);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, HdtOracle,
    ::testing::Values(OracleParam{11, true}, OracleParam{12, true},
                      OracleParam{13, true}, OracleParam{14, false},
                      OracleParam{15, false}, OracleParam{99, true},
                      OracleParam{100, false}));

// Decremental teardown of a whole generated graph vs oracle.
class HdtDecremental : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HdtDecremental, FullTeardownAgreesWithOracle) {
  Graph g = gen::erdos_renyi(40, 120, GetParam());
  Hdt dc(g.num_vertices());
  for (const Edge& e : g.edges()) dc.add_edge(e.u, e.v);
  std::vector<Edge> order = g.edges();
  Xoshiro256 rng(GetParam() ^ 0xabcdef);
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng.next_below(i)]);

  std::set<Edge> remaining(order.begin(), order.end());
  for (const Edge& e : order) {
    EXPECT_TRUE(dc.remove_edge(e.u, e.v).performed);
    remaining.erase(e);
    auto cc = connected_components(g.num_vertices(),
                                   {remaining.begin(), remaining.end()});
    for (Vertex a = 0; a < g.num_vertices(); a += 7)
      for (Vertex b = a + 1; b < g.num_vertices(); b += 11)
        ASSERT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b]);
  }
  dc.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, HdtDecremental, ::testing::Values(21, 22, 23));

}  // namespace
}  // namespace condyn
