#include "core/edge_multiset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "util/ebr.hpp"

namespace condyn {
namespace {

std::vector<Vertex> contents(const VertexMultiset& ms) {
  std::vector<Vertex> out;
  auto guard = ebr::pin();
  ms.for_each([&](Vertex v) {
    out.push_back(v);
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(VertexMultiset, StartsEmpty) {
  VertexMultiset ms;
  EXPECT_TRUE(contents(ms).empty());
  EXPECT_TRUE(ms.empty_hint());
}

TEST(VertexMultiset, AddAndIterate) {
  VertexMultiset ms;
  ms.add(3);
  ms.add(1);
  ms.add(2);
  EXPECT_EQ(contents(ms), (std::vector<Vertex>{1, 2, 3}));
  EXPECT_EQ(ms.approx_size(), 3u);
}

TEST(VertexMultiset, DuplicatesCoexist) {
  VertexMultiset ms;
  ms.add(7);
  ms.add(7);
  ms.add(7);
  EXPECT_EQ(contents(ms), (std::vector<Vertex>{7, 7, 7}));
  EXPECT_TRUE(ms.remove_one(7));
  EXPECT_EQ(contents(ms), (std::vector<Vertex>{7, 7}));
}

TEST(VertexMultiset, RemoveMissingFails) {
  VertexMultiset ms;
  ms.add(1);
  EXPECT_FALSE(ms.remove_one(2));
  EXPECT_TRUE(ms.remove_one(1));
  EXPECT_FALSE(ms.remove_one(1));
  EXPECT_TRUE(contents(ms).empty());
}

TEST(VertexMultiset, EarlyStopIteration) {
  VertexMultiset ms;
  for (Vertex v = 0; v < 10; ++v) ms.add(v);
  int seen = 0;
  auto guard = ebr::pin();
  ms.for_each([&](Vertex) {
    ++seen;
    return seen < 3;
  });
  EXPECT_EQ(seen, 3);
}

TEST(VertexMultiset, RemovalDuringIterationIsSafe) {
  VertexMultiset ms;
  for (Vertex v = 0; v < 20; ++v) ms.add(v);
  auto guard = ebr::pin();
  std::vector<Vertex> seen;
  ms.for_each([&](Vertex v) {
    seen.push_back(v);
    ms.remove_one(v);  // removing the visited element must not derail
    return true;
  });
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_TRUE(contents(ms).empty());
}

TEST(VertexMultisetStress, ConcurrentAddRemoveBalances) {
  // Producers add k copies of their id, consumers remove them; afterwards
  // the multiset must hold exactly the never-removed sentinel values.
  constexpr unsigned kProducers = 4;
  constexpr int kPerProducer = 5000;
  VertexMultiset ms;
  ms.add(999999);  // sentinel that must survive

  std::vector<std::thread> threads;
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) ms.add(p);
    });
  }
  for (auto& t : threads) t.join();
  threads.clear();

  std::atomic<int> removed{0};
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      int mine = 0;
      while (mine < kPerProducer) {
        if (ms.remove_one(p)) ++mine;
      }
      removed.fetch_add(mine);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(removed.load(), static_cast<int>(kProducers) * kPerProducer);
  EXPECT_EQ(contents(ms), (std::vector<Vertex>{999999}));
}

TEST(VertexMultisetStress, ScanWhileMutating) {
  // A scanner continuously iterates while mutators churn; every value the
  // scanner reports must be one that was inserted at some point (no torn
  // cells), and scans terminate.
  VertexMultiset ms;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scans{0};

  std::thread scanner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto guard = ebr::pin();
      ms.for_each([&](Vertex v) {
        EXPECT_LT(v, 64u);
        return true;
      });
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> mutators;
  for (int m = 0; m < 3; ++m) {
    mutators.emplace_back([&, m] {
      for (int i = 0; i < 20000; ++i) {
        const Vertex v = static_cast<Vertex>((i * 7 + m * 13) % 64);
        ms.add(v);
        ms.remove_one(v);
      }
    });
  }
  for (auto& t : mutators) t.join();
  stop.store(true, std::memory_order_release);
  scanner.join();
  EXPECT_GT(scans.load(), 0u);
}

}  // namespace
}  // namespace condyn
