// Tests for the two-phase cut (the mechanism behind "a spanning removal
// linearizes only at commit, or never if a replacement exists") and the
// writer-side piece bookkeeping it exposes — the machinery the HDT engines
// rely on for pending replacement searches (DESIGN.md §4.1, Fig. 3).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/ett.hpp"
#include "util/backoff.hpp"
#include "util/ebr.hpp"

namespace condyn {
namespace {

using ett::Forest;
using ett::Node;

TEST(EttPending, ReadersSeeOneComponentUntilCommit) {
  Forest f(6);
  f.link(0, 1);
  f.link(1, 2);
  f.link(2, 3);

  Forest::CutHandle h = f.cut_prepare(1, 2);
  // The cut is physically prepared but not linearized: lock-free readers
  // must still see one component.
  EXPECT_TRUE(f.connected(0, 3));
  EXPECT_TRUE(f.connected(1, 2));
  // Writer-side view already distinguishes the two would-be pieces.
  EXPECT_NE(h.root_u, h.root_v);
  EXPECT_NE(Forest::find_piece_root(f.vertex_node(0)),
            Forest::find_piece_root(f.vertex_node(3)));

  f.cut_commit(h);
  EXPECT_FALSE(f.connected(0, 3));
  EXPECT_TRUE(f.connected(0, 1));
  EXPECT_TRUE(f.connected(2, 3));
}

TEST(EttPending, RelinkMakesTheRemovalInvisible) {
  // Remove spanning edge (1,2) but splice the pieces back through (0,3):
  // readers must never observe any change, and the final structure carries
  // the replacement edge.
  Forest f(4);
  f.link(0, 1);
  f.link(1, 2);
  f.link(2, 3);

  Forest::CutHandle h = f.cut_prepare(1, 2);
  EXPECT_TRUE(f.connected(0, 3));
  f.cut_relink(h, 0, 3);
  EXPECT_TRUE(f.connected(0, 3));
  EXPECT_TRUE(f.connected(1, 2));  // still connected via 1-0-3-2
  EXPECT_FALSE(f.has_edge(1, 2));
  EXPECT_TRUE(f.has_edge(0, 3));
  f.validate(0);
}

TEST(EttPending, PieceVertexCountsDriveSmallerSideChoice) {
  // Path 0-1-2-3-4-5; cutting (1,2) yields pieces of 2 and 4 vertices.
  Forest f(6);
  for (Vertex i = 0; i + 1 < 6; ++i) f.link(i, i + 1);
  Forest::CutHandle h = f.cut_prepare(1, 2);
  const uint32_t a = Forest::subtree_vertices(h.root_u);
  const uint32_t b = Forest::subtree_vertices(h.root_v);
  EXPECT_EQ(std::min(a, b), 2u);
  EXPECT_EQ(std::max(a, b), 4u);
  f.cut_relink(h, 1, 2);  // put the edge back; nothing changed logically
  EXPECT_TRUE(f.connected(0, 5));
}

TEST(EttPending, ReadersDuringPendingWindowStressed) {
  // A writer holds cuts pending for extended windows while readers assert
  // the not-yet-linearized removal stays invisible.
  Forest f(8);
  for (Vertex i = 0; i + 1 < 8; ++i) f.link(i, i + 1);

  std::atomic<bool> stop{false};
  std::atomic<bool> pending{false};
  std::atomic<uint64_t> observed_while_pending{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const bool was_pending = pending.load(std::memory_order_seq_cst);
      const bool conn = f.connected(0, 7);
      // If the cut was pending *before* the query started, the query must
      // still report connected (the split has not linearized). If it was
      // not pending, the writer may have committed+relinked meanwhile, so
      // either answer would be a valid linearization — only assert the
      // pending case.
      if (was_pending && pending.load(std::memory_order_seq_cst)) {
        EXPECT_TRUE(conn);
        observed_while_pending.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  for (int round = 0; round < 300; ++round) {
    const Vertex i = static_cast<Vertex>(round % 7);
    Forest::CutHandle h = f.cut_prepare(i, i + 1);
    pending.store(true, std::memory_order_seq_cst);
    // Keep the window open until the reader verified a query inside it —
    // a fixed short spin never overlaps the reader on a single-core box.
    // Bounded so a starved reader cannot hang the test.
    const uint64_t seen = observed_while_pending.load();
    for (int spin = 0;
         spin < 20000 && observed_while_pending.load() == seen; ++spin) {
      std::this_thread::yield();
    }
    pending.store(false, std::memory_order_seq_cst);
    f.cut_relink(h, i, i + 1);  // always restore: net no-op for readers
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(observed_while_pending.load(), 0u);
}

TEST(EttPending, VersionsBumpAcrossPreparedCuts) {
  Forest f(4);
  f.link(0, 1);
  f.link(1, 2);
  auto guard = ebr::pin();
  const auto before = ett::find_root_versioned(f.vertex_node(0));
  Forest::CutHandle h = f.cut_prepare(1, 2);
  // Root version already bumped at prepare (the "at most one step ahead"
  // protocol): a reader snapshotting now will re-check and retry.
  const auto during = ett::find_root_versioned(f.vertex_node(0));
  EXPECT_EQ(before.root, during.root);
  EXPECT_GT(during.version, before.version);
  f.cut_commit(h);
}

}  // namespace
}  // namespace condyn
