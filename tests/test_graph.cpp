// Graph substrate tests: edge canonicalization, generators (paper Tables
// 1-2 stand-ins), file IO round-trips, DSU and static-CC oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "graph/cc.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace condyn {
namespace {

// --------------------------------------------------------------------------
// Edge / Graph basics
// --------------------------------------------------------------------------

TEST(Edge, CanonicalOrientationAndKey) {
  const Edge a(7, 3);
  EXPECT_EQ(a.u, 3u);
  EXPECT_EQ(a.v, 7u);
  EXPECT_EQ(a, Edge(3, 7));
  EXPECT_EQ(Edge::from_key(a.key()), a);
  EXPECT_NE(Edge(1, 2).key(), Edge(2, 3).key());
}

TEST(Graph, DeduplicatesAndSkipsLoops) {
  Graph g(5);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate in other orientation
  EXPECT_FALSE(g.add_edge(2, 2));  // loop
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(g.density(), 2.0 / 5.0);
}

TEST(Graph, AdjacencyMatchesEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const auto& adj = g.adjacency();
  ASSERT_EQ(adj.size(), 4u);
  EXPECT_EQ(adj[1].size(), 2u);
  EXPECT_TRUE(adj[3].empty());
  std::size_t total = 0;
  for (const auto& nbrs : adj) total += nbrs.size();
  EXPECT_EQ(total, 2 * g.num_edges());
}

// --------------------------------------------------------------------------
// Generators
// --------------------------------------------------------------------------

TEST(Generators, ErdosRenyiExactSizeAndDeterminism) {
  Graph g1 = gen::erdos_renyi(500, 1200, 42);
  Graph g2 = gen::erdos_renyi(500, 1200, 42);
  Graph g3 = gen::erdos_renyi(500, 1200, 43);
  EXPECT_EQ(g1.num_vertices(), 500u);
  EXPECT_EQ(g1.num_edges(), 1200u);
  EXPECT_EQ(g1.edges(), g2.edges()) << "same seed must reproduce";
  EXPECT_NE(g1.edges(), g3.edges()) << "different seed must differ";
  for (const Edge& e : g1.edges()) {
    EXPECT_LT(e.u, e.v);
    EXPECT_LT(e.v, 500u);
  }
}

TEST(Generators, RandomComponentsAreIsolated) {
  const unsigned k = 10;
  Graph g = gen::random_components(1000, 4000, k, 7);
  const Vertex block = 1000 / k;
  for (const Edge& e : g.edges())
    EXPECT_EQ(e.u / block, e.v / block) << "cross-block edge " << e.u << "-"
                                        << e.v;
  const ComponentInfo cc = connected_components(g);
  EXPECT_GE(cc.num_components, k);
  EXPECT_LE(cc.largest_component, 1000u / k);
}

TEST(Generators, RmatIsHeavyTailed) {
  Graph g = gen::rmat(1 << 10, 8000, 0.57, 0.19, 0.19, 5);
  std::vector<std::size_t> deg(g.num_vertices(), 0);
  for (const Edge& e : g.edges()) {
    ++deg[e.u];
    ++deg[e.v];
  }
  const std::size_t dmax = *std::max_element(deg.begin(), deg.end());
  const double avg = 2.0 * g.num_edges() / g.num_vertices();
  EXPECT_GT(static_cast<double>(dmax), 5 * avg)
      << "RMAT stand-in must show degree skew (social-graph shape)";
}

TEST(Generators, RoadLikeIsSparseLowDegree) {
  Graph g = gen::road_like(5000, 3);
  EXPECT_NEAR(g.density(), 2.4, 0.8);  // |E| ~ 1.2 |V|
  std::vector<std::size_t> deg(g.num_vertices(), 0);
  for (const Edge& e : g.edges()) {
    ++deg[e.u];
    ++deg[e.v];
  }
  EXPECT_LE(*std::max_element(deg.begin(), deg.end()), 8u)
      << "road networks have bounded degree";
}

TEST(Generators, PresetsCoverPaperTables) {
  EXPECT_EQ(gen::small_graph_presets().size(), 8u);  // Table 1
  EXPECT_EQ(gen::large_graph_presets().size(), 4u);  // Table 2
  for (const auto& p : gen::small_graph_presets()) {
    Graph g = p.make(0.01, 1);
    EXPECT_GT(g.num_vertices(), 0u) << p.name;
    EXPECT_GT(g.num_edges(), 0u) << p.name;
    EXPECT_EQ(g.name, p.name);
  }
}

TEST(Generators, ScaleParameterScalesSize) {
  Graph small = gen::make_preset("twitter-like", 0.01, 1);
  Graph larger = gen::make_preset("twitter-like", 0.05, 1);
  EXPECT_GT(larger.num_vertices(), small.num_vertices());
  EXPECT_GT(larger.num_edges(), 2 * small.num_edges());
}

// --------------------------------------------------------------------------
// IO
// --------------------------------------------------------------------------

TEST(Io, SnapRoundTrip) {
  Graph g = gen::erdos_renyi(64, 200, 9);
  std::stringstream ss;
  io::save_snap(g, ss);
  Graph back = io::load_snap(ss);
  EXPECT_GE(back.num_vertices(), 64u - 1);  // trailing isolated nodes may drop
  std::set<Edge> a(g.edges().begin(), g.edges().end());
  std::set<Edge> b(back.edges().begin(), back.edges().end());
  EXPECT_EQ(a, b);
}

TEST(Io, SnapParserSkipsCommentsAndDuplicates) {
  std::stringstream ss(
      "# comment line\n"
      "0 1\n"
      "1 0\n"   // duplicate, other orientation
      "2 2\n"   // loop
      "1 2\n");
  Graph g = io::load_snap(ss);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, DimacsParser) {
  std::stringstream ss(
      "c DIMACS shortest-path format (1-based)\n"
      "p sp 4 3\n"
      "a 1 2 5\n"
      "a 2 3 7\n"
      "a 3 1 2\n");
  Graph g = io::load_dimacs(ss);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // arcs deduplicated to undirected edges
  std::set<Edge> got(g.edges().begin(), g.edges().end());
  EXPECT_TRUE(got.count(Edge(0, 1)));
  EXPECT_TRUE(got.count(Edge(1, 2)));
  EXPECT_TRUE(got.count(Edge(0, 2)));
}

// --------------------------------------------------------------------------
// Oracles
// --------------------------------------------------------------------------

TEST(Dsu, UniteFindComponents) {
  Dsu d(6);
  EXPECT_EQ(d.num_components(), 6u);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_TRUE(d.unite(2, 3));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.unite(0, 2));
  EXPECT_EQ(d.num_components(), 3u);
  EXPECT_TRUE(d.connected(1, 3));
  EXPECT_FALSE(d.connected(0, 4));
  EXPECT_EQ(d.component_size(3), 4u);
}

TEST(StaticCc, MatchesDsuOnRandomGraph) {
  Graph g = gen::erdos_renyi(200, 300, 13);
  const ComponentInfo cc = connected_components(g);
  Dsu d(200);
  for (const Edge& e : g.edges()) d.unite(e.u, e.v);
  EXPECT_EQ(cc.num_components, d.num_components());
  for (Vertex a = 0; a < 200; a += 3)
    for (Vertex b = a + 1; b < 200; b += 7)
      EXPECT_EQ(cc.label[a] == cc.label[b], d.connected(a, b));
}

TEST(StaticCc, LargestComponentComputed) {
  Graph g(7);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const ComponentInfo cc = connected_components(g);
  EXPECT_EQ(cc.num_components, 4u);  // {0,1,2} {3,4} {5} {6}
  EXPECT_EQ(cc.largest_component, 3u);
}

}  // namespace
}  // namespace condyn
