// Concurrency stress tests: linearizable lock-free reads under a churning
// writer (including the Appendix-A adversarial pattern), multi-writer
// fine-grained updates on disjoint components, and full mixed stress for the
// non-blocking algorithm with a final-state oracle check.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/ett.hpp"
#include "core/nb_hdt.hpp"
#include "graph/cc.hpp"
#include "harness/workload.hpp"
#include "util/random.hpp"

namespace condyn {
namespace {

// ---------------------------------------------------------------------------
// Single-writer ETT: lock-free readers vs one writer
// ---------------------------------------------------------------------------

TEST(EttConcurrent, ReadersNeverSeePhantomSplitsOrMerges) {
  // Component {0..3} is a stable path; component {4..7} too. The writer
  // churns an internal edge of each component (remove + re-add), which
  // exercises split/merge restructuring. Readers must always see 0~3
  // connected and 0!~4, despite the writer being mid-operation.
  ett::Forest f(8);
  f.link(0, 1);
  f.link(1, 2);
  f.link(2, 3);
  f.link(4, 5);
  f.link(5, 6);
  f.link(6, 7);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // The writer churns 1-2 and 5-6. Pairs joined by a *never-cut*
        // edge stay connected at every linearization point; pairs in
        // different original components must never appear merged, even
        // mid-restructure (the out-of-thin-air problem of Fig. 1).
        EXPECT_TRUE(f.connected(0, 1));
        EXPECT_TRUE(f.connected(2, 3));
        EXPECT_TRUE(f.connected(4, 5));
        EXPECT_TRUE(f.connected(6, 7));
        EXPECT_FALSE(f.connected(0, 4));
        EXPECT_FALSE(f.connected(3, 7));
        EXPECT_FALSE(f.connected(1, 6));
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int i = 0; i < 20000; ++i) {
    f.cut(1, 2);
    // 0-1 and 2-3 remain intact; only 0~2 type pairs change, which no
    // reader asserts on. Re-link immediately.
    f.link(1, 2);
    f.cut(5, 6);
    f.link(5, 6);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(EttConcurrent, AppendixAPattern) {
  // The Appendix-A counter-example shape: u and v hang off w, and the edge
  // (w, r) is removed and re-added in a tight loop. u and v are *always*
  // connected (through w); a connectivity check that omitted the fifth
  // find_root could report false during the churn.
  ett::Forest f(4);
  const Vertex u = 0, v = 1, w = 2, r = 3;
  f.link(u, w);
  f.link(v, w);
  f.link(w, r);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> checks{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ASSERT_TRUE(f.connected(u, v));
        checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 50000; ++i) {
    f.cut(w, r);
    f.link(w, r);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(checks.load(), 1000u);
}

// ---------------------------------------------------------------------------
// Invariant-pair stress: every variant, updates churn chords of two cliques
// whose Hamiltonian cycles are never touched — within-clique connectivity
// must always read true, cross-clique always false.
// ---------------------------------------------------------------------------

class VariantStress : public ::testing::TestWithParam<int> {};

TEST_P(VariantStress, TwoCliquesInvariantUnderChurn) {
  const Vertex kCliqueSize = 12;
  const Vertex n = 2 * kCliqueSize;
  auto dc = make_variant(GetParam(), n);

  // Protected Hamiltonian cycles (never removed).
  for (Vertex c = 0; c < 2; ++c) {
    const Vertex base = c * kCliqueSize;
    for (Vertex i = 0; i < kCliqueSize; ++i)
      dc->add_edge(base + i, base + (i + 1) % kCliqueSize);
  }

  std::atomic<bool> stop{false};
  const unsigned kUpdaters = 2;
  const unsigned kReaders = 2;
  std::vector<std::thread> threads;

  for (unsigned t = 0; t < kUpdaters; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex c = static_cast<Vertex>(rng.next_below(2));
        const Vertex base = c * kCliqueSize;
        Vertex a = base + static_cast<Vertex>(rng.next_below(kCliqueSize));
        Vertex b = base + static_cast<Vertex>(rng.next_below(kCliqueSize));
        if (a == b) continue;
        // Skip cycle edges so the protected backbone stays intact.
        const Vertex lo = std::min(a, b) - base, hi = std::max(a, b) - base;
        if (hi - lo == 1 || (lo == 0 && hi == kCliqueSize - 1)) continue;
        if (rng.next_below(2) == 0) {
          dc->add_edge(a, b);
        } else {
          dc->remove_edge(a, b);
        }
      }
    });
  }
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(2000 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex a = static_cast<Vertex>(rng.next_below(kCliqueSize));
        const Vertex b = static_cast<Vertex>(rng.next_below(kCliqueSize));
        ASSERT_TRUE(dc->connected(a, b));
        ASSERT_TRUE(dc->connected(kCliqueSize + a, kCliqueSize + b));
        ASSERT_FALSE(dc->connected(a, kCliqueSize + b));
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantStress,
                         ::testing::Range(1, 15),
                         [](const ::testing::TestParamInfo<int>& info) {
                           std::string n = all_variants()[info.param - 1].name;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// Full algorithm: mixed multi-writer stress with a final-state oracle
// ---------------------------------------------------------------------------

class NbStress : public ::testing::TestWithParam<NbLockMode> {};

TEST_P(NbStress, MixedChurnEndsConsistent) {
  const Vertex n = 40;
  NbHdt dc(n, GetParam());
  const unsigned kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};

  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(77 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex a = static_cast<Vertex>(rng.next_below(n));
        Vertex b = static_cast<Vertex>(rng.next_below(n));
        if (a == b) b = (b + 1) % n;
        switch (rng.next_below(4)) {
          case 0:
          case 1:
            dc.add_edge(a, b);
            break;
          case 2:
            dc.remove_edge(a, b);
            break;
          default:
            dc.connected(a, b);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  // Quiescent: structural invariants hold and connectivity agrees with a
  // static recomputation from the surviving edge set.
  dc.check_invariants();
  std::vector<Edge> present;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      if (dc.has_edge(a, b)) present.emplace_back(a, b);
  const ComponentInfo cc = connected_components(n, present);
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      ASSERT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b])
          << a << "-" << b;
}

TEST_P(NbStress, ConcurrentSameEdgeAddersAgree) {
  // All threads fight over the same small edge set; per-edge status words
  // must serialize them (IN_PROGRESS / INITIAL joining), never duplicating
  // or losing an edge.
  const Vertex n = 6;
  NbHdt dc(n, GetParam());
  const unsigned kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(5 + t);
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex a = static_cast<Vertex>(rng.next_below(n));
        Vertex b = static_cast<Vertex>(rng.next_below(n));
        if (a == b) continue;
        if (rng.next_below(2) == 0) {
          dc.add_edge(a, b);
        } else {
          dc.remove_edge(a, b);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  dc.check_invariants();
  std::vector<Edge> present;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      if (dc.has_edge(a, b)) present.emplace_back(a, b);
  const ComponentInfo cc = connected_components(n, present);
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      ASSERT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b]);
}

TEST_P(NbStress, ReplacementProposalRace) {
  // Distills the §4.4 conflict: one thread repeatedly removes the bridge of
  // a dumbbell (two triangles joined by one edge) while others insert /
  // erase the only other possible cross edge. Readers pin the invariant
  // that each side stays internally connected.
  //   0-1-2 (triangle)   3-4-5 (triangle)   bridge 2-3, rival 0-5
  const Vertex n = 6;
  NbHdt dc(n, GetParam());
  for (auto [a, b] : {std::pair{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5},
                      {3, 5}}) {
    dc.add_edge(static_cast<Vertex>(a), static_cast<Vertex>(b));
  }
  dc.add_edge(2, 3);

  std::atomic<bool> stop{false};
  std::thread bridge_churner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      dc.remove_edge(2, 3);
      dc.add_edge(2, 3);
    }
  });
  std::thread rival_churner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      dc.add_edge(0, 5);
      dc.remove_edge(0, 5);
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(dc.connected(0, 2));
      ASSERT_TRUE(dc.connected(3, 5));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  bridge_churner.join();
  rival_churner.join();
  reader.join();

  dc.check_invariants();
  std::vector<Edge> present;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      if (dc.has_edge(a, b)) present.emplace_back(a, b);
  const ComponentInfo cc = connected_components(n, present);
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      ASSERT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b]);
}

INSTANTIATE_TEST_SUITE_P(Modes, NbStress,
                         ::testing::Values(NbLockMode::kFine,
                                           NbLockMode::kCoarseSpin,
                                           NbLockMode::kCoarseElision),
                         [](const ::testing::TestParamInfo<NbLockMode>& i) {
                           switch (i.param) {
                             case NbLockMode::kFine:
                               return "fine";
                             case NbLockMode::kCoarseSpin:
                               return "coarse";
                             default:
                               return "elision";
                           }
                         });

// ---------------------------------------------------------------------------
// Relaxed-ordering oracle, pinned to the zipfian stream: the memory-order
// audit downgraded the parent/version hot path to acquire/release
// (DESIGN.md §7.3). The zipfian mix hammers a hot edge set — the regime in
// which a too-weak ordering would let a stale version/parent snapshot
// linearize a wrong answer or corrupt the structure. Quiescent oracle as in
// MixedChurnEndsConsistent, driven by the real generator.
// ---------------------------------------------------------------------------

TEST(NbConcurrent, ZipfianChurnMatchesOracle) {
  const Vertex n = 48;
  std::vector<Edge> edges;
  Xoshiro256 gen(5);
  for (Vertex v = 0; v < n; ++v) edges.emplace_back(v, (v + 1) % n);
  for (int i = 0; i < 80; ++i) {
    const Vertex a = static_cast<Vertex>(gen.next_below(n));
    Vertex b = static_cast<Vertex>(gen.next_below(n));
    if (a == b) b = (b + 1) % n;
    edges.emplace_back(a, b);
  }
  const Graph g(n, std::move(edges));

  NbHdt dc(n, NbLockMode::kFine);
  const unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // 40% reads, heavy update share on the Zipf-hot edges; all threads
      // share the popularity permutation (base seed), so they collide on
      // the same hot set by construction.
      harness::ZipfianOpStream stream(g, 40, /*base_seed=*/21, t);
      Op op;
      for (int i = 0; i < 30000; ++i) {
        ASSERT_TRUE(stream.next(op));
        switch (op.kind) {
          case OpKind::kAdd:
            dc.add_edge(op.u, op.v);
            break;
          case OpKind::kRemove:
            dc.remove_edge(op.u, op.v);
            break;
          case OpKind::kConnected:
            dc.connected(op.u, op.v);
            break;
          default:
            break;  // the zipfian stream emits no value queries
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  dc.check_invariants();
  std::vector<Edge> present;
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      if (dc.has_edge(a, b)) present.emplace_back(a, b);
  const ComponentInfo cc = connected_components(n, present);
  for (Vertex a = 0; a < n; ++a)
    for (Vertex b = a + 1; b < n; ++b)
      ASSERT_EQ(dc.connected(a, b), cc.label[a] == cc.label[b])
          << a << "-" << b;
}

// ---------------------------------------------------------------------------
// Fine-grained parallelism: writers on disjoint components proceed together
// ---------------------------------------------------------------------------

TEST(FineGrainedConcurrent, DisjointComponentWritersMakeProgress) {
  const Vertex kBlock = 64;
  const unsigned kWriters = 4;
  const Vertex n = kBlock * kWriters;
  auto dc = make_variant(9, n);  // "full" (fine-grained)

  std::vector<std::thread> writers;
  std::atomic<uint64_t> total_ops{0};
  for (unsigned w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const Vertex base = w * kBlock;
      Xoshiro256 rng(w);
      uint64_t ops = 0;
      for (int round = 0; round < 300; ++round) {
        // Build a path, then tear half of it down again — all within this
        // writer's private block, so component locks never collide.
        for (Vertex i = 0; i + 1 < kBlock; ++i) {
          dc->add_edge(base + i, base + i + 1);
          ++ops;
        }
        for (Vertex i = 0; i + 1 < kBlock; i += 2) {
          dc->remove_edge(base + i, base + i + 1);
          ++ops;
        }
        for (Vertex i = 0; i + 1 < kBlock; i += 2) {
          dc->add_edge(base + i, base + i + 1);
          ++ops;
        }
      }
      total_ops.fetch_add(ops);
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_GT(total_ops.load(), 0u);
  // Every block ends fully connected internally, blocks stay separate.
  for (unsigned w = 0; w < kWriters; ++w) {
    const Vertex base = w * kBlock;
    EXPECT_TRUE(dc->connected(base, base + kBlock - 1));
    if (w > 0) {
      EXPECT_FALSE(dc->connected(0, base));
    }
  }
}

}  // namespace
}  // namespace condyn
