// pbd (variant 14) coverage: the TaskPool fork-join primitive, the
// internally parallel apply_batch pipeline with the worker gang *forced on*
// (tiny fan-out cutoffs — the registry default on a small machine would
// otherwise run the sequential residue only), and concurrent apply_batch
// callers checked against the DSU oracle after quiesce. The whole file runs
// under the CI TSan job.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/batch_runs.hpp"
#include "core/pbd_dc.hpp"
#include "graph/dsu.hpp"
#include "query_oracle.hpp"
#include "util/random.hpp"
#include "util/task_pool.hpp"

namespace condyn {
namespace {

using testing_oracle = condyn::testutil::QueryOracle;

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

TEST(TaskPool, GangRunsEveryIdAndIsReusable) {
  TaskPool pool(4);
  EXPECT_EQ(pool.workers(), 4u);
  for (int round = 0; round < 64; ++round) {
    std::atomic<uint32_t> mask{0};
    std::atomic<unsigned> count{0};
    pool.run([&](unsigned id) {
      mask.fetch_or(1u << id);
      count.fetch_add(1);
    });
    EXPECT_EQ(mask.load(), 0xfu);
    EXPECT_EQ(count.load(), 4u);
  }
}

TEST(TaskPool, SizeOneRunsInlineOnTheCaller) {
  TaskPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::thread::id ran_on;
  pool.run([&](unsigned id) {
    EXPECT_EQ(id, 0u);
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

TEST(TaskPool, BarrierKeepsAGangInLockstep) {
  constexpr unsigned kGang = 4;
  TaskPool pool(kGang);
  SpinBarrier barrier(kGang);
  std::atomic<int> phase_sum{0};
  pool.run([&](unsigned) {
    for (int phase = 1; phase <= 8; ++phase) {
      barrier.arrive_and_wait();
      phase_sum.fetch_add(phase);
      barrier.arrive_and_wait();
      // Between the exit and the next entry barrier the sum is exact: every
      // member contributed every completed phase.
      EXPECT_EQ(phase_sum.load(),
                static_cast<int>(kGang) * phase * (phase + 1) / 2);
    }
  });
  EXPECT_EQ(phase_sum.load(), static_cast<int>(kGang) * (8 * 9) / 2);
}

// ---------------------------------------------------------------------------
// Forced-parallel sequential equivalence
// ---------------------------------------------------------------------------

std::vector<Op> mixed_program(Vertex n, int len, int update_percent,
                              uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(len);
  for (int i = 0; i < len; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    const Vertex b = static_cast<Vertex>(rng.next_below(n));  // loops allowed
    if (rng.next_below(100) < static_cast<uint64_t>(update_percent)) {
      ops.push_back(rng.next_below(2) ? Op::add(a, b) : Op::remove(a, b));
    } else {
      switch (rng.next_below(3)) {
        case 0: ops.push_back(Op::component_size(a)); break;
        case 1: ops.push_back(Op::representative(a)); break;
        default: ops.push_back(Op::connected(a, b));
      }
    }
  }
  return ops;
}

void check_against_oracle(PbdDc& dc, std::span<const Op> program,
                          std::size_t batch_size) {
  testing_oracle oracle(dc.num_vertices());
  std::size_t pos = 0;
  while (pos < program.size()) {
    const std::size_t bs = std::min(batch_size, program.size() - pos);
    const std::span<const Op> batch(&program[pos], bs);
    const BatchResult r = dc.apply_batch(batch);
    ASSERT_EQ(r.size(), bs);
    uint64_t adds = 0, removes = 0, queries = 0;
    for (std::size_t i = 0; i < bs; ++i) {
      const uint64_t expected = oracle.apply(batch[i]);
      ASSERT_EQ(r.value(i), expected)
          << "op " << pos + i << " kind " << static_cast<int>(batch[i].kind)
          << " (" << batch[i].u << "," << batch[i].v << ")";
      if (expected != 0) {
        switch (batch[i].kind) {
          case OpKind::kAdd: ++adds; break;
          case OpKind::kRemove: ++removes; break;
          case OpKind::kConnected: ++queries; break;
          default: break;
        }
      }
    }
    EXPECT_EQ(r.adds_performed, adds);
    EXPECT_EQ(r.removes_performed, removes);
    EXPECT_EQ(r.queries_true, queries);
    pos += bs;
  }
  dc.engine().check_invariants();
}

TEST(PbdGang, UpdateHeavyBatchesMatchOracleWithForcedFanOut) {
  const Vertex n = 64;
  // Gang of 4 with fan-out cutoffs of 1: every surviving run and every
  // query stretch goes through the barrier-and-stripe parallel path.
  PbdDc dc(n, "pbd", true, /*workers=*/4, /*par_read_cutoff=*/1,
           /*par_update_cutoff=*/1);
  EXPECT_EQ(dc.workers(), 4u);
  check_against_oracle(dc, mixed_program(n, 4000, 80, 911), 331);
}

TEST(PbdGang, ReadHeavyBatchesMatchOracleWithForcedFanOut) {
  const Vertex n = 64;
  PbdDc dc(n, "pbd", true, /*workers=*/4, /*par_read_cutoff=*/1,
           /*par_update_cutoff=*/1);
  check_against_oracle(dc, mixed_program(n, 4000, 15, 913), 512);
}

TEST(PbdGang, DefaultCutoffsMatchOracleAcrossBatchSizes) {
  const Vertex n = 64;
  PbdDc dc(n, "pbd", true, /*workers=*/3);
  const std::vector<Op> program = mixed_program(n, 3000, 50, 917);
  check_against_oracle(dc, program, 7);
  PbdDc dc2(n, "pbd", true, /*workers=*/3);
  check_against_oracle(dc2, program, 1024);
}

// ---------------------------------------------------------------------------
// Concurrent apply_batch: DSU-oracle equality after quiesce
// ---------------------------------------------------------------------------

// Each submitter owns the edges whose edge_partition_hash lands in its
// partition, so per-edge op order is that thread's submission order even
// though whole batches from different threads interleave. Update return
// values depend only on per-edge history, which makes every thread's values
// deterministic and oracle-checkable *during* the run; the final edge set is
// the union of the per-thread live sets, checked against a DSU at quiesce.
TEST(PbdConcurrent, ConcurrentBatchesMatchDsuOracleAfterQuiesce) {
  const Vertex n = 96;
  constexpr unsigned kThreads = 4;
  constexpr int kBatches = 24;
  constexpr int kBatchLen = 192;
  PbdDc dc(n, "pbd", true, /*workers=*/3, /*par_read_cutoff=*/4,
           /*par_update_cutoff=*/2);

  // Pre-generate each thread's program over its own edge partition, with
  // connected() queries interleaved (their values race and are unchecked).
  std::vector<std::vector<Op>> programs(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(1000 + t);
    while (programs[t].size() <
           static_cast<std::size_t>(kBatches * kBatchLen)) {
      const Vertex a = static_cast<Vertex>(rng.next_below(n));
      const Vertex b = static_cast<Vertex>(rng.next_below(n));
      if (rng.next_below(100) < 25) {
        programs[t].push_back(Op::connected(a, b));
        continue;
      }
      if (edge_partition_hash(a, b) % kThreads != t) continue;
      programs[t].push_back(rng.next_below(2) ? Op::add(a, b)
                                              : Op::remove(a, b));
    }
  }

  std::vector<testing_oracle> oracles;
  for (unsigned t = 0; t < kThreads; ++t) oracles.emplace_back(n);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::vector<Op>& prog = programs[t];
      for (int b = 0; b < kBatches; ++b) {
        const std::span<const Op> batch(&prog[b * kBatchLen], kBatchLen);
        const BatchResult r = dc.apply_batch(batch);
        for (int i = 0; i < kBatchLen; ++i) {
          const uint64_t expected = oracles[t].apply(batch[i]);
          if (is_update(batch[i].kind) && r.value(i) != expected) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  // Lock-free readers hammer the query vocabulary while batches apply.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      const Vertex a = static_cast<Vertex>(rng.next_below(n));
      const Vertex b = static_cast<Vertex>(rng.next_below(n));
      dc.connected(a, b);
      dc.component_size(a);
      dc.representative(b);
    }
  });
  for (std::thread& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(failures.load(), 0) << "per-edge update values diverged";

  // Quiesce: union of per-thread live sets vs the structure, via DSU.
  Dsu dsu(n);
  for (const testing_oracle& o : oracles) {
    for (const Edge& e : o.present()) dsu.unite(e.u, e.v);
  }
  for (Vertex u = 0; u < n; ++u) {
    ASSERT_EQ(dc.component_size(u), dsu.component_size(u)) << "vertex " << u;
    ASSERT_EQ(dc.representative(u), dsu.representative(u)) << "vertex " << u;
    for (Vertex v = u + 1; v < n; v += 7) {
      ASSERT_EQ(dc.connected(u, v), dsu.connected(u, v))
          << u << " vs " << v;
    }
  }
  const ComponentsSnapshot snap = dc.components();
  for (Vertex u = 0; u < n; ++u) {
    EXPECT_EQ(snap.labels[u], dsu.representative(u)) << "vertex " << u;
  }
  dc.engine().check_invariants();
}

// ---------------------------------------------------------------------------
// Registry integration
// ---------------------------------------------------------------------------

TEST(PbdRegistry, CapsAreHonest) {
  const VariantInfo* v = find_variant("pbd");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->id, 14);
  EXPECT_TRUE(v->caps.native_batch);
  EXPECT_TRUE(v->caps.atomic_batch);
  EXPECT_TRUE(v->caps.lock_free_reads);
  EXPECT_TRUE(v->caps.internal_parallel);
  EXPECT_TRUE(v->caps.sized_components);
  EXPECT_TRUE(v->caps.stable_representative);
  EXPECT_FALSE(v->caps.combining);
  EXPECT_FALSE(v->caps.label_cache);
  // Only the internally parallel batch families claim the cap: pbd (one
  // gang inside the engine) and the sharded facades (a gang fanning
  // per-shard sub-batches).
  for (const VariantInfo& info : all_variants()) {
    if (info.id != v->id &&
        std::string(info.name).rfind("sharded<", 0) != 0) {
      EXPECT_FALSE(info.caps.internal_parallel) << info.name;
    }
  }
}

}  // namespace
}  // namespace condyn
