#include "core/edge_state.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace condyn {
namespace {

TEST(EdgeState, DefaultIsRemoved) {
  EdgeState s;
  EXPECT_EQ(s.status(), EdgeStatus::kRemoved);
  EXPECT_EQ(s.level(), 0);
  EXPECT_EQ(s.stamp(), 0u);
  EXPECT_FALSE(s.present());
}

TEST(EdgeState, PackRoundTrip) {
  for (EdgeStatus st :
       {EdgeStatus::kRemoved, EdgeStatus::kInitial, EdgeStatus::kNonSpanning,
        EdgeStatus::kSpanning, EdgeStatus::kInProgress}) {
    for (int level : {0, 1, 5, 31, 255}) {
      for (uint64_t stamp : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40}) {
        EdgeState s(st, level, stamp);
        EXPECT_EQ(s.status(), st);
        EXPECT_EQ(s.level(), level);
        EXPECT_EQ(s.stamp(), stamp);
      }
    }
  }
}

TEST(EdgeState, WithKeepsStamp) {
  EdgeState s(EdgeStatus::kInitial, 0, 77);
  EdgeState t = s.with(EdgeStatus::kNonSpanning, 3);
  EXPECT_EQ(t.status(), EdgeStatus::kNonSpanning);
  EXPECT_EQ(t.level(), 3);
  EXPECT_EQ(t.stamp(), 77u);
  EXPECT_NE(s, t);
}

TEST(EdgeState, PresentClassification) {
  EXPECT_FALSE(EdgeState(EdgeStatus::kRemoved, 0, 1).present());
  EXPECT_FALSE(EdgeState(EdgeStatus::kInitial, 0, 1).present());
  EXPECT_TRUE(EdgeState(EdgeStatus::kNonSpanning, 0, 1).present());
  EXPECT_TRUE(EdgeState(EdgeStatus::kSpanning, 2, 1).present());
  EXPECT_TRUE(EdgeState(EdgeStatus::kInProgress, 0, 1).present());
}

TEST(EdgeStateCell, CasRefreshesExpectedOnFailure) {
  EdgeStateCell cell;
  EdgeState cur = cell.load();
  ASSERT_TRUE(cell.cas(cur, EdgeState(EdgeStatus::kInitial, 0, 1)));

  EdgeState stale;  // default (removed, stamp 0) — no longer current
  EXPECT_FALSE(cell.cas(stale, EdgeState(EdgeStatus::kInitial, 0, 2)));
  EXPECT_EQ(stale, EdgeState(EdgeStatus::kInitial, 0, 1));  // refreshed
}

TEST(EdgeStateMap, MissingEdgeReadsRemoved) {
  EdgeStateMap map;
  EXPECT_EQ(map.load(Edge(1, 2)).status(), EdgeStatus::kRemoved);
}

TEST(EdgeStateMap, CellsAreStable) {
  EdgeStateMap map;
  EdgeStateCell* c1 = map.cell(Edge(3, 4));
  EdgeStateCell* c2 = map.cell(Edge(4, 3));  // canonical orientation
  EXPECT_EQ(c1, c2);
  c1->store(EdgeState(EdgeStatus::kSpanning, 1, 9));
  EXPECT_EQ(map.load(Edge(3, 4)).level(), 1);
}

TEST(EdgeStateCell, ConcurrentCasOneWinnerPerTransition) {
  // N threads all race INITIAL -> NON-SPANNING for the same stamp; exactly
  // one CAS per incarnation may win (the state machine's atomicity).
  constexpr int kThreads = 8;
  constexpr int kRounds = 2000;
  EdgeStateCell cell;
  std::atomic<int> winners{0};
  std::atomic<int> round_gate{0};

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        while (round_gate.load(std::memory_order_acquire) < r) {
        }
        EdgeState expect(EdgeStatus::kInitial, 0, static_cast<uint64_t>(r));
        if (cell.cas(expect,
                     EdgeState(EdgeStatus::kNonSpanning, 0,
                               static_cast<uint64_t>(r)))) {
          winners.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < kRounds; ++r) {
    cell.store(EdgeState(EdgeStatus::kInitial, 0, static_cast<uint64_t>(r)));
    round_gate.store(r, std::memory_order_release);
    while (cell.load().status() != EdgeStatus::kNonSpanning) {
    }
  }
  round_gate.store(kRounds, std::memory_order_release);
  for (auto& t : ts) t.join();
  EXPECT_EQ(winners.load(), kRounds);
}

}  // namespace
}  // namespace condyn
