// Epoch-based reclamation tests: the GC-substitute (DESIGN.md §2) must
// never free memory a pinned reader can still reach, must eventually free
// everything once readers leave, and must survive multi-threaded churn.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/ebr.hpp"

namespace condyn {
namespace {

struct Tracked {
  std::atomic<int>* freed;
  explicit Tracked(std::atomic<int>* f) : freed(f) {}
  ~Tracked() { freed->fetch_add(1, std::memory_order_relaxed); }
};

TEST(Ebr, DrainFreesEverything) {
  std::atomic<int> freed{0};
  for (int i = 0; i < 100; ++i) ebr::retire(new Tracked(&freed));
  ebr::Domain::global().drain();
  EXPECT_EQ(freed.load(), 100);
}

TEST(Ebr, PinnedReaderBlocksReclamation) {
  std::atomic<int> freed{0};
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    auto guard = ebr::pin();
    reader_pinned.store(true, std::memory_order_release);
    while (!release_reader.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!reader_pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Retire from this thread while the reader's epoch is pinned. Push enough
  // objects to cross any internal advance threshold: none may be freed.
  for (int i = 0; i < 2000; ++i) ebr::retire(new Tracked(&freed));
  EXPECT_EQ(freed.load(), 0)
      << "memory was reclaimed while a reader was pinned";

  release_reader.store(true, std::memory_order_release);
  reader.join();
  ebr::Domain::global().drain();
  EXPECT_EQ(freed.load(), 2000);
}

TEST(Ebr, NestedGuardsAreReentrant) {
  std::atomic<int> freed{0};
  {
    auto g1 = ebr::pin();
    auto g2 = ebr::pin();
    auto g3 = ebr::pin();
    ebr::retire(new Tracked(&freed));  // retire while (nested-)pinned
  }
  // Drain after the guards release: the retired object must not leak into a
  // later test's epoch, where its callback would write through the
  // then-dangling `freed` pointer.
  ebr::Domain::global().drain();
  EXPECT_EQ(freed.load(), 1);  // no deadlock / double-unpin, and reclaimed
}

TEST(Ebr, EpochAdvancesWhenUnpinned) {
  auto& d = ebr::Domain::global();
  const uint64_t before = d.epoch();
  std::atomic<int> freed{0};
  // Retiring in bursts with no pinned readers must let epochs advance and
  // reclamation happen without an explicit drain.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 300; ++i) ebr::retire(new Tracked(&freed));
  }
  EXPECT_GT(d.epoch(), before);
  EXPECT_GT(freed.load(), 0) << "no automatic reclamation ever happened";
  d.drain();
}

TEST(EbrStress, ChurnWithReaders) {
  std::atomic<int> freed{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> retired{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto guard = ebr::pin();
        std::this_thread::yield();
      }
    });
  }
  std::vector<std::thread> retirers;
  for (int w = 0; w < 2; ++w) {
    retirers.emplace_back([&] {
      for (int i = 0; i < 30000; ++i) {
        ebr::retire(new Tracked(&freed));
        retired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : retirers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  ebr::Domain::global().drain();
  EXPECT_EQ(freed.load(), static_cast<int>(retired.load()));
}

}  // namespace
}  // namespace condyn
