// NodePool tests: reuse and stats accounting, cacheline stride, and the
// recycle-under-EBR stress the memory overhaul hinges on — concurrent
// link/cut churn recycles arc nodes through the grace period while readers
// traverse them lock-free; ASAN turns any premature reuse into a hard
// use-after-free (the asan-ubsan CI job runs this test).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/edge_multiset.hpp"
#include "core/ett.hpp"
#include "util/ebr.hpp"
#include "util/node_pool.hpp"
#include "util/pool_stats.hpp"

namespace condyn {
namespace {

struct Payload {
  uint64_t a = 1;
  uint64_t b = 2;
};

TEST(NodePool, CreateDestroyReusesStorage) {
  if (!pool_stats::pooling_enabled()) GTEST_SKIP() << "DC_POOL=0";
  auto& pool = NodePool<Payload>::instance();
  const auto before = pool_stats::local();
  Payload* p = pool.create();
  EXPECT_EQ(p->a, 1u);
  p->a = 99;
  pool.destroy(p);
  Payload* q = pool.create();
  // Same thread, LIFO free list: the storage comes straight back, freshly
  // constructed.
  EXPECT_EQ(q, p);
  EXPECT_EQ(q->a, 1u) << "recycled object must be re-constructed";
  pool.destroy(q);
  const auto after = pool_stats::local();
  EXPECT_EQ(after.pool_recycled - before.pool_recycled, 2u);
  EXPECT_EQ(after.pool_reused - before.pool_reused, 1u);
}

TEST(NodePool, CachelineStrideForTreeNodes) {
  if (!pool_stats::pooling_enabled()) GTEST_SKIP() << "DC_POOL=0";
  using Pool = NodePool<ett::Node, kCacheLine>;
  static_assert(Pool::stride() % kCacheLine == 0);
  auto& pool = Pool::instance();
  std::vector<ett::Node*> nodes;
  for (int i = 0; i < 16; ++i) nodes.push_back(pool.create());
  for (ett::Node* n : nodes) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(n) % kCacheLine, 0u);
  }
  for (ett::Node* n : nodes) pool.destroy(n);
}

TEST(NodePool, SlabAmortizesAllocatorCalls) {
  if (!pool_stats::pooling_enabled()) GTEST_SKIP() << "DC_POOL=0";
  struct Fresh {  // a type no other test allocates: clean slab accounting
    uint64_t x = 0;
  };
  auto& pool = NodePool<Fresh>::instance();
  const auto before = pool_stats::local();
  std::vector<Fresh*> live;
  constexpr std::size_t kN = NodePool<Fresh>::kSlabObjects * 3;
  for (std::size_t i = 0; i < kN; ++i) live.push_back(pool.create());
  const auto after = pool_stats::local();
  EXPECT_LE(after.allocator_calls - before.allocator_calls, 3u)
      << "one allocator call per slab, not per object";
  EXPECT_EQ(after.pool_fresh - before.pool_fresh, kN);
  for (Fresh* p : live) pool.destroy(p);
}

// The stress the whole design must survive: a single writer churns spanning
// edges (every cut retires two arc nodes into the pool through EBR; every
// link draws nodes back out) while readers run lock-free connectivity
// queries that chase parent pointers through retired-but-not-yet-recycled
// arcs. A node recycled before its grace period would be re-constructed
// under a reader's feet — ASAN flags the stale traversal, and the queries
// would return garbage roots caught by the result checks below.
TEST(NodePoolStress, RecycleUnderEbrChurn) {
  constexpr Vertex kN = 64;
  constexpr int kRounds = 300;
  ett::Forest f(kN);
  // Base path 0-1-...-(kN/2-1) that stays put; the churn half attaches and
  // detaches leaves so connectivity flips constantly.
  const Vertex base = kN / 2;
  for (Vertex v = 1; v < base; ++v) f.link(v - 1, v);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // The base path is never cut: its members must always agree.
        ASSERT_TRUE(f.connected(0, base - 1));
        // Churned vertices connect and disconnect; any answer is legal,
        // the traversal itself must just never touch recycled memory.
        f.connected(1, base + 1);
        f.connected(0, kN - 1);
        ++local;
      }
      reads.fetch_add(local);
    });
  }

  for (int round = 0; round < kRounds; ++round) {
    for (Vertex v = base; v < kN; ++v) f.link(v % base, v);
    for (Vertex v = base; v < kN; ++v) f.cut(v % base, v);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
  // Churn fully undone: the tour holds the base path's vertex nodes plus an
  // arc pair per base edge.
  EXPECT_EQ(f.validate(0), base + 2 * (base - 1));
}

// Same property for the lock-free multiset: cells retired by remove_one's
// prefix unlinking recycle through EBR while scanners iterate the list.
TEST(NodePoolStress, MultisetRecycleUnderScan) {
  VertexMultiset ms;
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto guard = ebr::pin();
      uint64_t seen = 0;
      ms.for_each([&](Vertex v) {
        EXPECT_LT(v, 64u);  // values a recycled cell could not hold
        return ++seen < 1024;  // bounded scan: adders never stop
      });
    }
  });
  std::vector<std::thread> churn;
  for (int t = 0; t < 2; ++t) {
    churn.emplace_back([&, t] {
      // Disjoint value ranges: each thread only removes its own copies, so
      // every remove_one must succeed (the multiset invariant under test).
      for (int i = 0; i < 20000; ++i) {
        const Vertex v = static_cast<Vertex>(t * 32 + i % 32);
        ms.add(v);
        EXPECT_TRUE(ms.remove_one(v));
      }
    });
  }
  for (auto& t : churn) t.join();
  stop.store(true, std::memory_order_release);
  scanner.join();
}

// Slab decay: after a churn burst is fully undone and every cell has
// drained to the shared free list, decay() returns the slabs to the OS and
// the high-water resident footprint drops — the release valve a long-lived
// service needs. Safety hinges on the all-cells-shared check: the test also
// verifies that a slab with even one live object survives every pass.
TEST(NodePool, SlabDecayReleasesIdleSlabs) {
  if (!pool_stats::pooling_enabled()) GTEST_SKIP() << "DC_POOL=0";
  struct Churn {  // dedicated type: this pool's slabs are all ours
    uint64_t x = 0;
  };
  using Pool = NodePool<Churn>;
  auto& pool = Pool::instance();

  // Burst: exactly three slabs' worth, so the bump allocator finishes every
  // slab it starts (no partially-carved tail pinning one).
  constexpr std::size_t kN = Pool::kSlabObjects * 3;
  std::vector<Churn*> live;
  live.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) live.push_back(pool.create());
  const int64_t high_water = pool_stats::resident_bytes();

  // Keep one object alive: its slab must survive decay.
  Churn* survivor = live.back();
  live.pop_back();
  for (Churn* p : live) pool.destroy(p);
  pool.flush_local();  // local cache → shared list, as a quiesce point would

  // First pass stamps the idle slabs; with min_idle 0 it frees them in the
  // same call (the default DC_POOL_DECAY hysteresis is exercised implicitly:
  // a nonzero age requirement just needs a later pass).
  const std::size_t freed = pool.decay(0);
  EXPECT_EQ(freed, 2u) << "two fully-idle slabs; the survivor pins the third";
  EXPECT_LE(pool_stats::resident_bytes(),
            high_water - static_cast<int64_t>(2 * Pool::stride() *
                                              Pool::kSlabObjects));

  // The surviving slab still works: allocate its cells back out.
  std::vector<Churn*> again;
  for (std::size_t i = 0; i + 1 < Pool::kSlabObjects; ++i)
    again.push_back(pool.create());
  pool.destroy(survivor);
  for (Churn* p : again) pool.destroy(p);
  pool.flush_local();
  EXPECT_EQ(pool.decay(0), 1u) << "now fully idle, the last slab decays too";
}

// A slab observed idle is only freed after it stays idle DC_POOL_DECAY
// epochs: activity between passes resets the stamp.
TEST(NodePool, SlabDecayHysteresisSparesRecentlyActiveSlabs) {
  if (!pool_stats::pooling_enabled()) GTEST_SKIP() << "DC_POOL=0";
  struct Hyst {
    uint64_t x = 0;
  };
  using Pool = NodePool<Hyst>;
  auto& pool = Pool::instance();
  std::vector<Hyst*> live;
  for (std::size_t i = 0; i < Pool::kSlabObjects; ++i)
    live.push_back(pool.create());
  for (Hyst* p : live) pool.destroy(p);
  pool.flush_local();
  // A huge age requirement: the pass stamps the idle slab but must not free
  // it (the EBR epoch cannot have advanced that far within one process).
  EXPECT_EQ(pool.decay(uint64_t{1} << 32), 0u);
  // Zero age: the already-stamped slab goes immediately.
  EXPECT_EQ(pool.decay(0), 1u);
}

TEST(NodePool, ResidentBytesTracked) {
  if (!pool_stats::pooling_enabled()) GTEST_SKIP() << "DC_POOL=0";
  // The stress tests above forced slab allocation; the global footprint
  // gauge must reflect it.
  EXPECT_GT(pool_stats::resident_bytes(), 0u);
}

}  // namespace
}  // namespace condyn
