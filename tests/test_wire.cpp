// The wire framing codec (DESIGN.md §12.1): frame extraction from partial
// byte streams, the ops/results/status payload round trips, and the strict
// decode contract it shares with the DCTR v2/v3 readers — truncated varints,
// bad op kinds, out-of-range vertices, corrupt counts and trailing bytes are
// all rejected with std::runtime_error, never silently repaired.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/wire.hpp"

namespace condyn {
namespace {

using wire::FrameType;
using wire::Status;

std::vector<Op> sample_ops() {
  return {
      Op::add(3, 9),          Op::add(9, 1200),      Op::connected(3, 1200),
      Op::remove(3, 9),       Op::component_size(9), Op::representative(1200),
      Op::connected(0, 4095), Op::add(4095, 0),
  };
}

TEST(Wire, TryFrameNeedsFullHeaderAndBody) {
  std::vector<uint8_t> buf;
  wire::encode_ops_frame(sample_ops(), buf);
  // Every proper prefix is "incomplete", not an error.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const auto f = wire::try_frame(std::span(buf.data(), cut));
    EXPECT_FALSE(f.has_value()) << "prefix of " << cut << " bytes";
  }
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kOps);
  EXPECT_EQ(f->frame_bytes, buf.size());
}

TEST(Wire, TryFrameRejectsHopelessHeaders) {
  // Length 0.
  std::vector<uint8_t> zero = {0, 0, 0, 0};
  EXPECT_THROW(wire::try_frame(zero), std::runtime_error);
  // Length past the 2^24 bound: rejected before waiting for the body.
  std::vector<uint8_t> huge = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW(wire::try_frame(huge), std::runtime_error);
  // Unknown frame type byte.
  std::vector<uint8_t> badtype = {1, 0, 0, 0, 99};
  EXPECT_THROW(wire::try_frame(badtype), std::runtime_error);
}

TEST(Wire, OpsRoundTripAllKinds) {
  std::vector<uint8_t> buf;
  const std::vector<Op> ops = sample_ops();
  wire::encode_ops_frame(ops, buf);
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(wire::decode_ops(f->payload, 4096), ops);
}

TEST(Wire, OpsRoundTripRandom) {
  std::mt19937_64 rng(7);
  constexpr Vertex kN = 1 << 18;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<Op> ops;
    const int len = static_cast<int>(rng() % 200);
    for (int i = 0; i < len; ++i) {
      Op op;
      op.kind = static_cast<OpKind>(rng() % kNumOpKinds);
      op.u = static_cast<Vertex>(rng() % kN);
      op.v = static_cast<Vertex>(rng() % kN);
      ops.push_back(op);
    }
    std::vector<uint8_t> buf;
    wire::encode_ops_frame(ops, buf);
    const auto f = wire::try_frame(buf);
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(wire::decode_ops(f->payload, kN), ops);
  }
}

TEST(Wire, EmptyOpsFrameIsValid) {
  std::vector<uint8_t> buf;
  wire::encode_ops_frame({}, buf);
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(wire::decode_ops(f->payload, 16).empty());
}

TEST(Wire, OpsStrictDecodeErrors) {
  std::vector<uint8_t> buf;
  wire::encode_ops_frame(sample_ops(), buf);
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  const std::span<const uint8_t> payload = f->payload;

  // Every truncation of the payload fails (the count promises more ops).
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW(wire::decode_ops(payload.first(cut), 4096),
                 std::runtime_error)
        << "truncated at " << cut;
  }
  // Vertices out of range for a smaller universe.
  EXPECT_THROW(wire::decode_ops(payload, 100), std::runtime_error);
  // Trailing garbage past the declared ops.
  std::vector<uint8_t> extended(payload.begin(), payload.end());
  extended.push_back(0);
  EXPECT_THROW(wire::decode_ops(extended, 4096), std::runtime_error);
  // Corrupt count: claims more ops than the payload could possibly hold.
  std::vector<uint8_t> bloated = {200, 10};  // varint count = 1480, 1 byte left
  EXPECT_THROW(wire::decode_ops(bloated, 4096), std::runtime_error);
  // Bad op kind: tag with kind bits 5..7. kind=7, delta 0 -> tag byte 0x07,
  // followed by v-delta 0, count 1.
  std::vector<uint8_t> badkind = {1, 0x07, 0x00};
  EXPECT_THROW(wire::decode_ops(badkind, 4096), std::runtime_error);
  // Varint longer than 10 bytes.
  std::vector<uint8_t> longvar = {1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                                  0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  EXPECT_THROW(wire::decode_ops(longvar, 4096), std::runtime_error);
}

TEST(Wire, ResultsRoundTrip) {
  const std::vector<uint64_t> values = {1, 0, 17, 0xffffffffffffffffull, 3};
  std::vector<uint8_t> buf;
  wire::encode_results_frame(Status::kOk, values, buf);
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kResults);
  const wire::Results r = wire::decode_results(f->payload);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.values, values);
}

TEST(Wire, ResultsNonOkCarryNoValues) {
  // The encoder refuses to build the contradiction...
  std::vector<uint8_t> buf;
  EXPECT_THROW(wire::encode_results_frame(Status::kOverloaded, {{1}}, buf),
               std::runtime_error);
  // ...and the decoder refuses to accept it off the wire.
  std::vector<uint8_t> forged = {static_cast<uint8_t>(Status::kOverloaded), 1,
                                 1};
  EXPECT_THROW(wire::decode_results(forged), std::runtime_error);
  // Well-formed shed response round-trips.
  buf.clear();
  wire::encode_results_frame(Status::kOverloaded, {}, buf);
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  const wire::Results r = wire::decode_results(f->payload);
  EXPECT_EQ(r.status, Status::kOverloaded);
  EXPECT_TRUE(r.values.empty());
}

TEST(Wire, ResultsStrictDecodeErrors) {
  EXPECT_THROW(wire::decode_results({}), std::runtime_error);
  std::vector<uint8_t> badstatus = {42, 0};
  EXPECT_THROW(wire::decode_results(badstatus), std::runtime_error);
  std::vector<uint8_t> bloated = {0, 200, 10};  // count 1480, 0 bytes left
  EXPECT_THROW(wire::decode_results(bloated), std::runtime_error);
  std::vector<uint8_t> trailing = {0, 1, 5, 9};  // one value, one extra byte
  EXPECT_THROW(wire::decode_results(trailing), std::runtime_error);
}

TEST(Wire, StatusRoundTrip) {
  wire::StatusReport rep;
  rep.num_vertices = 1 << 20;
  rep.queue_depth = 17;
  rep.submitted = 100000;
  rep.acked = 99983;
  rep.dropped = 3;
  rep.shed_reads = 2;
  rep.failed = 0;
  rep.journal_errors = 0;
  rep.batches = 512;
  std::vector<uint8_t> buf;
  wire::encode_status_response(rep, buf);
  const auto f = wire::try_frame(buf);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::kStatusResponse);
  EXPECT_EQ(wire::decode_status_response(f->payload), rep);

  buf.clear();
  wire::encode_status_request(buf);
  const auto req = wire::try_frame(buf);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->type, FrameType::kStatusRequest);
  EXPECT_NO_THROW(wire::check_status_request(req->payload));
  std::vector<uint8_t> nonempty = {1};
  EXPECT_THROW(wire::check_status_request(nonempty), std::runtime_error);
}

TEST(Wire, DecodeAnyWalksStreams) {
  std::vector<uint8_t> buf;
  wire::encode_ops_frame(sample_ops(), buf);
  wire::encode_results_frame(Status::kOk, {{1, 0, 1}}, buf);
  wire::encode_status_request(buf);
  const std::size_t whole = buf.size();
  buf.insert(buf.end(), {3, 0, 0, 0});  // incomplete tail: stop, not error
  EXPECT_EQ(wire::decode_any(buf, 4096), 3u);
  EXPECT_EQ(wire::decode_any(std::span(buf.data(), whole), 4096), 3u);
}

TEST(Wire, StatusNames) {
  EXPECT_STREQ(wire::status_name(Status::kOk), "ok");
  EXPECT_STREQ(wire::status_name(Status::kOverloaded), "overloaded");
  EXPECT_STREQ(wire::status_name(Status::kShuttingDown), "shutting-down");
}

}  // namespace
}  // namespace condyn
