// Batch processing through the apply_batch pipeline.
//
// Prior parallel approaches (Acar et al.'s batch-dynamic algorithm, the
// combining-based schemes) need operations grouped into same-type batches.
// The paper's point (§2): a *concurrent* structure subsumes them — hand each
// worker an arbitrary slice of a mixed batch and let them run. This example
// submits mixed batches of adds/removes/queries through the batch API
// (DESIGN.md §5): a sequential reference replays each region's batches on a
// registry-enumerated single-lock variant, then workers feed the same
// batches to a concurrent variant via apply_batch — one call per batch, not
// one per op — and the per-op answers must agree.
#include <cstdio>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "util/random.hpp"

namespace {

using namespace condyn;

// Mixed batches: build up a graph region by region, with queries sprinkled
// in. Ops in different regions are independent, so any interleaving of the
// per-region batch sequences yields the same answers — which is what makes
// the parallel replay comparable to the sequential one.
std::vector<std::vector<Op>> make_regional_programs(Vertex region_size,
                                                    unsigned regions,
                                                    uint64_t seed) {
  std::vector<std::vector<Op>> program(regions);
  for (unsigned r = 0; r < regions; ++r) {
    Xoshiro256 rng(seed + r);
    const Vertex base = r * region_size;
    auto& ops = program[r];
    for (Vertex i = 0; i + 1 < region_size; ++i) {
      ops.push_back(Op::add(base + i, base + i + 1));
      if (i % 7 == 0) {
        ops.push_back(Op::connected(
            base, base + static_cast<Vertex>(rng.next_below(i + 1))));
      }
      if (i % 11 == 3) {  // churn an already-built edge, inside one batch
        const Vertex j = static_cast<Vertex>(rng.next_below(i));
        ops.push_back(Op::remove(base + j, base + j + 1));
        ops.push_back(Op::add(base + j, base + j + 1));
      }
    }
    ops.push_back(Op::connected(base, base + region_size - 1));
  }
  return program;
}

std::vector<BatchResult> replay_batched(DynamicConnectivity& dc,
                                        const std::vector<Op>& ops,
                                        std::size_t batch_size) {
  std::vector<BatchResult> out;
  for (std::size_t pos = 0; pos < ops.size(); pos += batch_size) {
    const std::size_t len = std::min(batch_size, ops.size() - pos);
    out.push_back(dc.apply_batch({&ops[pos], len}));
  }
  return out;
}

bool same_answers(const std::vector<BatchResult>& a,
                  const std::vector<BatchResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].values != b[i].values) return false;
  }
  return true;
}

}  // namespace

int main() {
  const Vertex kRegion = 2000;
  const unsigned kRegions = 4;
  const std::size_t kBatch = 128;
  const Vertex n = kRegion * kRegions;

  auto program = make_regional_programs(kRegion, kRegions, 31);
  std::size_t total = 0;
  for (const auto& p : program) total += p.size();
  std::printf("mixed program: %zu operations across %u regions, batch=%zu\n",
              total, kRegions, kBatch);

  // Sequential reference: any atomic-batch variant from the registry.
  const char* seq_name = nullptr;
  for (const VariantInfo& v : all_variants()) {
    if (v.caps.atomic_batch && !v.caps.combining) {
      seq_name = v.name;
      break;
    }
  }
  if (seq_name == nullptr) {
    std::fprintf(stderr, "no atomic-batch variant registered for the "
                         "sequential reference\n");
    return 1;
  }
  auto seq = make_variant(seq_name, n);
  std::vector<std::vector<BatchResult>> expected(kRegions);
  for (unsigned r = 0; r < kRegions; ++r) {
    expected[r] = replay_batched(*seq, program[r], kBatch);
  }

  // Parallel: one worker per region, all submitting batches to one
  // concurrent structure through apply_batch. Picked by capability, not by
  // name: prefer a family whose apply_batch is itself parallel inside
  // (internal_parallel — the pbd gang), otherwise the first native-batch
  // variant with lock-free reads, otherwise any native-batch one.
  const char* conc_name = nullptr;
  for (int pass = 0; pass < 3 && conc_name == nullptr; ++pass) {
    for (const VariantInfo& v : all_variants()) {
      if (!v.caps.native_batch) continue;
      if (pass == 0 && !v.caps.internal_parallel) continue;
      if (pass == 1 && !v.caps.lock_free_reads) continue;
      conc_name = v.name;
      break;
    }
  }
  if (conc_name == nullptr) {
    std::fprintf(stderr, "no native-batch variant registered\n");
    return 1;
  }
  auto conc = make_variant(conc_name, n);
  std::vector<std::vector<BatchResult>> got(kRegions);
  {
    std::vector<std::thread> workers;
    for (unsigned r = 0; r < kRegions; ++r) {
      workers.emplace_back(
          [&, r] { got[r] = replay_batched(*conc, program[r], kBatch); });
    }
    for (auto& t : workers) t.join();
  }

  std::size_t mismatches = 0;
  for (unsigned r = 0; r < kRegions; ++r) {
    if (!same_answers(got[r], expected[r])) ++mismatches;
  }
  std::printf("reference variant: %s   concurrent variant: %s\n", seq_name,
              conc->name().c_str());
  std::printf("per-region batch results match sequential replay: %s\n",
              mismatches == 0 ? "yes" : "NO");
  return mismatches == 0 ? 0 : 1;
}
