// Batch processing with a truly concurrent structure.
//
// Prior parallel approaches (Acar et al.'s batch-dynamic algorithm, the
// combining-based schemes) need operations grouped into same-type batches.
// The paper's point (§2): a *concurrent* structure subsumes them — hand each
// worker an arbitrary slice of a mixed batch and let them run. This example
// processes a mixed batch of adds/removes/queries that way and compares the
// answers with a sequential replay of the same batch.
#include <cstdio>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace condyn;

enum class Kind { kAdd, kRemove, kQuery };
struct Op {
  Kind kind;
  Vertex u, v;
};

// Mixed batch: build up a graph region by region, with queries sprinkled in.
// Ops in different regions are independent, so any interleaving of the
// per-region subsequences yields the same query answers — which is what
// makes the parallel replay comparable to the sequential one.
std::vector<std::vector<Op>> make_regional_batches(Vertex region_size,
                                                   unsigned regions,
                                                   uint64_t seed) {
  std::vector<std::vector<Op>> batches(regions);
  for (unsigned r = 0; r < regions; ++r) {
    Xoshiro256 rng(seed + r);
    const Vertex base = r * region_size;
    auto& ops = batches[r];
    for (Vertex i = 0; i + 1 < region_size; ++i) {
      ops.push_back({Kind::kAdd, base + i, base + i + 1});
      if (i % 7 == 0) {
        ops.push_back({Kind::kQuery, base,
                       base + static_cast<Vertex>(rng.next_below(i + 1))});
      }
      if (i % 11 == 3) {  // churn an already-built edge
        const Vertex j = static_cast<Vertex>(rng.next_below(i));
        ops.push_back({Kind::kRemove, base + j, base + j + 1});
        ops.push_back({Kind::kAdd, base + j, base + j + 1});
      }
    }
    ops.push_back({Kind::kQuery, base, base + region_size - 1});
  }
  return batches;
}

std::vector<bool> replay(DynamicConnectivity& dc, const std::vector<Op>& ops) {
  std::vector<bool> answers;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Kind::kAdd:
        dc.add_edge(op.u, op.v);
        break;
      case Kind::kRemove:
        dc.remove_edge(op.u, op.v);
        break;
      case Kind::kQuery:
        answers.push_back(dc.connected(op.u, op.v));
        break;
    }
  }
  return answers;
}

}  // namespace

int main() {
  const Vertex kRegion = 2000;
  const unsigned kRegions = 4;
  const Vertex n = kRegion * kRegions;

  auto batches = make_regional_batches(kRegion, kRegions, 31);
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  std::printf("mixed batch: %zu operations across %u regions\n", total,
              kRegions);

  // Sequential reference.
  auto seq = make_variant("coarse", n);
  std::vector<std::vector<bool>> expected(kRegions);
  for (unsigned r = 0; r < kRegions; ++r) expected[r] = replay(*seq, batches[r]);

  // Parallel: one worker per region slice, all on one concurrent structure.
  auto conc = make_variant("full", n);
  std::vector<std::vector<bool>> got(kRegions);
  {
    std::vector<std::thread> workers;
    for (unsigned r = 0; r < kRegions; ++r)
      workers.emplace_back([&, r] { got[r] = replay(*conc, batches[r]); });
    for (auto& t : workers) t.join();
  }

  std::size_t mismatches = 0;
  for (unsigned r = 0; r < kRegions; ++r) {
    if (got[r] != expected[r]) ++mismatches;
  }
  std::printf("per-region query answers match sequential replay: %s\n",
              mismatches == 0 ? "yes" : "NO");
  return mismatches == 0 ? 0 : 1;
}
