// Trace record / replay walkthrough: freeze a workload scenario into the
// binary trace format (graph/io.hpp), then replay the identical operation
// stream on two different algorithm variants and check they answer every
// operation the same way — the scenario engine's apples-to-apples tool.
//
// Exits non-zero on any disagreement, so CI runs it as a smoke check.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/factory.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/scenario.hpp"

int main() {
  using namespace condyn;

  const Graph g = gen::erdos_renyi(300, 900, /*seed=*/7);

  // 1. Pick a registered scenario and freeze it: the recorded trace contains
  //    the scenario's prefill plus 5000 stream ops as one linear program.
  const harness::ScenarioInfo* scenario = harness::find_scenario("zipfian");
  if (scenario == nullptr) {
    std::fprintf(stderr, "zipfian scenario missing from the registry\n");
    return 1;
  }
  harness::RunConfig cfg;
  cfg.threads = 1;
  cfg.read_percent = 60;
  cfg.seed = 2026;
  const io::Trace trace = harness::record_trace(*scenario, g, cfg, 5000);
  std::printf("recorded %zu ops of scenario \"%s\" (|V|=%u)\n",
              trace.ops.size(), scenario->name, trace.num_vertices);

  // 2. Round-trip through the on-disk format, as a cross-machine trace
  //    would. save_trace_file writes the compressed DCTR v2 wire format;
  //    --info-style stats show what delta+varint buys over v1's 9 bytes/op.
  const std::string path = "example_trace.bin";
  io::save_trace_file(trace, path);
  const io::TraceFileInfo info = io::trace_info_file(path);
  std::printf("saved as DCTR v%u: %.2f bytes/op (v1 would be 9.00)\n",
              info.version, info.bytes_per_op);
  const io::Trace loaded = io::load_trace_file(path);
  std::remove(path.c_str());
  if (!(loaded == trace)) {
    std::fprintf(stderr, "trace changed across save/load!\n");
    return 1;
  }

  // 3. Replay on two very different variants: the global-lock baseline and
  //    the paper's lock-free algorithm must agree on every single result.
  auto coarse = make_variant("coarse", trace.num_vertices);
  auto full = make_variant("full", trace.num_vertices);
  const auto a = harness::replay_trace(*coarse, loaded.ops);
  const auto b = harness::replay_trace(*full, loaded.ops);
  std::size_t queries = 0, agree = 0;
  for (std::size_t i = 0; i < loaded.ops.size(); ++i) {
    if (loaded.ops[i].kind != OpKind::kConnected) continue;
    ++queries;
    agree += a[i] == b[i];
  }
  std::printf("replayed on coarse and full: %zu/%zu queries agree\n", agree,
              queries);
  if (a != b) {
    std::fprintf(stderr, "variants disagreed on a replayed trace!\n");
    return 1;
  }

  // 4. Value queries replay identically too: synthesize a size-query-heavy
  //    mix (trace_convert --reads 70 --size-queries does the same), which
  //    upgrades the trace to DCTR v3, and compare the raw values — the
  //    representative is canonical (smallest member id), so even it must
  //    agree across variants.
  const io::Trace mixed = io::synthesize_reads(loaded, 70, true, 11);
  const std::string v3path = "example_trace_v3.bin";
  io::save_trace_file(mixed, v3path, io::preferred_format(mixed));
  const io::TraceFileInfo v3info = io::trace_info_file(v3path);
  std::remove(v3path.c_str());
  std::printf("synthesized 70%%-read mix: DCTR v%u, %llu size + %llu "
              "representative queries\n",
              v3info.version,
              static_cast<unsigned long long>(v3info.size_queries),
              static_cast<unsigned long long>(v3info.rep_queries));
  auto coarse2 = make_variant("coarse", mixed.num_vertices);
  auto full2 = make_variant("full", mixed.num_vertices);
  if (harness::replay_trace(*coarse2, mixed.ops) !=
      harness::replay_trace(*full2, mixed.ops)) {
    std::fprintf(stderr, "variants disagreed on value queries!\n");
    return 1;
  }
  std::printf("value-query replay agrees across variants\n");
  return 0;
}
