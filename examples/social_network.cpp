// Social-network scenario (the paper's motivating workload), reworked for
// the value-returning Query API v2: a heavy-tailed friendship graph serving
// a read-dominated mix while followers churn in the background.
//
// Instead of only asking the boolean "are these two users in the same
// community?", the serving threads now *shard by community*: every lookup
// routes a user to a shard keyed by representative(u) — the canonical,
// update-stable member id of u's component — and sizes caches by
// component_size(u). On the paper's design all three queries run lock-free,
// so the whole read side never blocks on the follower churn. The example
// reports per-query-kind throughput, the community histogram the
// representative sharding produced, and the measured lock-free share of the
// updates.
#include <atomic>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/stats.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace condyn;

  // An RMAT graph with Twitter-like degree skew: 4k users, 50k friendships.
  Graph g = gen::rmat(1 << 12, 50000, 0.57, 0.19, 0.19, /*seed=*/2026);
  g.name = "social";
  std::printf("social graph: %u users, %zu friendships, avg degree %.1f\n",
              g.num_vertices(), g.num_edges(), g.density());

  auto dc = make_variant("full", g.num_vertices());
  for (const Edge& e : g.edges()) dc->add_edge(e.u, e.v);

  const unsigned query_threads = 3;
  const unsigned churn_threads = 1;
  const int seconds_ms = 1000;
  constexpr unsigned kShards = 8;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> connected_q{0};
  std::atomic<uint64_t> size_q{0};
  std::atomic<uint64_t> rep_q{0};
  std::atomic<uint64_t> shard_hits[kShards] = {};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> nonblocking{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < query_threads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      uint64_t conn = 0, size = 0, rep = 0;
      uint64_t hits[kShards] = {};
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex a = static_cast<Vertex>(rng.next_below(g.num_vertices()));
        const Vertex b = static_cast<Vertex>(rng.next_below(g.num_vertices()));
        switch (rng.next_below(3)) {
          case 0:
            dc->connected(a, b);
            ++conn;
            break;
          case 1:
            // Capacity planning: how much cache does a's community need?
            dc->component_size(a);
            ++size;
            break;
          default: {
            // Shard routing: the canonical representative is stable between
            // updates of a's component, so it is a usable partition key.
            const Vertex r = dc->representative(a);
            ++hits[r % kShards];
            ++rep;
          }
        }
      }
      connected_q.fetch_add(conn);
      size_q.fetch_add(size);
      rep_q.fetch_add(rep);
      for (unsigned s = 0; s < kShards; ++s) shard_hits[s].fetch_add(hits[s]);
    });
  }
  for (unsigned t = 0; t < churn_threads; ++t) {
    threads.emplace_back([&, t] {
      op_stats::reset_local();
      Xoshiro256 rng(200 + t);
      uint64_t mine = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Edge& e = g.edges()[rng.next_below(g.num_edges())];
        const bool applied = rng.next_below(2) == 0
                                 ? dc->remove_edge(e.u, e.v)
                                 : dc->add_edge(e.u, e.v);
        if (applied) ++mine;
      }
      updates.fetch_add(mine);
      nonblocking.fetch_add(op_stats::local().nonblocking_updates);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(seconds_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::printf(
      "in %.1fs: %llu connected, %llu component_size, %llu representative "
      "queries (all lock-free), %llu applied updates\n",
      seconds_ms / 1000.0,
      static_cast<unsigned long long>(connected_q.load()),
      static_cast<unsigned long long>(size_q.load()),
      static_cast<unsigned long long>(rep_q.load()),
      static_cast<unsigned long long>(updates.load()));
  std::printf("updates completed without any lock: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(nonblocking.load()),
              updates.load() ? 100.0 * nonblocking.load() / updates.load()
                             : 0.0);

  // The sharding view: one giant community dominates an RMAT graph, so its
  // representative's shard absorbs most routed lookups — exactly what a
  // capacity planner needs to see before picking partition keys.
  std::printf("lookup routing by representative(u) %% %u:\n", kShards);
  for (unsigned s = 0; s < kShards; ++s) {
    std::printf("  shard %u: %llu lookups\n", s,
                static_cast<unsigned long long>(shard_hits[s].load()));
  }
  // Quiescent summary of the community structure behind that skew.
  std::map<Vertex, uint64_t> by_rep;
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++by_rep[dc->representative(v)];
  uint64_t largest = 0;
  Vertex largest_rep = 0;
  for (const auto& [rep, members] : by_rep) {
    if (members > largest) {
      largest = members;
      largest_rep = rep;
    }
  }
  std::printf("%zu communities at quiescence; largest holds %llu of %u users "
              "(component_size agrees: %llu)\n",
              by_rep.size(), static_cast<unsigned long long>(largest),
              g.num_vertices(),
              static_cast<unsigned long long>(
                  dc->component_size(largest_rep)));
  return 0;
}
