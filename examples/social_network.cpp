// Social-network scenario (the paper's motivating workload): a heavy-tailed
// friendship graph serving a read-dominated mix — "are these two users in
// the same community?" — while followers churn in the background.
//
// Demonstrates why the paper's design wins here: with ~99% connectivity
// queries running lock-free and ~95% of the updates touching non-spanning
// edges (dense graph!), almost nothing ever takes a lock. The example
// reports the measured lock-free share alongside the throughput.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "core/stats.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace condyn;

  // An RMAT graph with Twitter-like degree skew: 4k users, 50k friendships.
  Graph g = gen::rmat(1 << 12, 50000, 0.57, 0.19, 0.19, /*seed=*/2026);
  g.name = "social";
  std::printf("social graph: %u users, %zu friendships, avg degree %.1f\n",
              g.num_vertices(), g.num_edges(), g.density());

  auto dc = make_variant("full", g.num_vertices());
  for (const Edge& e : g.edges()) dc->add_edge(e.u, e.v);

  const unsigned query_threads = 3;
  const unsigned churn_threads = 1;
  const int seconds_ms = 1000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> updates{0};
  std::atomic<uint64_t> nonblocking{0};

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < query_threads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      uint64_t mine = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Vertex a = static_cast<Vertex>(rng.next_below(g.num_vertices()));
        const Vertex b = static_cast<Vertex>(rng.next_below(g.num_vertices()));
        dc->connected(a, b);
        ++mine;
      }
      queries.fetch_add(mine);
    });
  }
  for (unsigned t = 0; t < churn_threads; ++t) {
    threads.emplace_back([&, t] {
      op_stats::reset_local();
      Xoshiro256 rng(200 + t);
      uint64_t mine = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Edge& e = g.edges()[rng.next_below(g.num_edges())];
        const bool applied = rng.next_below(2) == 0
                                 ? dc->remove_edge(e.u, e.v)
                                 : dc->add_edge(e.u, e.v);
        if (applied) ++mine;
      }
      updates.fetch_add(mine);
      nonblocking.fetch_add(op_stats::local().nonblocking_updates);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(seconds_ms));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  std::printf("in %.1fs: %llu lock-free queries, %llu applied updates\n",
              seconds_ms / 1000.0,
              static_cast<unsigned long long>(queries.load()),
              static_cast<unsigned long long>(updates.load()));
  std::printf("updates completed without any lock: %llu (%.1f%%)\n",
              static_cast<unsigned long long>(nonblocking.load()),
              updates.load() ? 100.0 * nonblocking.load() / updates.load()
                             : 0.0);
  return 0;
}
