// Quickstart: the three-operation dynamic connectivity API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// `make_variant` constructs any of the 13 algorithm combinations evaluated
// in the paper; variant 9 ("full") is the headline algorithm — lock-free
// connectivity queries, lock-free non-spanning edge updates, fine-grained
// per-component locks for spanning updates.
#include <cstdio>

#include "api/factory.hpp"

int main() {
  using namespace condyn;

  const Vertex n = 10;
  auto dc = make_variant("full", n);

  // A path 0-1-2-3 and a separate triangle 7-8-9.
  dc->add_edge(0, 1);
  dc->add_edge(1, 2);
  dc->add_edge(2, 3);
  dc->add_edge(7, 8);
  dc->add_edge(8, 9);
  dc->add_edge(7, 9);

  std::printf("0 ~ 3? %s   (expect yes)\n", dc->connected(0, 3) ? "yes" : "no");
  std::printf("0 ~ 9? %s   (expect no)\n", dc->connected(0, 9) ? "yes" : "no");

  // Removing a bridge splits a component...
  dc->remove_edge(1, 2);
  std::printf("after removing 1-2:  0 ~ 3? %s   (expect no)\n",
              dc->connected(0, 3) ? "yes" : "no");

  // ...but removing a cycle edge does not: 7-9 is a non-spanning edge, and
  // with the "full" variant its removal never takes a lock.
  dc->remove_edge(7, 9);
  std::printf("after removing 7-9:  7 ~ 9? %s   (expect yes, via 8)\n",
              dc->connected(7, 9) ? "yes" : "no");

  // Re-adding the bridge reconnects.
  dc->add_edge(1, 2);
  std::printf("after re-adding 1-2: 0 ~ 3? %s   (expect yes)\n",
              dc->connected(0, 3) ? "yes" : "no");

  std::printf("\nAll 13 variants behind the same interface:\n");
  for (const VariantInfo& v : all_variants())
    std::printf("  %2d  %-20s %s\n", v.id, v.name, v.description);
  return 0;
}
