// Interactive driver: a small command-line REPL over the library, handy for
// exploring the structure's behaviour and for scripted integration checks.
//
// Usage:
//   ./build/examples/interactive [variant] [num_vertices]   (defaults: full 1024)
//
// Commands (one per line; '#' starts a comment):
//   add u v          insert edge
//   rm u v           erase edge
//   conn u v         print whether u and v are connected
//   load path        insert every edge of a SNAP/DIMACS file
//   stats            operation counters of this session
//   help             this text
//   quit
//
// Example session:
//   $ printf 'add 0 1\nadd 1 2\nconn 0 2\nrm 1 2\nconn 0 2\n' |
//       ./build/examples/interactive
//   conn 0 2 -> yes
//   conn 0 2 -> no
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "api/factory.hpp"
#include "core/stats.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace condyn;
  const std::string variant = argc > 1 ? argv[1] : "full";
  const Vertex n = argc > 2 ? static_cast<Vertex>(std::stoul(argv[2])) : 1024;

  std::unique_ptr<DynamicConnectivity> dc;
  try {
    dc = make_variant(variant, n);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "condyn interactive: variant=%s n=%u (help for help)\n",
               dc->name().c_str(), n);

  op_stats::reset_local();
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf(
          "add u v | rm u v | conn u v | load path | stats | quit\n");
      continue;
    }
    if (cmd == "stats") {
      const auto& c = op_stats::local();
      std::printf(
          "reads=%llu retries=%llu additions=%llu (non-spanning %llu) "
          "removals=%llu (non-spanning %llu) lock-free updates=%llu\n",
          (unsigned long long)c.reads, (unsigned long long)c.read_retries,
          (unsigned long long)c.additions,
          (unsigned long long)c.nonspanning_additions,
          (unsigned long long)c.removals,
          (unsigned long long)c.nonspanning_removals,
          (unsigned long long)c.nonblocking_updates);
      continue;
    }
    if (cmd == "load") {
      std::string path;
      in >> path;
      try {
        const Graph g = io::load_auto(path);
        if (g.num_vertices() > n) {
          std::printf("error: graph has %u vertices, structure holds %u\n",
                      g.num_vertices(), n);
          continue;
        }
        std::size_t added = 0;
        for (const Edge& e : g.edges())
          if (dc->add_edge(e.u, e.v)) ++added;
        std::printf("loaded %zu edges from %s\n", added, path.c_str());
      } catch (const std::exception& e) {
        std::printf("error: %s\n", e.what());
      }
      continue;
    }
    Vertex u = 0, v = 0;
    if (!(in >> u >> v) || u >= n || v >= n) {
      std::printf("error: expected two vertex ids < %u (got \"%s\")\n", n,
                  line.c_str());
      continue;
    }
    if (cmd == "add") {
      dc->add_edge(u, v);
    } else if (cmd == "rm") {
      dc->remove_edge(u, v);
    } else if (cmd == "conn") {
      std::printf("conn %u %u -> %s\n", u, v,
                  dc->connected(u, v) ? "yes" : "no");
    } else {
      std::printf("error: unknown command \"%s\"\n", cmd.c_str());
    }
  }
  return 0;
}
