// Network-monitoring scenario: a road-like (planar, sparse) communication
// topology where links fail and are repaired by field crews, while a
// monitoring plane continuously asks "can A still reach B?".
//
// Sparse planar graphs are the paper's *hard* case for fine-grained locking
// to shine (Table 3: almost every update touches the spanning forest) — yet
// they also fragment quickly under failures, which is exactly when
// per-component locks let repairs in different regions proceed in parallel.
// The example injects regional failures, reports reachability, then heals
// the network and verifies full connectivity returns.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/factory.hpp"
#include "graph/cc.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

int main() {
  using namespace condyn;

  Graph g = gen::road_like(10000, /*seed=*/7);
  std::printf("topology: %u nodes, %zu links (avg degree %.2f)\n",
              g.num_vertices(), g.num_edges(), g.density());

  auto dc = make_variant("full", g.num_vertices());
  for (const Edge& e : g.edges()) dc->add_edge(e.u, e.v);

  // hq and the farthest node of its own region (the generated topology,
  // like real road networks, has a giant component plus small fragments).
  const ComponentInfo initial_cc = connected_components(g);
  const Vertex hq = 0;
  Vertex far_site = hq;
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (initial_cc.label[v] == initial_cc.label[hq]) far_site = v;
  std::printf("initially: hq ~ far-site(%u)? %s\n", far_site,
              dc->connected(hq, far_site) ? "reachable" : "UNREACHABLE");

  // Phase 1 — regional failures: four crews' regions fail 12%% of their
  // links concurrently.
  const unsigned crews = 4;
  std::vector<std::vector<Edge>> failed(crews);
  {
    std::vector<std::thread> storm;
    for (unsigned c = 0; c < crews; ++c) {
      storm.emplace_back([&, c] {
        Xoshiro256 rng(40 + c);
        for (std::size_t i = c; i < g.num_edges(); i += crews) {
          if (rng.next_below(100) < 12) {
            const Edge& e = g.edges()[i];
            if (dc->remove_edge(e.u, e.v)) failed[c].push_back(e);
          }
        }
      });
    }
    for (auto& t : storm) t.join();
  }
  std::size_t down = 0;
  for (const auto& f : failed) down += f.size();
  std::printf("storm: %zu links down\n", down);

  // The monitoring plane keeps answering during repairs (lock-free reads).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> probes{0};
  std::thread monitor([&] {
    Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const Vertex a = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      const Vertex b = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      dc->connected(a, b);
      probes.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // Phase 2 — repair crews work their own regions in parallel; disjoint
  // components mean their spanning-forest updates rarely contend.
  {
    std::vector<std::thread> repair;
    for (unsigned c = 0; c < crews; ++c) {
      repair.emplace_back([&, c] {
        for (const Edge& e : failed[c]) dc->add_edge(e.u, e.v);
      });
    }
    for (auto& t : repair) t.join();
  }
  stop.store(true, std::memory_order_release);
  monitor.join();

  std::printf("repairs done; monitor answered %llu probes meanwhile\n",
              static_cast<unsigned long long>(probes.load()));
  std::printf("after repairs: hq ~ far-site? %s\n",
              dc->connected(hq, far_site) ? "reachable" : "UNREACHABLE");

  // Sanity: agreement with a static recomputation on a sample of pairs.
  const ComponentInfo cc = connected_components(g);
  Xoshiro256 rng(1);
  int checked = 0, agreed = 0;
  for (int i = 0; i < 1000; ++i) {
    const Vertex a = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    const Vertex b = static_cast<Vertex>(rng.next_below(g.num_vertices()));
    ++checked;
    if (dc->connected(a, b) == (cc.label[a] == cc.label[b])) ++agreed;
  }
  std::printf("oracle agreement on %d sampled pairs: %d\n", checked, agreed);
  return agreed == checked ? 0 : 1;
}
