// Streaming ingest + durability quickstart and crash harness (DESIGN.md §11).
//
// Three modes:
//
//   example_ingest_service demo
//       Self-contained walkthrough: producers push a random mix through the
//       group-commit IngestService (journal + mid-run snapshot), the process
//       state is then rebuilt from the durability files into a *fresh*
//       structure, and the recovered graph is verified against a DSU oracle
//       fed the same acknowledged update stream. Exit 0 = verified.
//
//   example_ingest_service serve <dir> [n] [snapshot_every]
//       Long-running ingest worker: journals every acknowledged update to
//       <dir>/journal.dcjl and auto-snapshots the live edge set to
//       <dir>/snapshot.dcsn every `snapshot_every` updates (atomic
//       tmp+rename). Runs until killed — the CI crash-recovery job SIGKILLs
//       it at a random point mid-ingest.
//
//   example_ingest_service recover <dir> [n]
//       Restart path: load snapshot (if one landed) + journal tail, rebuild
//       the graph, and verify components()/component_size/representative
//       against a DSU oracle replaying the same journal prefix. Exit 0 =
//       recovered state matches the oracle exactly.
//
// The serve/recover pair is the crash-safety contract: no matter where
// SIGKILL lands (mid-journal-append, mid-snapshot, between batches), recover
// must reconstruct exactly the acknowledged prefix — a torn journal tail is
// dropped, a half-written snapshot is invisible (tmp+rename).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/factory.hpp"
#include "graph/dsu.hpp"
#include "graph/generators.hpp"
#include "graph/snapshot.hpp"
#include "harness/workload.hpp"
#include "ingest/ingest.hpp"
#include "util/lock_stats.hpp"

using namespace condyn;

namespace {

constexpr Vertex kDefaultVertices = 4096;

Graph make_graph(Vertex n, uint64_t seed) {
  return gen::erdos_renyi(n, static_cast<std::size_t>(n) * 3, seed);
}

/// Rebuild a DSU oracle from the durable state: snapshot adds, then journal
/// records past the snapshot's applied_seq — the same replay recover() does,
/// against an independent implementation.
Dsu oracle_from_files(Vertex n, const std::string& snap_path,
                      const std::string& journal_path, uint64_t* out_seq) {
  // The DSU cannot remove edges, so replay the *edge set evolution* instead:
  // track live edges exactly like recovery does, then union the survivors.
  io::Snapshot snap;
  bool have_snap = false;
  {
    std::ifstream probe(snap_path, std::ios::binary);
    if (probe) {
      snap = io::load_snapshot(probe);
      have_snap = true;
    }
  }
  const io::JournalData j = io::load_journal_file(journal_path);
  std::unordered_set<uint64_t> live;
  uint64_t seq = 0;
  if (have_snap) {
    seq = snap.applied_seq;
    for (const Op& op : snap.edges.ops) live.insert(Edge(op.u, op.v).key());
  }
  for (const io::JournalRecord& rec : j.records) {
    if (rec.seq <= seq) continue;
    seq = rec.seq;
    const uint64_t key = Edge(rec.op.u, rec.op.v).key();
    if (rec.op.kind == OpKind::kAdd) {
      live.insert(key);
    } else {
      live.erase(key);
    }
  }
  Dsu dsu(n);
  for (const uint64_t key : live) {
    const Edge e = Edge::from_key(key);
    dsu.unite(e.u, e.v);
  }
  if (out_seq != nullptr) *out_seq = seq;
  return dsu;
}

/// Full-universe equality of a recovered structure against the oracle:
/// representative per vertex (covers connectivity and canonicalization),
/// spot-checked component sizes, and the components() label array.
bool verify_against_oracle(DynamicConnectivity& dc, Dsu& dsu) {
  const Vertex n = dc.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (dc.representative(v) != dsu.representative(v)) {
      std::fprintf(stderr, "MISMATCH: representative(%u) = %u, oracle %u\n",
                   v, dc.representative(v), dsu.representative(v));
      return false;
    }
  }
  for (Vertex v = 0; v < n; v += 97) {  // spot-check sizes on a stride
    if (dc.component_size(v) != dsu.component_size(v)) {
      std::fprintf(stderr, "MISMATCH: component_size(%u) = %llu, oracle %u\n",
                   v, static_cast<unsigned long long>(dc.component_size(v)),
                   dsu.component_size(v));
      return false;
    }
  }
  const ComponentsSnapshot labels = dc.components();
  for (Vertex v = 0; v < n; ++v) {
    if (labels.labels[v] != dsu.representative(v)) {
      std::fprintf(stderr, "MISMATCH: components()[%u] = %u, oracle %u\n", v,
                   labels.labels[v], dsu.representative(v));
      return false;
    }
  }
  if (labels.num_components() != dsu.num_components()) {
    std::fprintf(stderr, "MISMATCH: %zu components, oracle %u\n",
                 labels.num_components(), dsu.num_components());
    return false;
  }
  return true;
}

int run_demo() {
  const Vertex n = 2000;
  const Graph g = make_graph(n, 7);
  auto dc = make_variant("full", n);

  const std::string dir = "/tmp/condyn_ingest_demo";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  const std::string journal = dir + "/journal.dcjl";
  const std::string snapshot = dir + "/snapshot.dcsn";

  ingest::IngestOptions opts;
  opts.journal_path = journal;
  opts.max_batch = 128;
  opts.record_sojourn = true;
  {
    ingest::IngestService svc(*dc, opts);

    // Two producers push 20k ops each; a ticketed submit shows the
    // durability handshake (the ack arrives after the group commit).
    auto producer = [&](uint64_t seed) {
      harness::RandomOpStream stream(g, /*read_percent=*/20, seed);
      Op op;
      for (int i = 0; i < 20000 && stream.next(op); ++i) svc.submit(op);
    };
    std::thread p1(producer, 101), p2(producer, 202);
    p1.join();

    // Mid-ingest snapshot while producer 2 is still pushing.
    const uint64_t snap_seq = svc.snapshot_to(snapshot);
    std::printf("snapshot at applied_seq=%llu\n",
                static_cast<unsigned long long>(snap_seq));
    p2.join();

    ingest::Ticket ticket;
    svc.submit(Op::add(0, 1), &ticket);
    ticket.wait();
    std::printf("ticketed add(0,1) acked, durable, value=%llu\n",
                static_cast<unsigned long long>(
                    ticket.value.load(std::memory_order_relaxed)));
    svc.drain();
    const ingest::IngestStats st = svc.stats();
    std::printf("ingested %llu ops in %llu group commits "
                "(max fill %llu, %llu journal records)\n",
                static_cast<unsigned long long>(st.acked),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.max_batch_fill),
                static_cast<unsigned long long>(st.journal_records));
    const std::vector<uint32_t> sojourn = svc.take_sojourn_ns();
    if (!sojourn.empty()) {
      std::vector<uint32_t> s(sojourn);
      std::sort(s.begin(), s.end());
      std::printf("sojourn p50=%.1fus p99=%.1fus\n",
                  s[s.size() / 2] / 1e3, s[s.size() * 99 / 100] / 1e3);
    }
  }  // stop(): drains, final fsync, journal closed

  // --- restart: rebuild from durability files into a fresh structure ------
  auto dc2 = make_variant("full", n);
  const uint64_t t0 = lock_stats::now_ns();
  const ingest::RecoveryResult rec =
      ingest::recover_files(*dc2, snapshot, journal);
  const double recovery_ms = (lock_stats::now_ns() - t0) / 1e6;
  std::printf("recovered: %llu snapshot edges + %llu/%llu journal records "
              "replayed -> seq=%llu in %.2f ms%s\n",
              static_cast<unsigned long long>(rec.snapshot_edges),
              static_cast<unsigned long long>(rec.replayed),
              static_cast<unsigned long long>(rec.journal_records),
              static_cast<unsigned long long>(rec.applied_seq), recovery_ms,
              rec.truncated_tail ? " (torn tail dropped)" : "");

  uint64_t oracle_seq = 0;
  Dsu dsu = oracle_from_files(n, snapshot, journal, &oracle_seq);
  if (!verify_against_oracle(*dc2, dsu)) return 1;
  std::printf("verified: recovered graph matches DSU oracle at seq=%llu\n",
              static_cast<unsigned long long>(oracle_seq));
  return 0;
}

int run_serve(const std::string& dir, Vertex n, uint64_t snapshot_every) {
  std::system(("mkdir -p " + dir).c_str());
  const Graph g = make_graph(n, 7);
  auto dc = make_variant("full", n);

  ingest::IngestOptions opts = ingest::env_options();
  opts.journal_path = dir + "/journal.dcjl";
  opts.snapshot_path = dir + "/snapshot.dcsn";
  opts.snapshot_every = snapshot_every;
  // Attaching to a previous run's journal (restart after recovery): seed
  // the live-edge set so snapshots stay complete.
  {
    std::ifstream probe(opts.journal_path, std::ios::binary);
    if (probe.good()) {
      auto tmp = make_variant("coarse", n);
      const ingest::RecoveryResult rec = ingest::recover_files(
          *tmp, opts.snapshot_path, opts.journal_path);
      opts.initial_edges = rec.live_edges;
      // Rebuild the serving structure from the same state.
      for (const Edge& e : rec.live_edges) dc->add_edge(e.u, e.v);
      std::printf("resumed from seq=%llu (%zu live edges)\n",
                  static_cast<unsigned long long>(rec.applied_seq),
                  rec.live_edges.size());
    }
  }
  ingest::IngestService svc(*dc, opts);

  std::printf("serving: journal=%s snapshot_every=%llu updates; "
              "kill -9 me any time\n",
              opts.journal_path.c_str(),
              static_cast<unsigned long long>(snapshot_every));
  std::fflush(stdout);

  const unsigned threads = 2;
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      harness::RandomOpStream stream(g, /*read_percent=*/20,
                                     0x9e37ull + t);
      Op op;
      // Effectively forever — the harness kills the process.
      for (uint64_t i = 0; i < ~uint64_t{0}; ++i) {
        if (!stream.next(op)) break;
        svc.submit(op);
      }
    });
  }
  for (auto& p : producers) p.join();
  return 0;
}

int run_recover(const std::string& dir, Vertex n) {
  const std::string journal = dir + "/journal.dcjl";
  const std::string snapshot = dir + "/snapshot.dcsn";

  // Size the structure from the durable files themselves when possible —
  // the restarted process must not depend on in-memory state of the dead
  // one.
  {
    const io::JournalData j = io::load_journal_file(journal);
    if (j.num_vertices > 0) n = j.num_vertices;
  }

  auto dc = make_variant("full", n);
  const uint64_t t0 = lock_stats::now_ns();
  const ingest::RecoveryResult rec = ingest::recover_files(*dc, snapshot, journal);
  const double recovery_ms = (lock_stats::now_ns() - t0) / 1e6;

  std::printf("recovered: snapshot_edges=%llu journal_records=%llu "
              "replayed=%llu seq=%llu torn_tail=%d recovery_ms=%.2f\n",
              static_cast<unsigned long long>(rec.snapshot_edges),
              static_cast<unsigned long long>(rec.journal_records),
              static_cast<unsigned long long>(rec.replayed),
              static_cast<unsigned long long>(rec.applied_seq),
              rec.truncated_tail ? 1 : 0, recovery_ms);

  Dsu dsu = oracle_from_files(n, snapshot, journal, nullptr);
  if (!verify_against_oracle(*dc, dsu)) {
    std::fprintf(stderr, "FAIL: recovered graph does not match the oracle\n");
    return 1;
  }
  std::printf("verified: recovered graph matches DSU oracle (%u components, "
              "%zu live edges)\n",
              dsu.num_components(), rec.live_edges.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "demo";
  if (mode == "demo") return run_demo();
  if (mode == "serve" && argc > 2) {
    const Vertex n =
        argc > 3 ? static_cast<Vertex>(std::strtoul(argv[3], nullptr, 10))
                 : kDefaultVertices;
    const uint64_t every =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 50000;
    return run_serve(argv[2], n, every);
  }
  if (mode == "recover" && argc > 2) {
    const Vertex n =
        argc > 3 ? static_cast<Vertex>(std::strtoul(argv[3], nullptr, 10))
                 : kDefaultVertices;
    return run_recover(argv[2], n);
  }
  std::fprintf(stderr,
               "usage: %s demo | serve <dir> [n] [snapshot_every] | "
               "recover <dir> [n]\n",
               argv[0]);
  return 2;
}
