// Batch pipeline sweep: batch sizes × variants on the random scenario
// (80% reads). For every variant the per-op driver (run_random) is the
// baseline row; each batch size then submits the same operation mix through
// apply_batch (run_batch), reporting throughput and per-batch latency. The
// expectation (De Man et al. 2024, and this repo's DESIGN.md §5): variants
// that amortize a lock or a combiner publication over the batch overtake
// their own per-op throughput as the batch grows.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("batch sweep: random scenario, 80% reads");

  const harness::EnvConfig env = harness::env_config();
  const std::vector<int> variants =
      bench::variant_set(env, {1, 3, 6, 9, 12, 13});

  harness::TableReport table(
      "batched vs per-op throughput",
      {"graph", "variant", "threads", "batch", "ops/ms", "batch-avg-us",
       "batch-max-us"});

  for (const Graph& g : bench::small_graphs(env)) {
    for (int id : variants) {
      for (unsigned threads : env.thread_counts) {
        harness::RunConfig cfg;
        cfg.threads = threads;
        cfg.read_percent = 80;
        cfg.seed = env.seed;
        cfg.warmup_ms = env.warmup_ms;
        cfg.measure_ms = env.measure_ms;

        auto baseline_dc = make_variant(id, g.num_vertices());
        const harness::RunResult base =
            harness::run_random(*baseline_dc, g, cfg);
        table.add_row({g.name, bench::variant_label(id),
                       std::to_string(threads), "per-op",
                       harness::TableReport::num(base.ops_per_ms), "-", "-"});

        for (std::size_t bs : env.batch_sizes) {
          cfg.batch_size = bs;
          auto dc = make_variant(id, g.num_vertices());
          const harness::RunResult r = harness::run_batch(*dc, g, cfg);
          table.add_row(
              {g.name, bench::variant_label(id), std::to_string(threads),
               std::to_string(bs), harness::TableReport::num(r.ops_per_ms),
               harness::TableReport::num(r.batch_latency_us_avg),
               harness::TableReport::num(r.batch_latency_us_max)});
        }
      }
    }
  }
  table.print();
  return 0;
}
