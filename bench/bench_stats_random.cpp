// E9 / Table 3: random-scenario statistics on the sequential workload —
// rates of non-spanning additions/removals and the largest connected
// component (share of |V|). Dense graphs must show >90% non-spanning
// additions; road/sparse graphs near zero (the premise behind §4.4).
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Table 3: random scenario statistics");
  const auto env = harness::env_config();
  harness::TableReport table(
      "Random scenario statistics (sequential workload)",
      {"graph", "% non-span. additions", "% non-span. removals",
       "largest component, %"});

  for (const Graph& g : bench::small_graphs(env)) {
    auto dc = make_variant(9, g.num_vertices());
    harness::RunConfig cfg;
    cfg.threads = 1;
    cfg.read_percent = 0;  // updates only: add/remove 50/50
    cfg.seed = env.seed;
    cfg.warmup_ms = 0;
    cfg.measure_ms = env.measure_ms;
    const harness::RunResult r = harness::run_random(*dc, g, cfg);
    const auto& c = r.op_counters;
    const double add_pct =
        c.additions ? 100.0 * c.nonspanning_additions / c.additions : 0;
    const double rem_pct =
        c.removals ? 100.0 * c.nonspanning_removals / c.removals : 0;
    // Largest component of the steady state (half the graph present).
    const ComponentInfo cc = connected_components(
        g.num_vertices(), harness::random_half(g, env.seed));
    const double largest = 100.0 * cc.largest_component / g.num_vertices();
    table.add_row({g.name, harness::TableReport::pct(add_pct),
                   harness::TableReport::pct(rem_pct),
                   harness::TableReport::pct(largest)});
  }
  table.print();
  return 0;
}
