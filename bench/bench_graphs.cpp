// E11 / Tables 1-2: the benchmark graph inventory. Prints |V|, |E|, average
// degree, component structure and degree skew of every stand-in so the
// substitution claims of DESIGN.md §2 (matching density and component
// structure) are checkable at a glance.
#include <algorithm>

#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Tables 1-2: benchmark graphs");
  const auto env = harness::env_config();
  harness::TableReport table(
      "Benchmark graphs",
      {"graph", "|V|", "|E|", "avg deg", "components", "largest %",
       "max deg"});

  auto add = [&](const Graph& g) {
    const ComponentInfo cc = connected_components(g);
    std::vector<std::size_t> deg(g.num_vertices(), 0);
    for (const Edge& e : g.edges()) {
      ++deg[e.u];
      ++deg[e.v];
    }
    const std::size_t dmax =
        deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
    table.add_row(
        {g.name, std::to_string(g.num_vertices()),
         std::to_string(g.num_edges()), harness::TableReport::num(g.density()),
         std::to_string(cc.num_components),
         harness::TableReport::pct(100.0 * cc.largest_component /
                                   g.num_vertices()),
         std::to_string(dmax)});
  };

  for (const Graph& g : bench::small_graphs(env)) add(g);
  for (const Graph& g : bench::large_graphs(env)) add(g);
  table.print();
  return 0;
}
