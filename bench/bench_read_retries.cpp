// E12 / §5.3 "Lock-Free Reads": measures how many lock-free connectivity
// checks succeed on their first attempt. The paper reports >99.99%, making
// the reads "practically wait-free"; this bench verifies the same holds
// here under maximum update pressure.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Read retry rate (paper: >99.99% first-try)");
  const auto env = harness::env_config();
  harness::TableReport table(
      "Lock-free read retries, random scenario, max threads",
      {"graph", "read %", "reads", "retries", "first-try %"});

  const unsigned threads = env.thread_counts.back();
  for (const Graph& g : bench::small_graphs(env)) {
    for (int read_pct : {80, 99}) {
      auto dc = make_variant(9, g.num_vertices());
      harness::RunConfig cfg;
      cfg.threads = threads;
      cfg.read_percent = read_pct;
      cfg.seed = env.seed;
      cfg.warmup_ms = env.warmup_ms;
      cfg.measure_ms = env.measure_ms;
      const harness::RunResult r = harness::run_random(*dc, g, cfg);
      const auto& c = r.op_counters;
      const double first_try =
          c.reads ? 100.0 * (1.0 - static_cast<double>(c.read_retries) /
                                       static_cast<double>(c.reads))
                  : 100.0;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", first_try);
      table.add_row({g.name, std::to_string(read_pct),
                     std::to_string(c.reads), std::to_string(c.read_retries),
                     buf});
    }
  }
  table.print();
  return 0;
}
