// E2 / Figure 6: random-subset scenario, 99% connectivity checks, 0.5%
// additions, 0.5% removals — the read-dominated regime where the paper
// reports up to 30x over coarse-grained locking.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 6: random scenario, 99% reads");
  const auto env = harness::env_config();
  bench::run_figure(
      "Random scenario, 99% reads", "ops/ms", harness::Scenario::kRandom, 99,
      bench::variant_set(env, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}),
      [](const harness::RunResult& r) { return r.ops_per_ms; });
  return 0;
}
