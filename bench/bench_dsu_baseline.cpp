// Related-work ablation (§2): for the *incremental-only* problem, plain
// union-find is the unbeatable specialist — this bench quantifies what the
// fully-dynamic structures pay for supporting deletions, by running the
// incremental scenario against a lock-protected DSU reference.
//
// (The DSU cannot express remove_edge at all; that asymmetry *is* the
// point: dynamic connectivity's polylog machinery buys deletions.)
#include <mutex>

#include "bench_common.hpp"
#include "graph/dsu.hpp"
#include "util/spinlock.hpp"

namespace {

using namespace condyn;

/// Minimal DynamicConnectivity facade over union-find: additions and
/// queries only; removals abort (never issued by the incremental driver).
class DsuDc final : public DynamicConnectivity {
 public:
  explicit DsuDc(Vertex n) : dsu_(n) {}

  bool add_edge(Vertex u, Vertex v) override {
    std::lock_guard<SpinLock> lk(mu_);
    return dsu_.unite(u, v);
  }
  bool remove_edge(Vertex, Vertex) override {
    std::abort();  // incremental-only structure
  }
  bool connected(Vertex u, Vertex v) override {
    std::lock_guard<SpinLock> lk(mu_);
    return dsu_.connected(u, v);
  }
  Vertex num_vertices() const override { return dsu_.num_vertices(); }
  std::string name() const override { return "dsu (incremental-only)"; }

 private:
  Dsu dsu_;
  SpinLock mu_;
};

}  // namespace

int main() {
  using namespace condyn;
  bench::print_env_banner(
      "Incremental-only baseline: union-find vs dynamic connectivity");
  const auto env = harness::env_config();
  harness::SeriesReport report(
      "Incremental scenario: DSU baseline vs fully-dynamic variants",
      "ops/ms", env.thread_counts);

  for (const Graph& g : bench::small_graphs(env)) {
    report.begin_graph(g.name + "  |V|=" + std::to_string(g.num_vertices()) +
                       " |E|=" + std::to_string(g.num_edges()));
    for (unsigned threads : env.thread_counts) {
      harness::RunConfig cfg;
      cfg.threads = threads;
      cfg.seed = env.seed;
      {
        DsuDc dsu(g.num_vertices());
        const auto r = harness::run_incremental(dsu, g, cfg);
        report.add_point("dsu (incremental-only)", threads, r.ops_per_ms);
      }
      for (int id : bench::variant_set(env, {1, 9, 13})) {
        auto dc = make_variant(id, g.num_vertices());
        const auto r = harness::run_incremental(*dc, g, cfg);
        report.add_point(bench::variant_label(id), threads, r.ops_per_ms);
      }
    }
  }
  report.print();
  return 0;
}
