// E8 / Figure 12: active-time rate in the decremental scenario.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 12: active time, decremental");
  const auto env = harness::env_config();
  bench::run_figure("Active time, decremental scenario", "active %",
                    harness::Scenario::kDecremental, 0,
                    bench::variant_set(env, {1, 6, 9, 10}),
                    [](const harness::RunResult& r) {
                      return r.active_time_percent;
                    });
  return 0;
}
