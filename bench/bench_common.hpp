#pragma once

// Shared scaffolding for the per-figure / per-table benchmark binaries.
// Every binary honors the DC_BENCH_* environment knobs (see
// harness::RunConfig): by default graphs are scaled-down stand-ins sized for
// a laptop; DC_BENCH_FULL=1 selects paper-sized graphs and all variants.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "graph/cc.hpp"
#include "graph/generators.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/workload.hpp"

namespace condyn::bench {

inline std::vector<Graph> small_graphs(const harness::EnvConfig& env) {
  std::vector<Graph> out;
  for (const auto& p : gen::small_graph_presets())
    out.push_back(p.make(env.full ? 1.0 : env.scale, env.seed));
  return out;
}

inline std::vector<Graph> large_graphs(const harness::EnvConfig& env) {
  std::vector<Graph> out;
  if (!env.full) return out;  // paper-size only; hours on a laptop otherwise
  for (const auto& p : gen::large_graph_presets())
    out.push_back(p.make(1.0, env.seed));
  return out;
}

inline std::vector<int> variant_set(const harness::EnvConfig& env,
                                    std::vector<int> defaults) {
  return env.variants.empty() ? std::move(defaults) : env.variants;
}

inline const char* variant_label(int id) {
  const VariantInfo* v = find_variant(id);
  return v != nullptr ? v->name : "?";
}

/// One throughput figure: scenario × graphs × variants × thread counts,
/// printed as the paper's per-graph series. `value_of` picks the reported
/// metric (throughput or active-time%).
template <typename ValueFn>
void run_figure(const std::string& title, const std::string& unit,
                harness::Scenario scenario, int read_percent,
                const std::vector<int>& variants, ValueFn&& value_of) {
  const harness::EnvConfig env = harness::env_config();
  harness::SeriesReport report(title, unit, env.thread_counts);

  auto run_graph = [&](const Graph& g, bool sweep_threads) {
    report.begin_graph(g.name + "  |V|=" + std::to_string(g.num_vertices()) +
                       " |E|=" + std::to_string(g.num_edges()));
    for (int id : variants) {
      for (unsigned threads : env.thread_counts) {
        if (!sweep_threads && threads != env.thread_counts.back()) continue;
        auto dc = make_variant(id, g.num_vertices());
        harness::RunConfig cfg;
        cfg.threads = threads;
        cfg.read_percent = read_percent;
        cfg.seed = env.seed;
        cfg.warmup_ms = env.warmup_ms;
        cfg.measure_ms = env.measure_ms;
        const harness::RunResult r =
            harness::run_scenario(scenario, *dc, g, cfg);
        report.add_point(variant_label(id), threads, value_of(r));
      }
    }
  };

  for (const Graph& g : small_graphs(env)) run_graph(g, true);
  // Large graphs (Table 2): maximum thread count only, like the paper.
  for (const Graph& g : large_graphs(env)) run_graph(g, false);
  report.print();
}

inline void print_env_banner(const char* what) {
  const harness::EnvConfig env = harness::env_config();
  std::printf(
      "# %s\n# scale=%.3f seed=%llu warmup=%dms measure=%dms full=%d\n"
      "# (env knobs: DC_BENCH_SCALE/SEED/WARMUP/MILLIS/THREADS/VARIANTS/"
      "BATCH/FULL)\n\n",
      what, env.full ? 1.0 : env.scale,
      static_cast<unsigned long long>(env.seed), env.warmup_ms,
      env.measure_ms, env.full ? 1 : 0);
}

}  // namespace condyn::bench
