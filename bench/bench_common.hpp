#pragma once

// Shared scaffolding for the benchmark binaries (bench_suite plus the
// google-benchmark micro benches). Every binary honors the DC_BENCH_*
// environment knobs (see harness::env_config): by default graphs are
// scaled-down stand-ins sized for a laptop; DC_BENCH_FULL=1 selects
// paper-sized graphs and all variants.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/factory.hpp"
#include "graph/cc.hpp"
#include "graph/generators.hpp"
#include "harness/driver.hpp"
#include "harness/report.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"

namespace condyn::bench {

inline std::vector<Graph> small_graphs(const harness::EnvConfig& env) {
  std::vector<Graph> out;
  for (const auto& p : gen::small_graph_presets())
    out.push_back(p.make(env.full ? 1.0 : env.scale, env.seed));
  return out;
}

inline std::vector<Graph> large_graphs(const harness::EnvConfig& env) {
  std::vector<Graph> out;
  if (!env.full) return out;  // paper-size only; hours on a laptop otherwise
  for (const auto& p : gen::large_graph_presets())
    out.push_back(p.make(1.0, env.seed));
  return out;
}

inline std::vector<int> variant_set(const harness::EnvConfig& env,
                                    std::vector<int> defaults) {
  return env.variants.empty() ? std::move(defaults) : env.variants;
}

/// Every registered variant id, in registry (= paper) order.
inline std::vector<int> all_variant_ids() {
  std::vector<int> ids;
  for (const VariantInfo& v : all_variants()) ids.push_back(v.id);
  return ids;
}

inline const char* variant_label(int id) {
  const VariantInfo* v = find_variant(id);
  return v != nullptr ? v->name : "?";
}

inline std::string graph_label(const Graph& g) {
  return g.name + "  |V|=" + std::to_string(g.num_vertices()) +
         " |E|=" + std::to_string(g.num_edges());
}

inline void print_env_banner(const char* what) {
  const harness::EnvConfig env = harness::env_config();
  std::printf(
      "# %s\n# scale=%.3f seed=%llu warmup=%dms measure=%dms full=%d\n"
      "# (env knobs: DC_BENCH_SCALE/SEED/WARMUP/MILLIS/THREADS/VARIANTS/"
      "SCENARIOS/READS/BATCH/TRACE/FULL)\n\n",
      what, env.full ? 1.0 : env.scale,
      static_cast<unsigned long long>(env.seed), env.warmup_ms,
      env.measure_ms, env.full ? 1 : 0);
}

}  // namespace condyn::bench
