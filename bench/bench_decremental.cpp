// E6 / Figure 10: decremental scenario — threads erase every edge from a
// structure pre-filled with the whole graph (replacement-search heavy).
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 10: decremental scenario");
  const auto env = harness::env_config();
  bench::run_figure(
      "Decremental scenario", "ops/ms", harness::Scenario::kDecremental, 0,
      bench::variant_set(env, {1, 4, 6, 9, 10, 11, 13}),
      [](const harness::RunResult& r) { return r.ops_per_ms; });
  return 0;
}
