// E3 / Figure 7: active-time rate (share of wall time not spent waiting for
// locks) in the random scenario with 80% reads. Variants as in the paper's
// figure: (1)(3)(6)(8)(9)(10). 100% is best.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 7: active time, random 80% reads");
  const auto env = harness::env_config();
  bench::run_figure("Active time, random scenario 80% reads", "active %",
                    harness::Scenario::kRandom, 80,
                    bench::variant_set(env, {1, 3, 6, 8, 9, 10}),
                    [](const harness::RunResult& r) {
                      return r.active_time_percent;
                    });
  return 0;
}
