// §3 complexity ablation: the Cartesian tree gives *expected* O(log N)
// bounds ("the main issue with the Cartesian trees is that their time
// complexity is expected due to randomization" — the motivation for the
// paper's B-tree discussion). This bench quantifies the practical gap:
// the distribution of find_root ascent lengths — the exact cost of the
// lock-free read path — against log2 of the component size, across sizes
// and shapes.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <cstdio>
#include <vector>

#include "core/ett.hpp"
#include "graph/generators.hpp"
#include "harness/report.hpp"
#include "util/random.hpp"

namespace {

using namespace condyn;

std::size_t ascent_length(const ett::Node* n) {
  std::size_t hops = 0;
  for (const ett::Node* cur = n;
       cur->parent.load(std::memory_order_relaxed) != nullptr;
       cur = cur->parent.load(std::memory_order_relaxed)) {
    ++hops;
  }
  return hops;
}

void measure(const char* shape, ett::Forest& f, Vertex n,
             harness::TableReport& table) {
  std::vector<std::size_t> depths;
  depths.reserve(n);
  for (Vertex v = 0; v < n; ++v)
    depths.push_back(ascent_length(f.vertex_node(v)));
  std::sort(depths.begin(), depths.end());
  const double avg =
      static_cast<double>(
          std::accumulate(depths.begin(), depths.end(), std::size_t{0})) /
      depths.size();
  const double lg = std::log2(static_cast<double>(n));
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.2f", avg / lg);
  table.add_row({shape, std::to_string(n), harness::TableReport::num(avg),
                 std::to_string(depths[depths.size() / 2]),
                 std::to_string(depths[depths.size() * 99 / 100]),
                 std::to_string(depths.back()),
                 harness::TableReport::num(lg), ratio});
}

}  // namespace

int main() {
  using namespace condyn;
  std::printf(
      "# Treap depth ablation (§3): find_root ascent length vs log2(n).\n"
      "# Expected-case randomized balance is what the B-tree alternative\n"
      "# would make deterministic; the avg/log2 ratio shows the constant.\n\n");
  harness::TableReport table(
      "find_root ascent length (tour-node hops to the root)",
      {"shape", "n", "avg", "p50", "p99", "max", "log2(n)", "avg/log2"});

  for (Vertex n : {Vertex{1} << 10, Vertex{1} << 14, Vertex{1} << 17}) {
    {
      ett::Forest f(n);  // path: the adversarial insertion order
      for (Vertex i = 0; i + 1 < n; ++i) f.link(i, i + 1);
      measure("path", f, n, table);
    }
    {
      ett::Forest f(n);  // star: max-degree hub
      for (Vertex i = 1; i < n; ++i) f.link(0, i);
      measure("star", f, n, table);
    }
    {
      ett::Forest f(n);  // random spanning tree
      Xoshiro256 rng(5);
      for (Vertex i = 1; i < n; ++i)
        f.link(static_cast<Vertex>(rng.next_below(i)), i);
      measure("random-tree", f, n, table);
    }
  }
  table.print();
  return 0;
}
