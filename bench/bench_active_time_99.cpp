// E4 / Figure 8: active-time rate, random scenario with 99% reads.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 8: active time, random 99% reads");
  const auto env = harness::env_config();
  bench::run_figure("Active time, random scenario 99% reads", "active %",
                    harness::Scenario::kRandom, 99,
                    bench::variant_set(env, {1, 3, 6, 8, 9, 10}),
                    [](const harness::RunResult& r) {
                      return r.active_time_percent;
                    });
  return 0;
}
