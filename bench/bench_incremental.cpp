// E5 / Figure 9: incremental scenario — threads insert the whole graph into
// an initially empty structure. Variants as in the paper's figure.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 9: incremental scenario");
  const auto env = harness::env_config();
  bench::run_figure(
      "Incremental scenario", "ops/ms", harness::Scenario::kIncremental, 0,
      bench::variant_set(env, {1, 4, 6, 9, 10, 11, 13}),
      [](const harness::RunResult& r) { return r.ops_per_ms; });
  return 0;
}
