// E7 / Figure 11: active-time rate in the incremental scenario.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 11: active time, incremental");
  const auto env = harness::env_config();
  bench::run_figure("Active time, incremental scenario", "active %",
                    harness::Scenario::kIncremental, 0,
                    bench::variant_set(env, {1, 6, 9, 10}),
                    [](const harness::RunResult& r) {
                      return r.active_time_percent;
                    });
  return 0;
}
