// E13: google-benchmark micro-benchmarks of the single-writer ETT — the
// latency of the primitives everything else is built from: find_root ascent,
// lock-free connected (Listing 1), link (Fig. 2 atomic merge), cut (Fig. 3
// atomic split), and the add/remove/query path of the full structure.
#include <benchmark/benchmark.h>

#include <memory>

#include "api/factory.hpp"
#include "core/ett.hpp"
#include "core/hdt.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace {

using namespace condyn;

void BM_EttLinkCut(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  ett::Forest f(n);
  for (Vertex i = 0; i + 1 < n; ++i) f.link(i, i + 1);  // path
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const Vertex i = static_cast<Vertex>(rng.next_below(n - 1));
    f.cut(i, i + 1);
    f.link(i, i + 1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EttLinkCut)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EttConnectedSameTree(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  ett::Forest f(n);
  for (Vertex i = 0; i + 1 < n; ++i) f.link(i, i + 1);
  Xoshiro256 rng(2);
  for (auto _ : state) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n));
    const Vertex b = static_cast<Vertex>(rng.next_below(n));
    benchmark::DoNotOptimize(f.connected(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EttConnectedSameTree)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_EttConnectedCrossTree(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  ett::Forest f(n);
  // Two halves, never connected: the query's negative path (5 find_roots).
  for (Vertex i = 0; i + 1 < n / 2; ++i) f.link(i, i + 1);
  for (Vertex i = n / 2; i + 1 < n; ++i) f.link(i, i + 1);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    const Vertex a = static_cast<Vertex>(rng.next_below(n / 2));
    const Vertex b = n / 2 + static_cast<Vertex>(rng.next_below(n / 2));
    benchmark::DoNotOptimize(f.connected(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EttConnectedCrossTree)->Arg(1 << 14);

void BM_HdtUpdateChurn(benchmark::State& state) {
  // Sequential HDT add/remove churn on an Erdős–Rényi graph: the writer-side
  // cost the lock-based variants pay per update.
  const Vertex n = static_cast<Vertex>(state.range(0));
  Graph g = gen::erdos_renyi(n, 4 * static_cast<std::size_t>(n), 7);
  Hdt dc(n);
  for (const Edge& e : g.edges()) dc.add_edge(e.u, e.v);
  Xoshiro256 rng(4);
  const auto& edges = g.edges();
  for (auto _ : state) {
    const Edge& e = edges[rng.next_below(edges.size())];
    dc.remove_edge(e.u, e.v);
    dc.add_edge(e.u, e.v);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_HdtUpdateChurn)->Arg(1 << 10)->Arg(1 << 14);

void BM_VariantSingleThreadMix(benchmark::State& state) {
  // Single-threaded 80%-read mix per variant: the baseline cost before any
  // scaling effect (the paper notes non-blocking reads are not slower
  // single-threaded).
  const int id = static_cast<int>(state.range(0));
  const Vertex n = 1 << 12;
  Graph g = gen::erdos_renyi(n, 3 * static_cast<std::size_t>(n), 11);
  auto dc = make_variant(id, n);
  for (std::size_t i = 0; i < g.edges().size() / 2; ++i)
    dc->add_edge(g.edges()[i].u, g.edges()[i].v);
  Xoshiro256 rng(5);
  const auto& edges = g.edges();
  for (auto _ : state) {
    const Edge& e = edges[rng.next_below(edges.size())];
    const uint64_t roll = rng.next_below(100);
    if (roll < 80) {
      benchmark::DoNotOptimize(dc->connected(e.u, e.v));
    } else if (roll % 2 == 0) {
      dc->add_edge(e.u, e.v);
    } else {
      dc->remove_edge(e.u, e.v);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(condyn::all_variants()[id - 1].name);
}
BENCHMARK(BM_VariantSingleThreadMix)->DenseRange(1, 13);

}  // namespace

BENCHMARK_MAIN();
