// E14 / §5.2 "Sampling" ablation: the Iyer-et-al. random-sampling fast path
// in the replacement search, on vs off, in the replacement-heavy decremental
// scenario. The paper argues sampling matters even more concurrently since
// it shortens the lock-holding time of spanning removals.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Sampling ablation (decremental scenario)");
  const auto env = harness::env_config();
  harness::TableReport table(
      "Replacement sampling ablation, decremental scenario",
      {"graph", "variant", "threads", "ops/ms (sampling)", "ops/ms (off)",
       "speedup"});

  const unsigned threads = env.thread_counts.back();
  for (const Graph& g : bench::small_graphs(env)) {
    for (int id : bench::variant_set(env, {1, 9})) {
      double with_s = 0, without_s = 0;
      for (bool sampling : {true, false}) {
        auto dc = make_variant(id, g.num_vertices(), sampling);
        harness::RunConfig cfg;
        cfg.threads = threads;
        cfg.seed = env.seed;
        const harness::RunResult r = harness::run_decremental(*dc, g, cfg);
        (sampling ? with_s : without_s) = r.ops_per_ms;
      }
      table.add_row({g.name, bench::variant_label(id),
                     std::to_string(threads),
                     harness::TableReport::num(with_s),
                     harness::TableReport::num(without_s),
                     harness::TableReport::num(
                         without_s > 0 ? with_s / without_s : 0)});
    }
  }
  table.print();
  return 0;
}
