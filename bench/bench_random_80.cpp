// E1 / Figure 5: random-subset scenario, 80% connectivity checks, 10% edge
// additions, 10% edge removals. All 13 variants; small graphs swept over
// thread counts, large graphs (DC_BENCH_FULL=1) at maximum parallelism.
#include "bench_common.hpp"

int main() {
  using namespace condyn;
  bench::print_env_banner("Figure 5: random scenario, 80% reads");
  const auto env = harness::env_config();
  bench::run_figure(
      "Random scenario, 80% reads / 10% add / 10% remove", "ops/ms",
      harness::Scenario::kRandom, 80,
      bench::variant_set(env, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}),
      [](const harness::RunResult& r) { return r.ops_per_ms; });
  return 0;
}
